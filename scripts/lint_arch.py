#!/usr/bin/env python3
"""Back-compat shim over the truss-tidy `arch` pass.

The architectural lint rules that used to live here (registry-dispatch,
raw-thread, libc-rand-time, metric-format, bare-assert, annotated-mutex)
are now one pass of the truss-tidy framework — see
scripts/analysis/passes/arch.py for the rules and docs/STATIC_ANALYSIS.md
for the full pass catalog. Run the whole suite with:

    python3 scripts/analysis/run.py --all

This wrapper keeps the historical surface working unchanged:

  * CLI: `lint_arch.py [--root R] [--allowlist F]`, exit 0 clean /
    1 violations / 2 usage errors, `path:line: [rule] message` output;
  * Python: `Linter(root, allowlist).run()`, `.files_scanned`,
    `load_allowlist(path)` (tests/lint_arch_test.py drives these).

Exceptions live in scripts/analysis/suppressions.json — the unified
per-pass suppression file, same `{rule: {path: reason}}` shape the old
lint_arch_allowlist.json used.
"""

import argparse
import os
import sys

# Make the sibling `analysis` package importable whether this file is run
# as a script or loaded via importlib (as tests/lint_arch_test.py does).
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analysis import framework  # noqa: E402
from analysis import model  # noqa: E402

# The unified loader validates the same shape the old allowlist had, so
# it serves as load_allowlist verbatim.
load_allowlist = framework.load_suppressions


class Linter:
    """Historical facade: the `arch` pass over a fresh RepoModel."""

    def __init__(self, root, allowlist):
        self.root = root
        self.allowlist = allowlist
        self.violations = []
        self.files_scanned = 0

    def run(self):
        repo = model.RepoModel(self.root)
        result = framework.run_passes(repo, ["arch"], self.allowlist)[0]
        self.files_scanned = result.files_scanned
        self.violations = [str(v) for v in result.violations]
        return self.violations


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root to lint (default: cwd)")
    parser.add_argument("--allowlist", default=None,
                        help="suppression JSON (default: "
                             "<root>/scripts/analysis/suppressions.json)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print("lint_arch: no such directory: %s" % root, file=sys.stderr)
        return 2
    allowlist_path = args.allowlist or framework.default_suppressions_path(root)
    allowlist = {}
    if os.path.exists(allowlist_path):
        try:
            allowlist = load_allowlist(allowlist_path)
        except (ValueError, OSError) as err:
            print("lint_arch: bad allowlist %s: %s"
                  % (allowlist_path, err), file=sys.stderr)
            return 2

    linter = Linter(root, allowlist)
    violations = linter.run()
    for violation in violations:
        print(violation)
    if violations:
        print("lint_arch: %d violation(s) in %d file(s) scanned"
              % (len(violations), linter.files_scanned), file=sys.stderr)
        return 1
    print("lint_arch: OK (%d files scanned)" % linter.files_scanned)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
