#!/usr/bin/env python3
"""Architectural lint for the truss repo.

Enforces repo-level conventions that the compiler cannot:

  registry-dispatch   bench/, examples/, and src/serve/ must reach
                      algorithms through the registry (truss/registry.h)
                      or the engine, never by including a concrete
                      algorithm header. Keeping drivers and the serving
                      layer registry-only is what lets a new algorithm
                      show up in every bench, example, and REBUILD
                      command for free.
  raw-thread          std::thread / std::async appear only in
                      src/common/parallel.{h,cc}. Everything else goes
                      through parallel::RunShards so thread-count policy,
                      shard sizing, and the join-as-publication contract
                      live in one place.
  libc-rand-time      no rand()/srand()/time() in src/: library code must
                      be deterministic and testable; benches own timing.
  metric-format       METRIC string literals in bench/ must be exactly
                      "METRIC <key> <value>\\n" — scripts/run_benches.sh
                      splits on spaces and keeps only 3-field lines, so a
                      malformed literal silently drops the metric.
  bare-assert         use TRUSS_CHECK / TRUSS_DCHECK (common/macros.h)
                      instead of assert(); static_assert is fine.
  annotated-mutex     raw std::mutex / std::shared_mutex /
                      std::condition_variable appear only in
                      src/common/mutex.h. Everything else in src/ guards
                      shared state with truss::Mutex + TRUSS_GUARDED_BY
                      so Clang's thread-safety analysis (the CI
                      static-analysis gate) can see every lock. This is
                      what keeps the serving layer's snapshot registry
                      analyzable: an unannotated mutex is invisible to
                      -Wthread-safety.

Exceptions live in scripts/lint_arch_allowlist.json as
{rule_id: {relative_path: reason}}. Exit status 0 when clean, 1 when any
violation is found, 2 on usage errors.
"""

import argparse
import json
import os
import re
import sys

ALGORITHM_HEADERS = (
    "truss/improved.h",
    "truss/cohen.h",
    "truss/bottom_up.h",
    "truss/top_down.h",
    "truss/parallel_peel.h",
)

PARALLEL_IMPL = ("src/common/parallel.h", "src/common/parallel.cc")

# The one place raw standard-library mutexes may appear: the annotated
# shim that wraps them in thread-safety-capability types.
MUTEX_IMPL = ("src/common/mutex.h",)

SOURCE_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")

RAW_THREAD_RE = re.compile(r"\bstd::(thread|async)\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(_any)?)\b")
RAND_TIME_RE = re.compile(r"(^|[^_A-Za-z0-9:])(std::)?(rand|srand|time)\s*\(")
BARE_ASSERT_RE = re.compile(r"(^|[^_A-Za-z0-9])assert\s*\(")
CASSERT_RE = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')
METRIC_LITERAL_RE = re.compile(r"METRIC[^\"]*")
STRING_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def split_code_and_literals(line, in_block_comment):
    """Returns (code, full, literals, in_block_comment).

    `code` is the line with comments removed and string-literal contents
    blanked (so regex rules never fire inside strings or comments);
    `full` is the same but with literals kept, for #include rules whose
    target is itself a quoted string; `literals` is the list of
    string-literal bodies found outside comments (for metric-format).
    """
    code = []
    full = []
    literals = []
    i, n = 0, len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(code), "".join(full), literals, True
            i = end + 2
            in_block_comment = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if ch == '"':
            match = STRING_LITERAL_RE.match(line, i)
            if match:
                literals.append(match.group(1))
                code.append('""')
                full.append(match.group(0))
                i = match.end()
                continue
        if ch == "'":
            # Skip char literals like '\n' so their contents are not
            # mistaken for code (or for a comment/string opener).
            match = re.match(r"'(?:[^'\\]|\\.)*'", line[i:])
            if match:
                code.append("''")
                full.append("''")
                i += match.end()
                continue
        code.append(ch)
        full.append(ch)
        i += 1
    return "".join(code), "".join(full), literals, in_block_comment


class Linter:
    def __init__(self, root, allowlist):
        self.root = root
        self.allowlist = allowlist
        self.violations = []
        self.files_scanned = 0

    def allowed(self, rule, relpath):
        return relpath in self.allowlist.get(rule, {})

    def report(self, rule, relpath, lineno, message):
        if not self.allowed(rule, relpath):
            self.violations.append(
                "%s:%d: [%s] %s" % (relpath, lineno, rule, message))

    def lint_file(self, relpath):
        self.files_scanned += 1
        top = relpath.split("/", 1)[0]
        in_bench_or_example = top in ("bench", "examples")
        in_src = top == "src"
        # The serving layer is a driver over the engine facade, exactly
        # like a bench or example: it must stay registry-dispatched so
        # REBUILD <algo> picks up new algorithms with zero serve changes.
        registry_only = in_bench_or_example or relpath.startswith("src/serve/")
        try:
            with open(os.path.join(self.root, relpath),
                      encoding="utf-8", errors="replace") as f:
                lines = f.readlines()
        except OSError as err:
            self.violations.append("%s:0: [io] unreadable: %s" % (relpath, err))
            return

        in_block_comment = False
        for lineno, raw in enumerate(lines, start=1):
            code, full, literals, in_block_comment = split_code_and_literals(
                raw.rstrip("\n"), in_block_comment)

            if registry_only:
                for header in ALGORITHM_HEADERS:
                    if re.search(r'#\s*include\s*"%s"' % re.escape(header),
                                 full):
                        self.report(
                            "registry-dispatch", relpath, lineno,
                            'includes "%s"; dispatch through '
                            "truss/registry.h or the engine instead" % header)

            if relpath not in PARALLEL_IMPL and RAW_THREAD_RE.search(code):
                self.report(
                    "raw-thread", relpath, lineno,
                    "raw std::thread/std::async; use parallel::RunShards "
                    "(src/common/parallel.h)")

            if (in_src and relpath not in MUTEX_IMPL
                    and RAW_MUTEX_RE.search(code)):
                self.report(
                    "annotated-mutex", relpath, lineno,
                    "raw standard-library mutex/condvar; use truss::Mutex "
                    "with TRUSS_GUARDED_BY (src/common/mutex.h) so "
                    "thread-safety analysis sees the lock")

            if in_src and RAND_TIME_RE.search(code):
                self.report(
                    "libc-rand-time", relpath, lineno,
                    "rand()/srand()/time() in library code; keep src/ "
                    "deterministic (benches own timing)")

            if top == "bench":
                for literal in literals:
                    for metric in METRIC_LITERAL_RE.findall(literal):
                        parts = metric.split(" ")
                        if (len(parts) != 3 or parts[0] != "METRIC"
                                or not parts[1] or not parts[2]
                                or not parts[2].endswith("\\n")):
                            self.report(
                                "metric-format", relpath, lineno,
                                'METRIC literal "%s" is not '
                                '"METRIC <key> <value>\\n"; '
                                "run_benches.sh would drop it" % metric)

            if BARE_ASSERT_RE.search(code) or CASSERT_RE.search(full):
                self.report(
                    "bare-assert", relpath, lineno,
                    "bare assert()/<cassert>; use TRUSS_CHECK or "
                    "TRUSS_DCHECK from common/macros.h")

    def run(self):
        for top in ("src", "bench", "examples", "tests"):
            base = os.path.join(self.root, top)
            if not os.path.isdir(base):
                continue
            for dirpath, _, filenames in os.walk(base):
                for name in sorted(filenames):
                    if name.endswith(SOURCE_SUFFIXES):
                        full = os.path.join(dirpath, name)
                        relpath = os.path.relpath(full, self.root)
                        relpath = relpath.replace(os.sep, "/")
                        self.lint_file(relpath)
        return self.violations


def load_allowlist(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError("allowlist must be a JSON object")
    for rule, entries in data.items():
        if not isinstance(entries, dict):
            raise ValueError(
                "allowlist[%r] must map path -> reason" % rule)
        for relpath, reason in entries.items():
            if not isinstance(reason, str) or not reason.strip():
                raise ValueError(
                    "allowlist[%r][%r] needs a non-empty reason"
                    % (rule, relpath))
    return data


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root to lint (default: cwd)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist JSON (default: "
                             "<root>/scripts/lint_arch_allowlist.json)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print("lint_arch: no such directory: %s" % root, file=sys.stderr)
        return 2
    allowlist_path = args.allowlist or os.path.join(
        root, "scripts", "lint_arch_allowlist.json")
    allowlist = {}
    if os.path.exists(allowlist_path):
        try:
            allowlist = load_allowlist(allowlist_path)
        except (ValueError, json.JSONDecodeError) as err:
            print("lint_arch: bad allowlist %s: %s"
                  % (allowlist_path, err), file=sys.stderr)
            return 2

    linter = Linter(root, allowlist)
    violations = linter.run()
    for violation in violations:
        print(violation)
    if violations:
        print("lint_arch: %d violation(s) in %d file(s) scanned"
              % (len(violations), linter.files_scanned), file=sys.stderr)
        return 1
    print("lint_arch: OK (%d files scanned)" % linter.files_scanned)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
