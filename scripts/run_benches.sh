#!/usr/bin/env bash
# Runs the table-reproduction bench binaries and emits one machine-readable
# BENCH_<name>.json per bench (plus the raw stdout capture as BENCH_<name>.log).
# These artifacts seed the perf trajectory the ROADMAP's speed goals are
# measured against: commit-over-commit comparisons diff the JSON.
#
# Usage:
#   scripts/run_benches.sh [--build-dir DIR] [--out-dir DIR] [--all] [BENCH...]
#
#   --build-dir DIR  where the bench binaries live (default: build/release)
#   --out-dir DIR    where to write BENCH_*.json (default: bench_results/)
#   --threads N      cap for the benches' thread sweeps, exported as
#                    TRUSS_BENCH_THREADS and recorded in each BENCH_*.json
#                    so compare_benches.py only diffs like-for-like runs
#                    (default: 8)
#   --all            run every bench, including the multi-minute external-
#                    memory tables (default: the quick set below)
#   BENCH...         explicit bench names override both sets
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build/release"
OUT_DIR="${REPO_ROOT}/bench_results"
THREADS="${TRUSS_BENCH_THREADS:-8}"

# Seconds-scale benches, safe to run on every PR. (The external-memory
# tables 4-6 run 2-10 minutes each; reach them with --all.)
QUICK_SET=(bench_ablation bench_clique_pruning bench_ingest
           bench_micro_kernels bench_serve bench_table3_inmem)
# Full sweep, including dataset generation and external-memory runs.
ALL_SET=(bench_ablation bench_clique_pruning bench_ingest bench_micro_kernels
         bench_serve bench_table2_datasets bench_table3_inmem
         bench_table4_bottomup_vs_mr bench_table5_topdown
         bench_table6_truss_vs_core)

RUN_SET=()
USE_ALL=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    --threads) THREADS="$2"; shift 2 ;;
    --all) USE_ALL=1; shift ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    bench_*) RUN_SET+=("$1"); shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
if [[ ${#RUN_SET[@]} -eq 0 ]]; then
  if [[ ${USE_ALL} -eq 1 ]]; then RUN_SET=("${ALL_SET[@]}");
  else RUN_SET=("${QUICK_SET[@]}"); fi
fi

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "error: build dir ${BUILD_DIR} not found." >&2
  echo "Build first:  cmake --preset release && cmake --build build/release -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"
GIT_REV="$(git -C "${REPO_ROOT}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
TIMESTAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
FAILURES=0
export TRUSS_BENCH_THREADS="${THREADS}"

for bench in "${RUN_SET[@]}"; do
  bin="${BUILD_DIR}/${bench}"
  log="${OUT_DIR}/BENCH_${bench#bench_}.log"
  json="${OUT_DIR}/BENCH_${bench#bench_}.json"
  if [[ ! -x "${bin}" ]]; then
    echo "[skip] ${bench}: binary not built (${bin})" >&2
    continue
  fi
  echo "[run ] ${bench}"
  start="$(date +%s.%N)"
  status=0
  "${bin}" >"${log}" 2>&1 || status=$?
  end="$(date +%s.%N)"
  wall="$(awk -v a="${start}" -v b="${end}" 'BEGIN { printf "%.3f", b - a }')"
  if [[ ${status} -ne 0 ]]; then
    echo "[FAIL] ${bench} (exit ${status}); see ${log}" >&2
    FAILURES=$((FAILURES + 1))
  fi
  # python3 writes the JSON so embedded bench output is escaped correctly.
  python3 - "${json}" "${bench}" "${status}" "${wall}" "${GIT_REV}" \
      "${TIMESTAMP}" "${log}" "${THREADS}" <<'PYEOF'
import json, os, pathlib, socket, sys
out, bench, status, wall, rev, ts, log, threads = sys.argv[1:9]
lines = pathlib.Path(log).read_text(errors="replace").splitlines()
# Benches may emit "METRIC <key> <value>" lines — bench_ingest's MB/s
# throughput figures, and bench_table3_inmem's per-phase decomposition
# timings (support_seconds / peel_seconds plus the
# {support,peel}_parallel_t<N>_seconds threads sweep of the PKT-style
# parallel peel); collect them into a structured field so
# compare_benches.py can diff them without re-parsing free-form output.
metrics = {}
for line in lines:
    parts = line.split()
    if len(parts) == 3 and parts[0] == "METRIC":
        try:
            metrics[parts[1]] = float(parts[2])
        except ValueError:
            pass
pathlib.Path(out).write_text(json.dumps({
    "bench": bench,
    "status": "ok" if status == "0" else "failed",
    "exit_code": int(status),
    "wall_seconds": float(wall),
    "threads": int(threads),
    # Physical parallelism of the machine the run happened on. Numbers from
    # a 1-core CI container and an 8-core workstation are not comparable
    # even at the same --threads cap (oversubscription vs real cores), so
    # compare_benches.py refuses to diff across differing core counts.
    "hardware_concurrency": os.cpu_count() or 1,
    "git_rev": rev,
    "timestamp_utc": ts,
    "host": socket.gethostname(),
    "metrics": metrics,
    "output": lines,
}, indent=2) + "\n")
PYEOF
  echo "       ${wall}s -> ${json}"
done

echo
echo "artifacts in ${OUT_DIR}:"
ls -1 "${OUT_DIR}"/BENCH_*.json 2>/dev/null || true
exit $((FAILURES > 0))
