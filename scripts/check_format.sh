#!/usr/bin/env bash
# Checks clang-format (config: .clang-format) compliance for the files
# changed relative to a base ref, so formatting is enforced on new work
# without requiring a whole-tree reformat in one PR.
#
# Usage: scripts/check_format.sh [--require] [base_ref]
#
#   --require  fail (exit 3) when clang-format is not installed instead
#              of skipping; CI passes this so a missing tool can never
#              masquerade as a clean check.
#   base_ref   git ref to diff against; defaults to $GITHUB_BASE_REF
#              (set on pull_request CI runs) and then to HEAD~1.
#
# Exit codes (distinguish "tool absent" from "tool found problems"):
#   0  clean, or clang-format absent without --require (loud SKIPPED)
#   1  formatting violations found
#   2  usage error
#   3  clang-format absent but --require was given
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

require=0
base_ref=""
for arg in "$@"; do
  case "${arg}" in
    --require) require=1 ;;
    --*)
      echo "check_format.sh: unknown flag ${arg}" >&2
      exit 2
      ;;
    *) base_ref="${arg}" ;;
  esac
done

if ! command -v clang-format >/dev/null 2>&1; then
  if [[ "${require}" -eq 1 ]]; then
    echo "check_format.sh: FAILED — clang-format required but not on" \
         "PATH (exit 3)." >&2
    exit 3
  fi
  echo "check_format.sh: SKIPPED — clang-format not found on PATH." >&2
  exit 0
fi

base_ref="${base_ref:-${GITHUB_BASE_REF:-}}"
if [[ -n "${base_ref}" ]] && ! git rev-parse --verify -q "${base_ref}" \
    >/dev/null; then
  # On pull_request runs GITHUB_BASE_REF is a branch name that may not
  # exist locally yet with a shallow checkout.
  git fetch --depth=1 origin "${base_ref}" >/dev/null 2>&1 || true
  base_ref="origin/${base_ref}"
fi
if [[ -z "${base_ref}" ]] || ! git rev-parse --verify -q "${base_ref}" \
    >/dev/null; then
  base_ref="HEAD~1"
fi

mapfile -t changed < <(
  git diff --name-only --diff-filter=ACMR "${base_ref}" -- \
    'src/*' 'bench/*' 'examples/*' 'tests/*' \
    | grep -E '\.(h|cc|cpp|hpp)$' || true)

if [[ "${#changed[@]}" -eq 0 ]]; then
  echo "check_format.sh: OK (no C++ files changed vs ${base_ref})"
  exit 0
fi

echo "check_format.sh: checking ${#changed[@]} file(s) vs ${base_ref}"
bad=()
for f in "${changed[@]}"; do
  [[ -f "$f" ]] || continue
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    bad+=("$f")
  fi
done

if [[ "${#bad[@]}" -gt 0 ]]; then
  echo "check_format.sh: FAILED — needs clang-format:" >&2
  printf '  %s\n' "${bad[@]}" >&2
  echo "Fix with: clang-format -i ${bad[*]}" >&2
  exit 1
fi
echo "check_format.sh: OK"
