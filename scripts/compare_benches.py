#!/usr/bin/env python3
"""Compare two bench_results/ artifact directories on wall_seconds.

Each directory holds BENCH_<name>.json files written by scripts/run_benches.sh.
The comparison pairs files by bench name, reports the wall-clock delta for
every common bench, and fails (exit 1) when any bench regressed by more than
the threshold. New or removed benches are reported but never fail the run;
benches whose baseline or current run did not exit 0 are skipped (a failed
bench is a correctness problem for CTest, not a perf signal), as are pairs
whose `threads` fields differ (a 1-thread baseline against an 8-thread run
is not a like-for-like comparison). Pairs recorded on machines with
different `hardware_concurrency` are refused outright (exit 2): unlike a
per-bench thread-cap mismatch, a core-count mismatch poisons every number
in the artifact, so the whole comparison is meaningless.

Usage:
  scripts/compare_benches.py BASELINE_DIR CURRENT_DIR [--threshold PCT]
                             [--min-seconds S]

  --threshold PCT   max allowed regression in percent (default: 10)
  --min-seconds S   ignore benches faster than S seconds in both runs;
                    sub-second runs are dominated by noise (default: 0.5)
"""

import argparse
import json
import pathlib
import sys


def load_results(directory: pathlib.Path) -> dict:
    results = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable {path}: {err}",
                  file=sys.stderr)
            continue
        name = data.get("bench", path.stem)
        results[name] = data
    return results


def hardware_concurrency(results: dict) -> set:
    """Distinct core counts recorded across a directory's artifacts.

    Artifacts written before the field existed contribute nothing; the
    cross-machine refusal only fires between runs that actually recorded
    where they ran."""
    counts = set()
    for data in results.values():
        cores = data.get("hardware_concurrency")
        if cores is not None:
            counts.add(int(cores))
    return counts


def report_metrics(baseline: dict, current: dict) -> None:
    """Prints deltas for named bench metrics (METRIC lines): bench_ingest's
    MB/s figures and bench_table3_inmem's decomposition phase timings —
    support_seconds / peel_seconds for the sequential baseline and the
    {support,peel}_parallel_t<N>_seconds threads sweep of the parallel
    peel.

    Informational only — metrics track trajectory (throughput, scaling)
    and never fail the comparison; wall_seconds is the blocking signal.
    No direction is assumed (some metrics are higher-better MB/s, some
    lower-better overhead percentages that can legitimately be negative),
    so only the raw values and a relative delta are shown; the delta is
    suppressed for non-positive baselines, where a ratio would be
    meaningless or sign-inverted.

    Keys present in only one side are reported as "new" / "removed"
    rather than silently dropped — a renamed or vanished METRIC line
    (e.g. a bench losing its reorder_seconds instrumentation) should be
    visible in the comparison, not erased by an intersection."""
    rows = []
    for name in sorted(baseline.keys() & current.keys()):
        base_metrics = baseline[name].get("metrics") or {}
        cur_metrics = current[name].get("metrics") or {}
        for key in sorted(base_metrics.keys() | cur_metrics.keys()):
            if key not in cur_metrics:
                rows.append((key, f"{base_metrics[key]:.4g}", "-", "-",
                             "removed"))
                continue
            if key not in base_metrics:
                rows.append((key, "-", f"{cur_metrics[key]:.4g}", "-", "new"))
                continue
            base_v, cur_v = base_metrics[key], cur_metrics[key]
            delta = (f"{(cur_v - base_v) / base_v * 100.0:+.1f}%"
                     if base_v > 0 else "-")
            # %.4g keeps sub-second phase timings readable (0.1873, not
            # 0.2) without blowing up large MB/s figures.
            rows.append((key, f"{base_v:.4g}", f"{cur_v:.4g}", delta, ""))
    if not rows:
        return
    header = ("metric", "base", "current", "delta", "status")
    widths = [max(len(row[i]) for row in rows + [header]) for i in range(5)]
    print("\nmetrics (informational, never blocking):")
    for row in (header,) + tuple(rows):
        print("  ".join(cell.ljust(widths[i])
                        for i, cell in enumerate(row)).rstrip())


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max allowed wall_seconds regression in percent")
    parser.add_argument("--min-seconds", type=float, default=0.5,
                        help="ignore benches faster than this in both runs")
    args = parser.parse_args()

    for directory in (args.baseline, args.current):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2

    baseline = load_results(args.baseline)
    current = load_results(args.current)
    if not baseline or not current:
        print("error: no BENCH_*.json artifacts to compare", file=sys.stderr)
        return 2

    base_cores = hardware_concurrency(baseline)
    cur_cores = hardware_concurrency(current)
    if base_cores and cur_cores and base_cores != cur_cores:
        print("error: refusing to compare runs from different core counts: "
              f"baseline recorded hardware_concurrency {sorted(base_cores)}, "
              f"current recorded {sorted(cur_cores)}; wall-clock deltas "
              "across machines are not a perf signal", file=sys.stderr)
        return 2

    regressions = []
    rows = []
    for name in sorted(baseline.keys() | current.keys()):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            rows.append((name, "-", f"{cur['wall_seconds']:.2f}", "-", "new"))
            continue
        if cur is None:
            rows.append((name, f"{base['wall_seconds']:.2f}", "-", "-",
                         "removed"))
            continue
        if base.get("exit_code", 0) != 0 or cur.get("exit_code", 0) != 0:
            rows.append((name, "-", "-", "-", "skipped (non-zero exit)"))
            continue
        # Artifacts written before the threads field existed default to 1.
        base_threads = int(base.get("threads", 1))
        cur_threads = int(cur.get("threads", 1))
        if base_threads != cur_threads:
            rows.append((name, "-", "-", "-",
                         f"skipped (threads differ: {base_threads} vs "
                         f"{cur_threads})"))
            continue
        base_s = float(base["wall_seconds"])
        cur_s = float(cur["wall_seconds"])
        delta_pct = (cur_s - base_s) / base_s * 100.0 if base_s > 0 else 0.0
        if max(base_s, cur_s) < args.min_seconds:
            status = "ok (below min-seconds)"
        elif delta_pct > args.threshold:
            status = f"REGRESSION (> {args.threshold:.0f}%)"
            regressions.append(name)
        else:
            status = "ok"
        rows.append((name, f"{base_s:.2f}", f"{cur_s:.2f}",
                     f"{delta_pct:+.1f}%", status))

    widths = [max(len(row[i]) for row in rows + [("bench", "base s",
                                                  "current s", "delta",
                                                  "status")])
              for i in range(5)]
    header = ("bench", "base s", "current s", "delta", "status")
    for row in (header,) + tuple(rows):
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))

    report_metrics(baseline, current)

    if regressions:
        print(f"\n{len(regressions)} bench(es) regressed beyond "
              f"{args.threshold:.0f}%: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
