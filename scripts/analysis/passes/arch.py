"""Architectural lint pass (the rules formerly in scripts/lint_arch.py).

Enforces repo-level conventions the compiler cannot:

  registry-dispatch   bench/, examples/, and src/serve/ must reach
                      algorithms through the registry (truss/registry.h)
                      or the engine, never by including a concrete
                      algorithm header.
  raw-thread          std::thread / std::async appear only in
                      src/common/parallel.{h,cc}; everything else goes
                      through parallel::RunShards.
  libc-rand-time      no rand()/srand()/time() in src/: library code must
                      be deterministic and testable; benches own timing.
  metric-format       METRIC string literals in bench/ must be exactly
                      "METRIC <key> <value>\\n" — run_benches.sh keeps
                      only 3-field lines, so a malformed literal silently
                      drops the metric.
  bare-assert         use TRUSS_CHECK / TRUSS_DCHECK (common/macros.h)
                      instead of assert(); static_assert is fine.
  annotated-mutex     raw std::mutex / std::shared_mutex /
                      std::condition_variable appear only in
                      src/common/mutex.h; everything else guards shared
                      state with truss::Mutex + TRUSS_GUARDED_BY so
                      Clang's thread-safety analysis sees every lock.
"""

import re

from analysis.framework import Pass, register

ALGORITHM_HEADERS = (
    "truss/improved.h",
    "truss/cohen.h",
    "truss/bottom_up.h",
    "truss/top_down.h",
    "truss/parallel_peel.h",
)

PARALLEL_IMPL = ("src/common/parallel.h", "src/common/parallel.cc")

# The one place raw standard-library mutexes may appear: the annotated
# shim that wraps them in thread-safety-capability types.
MUTEX_IMPL = ("src/common/mutex.h",)

RAW_THREAD_RE = re.compile(r"\bstd::(thread|async)\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(_any)?)\b")
RAND_TIME_RE = re.compile(r"(^|[^_A-Za-z0-9:])(std::)?(rand|srand|time)\s*\(")
BARE_ASSERT_RE = re.compile(r"(^|[^_A-Za-z0-9])assert\s*\(")
CASSERT_RE = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')
METRIC_LITERAL_RE = re.compile(r"METRIC[^\"]*")

ALGORITHM_INCLUDE_RES = [
    (header, re.compile(r'#\s*include\s*"%s"' % re.escape(header)))
    for header in ALGORITHM_HEADERS
]


@register
class ArchPass(Pass):
    name = "arch"
    description = ("architectural conventions: registry-only dispatch, "
                   "RunShards-only threading, annotated mutexes, "
                   "deterministic src/, METRIC format, no bare assert")
    rules = ("registry-dispatch", "raw-thread", "libc-rand-time",
             "metric-format", "bare-assert", "annotated-mutex")

    def run(self, model, reporter):
        for relpath, err in model.unreadable:
            reporter.report("io", relpath, 0, "unreadable: %s" % err)
        for f in model.iter_files():
            self._lint_file(f, reporter)

    def _lint_file(self, f, reporter):
        relpath = f.relpath
        in_bench_or_example = f.top in ("bench", "examples")
        in_src = f.top == "src"
        # The serving layer is a driver over the engine facade, exactly
        # like a bench or example: it must stay registry-dispatched so
        # REBUILD <algo> picks up new algorithms with zero serve changes.
        registry_only = in_bench_or_example or relpath.startswith("src/serve/")

        for lineno, line in enumerate(f.lines, start=1):
            code, full, literals = line.code, line.full, line.literals

            if registry_only:
                for header, include_re in ALGORITHM_INCLUDE_RES:
                    if include_re.search(full):
                        reporter.report(
                            "registry-dispatch", relpath, lineno,
                            'includes "%s"; dispatch through '
                            "truss/registry.h or the engine instead" % header)

            if relpath not in PARALLEL_IMPL and RAW_THREAD_RE.search(code):
                reporter.report(
                    "raw-thread", relpath, lineno,
                    "raw std::thread/std::async; use parallel::RunShards "
                    "(src/common/parallel.h)")

            if (in_src and relpath not in MUTEX_IMPL
                    and RAW_MUTEX_RE.search(code)):
                reporter.report(
                    "annotated-mutex", relpath, lineno,
                    "raw standard-library mutex/condvar; use truss::Mutex "
                    "with TRUSS_GUARDED_BY (src/common/mutex.h) so "
                    "thread-safety analysis sees the lock")

            if in_src and RAND_TIME_RE.search(code):
                reporter.report(
                    "libc-rand-time", relpath, lineno,
                    "rand()/srand()/time() in library code; keep src/ "
                    "deterministic (benches own timing)")

            if f.top == "bench":
                for literal in literals:
                    for metric in METRIC_LITERAL_RE.findall(literal):
                        parts = metric.split(" ")
                        if (len(parts) != 3 or parts[0] != "METRIC"
                                or not parts[1] or not parts[2]
                                or not parts[2].endswith("\\n")):
                            reporter.report(
                                "metric-format", relpath, lineno,
                                'METRIC literal "%s" is not '
                                '"METRIC <key> <value>\\n"; '
                                "run_benches.sh would drop it" % metric)

            if BARE_ASSERT_RE.search(code) or CASSERT_RE.search(full):
                reporter.report(
                    "bare-assert", relpath, lineno,
                    "bare assert()/<cassert>; use TRUSS_CHECK or "
                    "TRUSS_DCHECK from common/macros.h")
