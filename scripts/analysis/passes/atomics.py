"""Atomics audit pass: every explicit memory ordering is justified.

Relaxed atomics are correct only for a reason — a counter nobody reads
until after a join, a flag with no data dependence, a clamped CAS whose
reread tolerates staleness. Those reasons used to live in free-form
comments; this pass makes them machine-readable and therefore
enforceable. Every `memory_order_*` (or `memory_order::*`) site in src/
must carry a tag, on the same line or in the comment block immediately
above:

    // ordering: relaxed — stat counter; read only after workers join

The named ordering must match the one the code actually uses (a stale
tag is worse than none), and the justification must be non-empty. When
an ordering is strengthened or weakened, the tag has to change in the
same diff — that is the point.
"""

import re

from analysis.framework import Pass, register

ORDER_USE_RE = re.compile(r"\bmemory_order(?:::|_)([a-z_]+)\b")
TAG_RE = re.compile(
    r"ordering:\s*(?P<orders>[a-z_]+(?:\s*,\s*[a-z_]+)*)(?P<just>.*)")
KNOWN_ORDERS = {"relaxed", "consume", "acquire", "release", "acq_rel",
                "seq_cst"}
# How far above the use the tag's comment block may start.
MAX_COMMENT_BLOCK = 6


def find_tag(f, lineno):
    """Returns the ordering tag covering line `lineno` (1-indexed), as a
    (orders set, justification) tuple, or None. Looks at the line's own
    comment first, then the contiguous comment-only block above it."""
    texts = [f.lines[lineno - 1].comment]
    i = lineno - 2
    while i >= 0 and lineno - 1 - i <= MAX_COMMENT_BLOCK:
        line = f.lines[i]
        if line.code.strip() or not line.comment.strip():
            break
        texts.append(line.comment)
        i -= 1
    for text in texts:
        match = TAG_RE.search(text)
        if match:
            orders = {o.strip() for o in match.group("orders").split(",")}
            just = match.group("just").strip().lstrip("—–-:() ").strip()
            return orders, just
    return None


@register
class AtomicsPass(Pass):
    name = "atomics"
    description = ("every memory_order_* site in src/ carries a matching "
                   "machine-readable '// ordering:' justification tag")
    rules = ("ordering-tag", "ordering-mismatch")

    def run(self, model, reporter):
        for f in model.iter_files(top="src"):
            for lineno, line in enumerate(f.lines, start=1):
                used = set(ORDER_USE_RE.findall(line.code))
                if not used:
                    continue
                tag = find_tag(f, lineno)
                if tag is None:
                    reporter.report(
                        "ordering-tag", f.relpath, lineno,
                        "memory_order_%s without an '// ordering:' "
                        "justification tag on the line or in the comment "
                        "block above" % "/".join(sorted(used)))
                    continue
                orders, just = tag
                bogus = sorted(orders - KNOWN_ORDERS)
                if bogus:
                    reporter.report(
                        "ordering-mismatch", f.relpath, lineno,
                        "ordering tag names unknown ordering(s): %s"
                        % ", ".join(bogus))
                    continue
                uncovered = sorted(used - orders)
                if uncovered:
                    reporter.report(
                        "ordering-mismatch", f.relpath, lineno,
                        "code uses memory_order_%s but the tag declares "
                        "'%s' — stale tag?"
                        % ("/".join(uncovered), ", ".join(sorted(orders))))
                elif not just:
                    reporter.report(
                        "ordering-mismatch", f.relpath, lineno,
                        "ordering tag has no justification text; say why "
                        "'%s' is sufficient" % ", ".join(sorted(orders)))
