"""nodiscard pass: Status-returning APIs must carry TRUSS_NODISCARD.

`truss::Status` and `truss::Result<T>` are the repo's only error
channel; a silently dropped return value turns a failed save, socket
write, or rebuild into silent data loss. The classes themselves are
declared `TRUSS_NODISCARD` (so the *compiler* rejects a discarded call
through any code path, including ones this pass cannot see), and this
pass keeps the contract visible at the API boundary: every function
declared in a src/ header with return type `Status` or `Result<...>`
must spell the annotation on its declaration.

`--fix` inserts the annotation in place — safe because adding
[[nodiscard]] never changes runtime behavior, only surfaces discards at
the next compile.
"""

import os
import re

from analysis.framework import Pass, register

# A declaration line: optional template intro, optional annotation,
# declaration specifiers, then a Status/Result return type followed by a
# function name and '('. Matching on comment-stripped code means doc
# text like "returns Status::OK()" never fires.
DECL_RE = re.compile(
    r"^\s*"
    r"(?:template\s*<[^;]*>\s*)?"
    r"(?P<nodiscard>TRUSS_NODISCARD\s+)?"
    r"(?P<specs>(?:static|friend|inline|constexpr|virtual|explicit)\s+)*"
    r"(?:::)?(?:truss::)?(?P<ret>Status|Result<.+?>)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")


@register
class NodiscardPass(Pass):
    name = "nodiscard"
    description = ("every Status/Result-returning API declared in a src/ "
                   "header carries TRUSS_NODISCARD")
    rules = ("nodiscard",)
    fixable = True

    def run(self, model, reporter):
        for f in model.iter_files(top="src", headers_only=True):
            for lineno, match in self._unannotated(f):
                reporter.report(
                    "nodiscard", f.relpath, lineno,
                    "%s-returning %s() lacks TRUSS_NODISCARD; a dropped "
                    "%s is silent data loss (--fix inserts it)"
                    % (match.group("ret").split("<")[0], match.group("name"),
                       match.group("ret").split("<")[0]))

    def _unannotated(self, f):
        """Yields (lineno, match) for declarations missing the annotation."""
        found = []
        for lineno, line in enumerate(f.lines, start=1):
            match = DECL_RE.match(line.code)
            if not match or match.group("nodiscard"):
                continue
            # Annotation may sit alone on the previous code line (wrapped
            # by clang-format).
            prev = self._prev_code(f, lineno)
            if prev is not None and prev.rstrip().endswith("TRUSS_NODISCARD"):
                continue
            found.append((lineno, match))
        return found

    @staticmethod
    def _prev_code(f, lineno):
        for i in range(lineno - 2, -1, -1):
            code = f.lines[i].code
            if code.strip():
                return code
        return None

    def fix(self, model):
        fixed = []
        for f in model.iter_files(top="src", headers_only=True):
            missing = [lineno for lineno, _ in self._unannotated(f)]
            if not missing:
                continue
            path = os.path.join(model.root, f.relpath)
            with open(path, encoding="utf-8") as fp:
                lines = fp.readlines()
            for lineno in missing:
                raw = lines[lineno - 1]
                indent = len(raw) - len(raw.lstrip())
                lines[lineno - 1] = (raw[:indent] + "TRUSS_NODISCARD "
                                     + raw[indent:])
            with open(path, "w", encoding="utf-8") as fp:
                fp.writelines(lines)
            fixed.append(f.relpath)
        return fixed
