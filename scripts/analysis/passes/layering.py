"""Include-layering pass: the src/ module graph must match the manifest.

`scripts/analysis/layers.json` declares, for every module directory
under src/, the modules it may depend on (`{"modules": {name: [deps]}}`)
— the checked-in architecture:

    common -> io -> graph -> {triangle, kcore, gen, partition, ...}
           -> truss -> engine -> serve

The pass parses every quoted #include in src/ and fails on:

  layering-manifest  manifest missing/invalid, module on disk missing
                     from the manifest (or vice versa), or the declared
                     dependency graph itself containing a cycle;
  include-layering   an #include edge from module X to module Y that the
                     manifest does not allow for X;
  include-cycle      a cycle in the file-level include graph (possible
                     even when the module graph is clean, via two files
                     of the same module).

There is no transitivity: if X needs Y, X declares Y. That keeps the
manifest an explicit record of who talks to whom, not a lattice to
puzzle over.
"""

import json
import os

from analysis.framework import Pass, register

MANIFEST_RELPATH = "scripts/analysis/layers.json"


def load_manifest(root):
    """Returns (modules dict or None, error string or None)."""
    path = os.path.join(root, MANIFEST_RELPATH)
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError as err:
        return None, "cannot read manifest: %s" % err
    except json.JSONDecodeError as err:
        return None, "manifest is not valid JSON: %s" % err
    modules = data.get("modules") if isinstance(data, dict) else None
    if not isinstance(modules, dict):
        return None, 'manifest needs a top-level {"modules": {...}} object'
    for name, deps in modules.items():
        if (not isinstance(deps, list)
                or any(not isinstance(d, str) for d in deps)):
            return None, "modules[%r] must be a list of module names" % name
    return modules, None


def find_declared_cycle(modules):
    """Returns one cycle in the declared module graph as a list of names,
    or None. Deterministic: neighbors visited in sorted order."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in modules}
    stack = []

    def dfs(node):
        color[node] = GREY
        stack.append(node)
        for dep in sorted(modules.get(node, [])):
            if dep not in color:
                continue
            if color[dep] == GREY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                cycle = dfs(dep)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for m in sorted(modules):
        if color[m] == WHITE:
            cycle = dfs(m)
            if cycle:
                return cycle
    return None


def find_file_cycle(graph):
    """Returns one cycle in a file-level include graph (dict path ->
    iterable of paths), or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {p: WHITE for p in graph}
    stack = []

    def dfs(node):
        color[node] = GREY
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if nxt not in color:
                continue
            if color[nxt] == GREY:
                return stack[stack.index(nxt):] + [nxt]
            if color[nxt] == WHITE:
                cycle = dfs(nxt)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for p in sorted(graph):
        if color[p] == WHITE:
            cycle = dfs(p)
            if cycle:
                return cycle
    return None


@register
class LayeringPass(Pass):
    name = "layering"
    description = ("src/ #include edges must match the module-dependency "
                   "manifest (scripts/analysis/layers.json) and contain "
                   "no cycles")
    rules = ("layering-manifest", "include-layering", "include-cycle")

    def run(self, model, reporter):
        on_disk = set(model.src_modules())
        if not on_disk:
            return
        modules, err = load_manifest(model.root)
        if modules is None:
            reporter.report("layering-manifest", MANIFEST_RELPATH, 0, err)
            return

        declared = set(modules)
        for missing in sorted(on_disk - declared):
            reporter.report(
                "layering-manifest", MANIFEST_RELPATH, 0,
                "module src/%s exists on disk but is not declared in the "
                "manifest" % missing)
        for stale in sorted(declared - on_disk):
            reporter.report(
                "layering-manifest", MANIFEST_RELPATH, 0,
                "manifest declares module '%s' but src/%s does not exist"
                % (stale, stale))
        unknown_deps = sorted(
            (name, dep) for name, deps in modules.items()
            for dep in deps if dep not in declared)
        for name, dep in unknown_deps:
            reporter.report(
                "layering-manifest", MANIFEST_RELPATH, 0,
                "modules[%r] depends on undeclared module %r" % (name, dep))

        cycle = find_declared_cycle(modules)
        if cycle:
            reporter.report(
                "layering-manifest", MANIFEST_RELPATH, 0,
                "declared module dependencies contain a cycle: %s"
                % " -> ".join(cycle))
            return  # layer checks are meaningless against a cyclic manifest

        # Edge check: every cross-module include must be declared.
        for f in model.iter_files(top="src"):
            if f.module is None:
                continue
            allowed = set(modules.get(f.module, []))
            for lineno, target in f.includes:
                dep = target.split("/", 1)[0]
                if dep == f.module or dep not in on_disk:
                    continue
                if dep not in allowed:
                    reporter.report(
                        "include-layering", f.relpath, lineno,
                        'includes "%s" but the manifest does not allow '
                        "%s -> %s (declared deps: %s)"
                        % (target, f.module, dep,
                           ", ".join(sorted(allowed)) or "none"))

        # File-level cycle check over src/ quoted includes.
        graph = {}
        for f in model.iter_files(top="src"):
            targets = set()
            for _, target in f.includes:
                target_rel = "src/" + target
                if target_rel in model.files:
                    targets.add(target_rel)
            graph[f.relpath] = targets
        file_cycle = find_file_cycle(graph)
        if file_cycle:
            reporter.report(
                "include-cycle", file_cycle[0], 0,
                "include cycle: %s" % " -> ".join(file_cycle))
