"""Shared source-tree model for the truss-tidy analysis passes.

One walk, one parse: every pass reads the same `RepoModel`, so adding a
pass never adds another os.walk or another comment-stripping regex. The
model knows three things about each first-party source file:

  * its lines, each split into comment-free code, code-with-literals
    (for #include rules), the string-literal bodies, and the comment
    text (for passes that read justification tags);
  * its quoted #include targets with line numbers;
  * which top-level directory and src/ module it belongs to.
"""

import os
import re

SOURCE_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")
TOP_DIRS = ("src", "bench", "examples", "tests")

STRING_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
CHAR_LITERAL_RE = re.compile(r"'(?:[^'\\]|\\.)*'")
INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def split_code_and_literals(line, in_block_comment):
    """Splits one raw line into its lexical layers.

    Returns (code, full, literals, comment, in_block_comment):
      code      line with comments removed and string-literal contents
                blanked, so regex rules never fire inside strings or
                comments;
      full      same but with literals kept, for #include rules whose
                target is itself a quoted string;
      literals  string-literal bodies found outside comments;
      comment   concatenated comment text found on the line (// and /* */
                bodies), for passes that read machine-readable tags.
    """
    code = []
    full = []
    literals = []
    comment = []
    i, n = 0, len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                comment.append(line[i:])
                return ("".join(code), "".join(full), literals,
                        " ".join(comment), True)
            comment.append(line[i:end])
            i = end + 2
            in_block_comment = False
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            comment.append(line[i + 2:])
            break
        if ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if ch == '"':
            match = STRING_LITERAL_RE.match(line, i)
            if match:
                literals.append(match.group(1))
                code.append('""')
                full.append(match.group(0))
                i = match.end()
                continue
        if ch == "'":
            # Skip char literals like '\n' so their contents are not
            # mistaken for code (or for a comment/string opener).
            match = CHAR_LITERAL_RE.match(line, i)
            if match:
                code.append("''")
                full.append("''")
                i = match.end()
                continue
        code.append(ch)
        full.append(ch)
        i += 1
    return ("".join(code), "".join(full), literals,
            " ".join(comment), in_block_comment)


class SourceLine:
    """One parsed source line (1-indexed via SourceFile.lines)."""

    __slots__ = ("raw", "code", "full", "literals", "comment")

    def __init__(self, raw, code, full, literals, comment):
        self.raw = raw
        self.code = code
        self.full = full
        self.literals = literals
        self.comment = comment


class SourceFile:
    """A parsed first-party source file."""

    def __init__(self, relpath, lines):
        self.relpath = relpath
        self.lines = lines  # list of SourceLine
        self.top = relpath.split("/", 1)[0]
        parts = relpath.split("/")
        # src/<module>/<file...> -> module name; None elsewhere.
        self.module = parts[1] if self.top == "src" and len(parts) > 2 else None
        self.includes = []  # [(lineno, target)] for quoted includes
        for lineno, line in enumerate(lines, start=1):
            for match in INCLUDE_RE.finditer(line.full):
                self.includes.append((lineno, match.group(1)))

    @property
    def is_header(self):
        return self.relpath.endswith((".h", ".hpp"))


class RepoModel:
    """Parsed view of the repo's first-party sources."""

    def __init__(self, root, top_dirs=TOP_DIRS):
        self.root = os.path.abspath(root)
        self.top_dirs = top_dirs
        self.files = {}  # relpath -> SourceFile
        self.unreadable = []  # [(relpath, error string)]
        self._walk()

    def _walk(self):
        for top in self.top_dirs:
            base = os.path.join(self.root, top)
            if not os.path.isdir(base):
                continue
            for dirpath, _, filenames in os.walk(base):
                for name in sorted(filenames):
                    if not name.endswith(SOURCE_SUFFIXES):
                        continue
                    full = os.path.join(dirpath, name)
                    relpath = os.path.relpath(full, self.root)
                    relpath = relpath.replace(os.sep, "/")
                    self._parse(full, relpath)

    def _parse(self, fullpath, relpath):
        try:
            with open(fullpath, encoding="utf-8", errors="replace") as f:
                raw_lines = f.readlines()
        except OSError as err:
            self.unreadable.append((relpath, str(err)))
            return
        lines = []
        in_block = False
        for raw in raw_lines:
            raw = raw.rstrip("\n")
            code, full, literals, comment, in_block = split_code_and_literals(
                raw, in_block)
            lines.append(SourceLine(raw, code, full, literals, comment))
        self.files[relpath] = SourceFile(relpath, lines)

    def iter_files(self, top=None, module=None, headers_only=False):
        for relpath in sorted(self.files):
            f = self.files[relpath]
            if top is not None and f.top != top:
                continue
            if module is not None and f.module != module:
                continue
            if headers_only and not f.is_header:
                continue
            yield f

    def src_modules(self):
        """Names of the directories directly under src/ that hold sources."""
        mods = set()
        for f in self.files.values():
            if f.module is not None:
                mods.add(f.module)
        return sorted(mods)

    def include_edges(self):
        """Yields (from_file, lineno, target_relpath) for quoted includes
        that resolve to a file under src/ (targets are src-relative)."""
        for f in self.iter_files():
            for lineno, target in f.includes:
                yield f, lineno, "src/" + target
