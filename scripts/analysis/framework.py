"""truss-tidy pass framework: violations, suppressions, registry, runner.

A pass is a subclass of `Pass` registered with `@register`. Passes share
one `RepoModel` per run and report through a `Reporter`, which applies
the unified suppression list (scripts/analysis/suppressions.json,
`{rule: {relative_path: reason}}` — same shape for every pass, so one
file documents every accepted exception in the repo).

Violation strings keep the historical lint_arch format
(`path:line: [rule] message`) so editors, CI log scrapers, and the
back-compat shim all keep working.
"""

import json
import os
import time


class Violation:
    __slots__ = ("rule", "relpath", "lineno", "message")

    def __init__(self, rule, relpath, lineno, message):
        self.rule = rule
        self.relpath = relpath
        self.lineno = lineno
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (
            self.relpath, self.lineno, self.rule, self.message)


def load_suppressions(path):
    """Loads and validates a `{rule: {path: reason}}` suppression file."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError("suppressions must be a JSON object")
    for rule, entries in data.items():
        if not isinstance(entries, dict):
            raise ValueError(
                "suppressions[%r] must map path -> reason" % rule)
        for relpath, reason in entries.items():
            if not isinstance(reason, str) or not reason.strip():
                raise ValueError(
                    "suppressions[%r][%r] needs a non-empty reason"
                    % (rule, relpath))
    return data


class Reporter:
    """Collects violations, dropping ones the suppression list covers."""

    def __init__(self, suppressions=None):
        self.suppressions = suppressions or {}
        self.violations = []
        self.used_suppressions = set()  # (rule, path) actually exercised

    def report(self, rule, relpath, lineno, message):
        if relpath in self.suppressions.get(rule, {}):
            self.used_suppressions.add((rule, relpath))
            return
        self.violations.append(Violation(rule, relpath, lineno, message))

    def unused_suppressions(self):
        """Suppression entries that matched nothing this run (stale)."""
        stale = []
        for rule, entries in sorted(self.suppressions.items()):
            for relpath in sorted(entries):
                if (rule, relpath) not in self.used_suppressions:
                    stale.append((rule, relpath))
        return stale


class Pass:
    """Base class. Subclasses set `name`, `description`, `rules` and
    implement `run(model, reporter)`. Passes with a safe automatic
    remedy implement `fix(model) -> [relpath, ...]` returning the files
    rewritten (run() is re-run afterwards to verify)."""

    name = None
    description = ""
    rules = ()
    fixable = False

    def run(self, model, reporter):
        raise NotImplementedError

    def fix(self, model):
        raise NotImplementedError("%s has no --fix support" % self.name)


_REGISTRY = {}


def register(pass_cls):
    assert pass_cls.name, "pass needs a name"
    assert pass_cls.name not in _REGISTRY, "duplicate pass " + pass_cls.name
    _REGISTRY[pass_cls.name] = pass_cls
    return pass_cls


def all_passes():
    """Registered pass classes in registration order."""
    _load_builtin_passes()
    return list(_REGISTRY.values())


def get_pass(name):
    _load_builtin_passes()
    return _REGISTRY.get(name)


_BUILTINS_LOADED = False


def _load_builtin_passes():
    # Imported lazily so `model`/`framework` stay importable on their own
    # (the self-tests construct fixture trees before touching any pass).
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from analysis.passes import arch, atomics, layering, nodiscard  # noqa: F401


def default_suppressions_path(root):
    return os.path.join(root, "scripts", "analysis", "suppressions.json")


class PassResult:
    __slots__ = ("name", "violations", "seconds", "files_scanned",
                 "used_suppressions")

    def __init__(self, name, violations, seconds, files_scanned,
                 used_suppressions):
        self.name = name
        self.violations = violations
        self.seconds = seconds
        self.files_scanned = files_scanned
        self.used_suppressions = used_suppressions


def run_passes(model, pass_names, suppressions=None):
    """Runs the named passes over `model`; returns [PassResult, ...].

    Each pass gets its own Reporter so per-pass violation counts and
    suppression bookkeeping stay separable, but they share the parsed
    model (the expensive part).
    """
    results = []
    for name in pass_names:
        pass_cls = get_pass(name)
        if pass_cls is None:
            raise KeyError("unknown pass: %s" % name)
        reporter = Reporter(suppressions)
        start = time.monotonic()
        pass_cls().run(model, reporter)
        seconds = time.monotonic() - start
        results.append(PassResult(name, reporter.violations, seconds,
                                  len(model.files),
                                  reporter.used_suppressions))
    return results
