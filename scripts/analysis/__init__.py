"""truss-tidy: the repo's pluggable semantic static-analysis framework.

See scripts/analysis/run.py for the CLI and docs/STATIC_ANALYSIS.md for
the pass catalog.
"""
