#!/usr/bin/env python3
"""truss-tidy: run the repo's semantic static-analysis passes.

Usage:
  scripts/analysis/run.py --all [--fix] [--root DIR]
  scripts/analysis/run.py --pass NAME [--pass NAME ...] [--fix]
  scripts/analysis/run.py --list

Passes share one parsed view of the tree (scripts/analysis/model.py) and
one suppression list (scripts/analysis/suppressions.json,
{rule: {path: reason}}). Each run prints per-pass timing as
"METRIC analysis_<pass>_seconds <s>" so CI tracks analysis cost the same
way it tracks bench cost.

Exit status: 0 clean, 1 violations found, 2 usage/configuration error.
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from analysis import framework  # noqa: E402
from analysis.model import RepoModel  # noqa: E402


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detected from "
                             "this script's location)")
    parser.add_argument("--suppressions", default=None,
                        help="suppression JSON (default: "
                             "<root>/scripts/analysis/suppressions.json)")
    parser.add_argument("--all", action="store_true",
                        help="run every registered pass")
    parser.add_argument("--pass", dest="passes", action="append", default=[],
                        metavar="NAME", help="run one pass (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("--fix", action="store_true",
                        help="apply safe automatic fixes before checking")
    args = parser.parse_args(argv)

    if args.list:
        for pass_cls in framework.all_passes():
            fix = " [--fix]" if pass_cls.fixable else ""
            print("%-10s %s%s" % (pass_cls.name, pass_cls.description, fix))
        return 0

    root = args.root or os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    root = os.path.abspath(root)
    if not os.path.isdir(root):
        print("truss-tidy: no such directory: %s" % root, file=sys.stderr)
        return 2

    known = [p.name for p in framework.all_passes()]
    if args.all:
        selected = known
    else:
        selected = args.passes
    if not selected:
        parser.print_usage(sys.stderr)
        print("truss-tidy: nothing to do (use --all, --pass, or --list)",
              file=sys.stderr)
        return 2
    unknown = [name for name in selected if framework.get_pass(name) is None]
    if unknown:
        print("truss-tidy: unknown pass(es): %s (known: %s)"
              % (", ".join(unknown), ", ".join(known)), file=sys.stderr)
        return 2

    suppressions_path = args.suppressions or \
        framework.default_suppressions_path(root)
    suppressions = {}
    if os.path.exists(suppressions_path):
        try:
            suppressions = framework.load_suppressions(suppressions_path)
        except (ValueError, OSError) as err:
            print("truss-tidy: bad suppressions %s: %s"
                  % (suppressions_path, err), file=sys.stderr)
            return 2

    model = RepoModel(root)

    if args.fix:
        for name in selected:
            pass_cls = framework.get_pass(name)
            if not pass_cls.fixable:
                continue
            fixed = pass_cls().fix(model)
            for relpath in fixed:
                print("truss-tidy: fixed [%s] %s" % (name, relpath))
        if any(framework.get_pass(n).fixable for n in selected):
            model = RepoModel(root)  # re-parse the rewritten files

    try:
        results = framework.run_passes(model, selected, suppressions)
    except KeyError as err:
        print("truss-tidy: %s" % err, file=sys.stderr)
        return 2

    total = 0
    used = set()
    for result in results:
        for violation in result.violations:
            print(violation)
        total += len(result.violations)
        used |= result.used_suppressions
        print("METRIC analysis_%s_seconds %.3f" % (result.name,
                                                   result.seconds))

    # Stale suppression entries are reported (not fatal) only when the
    # whole pass set ran — a single-pass run cannot tell "unused" from
    # "used by a pass that did not run".
    if args.all:
        for rule, relpath in sorted(suppressions_to_pairs(suppressions)
                                    - used):
            print("truss-tidy: note: unused suppression [%s] %s"
                  % (rule, relpath), file=sys.stderr)

    if total:
        print("truss-tidy: %d violation(s) in %d file(s) scanned"
              % (total, len(model.files)), file=sys.stderr)
        return 1
    print("truss-tidy: OK (%d passes, %d files scanned)"
          % (len(results), len(model.files)))
    return 0


def suppressions_to_pairs(suppressions):
    return {(rule, relpath)
            for rule, entries in suppressions.items()
            for relpath in entries}


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
