#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party sources,
# driving compile flags from a CMake compile_commands.json.
#
# Usage: scripts/run_clang_tidy.sh [build_dir]
#
#   build_dir  directory containing compile_commands.json; defaults to
#              the first of build/release, build that has one. Configure
#              with any preset first — CMAKE_EXPORT_COMPILE_COMMANDS is
#              always on.
#
# Exits 0 with a loud SKIPPED message when clang-tidy is not installed
# (e.g. the GCC-only dev container) so local ctest/verify runs are not
# blocked; the CI static-analysis job installs clang-tidy and is the
# blocking gate.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: SKIPPED — clang-tidy not found on PATH." >&2
  echo "  Install clang-tidy (or run in CI) to execute this check." >&2
  exit 0
fi

build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  for candidate in build/release build; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi
if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: no compile_commands.json found." >&2
  echo "  Configure first, e.g.: cmake --preset release" >&2
  exit 2
fi

# First-party translation units only; third-party code fetched by CMake
# (googletest) lives under the build directory and is excluded by
# construction since we list sources from the repo, not the database.
mapfile -t sources < <(
  find src bench examples tests \
    \( -name '*.cc' -o -name '*.cpp' \) | sort)

echo "run_clang_tidy.sh: ${#sources[@]} files, database ${build_dir}"
jobs="$(nproc 2>/dev/null || echo 1)"
status=0
printf '%s\n' "${sources[@]}" \
  | xargs -P "${jobs}" -n 8 clang-tidy -p "${build_dir}" --quiet \
  || status=$?

if [[ "${status}" -ne 0 ]]; then
  echo "run_clang_tidy.sh: FAILED (see diagnostics above)" >&2
  exit 1
fi
echo "run_clang_tidy.sh: OK"
