#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party sources,
# driving compile flags from a CMake compile_commands.json.
#
# Usage: scripts/run_clang_tidy.sh [--require] [build_dir]
#
#   --require  fail (exit 3) when clang-tidy is not installed instead of
#              skipping; CI passes this so a missing tool can never
#              masquerade as a clean check.
#   build_dir  directory containing compile_commands.json; defaults to
#              the first of build/release, build that has one. Configure
#              with any preset first — CMAKE_EXPORT_COMPILE_COMMANDS is
#              always on.
#
# Exit codes (distinguish "tool absent" from "tool found problems"):
#   0  clean, or clang-tidy absent without --require (loud SKIPPED —
#      e.g. the GCC-only dev container, so local ctest/verify runs are
#      not blocked)
#   1  clang-tidy diagnostics reported
#   2  usage/configuration error (no compile_commands.json)
#   3  clang-tidy absent but --require was given
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

require=0
build_dir=""
for arg in "$@"; do
  case "${arg}" in
    --require) require=1 ;;
    --*)
      echo "run_clang_tidy.sh: unknown flag ${arg}" >&2
      exit 2
      ;;
    *) build_dir="${arg}" ;;
  esac
done

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [[ "${require}" -eq 1 ]]; then
    echo "run_clang_tidy.sh: FAILED — clang-tidy required but not on" \
         "PATH (exit 3)." >&2
    exit 3
  fi
  echo "run_clang_tidy.sh: SKIPPED — clang-tidy not found on PATH." >&2
  echo "  Install clang-tidy (or run in CI) to execute this check." >&2
  exit 0
fi

if [[ -z "${build_dir}" ]]; then
  for candidate in build/release build; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi
if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: no compile_commands.json found." >&2
  echo "  Configure first, e.g.: cmake --preset release" >&2
  exit 2
fi

# First-party translation units only; third-party code fetched by CMake
# (googletest) lives under the build directory and is excluded by
# construction since we list sources from the repo, not the database.
mapfile -t sources < <(
  find src bench examples tests \
    \( -name '*.cc' -o -name '*.cpp' \) | sort)

echo "run_clang_tidy.sh: ${#sources[@]} files, database ${build_dir}"
jobs="$(nproc 2>/dev/null || echo 1)"
status=0
printf '%s\n' "${sources[@]}" \
  | xargs -P "${jobs}" -n 8 clang-tidy -p "${build_dir}" --quiet \
  || status=$?

if [[ "${status}" -ne 0 ]]; then
  echo "run_clang_tidy.sh: FAILED (see diagnostics above)" >&2
  exit 1
fi
echo "run_clang_tidy.sh: OK"
