#!/usr/bin/env bash
# Downloads the paper's public SNAP evaluation datasets (Table 2) into the
# bench dataset cache, uncompressed, where bench_ingest (and any bench
# pointed at real data) picks them up automatically:
#
#   ${TRUSS_BENCH_CACHE_DIR:-$TMPDIR/truss_bench_cache}/snap/<name>.txt
#
# Usage:
#   scripts/fetch_snap.sh [--dir DIR] [--all] [NAME...]
#
#   --dir DIR   override the target directory
#   --all       fetch every dataset, including the ~1 GB soc-LiveJournal1
#   NAME...     explicit dataset names (see DATASETS below) override both
#
# Default set: the small/medium graphs. LiveJournal is behind --all because
# of its size. Yahoo and BTC are not on snap.stanford.edu and have no
# public mirror; the registry stand-ins cover them.
set -euo pipefail

BASE_URL="https://snap.stanford.edu/data"

# name=archive pairs; ${name}.txt is the uncompressed target.
declare -A DATASETS=(
  [p2p-Gnutella31]="p2p-Gnutella31.txt.gz"
  [cit-HepPh]="cit-HepPh.txt.gz"
  [amazon0601]="amazon0601.txt.gz"
  [wiki-Talk]="wiki-Talk.txt.gz"
  [as-skitter]="as-skitter.txt.gz"
  [soc-LiveJournal1]="soc-LiveJournal1.txt.gz"
)
QUICK_SET=(p2p-Gnutella31 cit-HepPh amazon0601 wiki-Talk as-skitter)
ALL_SET=(p2p-Gnutella31 cit-HepPh amazon0601 wiki-Talk as-skitter
         soc-LiveJournal1)

TARGET_DIR="${TRUSS_BENCH_CACHE_DIR:-${TMPDIR:-/tmp}/truss_bench_cache}/snap"
FETCH=()
USE_ALL=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --dir) TARGET_DIR="$2"; shift 2 ;;
    --all) USE_ALL=1; shift ;;
    -h|--help) sed -n '2,17p' "$0"; exit 0 ;;
    *)
      if [[ -z "${DATASETS[$1]:-}" ]]; then
        echo "unknown dataset: $1 (known: ${!DATASETS[*]})" >&2
        exit 2
      fi
      FETCH+=("$1"); shift ;;
  esac
done
if [[ ${#FETCH[@]} -eq 0 ]]; then
  if [[ ${USE_ALL} -eq 1 ]]; then FETCH=("${ALL_SET[@]}");
  else FETCH=("${QUICK_SET[@]}"); fi
fi

if command -v curl >/dev/null; then
  download() { curl -fL --retry 3 -o "$1" "$2"; }
elif command -v wget >/dev/null; then
  download() { wget -O "$1" "$2"; }
else
  echo "error: neither curl nor wget is available" >&2
  exit 1
fi

mkdir -p "${TARGET_DIR}"
for name in "${FETCH[@]}"; do
  txt="${TARGET_DIR}/${name}.txt"
  if [[ -s "${txt}" ]]; then
    echo "[have] ${name}"
    continue
  fi
  archive="${TARGET_DIR}/${DATASETS[$name]}"
  echo "[get ] ${BASE_URL}/${DATASETS[$name]}"
  download "${archive}" "${BASE_URL}/${DATASETS[$name]}"
  # -k keeps the archive until the .txt is in place; a partial gunzip
  # leaves no half-written target behind.
  gunzip -kf "${archive}"
  rm -f "${archive}"
  echo "[ok  ] ${txt} ($(du -h "${txt}" | cut -f1))"
done

echo
echo "datasets in ${TARGET_DIR}:"
ls -lh "${TARGET_DIR}"/*.txt 2>/dev/null || true
