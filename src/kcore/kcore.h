// k-core decomposition (Seidman [28]) via the O(m) bin-sort peeling of
// Batagelj & Zaversnik [5].
//
// The paper uses k-core both conceptually (a k-truss is a (k-1)-core, §1)
// and experimentally (§7.4 compares the kmax-truss with the cmax-core,
// Table 6). The sorted-bin structure here is also the blueprint for the
// improved truss decomposition's sorted edge array (Algorithm 2).

#ifndef TRUSS_KCORE_KCORE_H_
#define TRUSS_KCORE_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/subgraph.h"

namespace truss {

/// Core numbers of every vertex plus the maximum core number cmax.
struct CoreDecomposition {
  /// core[v] = largest k such that v belongs to the k-core.
  std::vector<uint32_t> core;
  uint32_t cmax = 0;

  /// Vertices of the k-core (core number ≥ k).
  std::vector<VertexId> CoreVertices(uint32_t k) const;
};

/// Computes all core numbers in O(m) time / O(n) extra space.
CoreDecomposition DecomposeCores(const Graph& g);

/// Extracts the k-core as an induced subgraph with parent mappings.
Subgraph ExtractKCore(const Graph& g, const CoreDecomposition& cores,
                      uint32_t k);

/// Definition-level oracle used by tests: iteratively deletes vertices of
/// degree < k and returns the surviving vertex set.
std::vector<VertexId> NaiveKCoreVertices(const Graph& g, uint32_t k);

}  // namespace truss

#endif  // TRUSS_KCORE_KCORE_H_
