#include "kcore/kcore.h"

#include <algorithm>

namespace truss {

std::vector<VertexId> CoreDecomposition::CoreVertices(uint32_t k) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < core.size(); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

CoreDecomposition DecomposeCores(const Graph& g) {
  const VertexId n = g.num_vertices();
  CoreDecomposition result;
  result.core.assign(n, 0);
  if (n == 0) return result;

  // Bin-sort vertices by degree: vert[] holds vertices ordered by current
  // degree, pos[] the position of each vertex, bin_start[d] the first
  // position of degree-d vertices.
  uint32_t max_deg = 0;
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }

  std::vector<uint64_t> bin_start(max_deg + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin_start[deg[v] + 1];
  for (uint32_t d = 1; d <= max_deg + 1; ++d) bin_start[d] += bin_start[d - 1];

  std::vector<VertexId> vert(n);
  std::vector<uint64_t> pos(n);
  {
    std::vector<uint64_t> cursor(bin_start.begin(), bin_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]]++;
      vert[pos[v]] = v;
    }
  }

  for (uint64_t i = 0; i < n; ++i) {
    const VertexId v = vert[i];
    result.core[v] = deg[v];
    result.cmax = std::max(result.cmax, deg[v]);
    for (const AdjEntry& a : g.neighbors(v)) {
      const VertexId u = a.neighbor;
      if (deg[u] <= deg[v]) continue;  // already peeled or peels at same level
      // Swap u with the first vertex of its bin, shrink the bin by one.
      const uint32_t du = deg[u];
      const uint64_t pu = pos[u];
      const uint64_t pw = bin_start[du];
      const VertexId w = vert[pw];
      if (u != w) {
        std::swap(vert[pu], vert[pw]);
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin_start[du];
      --deg[u];
    }
  }
  return result;
}

Subgraph ExtractKCore(const Graph& g, const CoreDecomposition& cores,
                      uint32_t k) {
  const std::vector<VertexId> verts = cores.CoreVertices(k);
  return InducedSubgraph(g, verts);
}

std::vector<VertexId> NaiveKCoreVertices(const Graph& g, uint32_t k) {
  const VertexId n = g.num_vertices();
  std::vector<bool> alive(n, true);
  std::vector<uint32_t> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);

  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && deg[v] < k) {
        alive[v] = false;
        changed = true;
        for (const AdjEntry& a : g.neighbors(v)) {
          if (alive[a.neighbor]) --deg[a.neighbor];
        }
      }
    }
  }
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) out.push_back(v);
  }
  return out;
}

}  // namespace truss
