// TD-inmem+: the paper's improved in-memory truss decomposition
// (Algorithm 2, §3.2) — the primary contribution for in-memory graphs.
//
// After an O(m^1.5) support initialization, edges are kept bin-sorted by
// current support (the sorted edge array of [5]). The peel repeatedly takes
// the lowest-support edge e = (u, v); walking only the *smaller* adjacency
// list and testing the third edge with an O(1) expected hash lookup bounds
// the whole decomposition by O(m^1.5) (Theorem 1) instead of Algorithm 1's
// O(Σ deg²).

#ifndef TRUSS_TRUSS_IMPROVED_H_
#define TRUSS_TRUSS_IMPROVED_H_

#include "common/memory_tracker.h"
#include "graph/graph.h"
#include "truss/result.h"

namespace truss {

/// Runs Algorithm 2. `tracker` (optional) records peak structure memory.
/// `threads` parallelizes the support initialization (the peel itself is
/// inherently sequential); results are identical for every thread count.
TrussDecompositionResult ImprovedTrussDecomposition(
    const Graph& g, MemoryTracker* tracker = nullptr, uint32_t threads = 1);

/// Variant used by the external algorithms (§5, §6): peels `g` with the
/// supports given in `sup` (consumed/modified in place) and returns truss
/// numbers. This lets local computations seed supports themselves.
TrussDecompositionResult PeelWithSupports(const Graph& g,
                                          std::vector<uint32_t> sup);

}  // namespace truss

#endif  // TRUSS_TRUSS_IMPROVED_H_
