// TD-inmem+: the paper's improved in-memory truss decomposition
// (Algorithm 2, §3.2) — the primary contribution for in-memory graphs.
//
// After an O(m^1.5) support initialization, edges are kept bin-sorted by
// current support (the sorted edge array of [5]). The peel repeatedly takes
// the lowest-support edge e = (u, v) and enumerates its triangles by
// sorted-adjacency intersection (ForEachCommonNeighbor): a two-pointer
// merge of nb(u) and nb(v) that gallops when the degrees are skewed, so
// the hot loop does no hashing at all. The paper's hash table for the
// "(v, w) ∈ E" membership test (Step 8) survives only in the external
// algorithms, which genuinely test subgraph membership; here both remaining
// triangle edge ids fall out of the adjacency entries directly.

#ifndef TRUSS_TRUSS_IMPROVED_H_
#define TRUSS_TRUSS_IMPROVED_H_

#include "common/memory_tracker.h"
#include "graph/graph.h"
#include "truss/result.h"

namespace truss {

/// Runs Algorithm 2. `tracker` (optional) records peak structure memory.
/// `threads` parallelizes the support initialization (this peel is
/// inherently sequential; see truss/parallel_peel.h for the
/// level-synchronous parallel variant); results are identical for every
/// thread count. `timings` (optional) receives the support/peel phase
/// split.
TrussDecompositionResult ImprovedTrussDecomposition(
    const Graph& g, MemoryTracker* tracker = nullptr, uint32_t threads = 1,
    PhaseTimings* timings = nullptr);

/// Variant used by the external algorithms (§5, §6): peels `g` with the
/// supports given in `sup` (consumed/modified in place) and returns truss
/// numbers. This lets local computations seed supports themselves.
TrussDecompositionResult PeelWithSupports(const Graph& g,
                                          std::vector<uint32_t> sup);

}  // namespace truss

#endif  // TRUSS_TRUSS_IMPROVED_H_
