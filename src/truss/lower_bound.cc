#include "truss/lower_bound.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "io/edge_records.h"
#include "io/external_sort.h"
#include "triangle/triangle.h"
#include "truss/external_util.h"
#include "truss/improved.h"

namespace truss {

namespace {

// Called once per edge in the iteration where it becomes internal, with its
// exact support in the original graph and its best truss lower bound.
using InternalEdgeSink = std::function<void(
    const io::GEdgeRecord& rec, uint32_t exact_sup, uint32_t phi)>;

uint64_t CountInternalEdges(io::Env& env, const std::string& file,
                            const std::vector<uint32_t>& part_of) {
  auto reader = env.OpenReader(file);
  // An open failure (e.g. a crashed fault env) is recorded in the env
  // health; returning 0 lets the caller's health gate report it as a typed
  // error instead of aborting the process.
  if (!reader.ok()) return 0;
  uint64_t internal = 0;
  io::GEdgeRecord rec;
  while (reader.value()->ReadRecord(&rec)) {
    if (part_of[rec.u] == part_of[rec.v]) ++internal;
  }
  return internal;
}

// Last-resort partition guaranteeing progress: one part holds the highest-
// degree vertex together with its whole neighborhood (all its edges become
// internal); the remaining vertices are packed sequentially.
partition::PartitionResult ForcedPartition(io::Env& env,
                                           const std::string& file,
                                           const std::vector<uint32_t>& degrees,
                                           uint64_t max_weight) {
  VertexId vmax = 0;
  for (VertexId v = 0; v < degrees.size(); ++v) {
    if (degrees[v] > degrees[vmax]) vmax = v;
  }
  std::vector<uint8_t> in_first(degrees.size(), 0);
  in_first[vmax] = 1;
  {
    auto reader = env.OpenReader(file);
    // Open failures surface through the env health at the caller; a partial
    // neighborhood only weakens the forced part, never corrupts it.
    if (reader.ok()) {
      io::GEdgeRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        if (rec.u == vmax) in_first[rec.v] = 1;
        if (rec.v == vmax) in_first[rec.u] = 1;
      }
    }
  }

  partition::PartitionResult result;
  result.part_of.assign(degrees.size(), partition::PartitionResult::kNoPart);
  result.parts.emplace_back();
  for (VertexId v = 0; v < degrees.size(); ++v) {
    if (in_first[v] != 0 && degrees[v] > 0) {
      result.parts[0].push_back(v);
      result.part_of[v] = 0;
    }
  }
  // Pack the rest sequentially under the weight cap.
  std::vector<VertexId> current;
  uint64_t weight = 0;
  auto flush = [&]() {
    if (current.empty()) return;
    for (const VertexId v : current) {
      result.part_of[v] = static_cast<uint32_t>(result.parts.size());
    }
    result.parts.push_back(std::move(current));
    current.clear();
    weight = 0;
  };
  for (VertexId v = 0; v < degrees.size(); ++v) {
    if (degrees[v] == 0 || in_first[v] != 0) continue;
    const uint64_t w = degrees[v] + 1;
    if (!current.empty() && weight + w > max_weight) flush();
    current.push_back(v);
    weight += w;
  }
  flush();
  return result;
}

// One full Algorithm 3 run over a consumable GEdgeRecord file. Shared by
// RunLowerBounding (classification sinks) and ComputeExactSupports (pure
// support sink). See the header for the crediting invariant.
Status RunBoundingDriver(io::Env& env, std::string g_file, VertexId n,
                         const ExternalConfig& cfg, bool compute_phi,
                         const InternalEdgeSink& sink,
                         uint32_t* iterations_out, uint64_t* parts_out) {
  const uint64_t max_weight = BudgetToWeight(cfg.memory_budget_bytes);
  uint32_t iteration = 0;
  uint64_t parts_processed = 0;

  while (true) {
    if (cfg.hooks.ShouldCancel()) {
      return Status::Cancelled("lower bounding cancelled at iteration " +
                               std::to_string(iteration));
    }
    std::vector<uint32_t> degrees;
    uint64_t m_cur = 0;
    TRUSS_RETURN_IF_ERROR(
        ScanDegrees<io::GEdgeRecord>(env, g_file, n, &degrees, &m_cur));
    if (m_cur == 0) break;
    cfg.hooks.Report("lower_bound", 0, iteration, 0);

    // Partition; retry with fresh randomized orders if no edge would become
    // internal (possible for adversarial layouts), then force progress.
    partition::PartitionResult part;
    uint64_t internal_edges = 0;
    for (int attempt = 0;; ++attempt) {
      partition::Options opts;
      opts.max_part_weight = max_weight;
      if (attempt == 0) {
        opts.strategy = cfg.strategy;
        opts.seed = cfg.seed + iteration;
      } else {
        opts.strategy = partition::Strategy::kRandomized;
        opts.seed = cfg.seed + iteration * 1000003ull + attempt;
      }
      part = partition::PartitionVertices(
          degrees, MakeEdgeScanFn<io::GEdgeRecord>(env, g_file), opts);
      internal_edges = CountInternalEdges(env, g_file, part.part_of);
      // The scan closures above return no status; a failed read surfaces
      // through the env health instead, and must not be mistaken for an
      // adversarial layout (zero internal edges).
      TRUSS_RETURN_IF_ERROR(env.health());
      if (internal_edges > 0) break;
      if (attempt >= 8) {
        part = ForcedPartition(env, g_file, degrees, max_weight);
        internal_edges = CountInternalEdges(env, g_file, part.part_of);
        TRUSS_RETURN_IF_ERROR(env.health());
        TRUSS_CHECK_GT(internal_edges, 0u);
        break;
      }
    }
    const size_t p = part.parts.size();

    // Distribute each edge to the part(s) of its endpoints; a part's bucket
    // is exactly ENS(P_i), and buckets stay (u,v)-sorted because the source
    // is sorted.
    std::vector<std::string> bucket_names(p);
    {
      std::vector<std::unique_ptr<io::BlockWriter>> writers(p);
      for (size_t i = 0; i < p; ++i) {
        bucket_names[i] = env.TempName("lb_bucket");
        auto w = env.OpenWriter(bucket_names[i]);
        TRUSS_RETURN_IF_ERROR(w.status());
        writers[i] = w.MoveValue();
      }
      auto reader = env.OpenReader(g_file);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GEdgeRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        const uint32_t pa = part.part_of[rec.u];
        const uint32_t pb = part.part_of[rec.v];
        writers[pa]->WriteRecord(rec);
        if (pb != pa) writers[pb]->WriteRecord(rec);
      }
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
      for (auto& w : writers) TRUSS_RETURN_IF_ERROR(w->Close());
    }

    const std::string delta_file = env.TempName("lb_delta");
    uint64_t deltas_written = 0;
    {
      auto delta_writer_res = env.OpenWriter(delta_file);
      TRUSS_RETURN_IF_ERROR(delta_writer_res.status());
      auto delta_writer = delta_writer_res.MoveValue();

      for (size_t i = 0; i < p; ++i) {
        auto records_res =
            ReadAllRecords<io::GEdgeRecord>(env, bucket_names[i]);
        TRUSS_RETURN_IF_ERROR_RESULT(records_res);
        const std::vector<io::GEdgeRecord> records = records_res.MoveValue();
        TRUSS_RETURN_IF_ERROR(env.DeleteFile(bucket_names[i]));
        if (records.empty()) continue;
        ++parts_processed;

        const LocalGraphView local(records);
        const Graph& h = local.graph();
        std::vector<uint8_t> is_internal(h.num_vertices(), 0);
        for (VertexId lv = 0; lv < h.num_vertices(); ++lv) {
          is_internal[lv] = part.part_of[local.ToOrig(lv)] == i ? 1 : 0;
        }

        // local_sup: all triangles of H (drives ϕ(e,H) and, for internal
        // edges, tops up the accumulated exact support). new_sup: triangles
        // first fully contained here (≥2 internal corners) — the credit
        // spilled to edges that are still external.
        std::vector<uint32_t> local_sup(h.num_edges(), 0);
        std::vector<uint32_t> new_sup(h.num_edges(), 0);
        ForEachTriangle(h, [&](VertexId a, VertexId b, VertexId c, EdgeId e1,
                               EdgeId e2, EdgeId e3) {
          ++local_sup[e1];
          ++local_sup[e2];
          ++local_sup[e3];
          if (is_internal[a] + is_internal[b] + is_internal[c] >= 2) {
            ++new_sup[e1];
            ++new_sup[e2];
            ++new_sup[e3];
          }
        });

        TrussDecompositionResult local_truss;
        if (compute_phi) local_truss = PeelWithSupports(h, local_sup);

        for (EdgeId le = 0; le < h.num_edges(); ++le) {
          const io::GEdgeRecord& rec = records[le];
          const Edge e = h.edge(le);
          const uint32_t phi_local =
              compute_phi ? local_truss.truss_number[le] : 2;
          if (is_internal[e.u] != 0 && is_internal[e.v] != 0) {
            sink(rec, rec.sup_acc + local_sup[le],
                 std::max(rec.phi_lb, phi_local));
          } else if (new_sup[le] > 0 || phi_local > rec.phi_lb) {
            delta_writer->WriteRecord(
                io::DeltaRecord{rec.u, rec.v, new_sup[le], phi_local});
            ++deltas_written;
          }
        }
      }
      TRUSS_RETURN_IF_ERROR(delta_writer->Close());
    }

    // Merge deltas into the surviving cross-part edges to form the next G.
    std::string sorted_delta = delta_file;
    if (deltas_written > 0) {
      sorted_delta = env.TempName("lb_delta_sorted");
      TRUSS_RETURN_IF_ERROR(
          (io::ExternalSort<io::DeltaRecord, io::ByEdgeLess>(
              env, delta_file, sorted_delta, io::ByEdgeLess{},
              cfg.memory_budget_bytes)));
    }
    const std::string next_g = env.TempName("lb_g");
    {
      auto g_reader = env.OpenReader(g_file);
      TRUSS_RETURN_IF_ERROR(g_reader.status());
      auto d_reader = env.OpenReader(sorted_delta);
      TRUSS_RETURN_IF_ERROR(d_reader.status());
      auto out = env.OpenWriter(next_g);
      TRUSS_RETURN_IF_ERROR(out.status());

      io::DeltaRecord d;
      bool have_d = d_reader.value()->ReadRecord(&d);
      io::GEdgeRecord rec;
      const io::ByEdgeLess less;
      while (g_reader.value()->ReadRecord(&rec)) {
        if (part.part_of[rec.u] == part.part_of[rec.v]) continue;  // consumed
        // Deltas are only produced for surviving edges, so the merge heads
        // can never run ahead of the graph cursor.
        TRUSS_CHECK(!have_d || !less(d, rec));
        while (have_d && d.u == rec.u && d.v == rec.v) {
          rec.sup_acc += d.sup_delta;
          rec.phi_lb = std::max(rec.phi_lb, d.phi_cand);
          have_d = d_reader.value()->ReadRecord(&d);
        }
        out.value()->WriteRecord(rec);
      }
      // A fault-truncated graph stream would leave deltas pending; report it
      // as a stream error, not as a violated merge invariant.
      TRUSS_RETURN_IF_ERROR(g_reader.value()->status());
      TRUSS_RETURN_IF_ERROR(d_reader.value()->status());
      TRUSS_CHECK(!have_d);
      TRUSS_RETURN_IF_ERROR(out.value()->Close());
    }
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(g_file));
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(delta_file));
    if (sorted_delta != delta_file) {
      TRUSS_RETURN_IF_ERROR(env.DeleteFile(sorted_delta));
    }
    g_file = next_g;
    ++iteration;
  }

  TRUSS_RETURN_IF_ERROR(env.DeleteFile(g_file));
  *iterations_out = iteration;
  *parts_out = parts_processed;
  return Status::OK();
}

}  // namespace

Result<LowerBoundingOutput> RunLowerBounding(io::Env& env,
                                             const std::string& graph_file,
                                             VertexId num_vertices,
                                             const ExternalConfig& config,
                                             BoundMode mode,
                                             io::BlockWriter* class_out) {
  LowerBoundingOutput out;

  const std::string gnew_unsorted = env.TempName("gnew_unsorted");
  auto gnew_writer_res = env.OpenWriter(gnew_unsorted);
  TRUSS_RETURN_IF_ERROR(gnew_writer_res.status());
  auto gnew_writer = gnew_writer_res.MoveValue();

  const auto sink = [&](const io::GEdgeRecord& rec, uint32_t exact_sup,
                        uint32_t phi) {
    if (exact_sup == 0) {
      // sup(e, G) = 0 ⟺ e is in no triangle of G ⟺ ϕ(e) = 2.
      class_out->WriteRecord(io::ClassRecord{rec.u, rec.v, 2});
      ++out.phi2_edges;
    } else {
      io::GnewRecord g;
      g.u = rec.u;
      g.v = rec.v;
      g.label = mode == BoundMode::kPhiLowerBound ? phi : exact_sup;
      gnew_writer->WriteRecord(g);
      ++out.gnew_edges;
    }
  };

  TRUSS_RETURN_IF_ERROR(RunBoundingDriver(
      env, graph_file, num_vertices, config,
      /*compute_phi=*/mode == BoundMode::kPhiLowerBound, sink,
      &out.iterations, &out.parts_processed));
  TRUSS_RETURN_IF_ERROR(gnew_writer->Close());

  out.gnew_file = env.TempName("gnew");
  TRUSS_RETURN_IF_ERROR((io::ExternalSort<io::GnewRecord, io::ByEdgeLess>(
      env, gnew_unsorted, out.gnew_file, io::ByEdgeLess{},
      config.memory_budget_bytes)));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(gnew_unsorted));
  return out;
}

Result<std::string> ComputeExactSupports(io::Env& env,
                                         const std::string& edge_file,
                                         VertexId num_vertices,
                                         const ExternalConfig& config) {
  // Convert the caller's GnewRecord file into a consumable working copy.
  const std::string work = env.TempName("ces_work");
  {
    auto reader = env.OpenReader(edge_file);
    TRUSS_RETURN_IF_ERROR(reader.status());
    auto writer = env.OpenWriter(work);
    TRUSS_RETURN_IF_ERROR(writer.status());
    io::GnewRecord in;
    while (reader.value()->ReadRecord(&in)) {
      writer.value()->WriteRecord(io::GEdgeRecord{in.u, in.v, 0, 2});
    }
    TRUSS_RETURN_IF_ERROR(reader.value()->status());
    TRUSS_RETURN_IF_ERROR(writer.value()->Close());
  }

  const std::string unsorted = env.TempName("ces_unsorted");
  {
    auto writer_res = env.OpenWriter(unsorted);
    TRUSS_RETURN_IF_ERROR(writer_res.status());
    auto writer = writer_res.MoveValue();
    const auto sink = [&](const io::GEdgeRecord& rec, uint32_t exact_sup,
                          uint32_t) {
      writer->WriteRecord(io::GEdgeRecord{rec.u, rec.v, exact_sup, 2});
    };
    uint32_t iterations = 0;
    uint64_t parts = 0;
    TRUSS_RETURN_IF_ERROR(RunBoundingDriver(env, work, num_vertices, config,
                                            /*compute_phi=*/false, sink,
                                            &iterations, &parts));
    TRUSS_RETURN_IF_ERROR(writer->Close());
  }

  const std::string sorted = env.TempName("ces_sorted");
  TRUSS_RETURN_IF_ERROR((io::ExternalSort<io::GEdgeRecord, io::ByEdgeLess>(
      env, unsorted, sorted, io::ByEdgeLess{}, config.memory_budget_bytes)));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(unsorted));
  return sorted;
}

}  // namespace truss
