// TD-topdown: the I/O-efficient top-down truss decomposition
// (paper Procedure 6 + Algorithm 7 + Procedure 8, and Procedure 10 when a
// candidate subgraph exceeds the memory budget).
//
// Designed for applications that only need the top-t k-classes — the heart
// of the network (§6). Stage 1 reuses Algorithm 3 but stores the exact
// support of every edge instead of a lower bound; stage 2 (UpperBounding)
// derives ψ(e) = min(sup(e), x_u, x_v) + 2 from per-vertex h-index profiles
// over incident supports; stage 3 walks k downward from max ψ, peeling the
// candidate subgraph H = NS(U_k) with *qualified* supports (DESIGN.md §3.2)
// and pruning classified edges that no longer share a triangle with any
// unclassified edge (Procedure 8, Steps 7-9).

#ifndef TRUSS_TRUSS_TOP_DOWN_H_
#define TRUSS_TRUSS_TOP_DOWN_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "io/edge_records.h"
#include "io/env.h"
#include "truss/external.h"
#include "truss/result.h"

namespace truss {

/// Runs the top-down decomposition over `graph_file` (a (u,v)-sorted
/// GEdgeRecord file; consumed). With config.top_t = -1 all classes are
/// computed; with top_t = t ≥ 1 the walk stops after the t highest
/// non-empty classes. Φ2 records are always emitted (they fall out of
/// stage 1 for free). ClassRecords are written to `classes_out`.
TRUSS_NODISCARD Result<ExternalStats> TopDownDecomposeFile(io::Env& env,
                                           const std::string& graph_file,
                                           VertexId num_vertices,
                                           const ExternalConfig& config,
                                           const std::string& classes_out);

/// Convenience wrapper for full decompositions (config.top_t must be -1):
/// returns the truss numbers projected onto `g`'s edge ids.
TRUSS_NODISCARD Result<TrussDecompositionResult> TopDownDecompose(
    io::Env& env, const Graph& g, const ExternalConfig& config,
    ExternalStats* stats = nullptr);

/// Convenience wrapper for top-t queries: returns the raw class records
/// (the t highest classes, plus Φ2).
TRUSS_NODISCARD Result<std::vector<io::ClassRecord>> TopDownTopClasses(
    io::Env& env, const Graph& g, const ExternalConfig& config,
    ExternalStats* stats = nullptr);

}  // namespace truss

#endif  // TRUSS_TRUSS_TOP_DOWN_H_
