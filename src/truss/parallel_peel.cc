#include "truss/parallel_peel.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "graph/validate.h"
#include "triangle/triangle.h"

namespace truss {

namespace {

/// Decrements `sup` by one unless it already sits at the level floor — the
/// CAS loop never lets the value drop below `level`, so concurrent
/// decrements from many destroyed triangles cannot run an edge's support
/// past the frontier threshold. Exactly one caller observes the
/// level+1 → level transition and enqueues the edge for the next
/// sub-frontier.
void DecrementClamped(std::atomic<uint32_t>& sup, uint32_t level, EdgeId e,
                      std::vector<EdgeId>& next_queue) {
  // Relaxed throughout. The only cross-thread agreement this loop needs
  // is on the support VALUE, which CAS atomicity alone provides — the
  // read-modify-write chain on one atomic is totally ordered even under
  // relaxed ([atomics.order] note on RMW coherence), so exactly one
  // thread observes the level+1 → level transition and enqueues e. No
  // other memory is published through `sup`: next_queue is shard-private,
  // and the frontier arrays the next sub-level reads are published by the
  // RunShards join that ends this one (the release/acquire edge lives in
  // common/parallel.h, not here).
  //
  // ordering: relaxed — value-only CAS chain; RMW coherence decides the
  // unique level+1 → level winner (full argument above).
  uint32_t cur = sup.load(std::memory_order_relaxed);
  while (cur > level) {
    // ordering: relaxed — same RMW-coherence argument as the load above.
    if (sup.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
      if (cur == level + 1) next_queue.push_back(e);
      return;
    }
  }
}

/// Below this many work items a fork-join pass costs more in thread
/// create/join than the loop body itself; run such passes on the calling
/// thread. Long peel cascades produce many near-empty sub-frontiers, so
/// the cutoff matters for multi-thread scaling, not just startup.
constexpr size_t kSequentialCutoff = 4096;

uint32_t ClampThreads(uint32_t threads, size_t items) {
  return items < kSequentialCutoff ? 1 : threads;
}

}  // namespace

Result<TrussDecompositionResult> ParallelTrussDecomposition(
    const Graph& g, MemoryTracker* tracker, uint32_t threads,
    const ExecutionHooks* hooks, PhaseTimings* timings) {
  graph::DCheckValidCsr(g);
  const EdgeId m = g.num_edges();
  TrussDecompositionResult result;
  result.truss_number.assign(m, 0);
  if (m == 0) return result;

  const WallTimer support_timer;
  std::vector<uint32_t> init_sup = ComputeEdgeSupports(g, threads);
  if (timings != nullptr) timings->support_seconds = support_timer.Seconds();

  const WallTimer peel_timer;

  // Atomic working copy of the supports (the peel decrements them
  // concurrently), plus the first non-empty level, found during the copy.
  std::vector<std::atomic<uint32_t>> sup(m);
  const uint32_t copy_threads = ClampThreads(threads, m);
  const uint32_t copy_shards = EffectiveThreads(copy_threads, m);
  std::vector<uint32_t> shard_min(copy_shards,
                                  std::numeric_limits<uint32_t>::max());
  ParallelFor(copy_threads, m,
              [&](uint64_t begin, uint64_t end, uint32_t shard) {
                uint32_t local_min = std::numeric_limits<uint32_t>::max();
                for (uint64_t i = begin; i < end; ++i) {
                  // ordering: relaxed — each index is written by exactly
                  // one shard, and the ParallelFor join publishes the
                  // whole array to every later reader.
                  sup[i].store(init_sup[i], std::memory_order_relaxed);
                  local_min = std::min(local_min, init_sup[i]);
                }
                shard_min[shard] = local_min;
              });
  uint32_t level = *std::min_element(shard_min.begin(), shard_min.end());
  init_sup = {};

  ByteFlags processed(m);
  ByteFlags in_frontier(m);
  std::vector<EdgeId> live(m);
  std::iota(live.begin(), live.end(), EdgeId{0});

  const ScopedMemory mem(
      tracker,
      g.SizeBytes() + uint64_t{m} * sizeof(uint32_t) /* truss numbers */ +
          uint64_t{m} * sizeof(std::atomic<uint32_t>) /* supports */ +
          processed.SizeBytes() + in_frontier.SizeBytes() +
          // Worst-case transient peel arrays: the live array, the scan's
          // per-shard partitions plus their merged copies, the frontier /
          // next-queue buffers (each bounded by m edge ids), and the
          // sub-level weight prefix (8 bytes per frontier edge).
          4 * uint64_t{m} * sizeof(EdgeId) +
          uint64_t{m} * sizeof(uint64_t));

  uint64_t done = 0;
  std::vector<EdgeId> curr, next, keep;
  std::vector<uint64_t> weights;

  while (done < m) {
    if (hooks != nullptr && hooks->ShouldCancel()) {
      return Status::Cancelled("parallel peel cancelled at level " +
                               std::to_string(level));
    }

    // Scan/compact the live edges: pull the level-l frontier, keep the
    // rest, drop edges already peeled mid-level, and record the minimum
    // kept support so empty levels are skipped in one jump. Per-shard
    // buffers merged in shard order keep the pass deterministic.
    const uint32_t scan_threads = ClampThreads(threads, live.size());
    const uint32_t shards = EffectiveThreads(scan_threads, live.size());
    std::vector<std::vector<EdgeId>> curr_shard(shards), keep_shard(shards);
    std::vector<uint32_t> min_kept_shard(
        shards, std::numeric_limits<uint32_t>::max());
    ParallelFor(scan_threads, live.size(),
                [&](uint64_t begin, uint64_t end, uint32_t shard) {
                  std::vector<EdgeId>& local_curr = curr_shard[shard];
                  std::vector<EdgeId>& local_keep = keep_shard[shard];
                  uint32_t local_min = std::numeric_limits<uint32_t>::max();
                  for (uint64_t i = begin; i < end; ++i) {
                    const EdgeId e = live[i];
                    if (processed.Test(e)) continue;
                    // ordering: relaxed — the sub-levels that last wrote
                    // sup[e] all joined before this scan started, so the
                    // value is current; no shard writes supports during
                    // the scan.
                    const uint32_t s = sup[e].load(std::memory_order_relaxed);
                    if (s <= level) {
                      local_curr.push_back(e);
                    } else {
                      local_keep.push_back(e);
                      local_min = std::min(local_min, s);
                    }
                  }
                  min_kept_shard[shard] = local_min;
                });
    curr.clear();
    keep.clear();
    for (uint32_t s = 0; s < shards; ++s) {
      curr.insert(curr.end(), curr_shard[s].begin(), curr_shard[s].end());
      keep.insert(keep.end(), keep_shard[s].begin(), keep_shard[s].end());
    }
    const uint32_t min_kept =
        *std::min_element(min_kept_shard.begin(), min_kept_shard.end());
    live.swap(keep);

    if (curr.empty()) {
      // Nothing peels at this level; every unprocessed support is current
      // again (no sub-level ran since the last scan), so jump straight to
      // the next populated one.
      level = min_kept;
      continue;
    }

    // Sub-levels: peel the frontier, collecting edges that fall to the
    // floor into the next one, until the level drains. Hooks are polled
    // per sub-level: on sparse graphs one low level can cascade through
    // nearly every edge, and a per-level poll would leave that whole run
    // uncancellable and silent.
    while (!curr.empty()) {
      if (hooks != nullptr && hooks->ShouldCancel()) {
        return Status::Cancelled("parallel peel cancelled at level " +
                                 std::to_string(level));
      }
      // Degree-balanced frontier shards: an edge's triangle work is
      // deg(u) + deg(v), so equal-width ranges would serialize behind hub
      // edges. The frontier flags ride along in the same (sequential)
      // prefix pass.
      weights.assign(curr.size() + 1, 0);
      for (size_t i = 0; i < curr.size(); ++i) {
        const Edge e = g.edge(curr[i]);
        weights[i + 1] = weights[i] + g.degree(e.u) + g.degree(e.v) + 1;
        in_frontier.Set(curr[i]);
      }
      // Clamp on total triangle work, not frontier size: a handful of hub
      // edges can still be worth sharding.
      const uint32_t tri_threads = ClampThreads(threads, weights.back());
      const uint32_t fshards = EffectiveThreads(tri_threads, curr.size());
      const std::vector<uint64_t> bounds = SplitBalanced(weights, fshards);
      // Per-thread next-frontier queues: next_shard[s] is written only by
      // shard s (no locks needed — disjoint slots, published by the
      // RunShards join below; see common/parallel.h). The scheduling-
      // dependent arrival order is erased afterwards by the sorted merge.
      std::vector<std::vector<EdgeId>> next_shard(fshards);
      RunShards(fshards, [&](uint32_t shard) {
        std::vector<EdgeId>& local_next = next_shard[shard];
        for (uint64_t i = bounds[shard]; i < bounds[shard + 1]; ++i) {
          const EdgeId eid = curr[i];
          const Edge e = g.edge(eid);
          ForEachCommonNeighbor(
              g, e.u, e.v, [&](VertexId, EdgeId uw, EdgeId vw) {
                if (processed.Test(uw) || processed.Test(vw)) return;
                const bool fu = in_frontier.Test(uw);
                const bool fv = in_frontier.Test(vw);
                if (fu && fv) return;  // whole triangle peels right now
                if (fu) {
                  // △ shared with frontier peer uw: the lower edge id
                  // settles the third edge, exactly once.
                  if (eid < uw) DecrementClamped(sup[vw], level, vw,
                                                local_next);
                } else if (fv) {
                  if (eid < vw) DecrementClamped(sup[uw], level, uw,
                                                local_next);
                } else {
                  DecrementClamped(sup[uw], level, uw, local_next);
                  DecrementClamped(sup[vw], level, vw, local_next);
                }
              });
        }
      });

      // Retire the sub-level: truss numbers, processed marks, frontier
      // flags — disjoint indices, so the writes shard safely.
      ParallelFor(ClampThreads(threads, curr.size()), curr.size(),
                  [&](uint64_t begin, uint64_t end, uint32_t) {
                    for (uint64_t i = begin; i < end; ++i) {
                      const EdgeId e = curr[i];
                      result.truss_number[e] = level + 2;
                      processed.Set(e);
                      in_frontier.Clear(e);
                    }
                  });
      done += curr.size();
      if (hooks != nullptr) hooks->Report("peel", level + 2, done, m);

      // Deterministic next frontier: which thread observed a support
      // transition is scheduling-dependent, the sorted union is not.
      next.clear();
      for (const std::vector<EdgeId>& q : next_shard) {
        next.insert(next.end(), q.begin(), q.end());
      }
      std::sort(next.begin(), next.end());
      curr.swap(next);
    }

    // min_kept may be stale (this level's sub-levels decremented supports
    // after the scan), so advance by one and let an empty scan jump.
    ++level;
  }

  result.RecomputeKmax();
  if (timings != nullptr) timings->peel_seconds = peel_timer.Seconds();
  return result;
}

}  // namespace truss
