// Definition-level oracles for truss decomposition.
//
// These deliberately share no code with the optimized algorithms: the naive
// decomposition recomputes supports from scratch after every removal wave,
// and the subgraph checker tests Definition 2 directly. Property tests
// cross-check every production algorithm (Algorithms 1, 2, bottom-up,
// top-down, MapReduce) against these on randomized inputs.

#ifndef TRUSS_TRUSS_VERIFY_H_
#define TRUSS_TRUSS_VERIFY_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "truss/result.h"

namespace truss {

/// O(k · m²·√m) reference truss decomposition straight from Definition 2/3.
TrussDecompositionResult NaiveTrussDecomposition(const Graph& g);

/// Checks that the edge set `truss_edges` of g is a valid k-truss candidate:
/// every edge of the subgraph they span is contained in at least k-2
/// triangles *within* that subgraph.
bool IsTrussSubgraph(const Graph& g, const std::vector<EdgeId>& truss_edges,
                     uint32_t k);

/// Fully validates a decomposition against Definition 2 (each T_k valid and
/// maximal, verified by independent re-peeling). Returns a human-readable
/// error description, or an empty string when valid.
std::string ValidateDecomposition(const Graph& g,
                                  const TrussDecompositionResult& r);

}  // namespace truss

#endif  // TRUSS_TRUSS_VERIFY_H_
