// Plumbing shared by the external-memory truss algorithms: moving graphs
// between the in-memory Graph type and Env record files, and building local
// (in-memory) graphs for partition parts and candidate subgraphs.

#ifndef TRUSS_TRUSS_EXTERNAL_UTIL_H_
#define TRUSS_TRUSS_EXTERNAL_UTIL_H_

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "io/edge_records.h"
#include "io/env.h"
#include "partition/partition.h"
#include "truss/result.h"

namespace truss {

/// Writes `g` as a GEdgeRecord file (sorted by (u, v), sup_acc = 0,
/// phi_lb = 2) named `file` under `env`. This is the on-disk input format of
/// the external algorithms.
TRUSS_NODISCARD Status WriteGraphFile(io::Env& env, const Graph& g, const std::string& file);

/// Reads a ClassRecord file and projects it onto `g`'s edge ids.
/// Fails if a record's edge is absent from `g` or an edge is missing a class.
TRUSS_NODISCARD Result<TrussDecompositionResult> LoadClassesAsDecomposition(
    io::Env& env, const std::string& classes_file, const Graph& g);

/// An in-memory graph materialized from (u, v)-sorted edge records, with the
/// vertex id mapping. Local EdgeId i corresponds to input record i (the
/// monotone vertex renumbering preserves lexicographic edge order).
class LocalGraphView {
 public:
  /// `Record` must expose fields u and v; records must be strictly sorted by
  /// (u, v).
  template <typename Record>
  explicit LocalGraphView(const std::vector<Record>& records) {
    std::vector<VertexId> endpoints;
    endpoints.reserve(records.size() * 2);
    for (const auto& r : records) {
      endpoints.push_back(r.u);
      endpoints.push_back(r.v);
    }
    std::sort(endpoints.begin(), endpoints.end());
    endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                    endpoints.end());
    to_orig_ = std::move(endpoints);

    std::vector<Edge> edges;
    edges.reserve(records.size());
    for (const auto& r : records) {
      edges.push_back(Edge{ToLocal(r.u), ToLocal(r.v)});
    }
    graph_ = Graph::FromEdges(std::move(edges),
                              static_cast<VertexId>(to_orig_.size()));
    // Sorted unique input + monotone renumbering => ids line up 1:1.
    TRUSS_CHECK_EQ(graph_.num_edges(), records.size());
  }

  const Graph& graph() const { return graph_; }

  /// Local id of an original vertex (must be present).
  VertexId ToLocal(VertexId orig) const {
    const auto it =
        std::lower_bound(to_orig_.begin(), to_orig_.end(), orig);
    TRUSS_CHECK(it != to_orig_.end() && *it == orig);
    return static_cast<VertexId>(it - to_orig_.begin());
  }

  /// Original id of a local vertex.
  VertexId ToOrig(VertexId local) const { return to_orig_[local]; }

  uint64_t SizeBytes() const {
    return graph_.SizeBytes() + to_orig_.size() * sizeof(VertexId);
  }

 private:
  Graph graph_;
  std::vector<VertexId> to_orig_;
};

/// Reads all records of a file into a vector (caller asserts it fits).
template <typename Record>
TRUSS_NODISCARD Result<std::vector<Record>> ReadAllRecords(io::Env& env,
                                           const std::string& file) {
  auto reader = env.OpenReader(file);
  TRUSS_RETURN_IF_ERROR(reader.status());
  std::vector<Record> records;
  Record rec;
  while (reader.value()->ReadRecord(&rec)) records.push_back(rec);
  // Distinguish EOF from a failed or truncated read.
  TRUSS_RETURN_IF_ERROR(reader.value()->status());
  return records;
}

/// Writes all records of a vector to a file.
template <typename Record>
TRUSS_NODISCARD Status WriteAllRecords(io::Env& env, const std::string& file,
                       const std::vector<Record>& records) {
  auto writer = env.OpenWriter(file);
  TRUSS_RETURN_IF_ERROR(writer.status());
  for (const Record& r : records) writer.value()->WriteRecord(r);
  return writer.value()->Close();
}

/// One sequential pass over an edge-record file: per-vertex degrees and the
/// edge count of the file's graph.
template <typename Record>
TRUSS_NODISCARD Status ScanDegrees(io::Env& env, const std::string& file, VertexId n,
                   std::vector<uint32_t>* degrees, uint64_t* num_edges) {
  degrees->assign(n, 0);
  *num_edges = 0;
  auto reader = env.OpenReader(file);
  TRUSS_RETURN_IF_ERROR(reader.status());
  Record rec;
  while (reader.value()->ReadRecord(&rec)) {
    TRUSS_CHECK_LT(rec.u, n);
    TRUSS_CHECK_LT(rec.v, n);
    ++(*degrees)[rec.u];
    ++(*degrees)[rec.v];
    ++(*num_edges);
  }
  return reader.value()->status();
}

/// Adapts an edge-record file to the partitioners' EdgeScanFn interface.
/// The scan callback cannot return a Status, so a failed read ends the
/// scan early; the stream reports it into env.health(), which the external
/// drivers gate on at their stage boundaries.
template <typename Record>
partition::EdgeScanFn MakeEdgeScanFn(io::Env& env, std::string file) {
  return [&env, file = std::move(file)](
             const std::function<void(VertexId, VertexId)>& fn) {
    auto reader = env.OpenReader(file);
    TRUSS_CHECK(reader.ok());
    Record rec;
    while (reader.value()->ReadRecord(&rec)) fn(rec.u, rec.v);
  };
}

// TRUSS_RETURN_IF_ERROR only handles Status; this variant propagates the
// error of a Result<T> expression.
#define TRUSS_RETURN_IF_ERROR_RESULT(expr)     \
  do {                                         \
    if (!(expr).ok()) return (expr).status();  \
  } while (0)

}  // namespace truss

#endif  // TRUSS_TRUSS_EXTERNAL_UTIL_H_
