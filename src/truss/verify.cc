#include "truss/verify.h"

#include <algorithm>
#include <unordered_set>

#include "triangle/triangle.h"

namespace truss {

namespace {

// Supports of live edges, counting only triangles whose three edges are all
// live. O(m^1.5) per call via oriented listing on the full graph.
std::vector<uint32_t> LiveSupports(const Graph& g,
                                   const std::vector<bool>& alive) {
  std::vector<uint32_t> sup(g.num_edges(), 0);
  ForEachTriangle(g, [&](VertexId, VertexId, VertexId, EdgeId e1, EdgeId e2,
                         EdgeId e3) {
    if (alive[e1] && alive[e2] && alive[e3]) {
      ++sup[e1];
      ++sup[e2];
      ++sup[e3];
    }
  });
  return sup;
}

}  // namespace

TrussDecompositionResult NaiveTrussDecomposition(const Graph& g) {
  const EdgeId m = g.num_edges();
  TrussDecompositionResult result;
  result.truss_number.assign(m, 2);
  if (m == 0) {
    result.kmax = 0;
    return result;
  }

  std::vector<bool> alive(m, true);
  EdgeId remaining = m;
  uint32_t k = 3;
  while (remaining > 0) {
    // Remove every edge with support < k-2 in the surviving subgraph; loop
    // until the wave stabilizes, then everything still alive is T_k and the
    // casualties belong to Φ_{k-1}.
    bool changed = true;
    while (changed) {
      changed = false;
      const std::vector<uint32_t> sup = LiveSupports(g, alive);
      for (EdgeId e = 0; e < m; ++e) {
        if (alive[e] && sup[e] < k - 2) {
          alive[e] = false;
          --remaining;
          changed = true;
        }
      }
    }
    for (EdgeId e = 0; e < m; ++e) {
      if (alive[e]) result.truss_number[e] = k;
    }
    ++k;
  }
  result.RecomputeKmax();
  return result;
}

bool IsTrussSubgraph(const Graph& g, const std::vector<EdgeId>& truss_edges,
                     uint32_t k) {
  if (k <= 2) return true;
  std::vector<bool> alive(g.num_edges(), false);
  for (const EdgeId e : truss_edges) alive[e] = true;
  const std::vector<uint32_t> sup = LiveSupports(g, alive);
  return std::all_of(truss_edges.begin(), truss_edges.end(),
                     [&](EdgeId e) { return sup[e] >= k - 2; });
}

std::string ValidateDecomposition(const Graph& g,
                                  const TrussDecompositionResult& r) {
  if (r.truss_number.size() != g.num_edges()) {
    return "truss_number size mismatch";
  }
  const TrussDecompositionResult expected = NaiveTrussDecomposition(g);
  if (expected.kmax != r.kmax) {
    return "kmax mismatch: expected " + std::to_string(expected.kmax) +
           ", got " + std::to_string(r.kmax);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (expected.truss_number[e] != r.truss_number[e]) {
      const Edge edge = g.edge(e);
      return "truss number mismatch on edge (" + std::to_string(edge.u) +
             "," + std::to_string(edge.v) + "): expected " +
             std::to_string(expected.truss_number[e]) + ", got " +
             std::to_string(r.truss_number[e]);
    }
  }
  // Independent Definition 2 spot-check of every non-empty level.
  for (uint32_t k = 3; k <= r.kmax; ++k) {
    if (!IsTrussSubgraph(g, r.TrussEdges(k), k)) {
      return "T_" + std::to_string(k) + " violates Definition 2";
    }
  }
  return "";
}

}  // namespace truss
