#include "truss/external_util.h"

namespace truss {

Status WriteGraphFile(io::Env& env, const Graph& g, const std::string& file) {
  auto writer = env.OpenWriter(file);
  TRUSS_RETURN_IF_ERROR(writer.status());
  // Graph::edges() is already sorted lexicographically.
  for (const Edge& e : g.edges()) {
    io::GEdgeRecord rec;
    rec.u = e.u;
    rec.v = e.v;
    rec.sup_acc = 0;
    rec.phi_lb = 2;
    writer.value()->WriteRecord(rec);
  }
  return writer.value()->Close();
}

Result<TrussDecompositionResult> LoadClassesAsDecomposition(
    io::Env& env, const std::string& classes_file, const Graph& g) {
  auto reader = env.OpenReader(classes_file);
  TRUSS_RETURN_IF_ERROR(reader.status());

  TrussDecompositionResult result;
  result.truss_number.assign(g.num_edges(), 0);

  io::ClassRecord rec;
  uint64_t count = 0;
  while (reader.value()->ReadRecord(&rec)) {
    const EdgeId id = g.FindEdge(rec.u, rec.v);
    if (id == kInvalidEdge) {
      return Status::Corruption("class record for unknown edge (" +
                                std::to_string(rec.u) + "," +
                                std::to_string(rec.v) + ")");
    }
    if (result.truss_number[id] != 0) {
      return Status::Corruption("edge classified twice: (" +
                                std::to_string(rec.u) + "," +
                                std::to_string(rec.v) + ")");
    }
    result.truss_number[id] = rec.truss;
    ++count;
  }
  TRUSS_RETURN_IF_ERROR(reader.value()->status());
  if (count != g.num_edges()) {
    return Status::Corruption(
        "decomposition incomplete: " + std::to_string(count) + " of " +
        std::to_string(g.num_edges()) + " edges classified");
  }
  result.RecomputeKmax();
  return result;
}

}  // namespace truss
