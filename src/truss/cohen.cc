#include "truss/cohen.h"

#include <deque>

#include "common/timer.h"
#include "graph/validate.h"
#include "triangle/triangle.h"

namespace truss {

TrussDecompositionResult CohenTrussDecomposition(const Graph& g,
                                                 MemoryTracker* tracker,
                                                 uint32_t threads,
                                                 PhaseTimings* timings) {
  graph::DCheckValidCsr(g);
  const EdgeId m = g.num_edges();
  TrussDecompositionResult result;
  result.truss_number.assign(m, 0);
  if (m == 0) return result;

  const WallTimer support_timer;
  std::vector<uint32_t> sup = ComputeEdgeSupports(g, threads);
  if (timings != nullptr) timings->support_seconds = support_timer.Seconds();
  const WallTimer peel_timer;
  std::vector<bool> removed(m, false);
  std::vector<bool> queued(m, false);

  const ScopedMemory mem(
      tracker, g.SizeBytes() + m * sizeof(uint32_t) /* sup */ +
                   m / 4 /* removed+queued bitmaps */ +
                   m * sizeof(EdgeId) /* queue worst case */);

  EdgeId remaining = m;
  uint32_t k = 3;
  std::deque<EdgeId> queue;

  // Seed the queue for the current k with all under-supported edges.
  auto seed_queue = [&]() {
    for (EdgeId e = 0; e < m; ++e) {
      if (!removed[e] && !queued[e] && sup[e] < k - 2) {
        queue.push_back(e);
        queued[e] = true;
      }
    }
  };

  while (remaining > 0) {
    seed_queue();
    while (!queue.empty()) {
      const EdgeId eid = queue.front();
      queue.pop_front();
      queued[eid] = false;
      if (removed[eid]) continue;

      // Edges removed while processing level k are not in T_k, hence their
      // truss number is k-1.
      result.truss_number[eid] = k - 1;
      removed[eid] = true;
      --remaining;

      // W = nb(u) ∩ nb(v) over live edges only (Algorithm 1, Step 5);
      // for each △uvw, downgrade the other two edges (Steps 6-7).
      const Edge e = g.edge(eid);
      const auto nb_u = g.neighbors(e.u);
      const auto nb_v = g.neighbors(e.v);
      size_t i = 0, j = 0;
      while (i < nb_u.size() && j < nb_v.size()) {
        if (nb_u[i].neighbor < nb_v[j].neighbor) {
          ++i;
        } else if (nb_u[i].neighbor > nb_v[j].neighbor) {
          ++j;
        } else {
          const EdgeId uw = nb_u[i].edge;
          const EdgeId vw = nb_v[j].edge;
          if (!removed[uw] && !removed[vw]) {
            for (const EdgeId f : {uw, vw}) {
              --sup[f];
              if (sup[f] < k - 2 && !queued[f]) {
                queue.push_back(f);
                queued[f] = true;
              }
            }
          }
          ++i;
          ++j;
        }
      }
    }
    // Everything left survives level k: it is (at least) the k-truss.
    if (remaining > 0) ++k;
  }

  result.RecomputeKmax();
  if (timings != nullptr) timings->peel_seconds = peel_timer.Seconds();
  return result;
}

}  // namespace truss
