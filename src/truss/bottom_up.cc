#include "truss/bottom_up.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "graph/validate.h"
#include "io/edge_records.h"
#include "io/external_sort.h"
#include "triangle/triangle.h"
#include "truss/edge_map.h"
#include "truss/external_util.h"
#include "truss/lower_bound.h"

namespace truss {

namespace {

// Procedure 5 (in-memory): peels Φ_k out of the candidate subgraph H.
// H arrives as (u,v)-sorted GnewRecords; `in_uk` marks internal vertices.
// Classified edges are appended to `class_out` (ClassRecord, truss = k) and
// to `stage_out` (sorted order restored by the caller before subtraction).
uint64_t BottomUpProcedureInMemory(const std::vector<io::GnewRecord>& h_records,
                                   const std::vector<uint8_t>& in_uk,
                                   uint32_t k, uint32_t threads,
                                   io::BlockWriter* class_out,
                                   io::BlockWriter* stage_out) {
  const LocalGraphView local(h_records);
  const Graph& h = local.graph();
  const EdgeId m = h.num_edges();

  std::vector<uint32_t> sup = ComputeEdgeSupports(h, threads);
  const EdgeMap edge_map(h);
  std::vector<uint8_t> removed(m, 0);
  std::vector<uint8_t> queued(m, 0);
  std::vector<uint8_t> internal(m, 0);
  for (EdgeId le = 0; le < m; ++le) {
    internal[le] =
        (in_uk[h_records[le].u] != 0 && in_uk[h_records[le].v] != 0) ? 1 : 0;
  }

  std::deque<EdgeId> queue;
  for (EdgeId le = 0; le < m; ++le) {
    if (internal[le] != 0 && sup[le] + 2 <= k) {
      queue.push_back(le);
      queued[le] = 1;
    }
  }

  std::vector<EdgeId> classified;
  while (!queue.empty()) {
    const EdgeId le = queue.front();
    queue.pop_front();
    queued[le] = 0;
    if (removed[le] != 0) continue;
    removed[le] = 1;
    classified.push_back(le);

    // Invalidate every live triangle through the removed edge.
    const Edge e = h.edge(le);
    VertexId a = e.u, b = e.v;
    if (h.degree(a) > h.degree(b)) std::swap(a, b);
    for (const AdjEntry& adj : h.neighbors(a)) {
      const EdgeId aw = adj.edge;
      if (removed[aw] != 0) continue;
      const EdgeId bw = edge_map.Find(b, adj.neighbor);
      if (bw == kInvalidEdge || removed[bw] != 0) continue;
      for (const EdgeId f : {aw, bw}) {
        --sup[f];
        if (internal[f] != 0 && sup[f] + 2 <= k && queued[f] == 0 &&
            removed[f] == 0) {
          queue.push_back(f);
          queued[f] = 1;
        }
      }
    }
  }

  // Emit in record order so the stage file stays (u,v)-sorted.
  std::sort(classified.begin(), classified.end());
  for (const EdgeId le : classified) {
    const io::ClassRecord rec{h_records[le].u, h_records[le].v, k};
    class_out->WriteRecord(rec);
    stage_out->WriteRecord(rec);
  }
  return classified.size();
}

// Procedure 9 (H exceeds the budget): partitioned peeling passes. Each pass
// loads every NS(P_i) of the current H; edges internal to both the part and
// U_k have exact supports there and are peeled locally. When a pass removes
// nothing, an exact-support certification pass (ComputeExactSupports) either
// proves every remaining internal edge survives level k or yields more
// removals. `h_file` is consumed.
Result<uint64_t> BottomUpProcedureExternal(
    io::Env& env, std::string h_file, VertexId n, const ExternalConfig& cfg,
    const std::vector<uint8_t>& in_uk, uint32_t k,
    io::BlockWriter* class_out, io::BlockWriter* stage_out,
    ExternalStats* stats) {
  const uint64_t max_weight = BudgetToWeight(cfg.memory_budget_bytes);
  uint64_t total_classified = 0;

  // Removes the (sorted) edges of `removed_sorted` from h_file.
  const auto subtract = [&](const std::vector<Edge>& removed_sorted)
      -> Status {
    const std::string next = env.TempName("p9_h");
    auto reader = env.OpenReader(h_file);
    TRUSS_RETURN_IF_ERROR(reader.status());
    auto writer = env.OpenWriter(next);
    TRUSS_RETURN_IF_ERROR(writer.status());
    size_t cursor = 0;
    io::GnewRecord rec;
    while (reader.value()->ReadRecord(&rec)) {
      while (cursor < removed_sorted.size() &&
             (removed_sorted[cursor].u < rec.u ||
              (removed_sorted[cursor].u == rec.u &&
               removed_sorted[cursor].v < rec.v))) {
        ++cursor;
      }
      if (cursor < removed_sorted.size() &&
          removed_sorted[cursor].u == rec.u &&
          removed_sorted[cursor].v == rec.v) {
        continue;  // classified this pass
      }
      writer.value()->WriteRecord(rec);
    }
    TRUSS_RETURN_IF_ERROR(reader.value()->status());
    TRUSS_RETURN_IF_ERROR(writer.value()->Close());
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(h_file));
    h_file = next;
    return Status::OK();
  };

  const auto emit = [&](VertexId u, VertexId v) {
    const io::ClassRecord rec{u, v, k};
    class_out->WriteRecord(rec);
    stage_out->WriteRecord(rec);
  };

  while (true) {
    std::vector<uint32_t> degrees;
    uint64_t m_h = 0;
    TRUSS_RETURN_IF_ERROR(
        ScanDegrees<io::GnewRecord>(env, h_file, n, &degrees, &m_h));
    if (m_h == 0) break;

    partition::Options opts;
    // Always randomize here: a deterministic strategy would co-locate the
    // same vertex pairs every pass, so cross-part edges could only ever be
    // classified through the expensive certification path.
    opts.strategy = partition::Strategy::kRandomized;
    opts.max_part_weight = max_weight;
    opts.seed = cfg.seed + total_classified * 31 + m_h;
    const partition::PartitionResult part = partition::PartitionVertices(
        degrees, MakeEdgeScanFn<io::GnewRecord>(env, h_file), opts);
    const size_t p = part.parts.size();

    // Distribute H over part buckets.
    std::vector<std::string> buckets(p);
    {
      std::vector<std::unique_ptr<io::BlockWriter>> writers(p);
      for (size_t i = 0; i < p; ++i) {
        buckets[i] = env.TempName("p9_bucket");
        auto w = env.OpenWriter(buckets[i]);
        TRUSS_RETURN_IF_ERROR(w.status());
        writers[i] = w.MoveValue();
      }
      auto reader = env.OpenReader(h_file);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GnewRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        const uint32_t pa = part.part_of[rec.u];
        const uint32_t pb = part.part_of[rec.v];
        writers[pa]->WriteRecord(rec);
        if (pb != pa) writers[pb]->WriteRecord(rec);
      }
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
      for (auto& w : writers) TRUSS_RETURN_IF_ERROR(w->Close());
    }

    std::vector<Edge> pass_removed;
    for (size_t i = 0; i < p; ++i) {
      auto records_res = ReadAllRecords<io::GnewRecord>(env, buckets[i]);
      TRUSS_RETURN_IF_ERROR_RESULT(records_res);
      const std::vector<io::GnewRecord> records = records_res.MoveValue();
      TRUSS_RETURN_IF_ERROR(env.DeleteFile(buckets[i]));
      if (records.empty()) continue;
      ++stats->parts_processed;

      const LocalGraphView local(records);
      const Graph& f = local.graph();
      const EdgeId m = f.num_edges();
      std::vector<uint32_t> sup = ComputeEdgeSupports(f, cfg.threads);
      const EdgeMap edge_map(f);
      std::vector<uint8_t> removed(m, 0);
      std::vector<uint8_t> queued(m, 0);
      // Peelable: both endpoints in this part (exact support within H) and
      // both in U_k (eligible for Φ_k).
      std::vector<uint8_t> peelable(m, 0);
      for (EdgeId le = 0; le < m; ++le) {
        const VertexId u = records[le].u, v = records[le].v;
        peelable[le] = (part.part_of[u] == i && part.part_of[v] == i &&
                        in_uk[u] != 0 && in_uk[v] != 0)
                           ? 1
                           : 0;
      }

      std::deque<EdgeId> queue;
      for (EdgeId le = 0; le < m; ++le) {
        if (peelable[le] != 0 && sup[le] + 2 <= k) {
          queue.push_back(le);
          queued[le] = 1;
        }
      }
      std::vector<EdgeId> classified_local;
      while (!queue.empty()) {
        const EdgeId le = queue.front();
        queue.pop_front();
        queued[le] = 0;
        if (removed[le] != 0) continue;
        removed[le] = 1;
        classified_local.push_back(le);
        const Edge e = f.edge(le);
        VertexId a = e.u, b = e.v;
        if (f.degree(a) > f.degree(b)) std::swap(a, b);
        for (const AdjEntry& adj : f.neighbors(a)) {
          const EdgeId aw = adj.edge;
          if (removed[aw] != 0) continue;
          const EdgeId bw = edge_map.Find(b, adj.neighbor);
          if (bw == kInvalidEdge || removed[bw] != 0) continue;
          for (const EdgeId g : {aw, bw}) {
            --sup[g];
            if (peelable[g] != 0 && sup[g] + 2 <= k && queued[g] == 0 &&
                removed[g] == 0) {
              queue.push_back(g);
              queued[g] = 1;
            }
          }
        }
      }
      std::sort(classified_local.begin(), classified_local.end());
      for (const EdgeId le : classified_local) {
        emit(records[le].u, records[le].v);
        pass_removed.push_back(Edge{records[le].u, records[le].v});
      }
    }

    if (!pass_removed.empty()) {
      std::sort(pass_removed.begin(), pass_removed.end());
      total_classified += pass_removed.size();
      TRUSS_RETURN_IF_ERROR(subtract(pass_removed));
      continue;
    }

    // Stalled: no part-internal removals. Certify with exact supports of
    // the (now static) H; classify any under-supported U_k-internal edge.
    auto sup_file_res = ComputeExactSupports(env, h_file, n, cfg);
    TRUSS_RETURN_IF_ERROR_RESULT(sup_file_res);
    const std::string sup_file = sup_file_res.MoveValue();

    std::vector<Edge> certified_removals;
    {
      auto h_reader = env.OpenReader(h_file);
      TRUSS_RETURN_IF_ERROR(h_reader.status());
      auto s_reader = env.OpenReader(sup_file);
      TRUSS_RETURN_IF_ERROR(s_reader.status());
      io::GnewRecord hrec;
      io::GEdgeRecord srec;
      while (h_reader.value()->ReadRecord(&hrec)) {
        if (!s_reader.value()->ReadRecord(&srec)) {
          TRUSS_RETURN_IF_ERROR(s_reader.value()->status());
          return Status::Corruption("support file shorter than H: " +
                                    sup_file);
        }
        TRUSS_CHECK_EQ(srec.u, hrec.u);
        TRUSS_CHECK_EQ(srec.v, hrec.v);
        if (in_uk[hrec.u] != 0 && in_uk[hrec.v] != 0 && srec.sup_acc + 2 <= k) {
          certified_removals.push_back(Edge{hrec.u, hrec.v});
        }
      }
      TRUSS_RETURN_IF_ERROR(h_reader.value()->status());
    }
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(sup_file));

    if (certified_removals.empty()) break;  // every internal edge survives k
    for (const Edge& e : certified_removals) emit(e.u, e.v);
    total_classified += certified_removals.size();
    TRUSS_RETURN_IF_ERROR(subtract(certified_removals));
  }

  TRUSS_RETURN_IF_ERROR(env.DeleteFile(h_file));
  return total_classified;
}

// Removes the edges of `stage_sorted` (a (u,v)-sorted ClassRecord file) from
// the sorted Gnew file, replacing *gnew_file with the filtered copy.
Status SubtractStage(io::Env& env, std::string* gnew_file,
                     const std::string& stage_sorted) {
  const std::string next = env.TempName("gnew");
  auto g_reader = env.OpenReader(*gnew_file);
  TRUSS_RETURN_IF_ERROR(g_reader.status());
  auto s_reader = env.OpenReader(stage_sorted);
  TRUSS_RETURN_IF_ERROR(s_reader.status());
  auto writer = env.OpenWriter(next);
  TRUSS_RETURN_IF_ERROR(writer.status());

  io::ClassRecord removed;
  bool have_removed = s_reader.value()->ReadRecord(&removed);
  io::GnewRecord rec;
  while (g_reader.value()->ReadRecord(&rec)) {
    while (have_removed &&
           (removed.u < rec.u || (removed.u == rec.u && removed.v < rec.v))) {
      have_removed = s_reader.value()->ReadRecord(&removed);
    }
    if (have_removed && removed.u == rec.u && removed.v == rec.v) continue;
    writer.value()->WriteRecord(rec);
  }
  TRUSS_RETURN_IF_ERROR(g_reader.value()->status());
  TRUSS_RETURN_IF_ERROR(s_reader.value()->status());
  TRUSS_RETURN_IF_ERROR(writer.value()->Close());
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(*gnew_file));
  *gnew_file = next;
  return Status::OK();
}

}  // namespace

Result<ExternalStats> BottomUpDecomposeFile(io::Env& env,
                                            const std::string& graph_file,
                                            VertexId num_vertices,
                                            const ExternalConfig& config,
                                            const std::string& classes_out) {
  WallTimer timer;
  const io::IoStats start_io = env.stats();
  ExternalStats stats;
  TRUSS_RETURN_IF_ERROR(env.health());

  auto class_writer_res = env.OpenWriter(classes_out);
  TRUSS_RETURN_IF_ERROR(class_writer_res.status());
  auto class_writer = class_writer_res.MoveValue();

  // Stage 1: lower bounding + Φ2 extraction.
  auto lb_res = RunLowerBounding(env, graph_file, num_vertices, config,
                                 BoundMode::kPhiLowerBound,
                                 class_writer.get());
  TRUSS_RETURN_IF_ERROR_RESULT(lb_res);
  const LowerBoundingOutput lb = lb_res.MoveValue();
  stats.lower_bound_iterations = lb.iterations;
  stats.parts_processed = lb.parts_processed;
  stats.phi2_edges = lb.phi2_edges;
  stats.classified_edges = lb.phi2_edges;
  if (lb.phi2_edges > 0) stats.kmax = 2;

  std::string gnew = lb.gnew_file;
  uint64_t gnew_edges = lb.gnew_edges;
  uint32_t k = 3;

  const uint64_t total_edges = lb.phi2_edges + lb.gnew_edges;
  while (gnew_edges > 0) {
    if (config.hooks.ShouldCancel()) {
      return Status::Cancelled("bottom-up decomposition cancelled at k = " +
                               std::to_string(k));
    }
    config.hooks.Report("peel", k, stats.classified_edges, total_edges);
    // Scan 1: U_k = endpoints of unfinished edges with φ(e) ≤ k
    // (Algorithm 4, Step 3); also the smallest label for level skipping.
    std::vector<uint8_t> in_uk(num_vertices, 0);
    bool any = false;
    uint32_t min_label = UINT32_MAX;
    {
      auto reader = env.OpenReader(gnew);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GnewRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        min_label = std::min(min_label, rec.label);
        if (rec.label <= k) {
          in_uk[rec.u] = 1;
          in_uk[rec.v] = 1;
          any = true;
        }
      }
      // A failed scan looks identical to an exhausted one (`any` stays
      // false, min_label stays UINT32_MAX), which would jump k to UINT32_MAX
      // and spin forever; surface the fault instead.
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
    }
    if (!any) {
      // All remaining lower bounds exceed k: Φ_k..Φ_{min_label - 1} are
      // empty, jump directly (equivalent to the paper's k+1 stepping).
      k = min_label;
      continue;
    }

    // Scan 2: measure H = NS(U_k).
    uint64_t h_edges = 0;
    {
      auto reader = env.OpenReader(gnew);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GnewRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        if (in_uk[rec.u] != 0 || in_uk[rec.v] != 0) ++h_edges;
      }
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
    }
    ++stats.candidate_subgraphs;

    const std::string stage_file = env.TempName("stage");
    auto stage_writer_res = env.OpenWriter(stage_file);
    TRUSS_RETURN_IF_ERROR(stage_writer_res.status());
    auto stage_writer = stage_writer_res.MoveValue();

    uint64_t classified_now = 0;
    if (h_edges * kBytesPerEdgeInMemory <= config.memory_budget_bytes) {
      // Scan 3: extract H into memory and run Procedure 5.
      std::vector<io::GnewRecord> h_records;
      h_records.reserve(h_edges);
      auto reader = env.OpenReader(gnew);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GnewRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        if (in_uk[rec.u] != 0 || in_uk[rec.v] != 0) h_records.push_back(rec);
      }
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
      classified_now = BottomUpProcedureInMemory(h_records, in_uk, k,
                                                 config.threads,
                                                 class_writer.get(),
                                                 stage_writer.get());
    } else {
      // Scan 3': spill H to disk and run Procedure 9.
      ++stats.candidate_overflows;
      const std::string h_file = env.TempName("p9_h");
      {
        auto reader = env.OpenReader(gnew);
        TRUSS_RETURN_IF_ERROR(reader.status());
        auto writer = env.OpenWriter(h_file);
        TRUSS_RETURN_IF_ERROR(writer.status());
        io::GnewRecord rec;
        while (reader.value()->ReadRecord(&rec)) {
          if (in_uk[rec.u] != 0 || in_uk[rec.v] != 0) {
            writer.value()->WriteRecord(rec);
          }
        }
        TRUSS_RETURN_IF_ERROR(reader.value()->status());
        TRUSS_RETURN_IF_ERROR(writer.value()->Close());
      }
      auto classified_res =
          BottomUpProcedureExternal(env, h_file, num_vertices, config, in_uk,
                                    k, class_writer.get(), stage_writer.get(),
                                    &stats);
      TRUSS_RETURN_IF_ERROR_RESULT(classified_res);
      classified_now = classified_res.value();
    }
    TRUSS_RETURN_IF_ERROR(stage_writer->Close());

    if (classified_now > 0) {
      // Procedure 9 appends per-pass groups, each sorted but not globally;
      // restore global order before the merge-subtraction.
      const std::string stage_sorted = env.TempName("stage_sorted");
      TRUSS_RETURN_IF_ERROR((io::ExternalSort<io::ClassRecord, io::ByEdgeLess>(
          env, stage_file, stage_sorted, io::ByEdgeLess{},
          config.memory_budget_bytes)));
      TRUSS_RETURN_IF_ERROR(SubtractStage(env, &gnew, stage_sorted));
      TRUSS_RETURN_IF_ERROR(env.DeleteFile(stage_sorted));
      gnew_edges -= classified_now;
      stats.classified_edges += classified_now;
      stats.kmax = std::max(stats.kmax, k);
    }
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(stage_file));
    ++k;
  }

  // Any stream failure the per-loop checks could not report (e.g. a scan
  // closure that cannot return Status) surfaces here as a typed error
  // instead of a silently partial decomposition.
  TRUSS_RETURN_IF_ERROR(env.health());

  TRUSS_RETURN_IF_ERROR(env.DeleteFile(gnew));
  TRUSS_RETURN_IF_ERROR(class_writer->Close());
  stats.seconds = timer.Seconds();
  stats.io = io::DiffStats(env.stats(), start_io);
  return stats;
}

Result<TrussDecompositionResult> BottomUpDecompose(io::Env& env,
                                                   const Graph& g,
                                                   const ExternalConfig& config,
                                                   ExternalStats* stats) {
  graph::DCheckValidCsr(g);
  const std::string graph_file = env.TempName("graph");
  TRUSS_RETURN_IF_ERROR(WriteGraphFile(env, g, graph_file));
  const std::string classes_file = env.TempName("classes");
  auto stats_res = BottomUpDecomposeFile(env, graph_file, g.num_vertices(),
                                         config, classes_file);
  TRUSS_RETURN_IF_ERROR_RESULT(stats_res);
  if (stats != nullptr) *stats = stats_res.value();

  auto result = LoadClassesAsDecomposition(env, classes_file, g);
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(classes_file));
  return result;
}

}  // namespace truss
