#include "truss/improved.h"

#include <algorithm>

#include "common/flags.h"
#include "common/macros.h"
#include "common/timer.h"
#include "graph/validate.h"
#include "triangle/triangle.h"

namespace truss {

namespace {

// Bin-sorted edge array (the truss analogue of [5]'s sorted degree array).
// Maintains: sorted_ holds all edges ordered by current support; pos_[e] is
// e's index; bin_start_[s] is the index of the first edge with support s.
//
// Thread confinement: SupportBins is NOT thread-safe and has no atomic
// members by design — Decrement's four-array update must be observed
// atomically as a unit, which no per-field memory ordering can provide.
// The sequential peel owns it on one thread for its whole lifetime; the
// parallel peel (truss/parallel_peel.cc) uses a different structure (a
// clamped-CAS support array) precisely because bins cannot be shared.
class SupportBins {
 public:
  SupportBins(std::vector<uint32_t>* sup, EdgeId m) : sup_(*sup) {
    uint32_t max_sup = 0;
    for (EdgeId e = 0; e < m; ++e) max_sup = std::max(max_sup, sup_[e]);
    // 64-bit sizing: max_sup + 2 must not wrap in 32 bits, and the
    // degenerate all-isolated-edges graph (m > 0, every support 0) still
    // gets the two bins [0, 1) the cursor walk below relies on.
    bin_start_.assign(static_cast<size_t>(max_sup) + 2, 0);
    for (EdgeId e = 0; e < m; ++e) ++bin_start_[sup_[e] + 1];
    for (size_t s = 1; s < bin_start_.size(); ++s) {
      bin_start_[s] += bin_start_[s - 1];
    }
    sorted_.resize(m);
    pos_.resize(m);
    std::vector<uint64_t> cursor(bin_start_.begin(), bin_start_.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      pos_[e] = cursor[sup_[e]]++;
      sorted_[pos_[e]] = e;
    }
  }

  /// Edge at array position i.
  EdgeId At(uint64_t i) const { return sorted_[i]; }

  /// Moves edge e from its current bin to the one below (support - 1).
  /// Precondition: sup_[e] ≥ 1 and e has not been peeled yet.
  void Decrement(EdgeId e) {
    TRUSS_DCHECK_GE(sup_[e], 1u);
    const uint32_t s = sup_[e];
    const uint64_t pe = pos_[e];
    const uint64_t pw = bin_start_[s];
    const EdgeId w = sorted_[pw];
    if (e != w) {
      std::swap(sorted_[pe], sorted_[pw]);
      pos_[e] = pw;
      pos_[w] = pe;
    }
    ++bin_start_[s];
    --sup_[e];
  }

  uint64_t SizeBytes() const {
    return sorted_.size() * sizeof(EdgeId) + pos_.size() * sizeof(uint64_t) +
           bin_start_.size() * sizeof(uint64_t);
  }

 private:
  std::vector<uint32_t>& sup_;
  std::vector<EdgeId> sorted_;
  std::vector<uint64_t> pos_;
  std::vector<uint64_t> bin_start_;
};

TrussDecompositionResult Peel(const Graph& g, std::vector<uint32_t>& sup,
                              MemoryTracker* tracker) {
  const EdgeId m = g.num_edges();
  TrussDecompositionResult result;
  result.truss_number.assign(m, 0);
  if (m == 0) return result;

  SupportBins bins(&sup, m);
  ByteFlags removed(m);

  const ScopedMemory mem(tracker, g.SizeBytes() + m * sizeof(uint32_t) +
                                      bins.SizeBytes() + removed.SizeBytes());

  uint32_t k = 2;
  for (uint64_t ptr = 0; ptr < m; ++ptr) {
    const EdgeId eid = bins.At(ptr);
    // Peeled supports are non-decreasing, so the running level only grows.
    k = std::max(k, sup[eid] + 2);
    result.truss_number[eid] = k;
    removed.Set(eid);

    // Enumerate △(u,v,w) by sorted-adjacency intersection: both remaining
    // edge ids come straight out of the AdjEntry walk, no hash probes
    // (Algorithm 2, Steps 6-8, with the hashtable of Step 8 eliminated).
    const Edge e = g.edge(eid);
    ForEachCommonNeighbor(g, e.u, e.v, [&](VertexId, EdgeId uw, EdgeId vw) {
      if (removed.Test(uw) || removed.Test(vw)) return;
      // △(u,v,w) is live: downgrade (u,w) and (v,w). Skipping edges whose
      // support already sits at or below sup[eid] keeps the bins sorted;
      // such edges peel at the same level regardless of exact value.
      if (sup[uw] > sup[eid]) bins.Decrement(uw);
      if (sup[vw] > sup[eid]) bins.Decrement(vw);
    });
  }

  result.RecomputeKmax();
  return result;
}

}  // namespace

TrussDecompositionResult ImprovedTrussDecomposition(const Graph& g,
                                                    MemoryTracker* tracker,
                                                    uint32_t threads,
                                                    PhaseTimings* timings) {
  graph::DCheckValidCsr(g);
  const WallTimer support_timer;
  std::vector<uint32_t> sup = ComputeEdgeSupports(g, threads);
  if (timings != nullptr) timings->support_seconds = support_timer.Seconds();
  const WallTimer peel_timer;
  TrussDecompositionResult result = Peel(g, sup, tracker);
  if (timings != nullptr) timings->peel_seconds = peel_timer.Seconds();
  return result;
}

TrussDecompositionResult PeelWithSupports(const Graph& g,
                                          std::vector<uint32_t> sup) {
  TRUSS_CHECK_EQ(sup.size(), g.num_edges());
  return Peel(g, sup, nullptr);
}

}  // namespace truss
