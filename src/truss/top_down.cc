#include "truss/top_down.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/timer.h"
#include "graph/validate.h"
#include "io/external_sort.h"
#include "triangle/triangle.h"
#include "truss/edge_map.h"
#include "truss/external_util.h"
#include "truss/lower_bound.h"

namespace truss {

namespace {

// x_u(e): the largest x such that at least x edges incident to u — excluding
// e itself — have support ≥ x (Procedure 6, Step 5). Computed from the
// vertex profile (h = h-index over all incident supports, c = number of
// incident edges with support ≥ h) by adjusting for the exclusion of e.
uint32_t AdjustedHIndex(uint32_t h, uint32_t c, uint32_t sup_e) {
  if (sup_e >= h) {
    return (c > h) ? h : (h > 0 ? h - 1 : 0);
  }
  return h;
}

// UpperBounding (Procedure 6): rewrites Gnew so that aux = ψ(e).
// Returns max ψ over all edges (the k1st of Algorithm 7, Step 3).
Result<uint32_t> RunUpperBounding(io::Env& env, std::string* gnew_file,
                                  VertexId n, const ExternalConfig& cfg) {
  // Pass 1: emit one (endpoint, sup) incidence per edge side and sort by
  // (vertex, sup); grouping then yields each vertex's support multiset.
  const std::string inc_file = env.TempName("ub_inc");
  {
    auto reader = env.OpenReader(*gnew_file);
    TRUSS_RETURN_IF_ERROR(reader.status());
    auto writer = env.OpenWriter(inc_file);
    TRUSS_RETURN_IF_ERROR(writer.status());
    io::GnewRecord rec;
    while (reader.value()->ReadRecord(&rec)) {
      writer.value()->WriteRecord(io::IncidenceRecord{rec.u, rec.label});
      writer.value()->WriteRecord(io::IncidenceRecord{rec.v, rec.label});
    }
    TRUSS_RETURN_IF_ERROR(reader.value()->status());
    TRUSS_RETURN_IF_ERROR(writer.value()->Close());
  }
  const std::string inc_sorted = env.TempName("ub_inc_sorted");
  TRUSS_RETURN_IF_ERROR(
      (io::ExternalSort<io::IncidenceRecord, io::ByVertexSupLess>(
          env, inc_file, inc_sorted, io::ByVertexSupLess{},
          cfg.memory_budget_bytes)));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(inc_file));

  // Pass 2: grouped scan computes the per-vertex profile (h, c).
  std::vector<uint32_t> h_of(n, 0);
  std::vector<uint32_t> c_of(n, 0);
  {
    auto reader = env.OpenReader(inc_sorted);
    TRUSS_RETURN_IF_ERROR(reader.status());
    io::IncidenceRecord rec;
    bool have = reader.value()->ReadRecord(&rec);
    std::vector<uint32_t> sups;  // ascending within a group
    while (have) {
      const VertexId v = rec.vertex;
      sups.clear();
      while (have && rec.vertex == v) {
        sups.push_back(rec.sup);
        have = reader.value()->ReadRecord(&rec);
      }
      // h-index over an ascending list: largest x with sups[d-x] ≥ x.
      const size_t d = sups.size();
      uint32_t h = 0;
      for (size_t x = 1; x <= d; ++x) {
        if (sups[d - x] >= x) {
          h = static_cast<uint32_t>(x);
        } else {
          break;
        }
      }
      uint32_t c = 0;
      for (size_t i = d; i-- > 0;) {
        if (sups[i] >= h) {
          ++c;
        } else {
          break;
        }
      }
      h_of[v] = h;
      c_of[v] = c;
    }
    TRUSS_RETURN_IF_ERROR(reader.value()->status());
  }
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(inc_sorted));

  // Pass 3: annotate every edge with ψ(e) (Procedure 6, Step 6, extended to
  // cross-part edges via the per-vertex profiles — DESIGN.md §3.3).
  uint32_t k1st = 0;
  const std::string next = env.TempName("gnew_psi");
  {
    auto reader = env.OpenReader(*gnew_file);
    TRUSS_RETURN_IF_ERROR(reader.status());
    auto writer = env.OpenWriter(next);
    TRUSS_RETURN_IF_ERROR(writer.status());
    io::GnewRecord rec;
    while (reader.value()->ReadRecord(&rec)) {
      const uint32_t xu = AdjustedHIndex(h_of[rec.u], c_of[rec.u], rec.label);
      const uint32_t xv = AdjustedHIndex(h_of[rec.v], c_of[rec.v], rec.label);
      rec.aux = std::min(rec.label, std::min(xu, xv)) + 2;
      k1st = std::max(k1st, rec.aux);
      writer.value()->WriteRecord(rec);
    }
    TRUSS_RETURN_IF_ERROR(reader.value()->status());
    TRUSS_RETURN_IF_ERROR(writer.value()->Close());
  }
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(*gnew_file));
  *gnew_file = next;
  return k1st;
}

// Outcome of one level-k stage: class assignments and prunable edges,
// both (u,v)-sorted.
struct StageOutcome {
  std::vector<Edge> new_class;  // edges assigned cls = k
  std::vector<Edge> pruned;     // classified edges removable from Gnew
};

// Procedure 8 (in-memory): peel H with qualified supports, classify the
// unclassified survivors as Φ_k, then prune classified internal edges whose
// every triangle has both other edges classified.
StageOutcome TopDownProcedureInMemory(const std::vector<io::GnewRecord>& h,
                                      const std::vector<uint8_t>& in_uk,
                                      uint32_t k) {
  const LocalGraphView local(h);
  const Graph& g = local.graph();
  const EdgeId m = g.num_edges();
  const EdgeMap edge_map(g);

  // Qualified edges are the only ones that can witness T_k triangles:
  // already classified (cls > k) or unclassified with ψ ≥ k. Unclassified
  // qualified edges are exactly the peel candidates (and are internal by
  // construction of U_k).
  std::vector<uint8_t> qualified(m, 0);
  std::vector<uint8_t> peelable(m, 0);
  for (EdgeId le = 0; le < m; ++le) {
    const bool classified = h[le].cls > 0;
    qualified[le] = (classified || h[le].aux >= k) ? 1 : 0;
    peelable[le] = (!classified && h[le].aux >= k) ? 1 : 0;
  }

  std::vector<uint32_t> sup(m, 0);
  ForEachTriangle(g, [&](VertexId, VertexId, VertexId, EdgeId e1, EdgeId e2,
                         EdgeId e3) {
    if (qualified[e1] != 0 && qualified[e2] != 0 && qualified[e3] != 0) {
      ++sup[e1];
      ++sup[e2];
      ++sup[e3];
    }
  });

  // Peel: drop unclassified qualified edges with support < k-2; they are not
  // in T_k, but their truss numbers are determined at a later (smaller) k,
  // so they leave H only — never Gnew (Procedure 8, Steps 2-5).
  std::vector<uint8_t> dead(m, 0);
  std::vector<uint8_t> queued(m, 0);
  std::deque<EdgeId> queue;
  for (EdgeId le = 0; le < m; ++le) {
    if (peelable[le] != 0 && sup[le] + 2 < k) {
      queue.push_back(le);
      queued[le] = 1;
    }
  }
  while (!queue.empty()) {
    const EdgeId le = queue.front();
    queue.pop_front();
    queued[le] = 0;
    if (dead[le] != 0) continue;
    dead[le] = 1;

    const Edge e = g.edge(le);
    VertexId a = e.u, b = e.v;
    if (g.degree(a) > g.degree(b)) std::swap(a, b);
    for (const AdjEntry& adj : g.neighbors(a)) {
      const EdgeId aw = adj.edge;
      if (qualified[aw] == 0 || dead[aw] != 0) continue;
      const EdgeId bw = edge_map.Find(b, adj.neighbor);
      if (bw == kInvalidEdge || qualified[bw] == 0 || dead[bw] != 0) continue;
      for (const EdgeId f : {aw, bw}) {
        --sup[f];
        if (peelable[f] != 0 && sup[f] + 2 < k && queued[f] == 0 &&
            dead[f] == 0) {
          queue.push_back(f);
          queued[f] = 1;
        }
      }
    }
  }

  StageOutcome out;
  // Classify survivors (Procedure 8, Step 6). Record order keeps them
  // (u,v)-sorted.
  std::vector<uint8_t> cls_after(m, 0);
  for (EdgeId le = 0; le < m; ++le) {
    cls_after[le] = h[le].cls > 0 ? 1 : 0;
    if (peelable[le] != 0 && dead[le] == 0) {
      out.new_class.push_back(Edge{h[le].u, h[le].v});
      cls_after[le] = 1;
    }
  }

  // Prune (Steps 7-9): a classified internal edge whose every triangle in
  // Gnew has both other edges classified can never affect a future class.
  for (EdgeId le = 0; le < m; ++le) {
    if (cls_after[le] == 0) continue;
    if (in_uk[h[le].u] == 0 || in_uk[h[le].v] == 0) continue;  // not internal
    const Edge e = g.edge(le);
    VertexId a = e.u, b = e.v;
    if (g.degree(a) > g.degree(b)) std::swap(a, b);
    bool needed = false;
    for (const AdjEntry& adj : g.neighbors(a)) {
      const EdgeId aw = adj.edge;
      if (aw == le) continue;
      const EdgeId bw = edge_map.Find(b, adj.neighbor);
      if (bw == kInvalidEdge) continue;
      if (cls_after[aw] == 0 || cls_after[bw] == 0) {
        needed = true;
        break;
      }
    }
    if (!needed) out.pruned.push_back(Edge{h[le].u, h[le].v});
  }
  return out;
}

// Procedure 10 (H exceeds the budget): partitioned peeling over the
// qualified sub-file of H, with exact-support certification on stalls, then
// classification of the survivors. Pruning is restricted to part-internal
// classified edges (safe: retaining more of Gnew never breaks correctness).
// `hq_file` (qualified edges only) and `hfull_file` are consumed.
Result<StageOutcome> TopDownProcedureExternal(
    io::Env& env, std::string hq_file, std::string hfull_file, VertexId n,
    const ExternalConfig& cfg, const std::vector<uint8_t>& in_uk, uint32_t k,
    ExternalStats* stats) {
  const uint64_t max_weight = BudgetToWeight(cfg.memory_budget_bytes);
  StageOutcome out;

  const auto subtract = [&](std::string* file,
                            const std::vector<Edge>& removed_sorted)
      -> Status {
    const std::string next = env.TempName("p10_h");
    auto reader = env.OpenReader(*file);
    TRUSS_RETURN_IF_ERROR(reader.status());
    auto writer = env.OpenWriter(next);
    TRUSS_RETURN_IF_ERROR(writer.status());
    size_t cursor = 0;
    io::GnewRecord rec;
    while (reader.value()->ReadRecord(&rec)) {
      while (cursor < removed_sorted.size() &&
             (removed_sorted[cursor].u < rec.u ||
              (removed_sorted[cursor].u == rec.u &&
               removed_sorted[cursor].v < rec.v))) {
        ++cursor;
      }
      if (cursor < removed_sorted.size() &&
          removed_sorted[cursor].u == rec.u &&
          removed_sorted[cursor].v == rec.v) {
        continue;
      }
      writer.value()->WriteRecord(rec);
    }
    TRUSS_RETURN_IF_ERROR(reader.value()->status());
    TRUSS_RETURN_IF_ERROR(writer.value()->Close());
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(*file));
    *file = next;
    return Status::OK();
  };

  // Peeling passes over the qualified file. All its edges are qualified, so
  // plain triangle supports are the qualified supports.
  uint64_t pass_seed = 0;
  while (true) {
    std::vector<uint32_t> degrees;
    uint64_t m_h = 0;
    TRUSS_RETURN_IF_ERROR(
        ScanDegrees<io::GnewRecord>(env, hq_file, n, &degrees, &m_h));
    if (m_h == 0) break;

    partition::Options opts;
    // Randomize per pass so stalled cross-part edges co-locate eventually
    // (see the matching note in Procedure 9).
    opts.strategy = partition::Strategy::kRandomized;
    opts.max_part_weight = max_weight;
    opts.seed = cfg.seed + (++pass_seed) * 9176;
    const partition::PartitionResult part = partition::PartitionVertices(
        degrees, MakeEdgeScanFn<io::GnewRecord>(env, hq_file), opts);
    const size_t p = part.parts.size();

    std::vector<std::string> buckets(p);
    {
      std::vector<std::unique_ptr<io::BlockWriter>> writers(p);
      for (size_t i = 0; i < p; ++i) {
        buckets[i] = env.TempName("p10_bucket");
        auto w = env.OpenWriter(buckets[i]);
        TRUSS_RETURN_IF_ERROR(w.status());
        writers[i] = w.MoveValue();
      }
      auto reader = env.OpenReader(hq_file);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GnewRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        const uint32_t pa = part.part_of[rec.u];
        const uint32_t pb = part.part_of[rec.v];
        writers[pa]->WriteRecord(rec);
        if (pb != pa) writers[pb]->WriteRecord(rec);
      }
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
      for (auto& w : writers) TRUSS_RETURN_IF_ERROR(w->Close());
    }

    std::vector<Edge> pass_dead;
    for (size_t i = 0; i < p; ++i) {
      auto records_res = ReadAllRecords<io::GnewRecord>(env, buckets[i]);
      TRUSS_RETURN_IF_ERROR_RESULT(records_res);
      const std::vector<io::GnewRecord> records = records_res.MoveValue();
      TRUSS_RETURN_IF_ERROR(env.DeleteFile(buckets[i]));
      if (records.empty()) continue;
      ++stats->parts_processed;

      const LocalGraphView local(records);
      const Graph& f = local.graph();
      const EdgeId m = f.num_edges();
      std::vector<uint32_t> sup = ComputeEdgeSupports(f, cfg.threads);
      const EdgeMap edge_map(f);
      std::vector<uint8_t> dead(m, 0);
      std::vector<uint8_t> queued(m, 0);
      std::vector<uint8_t> peelable(m, 0);
      for (EdgeId le = 0; le < m; ++le) {
        peelable[le] = (records[le].cls == 0 &&
                        part.part_of[records[le].u] == i &&
                        part.part_of[records[le].v] == i)
                           ? 1
                           : 0;
      }
      std::deque<EdgeId> queue;
      for (EdgeId le = 0; le < m; ++le) {
        if (peelable[le] != 0 && sup[le] + 2 < k) {
          queue.push_back(le);
          queued[le] = 1;
        }
      }
      std::vector<EdgeId> dead_local;
      while (!queue.empty()) {
        const EdgeId le = queue.front();
        queue.pop_front();
        queued[le] = 0;
        if (dead[le] != 0) continue;
        dead[le] = 1;
        dead_local.push_back(le);
        const Edge e = f.edge(le);
        VertexId a = e.u, b = e.v;
        if (f.degree(a) > f.degree(b)) std::swap(a, b);
        for (const AdjEntry& adj : f.neighbors(a)) {
          const EdgeId aw = adj.edge;
          if (dead[aw] != 0) continue;
          const EdgeId bw = edge_map.Find(b, adj.neighbor);
          if (bw == kInvalidEdge || dead[bw] != 0) continue;
          for (const EdgeId fe : {aw, bw}) {
            --sup[fe];
            if (peelable[fe] != 0 && sup[fe] + 2 < k && queued[fe] == 0 &&
                dead[fe] == 0) {
              queue.push_back(fe);
              queued[fe] = 1;
            }
          }
        }
      }
      std::sort(dead_local.begin(), dead_local.end());
      for (const EdgeId le : dead_local) {
        pass_dead.push_back(Edge{records[le].u, records[le].v});
      }
    }

    if (!pass_dead.empty()) {
      std::sort(pass_dead.begin(), pass_dead.end());
      TRUSS_RETURN_IF_ERROR(subtract(&hq_file, pass_dead));
      continue;
    }

    // Stall: certify with exact supports of the static qualified H.
    auto sup_file_res = ComputeExactSupports(env, hq_file, n, cfg);
    TRUSS_RETURN_IF_ERROR_RESULT(sup_file_res);
    const std::string sup_file = sup_file_res.MoveValue();
    std::vector<Edge> certified_dead;
    {
      auto h_reader = env.OpenReader(hq_file);
      TRUSS_RETURN_IF_ERROR(h_reader.status());
      auto s_reader = env.OpenReader(sup_file);
      TRUSS_RETURN_IF_ERROR(s_reader.status());
      io::GnewRecord hrec;
      io::GEdgeRecord srec;
      while (h_reader.value()->ReadRecord(&hrec)) {
        if (!s_reader.value()->ReadRecord(&srec)) {
          TRUSS_RETURN_IF_ERROR(s_reader.value()->status());
          return Status::Corruption("support file shorter than H: " +
                                    sup_file);
        }
        TRUSS_CHECK_EQ(srec.u, hrec.u);
        TRUSS_CHECK_EQ(srec.v, hrec.v);
        if (hrec.cls == 0 && srec.sup_acc + 2 < k) {
          certified_dead.push_back(Edge{hrec.u, hrec.v});
        }
      }
      TRUSS_RETURN_IF_ERROR(h_reader.value()->status());
    }
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(sup_file));
    if (certified_dead.empty()) break;
    TRUSS_RETURN_IF_ERROR(subtract(&hq_file, certified_dead));
  }

  // Classify the unclassified survivors of the peel as Φ_k.
  std::unordered_set<Edge, EdgeHash> new_class_set;
  {
    auto reader = env.OpenReader(hq_file);
    TRUSS_RETURN_IF_ERROR(reader.status());
    io::GnewRecord rec;
    while (reader.value()->ReadRecord(&rec)) {
      if (rec.cls == 0) {
        out.new_class.push_back(Edge{rec.u, rec.v});
        new_class_set.insert(Edge{rec.u, rec.v});
      }
    }
    TRUSS_RETURN_IF_ERROR(reader.value()->status());
  }
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(hq_file));

  // Pruning pass over the full H: partition once; part-internal classified
  // edges whose every local triangle has both other edges classified are
  // prunable (their triangle sets are complete within the part's bucket).
  {
    std::vector<uint32_t> degrees;
    uint64_t m_full = 0;
    TRUSS_RETURN_IF_ERROR(
        ScanDegrees<io::GnewRecord>(env, hfull_file, n, &degrees, &m_full));
    if (m_full > 0) {
      partition::Options opts;
      opts.strategy = cfg.strategy;
      opts.max_part_weight = max_weight;
      opts.seed = cfg.seed + 77777;
      const partition::PartitionResult part = partition::PartitionVertices(
          degrees, MakeEdgeScanFn<io::GnewRecord>(env, hfull_file), opts);
      const size_t p = part.parts.size();
      std::vector<std::string> buckets(p);
      {
        std::vector<std::unique_ptr<io::BlockWriter>> writers(p);
        for (size_t i = 0; i < p; ++i) {
          buckets[i] = env.TempName("p10_prune");
          auto w = env.OpenWriter(buckets[i]);
          TRUSS_RETURN_IF_ERROR(w.status());
          writers[i] = w.MoveValue();
        }
        auto reader = env.OpenReader(hfull_file);
        TRUSS_RETURN_IF_ERROR(reader.status());
        io::GnewRecord rec;
        while (reader.value()->ReadRecord(&rec)) {
          const uint32_t pa = part.part_of[rec.u];
          const uint32_t pb = part.part_of[rec.v];
          writers[pa]->WriteRecord(rec);
          if (pb != pa) writers[pb]->WriteRecord(rec);
        }
        TRUSS_RETURN_IF_ERROR(reader.value()->status());
        for (auto& w : writers) TRUSS_RETURN_IF_ERROR(w->Close());
      }
      for (size_t i = 0; i < p; ++i) {
        auto records_res = ReadAllRecords<io::GnewRecord>(env, buckets[i]);
        TRUSS_RETURN_IF_ERROR_RESULT(records_res);
        const std::vector<io::GnewRecord> records = records_res.MoveValue();
        TRUSS_RETURN_IF_ERROR(env.DeleteFile(buckets[i]));
        if (records.empty()) continue;

        const LocalGraphView local(records);
        const Graph& f = local.graph();
        const EdgeMap edge_map(f);
        std::vector<uint8_t> classified(f.num_edges(), 0);
        for (EdgeId le = 0; le < f.num_edges(); ++le) {
          classified[le] =
              (records[le].cls > 0 ||
               new_class_set.count(Edge{records[le].u, records[le].v}) > 0)
                  ? 1
                  : 0;
        }
        for (EdgeId le = 0; le < f.num_edges(); ++le) {
          if (classified[le] == 0) continue;
          if (part.part_of[records[le].u] != i ||
              part.part_of[records[le].v] != i) {
            continue;  // triangle set incomplete in this bucket
          }
          if (in_uk[records[le].u] == 0 || in_uk[records[le].v] == 0) {
            continue;
          }
          const Edge e = f.edge(le);
          VertexId a = e.u, b = e.v;
          if (f.degree(a) > f.degree(b)) std::swap(a, b);
          bool needed = false;
          for (const AdjEntry& adj : f.neighbors(a)) {
            if (adj.edge == le) continue;
            const EdgeId bw = edge_map.Find(b, adj.neighbor);
            if (bw == kInvalidEdge) continue;
            if (classified[adj.edge] == 0 || classified[bw] == 0) {
              needed = true;
              break;
            }
          }
          if (!needed) out.pruned.push_back(Edge{records[le].u, records[le].v});
        }
      }
    }
  }
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(hfull_file));

  std::sort(out.new_class.begin(), out.new_class.end());
  std::sort(out.pruned.begin(), out.pruned.end());
  return out;
}

// Applies a stage outcome to Gnew: set cls = k on the new class, drop
// pruned edges. Both lists are (u,v)-sorted; Gnew stays sorted.
Status ApplyStageToGnew(io::Env& env, std::string* gnew_file,
                        const StageOutcome& outcome, uint32_t k) {
  const std::string next = env.TempName("gnew");
  auto reader = env.OpenReader(*gnew_file);
  TRUSS_RETURN_IF_ERROR(reader.status());
  auto writer = env.OpenWriter(next);
  TRUSS_RETURN_IF_ERROR(writer.status());

  size_t ci = 0, pi = 0;
  io::GnewRecord rec;
  const auto advance = [](const std::vector<Edge>& list, size_t* idx,
                          const io::GnewRecord& r) {
    while (*idx < list.size() &&
           (list[*idx].u < r.u ||
            (list[*idx].u == r.u && list[*idx].v < r.v))) {
      ++(*idx);
    }
    return *idx < list.size() && list[*idx].u == r.u && list[*idx].v == r.v;
  };
  while (reader.value()->ReadRecord(&rec)) {
    if (advance(outcome.new_class, &ci, rec)) rec.cls = k;
    if (advance(outcome.pruned, &pi, rec)) continue;
    writer.value()->WriteRecord(rec);
  }
  TRUSS_RETURN_IF_ERROR(reader.value()->status());
  TRUSS_RETURN_IF_ERROR(writer.value()->Close());
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(*gnew_file));
  *gnew_file = next;
  return Status::OK();
}

}  // namespace

Result<ExternalStats> TopDownDecomposeFile(io::Env& env,
                                           const std::string& graph_file,
                                           VertexId num_vertices,
                                           const ExternalConfig& config,
                                           const std::string& classes_out) {
  WallTimer timer;
  const io::IoStats start_io = env.stats();
  ExternalStats stats;
  TRUSS_RETURN_IF_ERROR(env.health());

  auto class_writer_res = env.OpenWriter(classes_out);
  TRUSS_RETURN_IF_ERROR(class_writer_res.status());
  auto class_writer = class_writer_res.MoveValue();

  // Stage 1: Algorithm 3 in exact-support mode, Φ2 falls out (Algorithm 7,
  // Step 1).
  auto lb_res =
      RunLowerBounding(env, graph_file, num_vertices, config,
                       BoundMode::kExactSupport, class_writer.get());
  TRUSS_RETURN_IF_ERROR_RESULT(lb_res);
  const LowerBoundingOutput lb = lb_res.MoveValue();
  stats.lower_bound_iterations = lb.iterations;
  stats.parts_processed = lb.parts_processed;
  stats.phi2_edges = lb.phi2_edges;
  stats.classified_edges = lb.phi2_edges;
  if (lb.phi2_edges > 0) stats.kmax = 2;

  std::string gnew = lb.gnew_file;

  // Stage 2: UpperBounding (Procedure 6).
  uint32_t k = 0;
  if (lb.gnew_edges > 0) {
    auto k1st_res = RunUpperBounding(env, &gnew, num_vertices, config);
    TRUSS_RETURN_IF_ERROR_RESULT(k1st_res);
    k = k1st_res.value();
  }

  // Stage 3: walk k downward (Algorithm 7, Steps 3-9).
  uint64_t unclassified = lb.gnew_edges;
  uint32_t classes_found = 0;
  const uint64_t total_edges = lb.phi2_edges + lb.gnew_edges;
  while (unclassified > 0 && k >= 3 &&
         (config.top_t < 0 ||
          classes_found < static_cast<uint32_t>(config.top_t))) {
    if (config.hooks.ShouldCancel()) {
      return Status::Cancelled("top-down decomposition cancelled at k = " +
                               std::to_string(k));
    }
    config.hooks.Report("peel", k, stats.classified_edges, total_edges);
    // Scan 1: U_k over unclassified edges with ψ ≥ k (Step 4); remember the
    // largest unclassified ψ so empty levels are skipped in one jump.
    std::vector<uint8_t> in_uk(num_vertices, 0);
    bool any = false;
    uint32_t max_psi = 0;
    {
      auto reader = env.OpenReader(gnew);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GnewRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        if (rec.cls != 0) continue;
        max_psi = std::max(max_psi, rec.aux);
        if (rec.aux >= k) {
          in_uk[rec.u] = 1;
          in_uk[rec.v] = 1;
          any = true;
        }
      }
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
    }
    if (!any) {
      if (max_psi < 3) break;  // nothing left to classify
      k = max_psi;             // jump down to the next populated bound
      continue;
    }

    // Scan 2: measure H = NS(U_k) (Steps 5-6).
    uint64_t h_edges = 0;
    {
      auto reader = env.OpenReader(gnew);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GnewRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        if (in_uk[rec.u] != 0 || in_uk[rec.v] != 0) ++h_edges;
      }
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
    }
    ++stats.candidate_subgraphs;

    StageOutcome outcome;
    if (h_edges * kBytesPerEdgeInMemory <= config.memory_budget_bytes) {
      std::vector<io::GnewRecord> h_records;
      h_records.reserve(h_edges);
      auto reader = env.OpenReader(gnew);
      TRUSS_RETURN_IF_ERROR(reader.status());
      io::GnewRecord rec;
      while (reader.value()->ReadRecord(&rec)) {
        if (in_uk[rec.u] != 0 || in_uk[rec.v] != 0) h_records.push_back(rec);
      }
      TRUSS_RETURN_IF_ERROR(reader.value()->status());
      outcome = TopDownProcedureInMemory(h_records, in_uk, k);
    } else {
      ++stats.candidate_overflows;
      const std::string hq_file = env.TempName("p10_hq");
      const std::string hfull_file = env.TempName("p10_hfull");
      {
        auto reader = env.OpenReader(gnew);
        TRUSS_RETURN_IF_ERROR(reader.status());
        auto wq = env.OpenWriter(hq_file);
        TRUSS_RETURN_IF_ERROR(wq.status());
        auto wf = env.OpenWriter(hfull_file);
        TRUSS_RETURN_IF_ERROR(wf.status());
        io::GnewRecord rec;
        while (reader.value()->ReadRecord(&rec)) {
          if (in_uk[rec.u] == 0 && in_uk[rec.v] == 0) continue;
          wf.value()->WriteRecord(rec);
          if (rec.cls > 0 || rec.aux >= k) wq.value()->WriteRecord(rec);
        }
        TRUSS_RETURN_IF_ERROR(reader.value()->status());
        TRUSS_RETURN_IF_ERROR(wq.value()->Close());
        TRUSS_RETURN_IF_ERROR(wf.value()->Close());
      }
      auto outcome_res = TopDownProcedureExternal(
          env, hq_file, hfull_file, num_vertices, config, in_uk, k, &stats);
      TRUSS_RETURN_IF_ERROR_RESULT(outcome_res);
      outcome = outcome_res.MoveValue();
    }

    if (!outcome.new_class.empty()) {
      for (const Edge& e : outcome.new_class) {
        class_writer->WriteRecord(io::ClassRecord{e.u, e.v, k});
      }
      unclassified -= outcome.new_class.size();
      stats.classified_edges += outcome.new_class.size();
      stats.kmax = std::max(stats.kmax, k);
      ++classes_found;
    }
    if (!outcome.new_class.empty() || !outcome.pruned.empty()) {
      TRUSS_RETURN_IF_ERROR(ApplyStageToGnew(env, &gnew, outcome, k));
    }
    --k;
  }

  // Any stream failure the per-loop checks could not report (e.g. a scan
  // closure that cannot return Status) surfaces here as a typed error —
  // in particular before the completeness invariant below can abort on
  // partial data.
  TRUSS_RETURN_IF_ERROR(env.health());

  if (config.top_t < 0) {
    // Full decomposition must account for every edge.
    TRUSS_CHECK_EQ(unclassified, 0u);
  }

  TRUSS_RETURN_IF_ERROR(env.DeleteFile(gnew));
  TRUSS_RETURN_IF_ERROR(class_writer->Close());
  stats.seconds = timer.Seconds();
  stats.io = io::DiffStats(env.stats(), start_io);
  return stats;
}

Result<TrussDecompositionResult> TopDownDecompose(io::Env& env, const Graph& g,
                                                  const ExternalConfig& config,
                                                  ExternalStats* stats) {
  graph::DCheckValidCsr(g);
  TRUSS_CHECK_LT(config.top_t, 0);
  const std::string graph_file = env.TempName("graph");
  TRUSS_RETURN_IF_ERROR(WriteGraphFile(env, g, graph_file));
  const std::string classes_file = env.TempName("classes");
  auto stats_res = TopDownDecomposeFile(env, graph_file, g.num_vertices(),
                                        config, classes_file);
  TRUSS_RETURN_IF_ERROR_RESULT(stats_res);
  if (stats != nullptr) *stats = stats_res.value();

  auto result = LoadClassesAsDecomposition(env, classes_file, g);
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(classes_file));
  return result;
}

Result<std::vector<io::ClassRecord>> TopDownTopClasses(
    io::Env& env, const Graph& g, const ExternalConfig& config,
    ExternalStats* stats) {
  graph::DCheckValidCsr(g);
  const std::string graph_file = env.TempName("graph");
  TRUSS_RETURN_IF_ERROR(WriteGraphFile(env, g, graph_file));
  const std::string classes_file = env.TempName("classes");
  auto stats_res = TopDownDecomposeFile(env, graph_file, g.num_vertices(),
                                        config, classes_file);
  TRUSS_RETURN_IF_ERROR_RESULT(stats_res);
  if (stats != nullptr) *stats = stats_res.value();

  auto records = ReadAllRecords<io::ClassRecord>(env, classes_file);
  TRUSS_RETURN_IF_ERROR_RESULT(records);
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(classes_file));
  return records.MoveValue();
}

}  // namespace truss
