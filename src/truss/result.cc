#include "truss/result.h"

#include <algorithm>

namespace truss {

std::vector<EdgeId> TrussDecompositionResult::KClassEdges(uint32_t k) const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < truss_number.size(); ++e) {
    if (truss_number[e] == k) out.push_back(e);
  }
  return out;
}

std::vector<EdgeId> TrussDecompositionResult::TrussEdges(uint32_t k) const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < truss_number.size(); ++e) {
    if (truss_number[e] >= k) out.push_back(e);
  }
  return out;
}

std::map<uint32_t, uint64_t> TrussDecompositionResult::ClassSizes() const {
  std::map<uint32_t, uint64_t> sizes;
  for (const uint32_t t : truss_number) ++sizes[t];
  return sizes;
}

void TrussDecompositionResult::RecomputeKmax() {
  kmax = 0;
  for (const uint32_t t : truss_number) kmax = std::max(kmax, t);
}

Subgraph ExtractKTruss(const Graph& g, const TrussDecompositionResult& r,
                       uint32_t k) {
  TRUSS_CHECK_EQ(r.truss_number.size(), g.num_edges());
  const std::vector<EdgeId> edges = r.TrussEdges(k);
  return SubgraphFromEdges(g, edges);
}

bool SameDecomposition(const TrussDecompositionResult& a,
                       const TrussDecompositionResult& b) {
  return a.kmax == b.kmax && a.truss_number == b.truss_number;
}

}  // namespace truss
