// Shared configuration and statistics for the I/O-efficient decompositions
// (§4): the bottom-up algorithm (Algorithms 3/4, Procedures 5/9) and the
// top-down algorithm (Procedure 6, Algorithm 7, Procedures 8/10).

#ifndef TRUSS_TRUSS_EXTERNAL_H_
#define TRUSS_TRUSS_EXTERNAL_H_

#include <cstdint>
#include <string>

#include "common/hooks.h"
#include "io/env.h"
#include "partition/partition.h"

namespace truss {

/// Tuning knobs of the external algorithms. The memory budget plays the role
/// of M in the paper's I/O model: candidate subgraphs and partition parts
/// are sized against it, and exceeding it triggers the partition-based
/// overflow procedures (9/10).
struct ExternalConfig {
  /// Simulated main-memory size M in bytes.
  uint64_t memory_budget_bytes = 256ull << 20;
  /// Partitioning strategy for neighborhood subgraphs.
  partition::Strategy strategy = partition::Strategy::kSequential;
  /// Seed for randomized partitioning.
  uint64_t seed = 42;
  /// Top-down only: number of top classes to compute; -1 = all classes.
  int32_t top_t = -1;
  /// Worker threads for the local (in-memory) support computations run on
  /// candidate subgraphs and partition parts. Results are identical for
  /// every value; see ComputeEdgeSupports(g, threads).
  uint32_t threads = 1;
  /// Emit per-stage progress lines on stderr.
  bool verbose = false;
  /// Progress + cooperative-cancellation hooks, polled once per
  /// lower-bounding iteration and once per k-level. Cancellation surfaces
  /// as Status::Cancelled from the decomposition entry point.
  ExecutionHooks hooks;
};

/// Execution counters reported by both external algorithms.
struct ExternalStats {
  uint32_t lower_bound_iterations = 0;
  uint64_t parts_processed = 0;
  /// Candidate subgraphs H extracted (one per k-stage, plus overflow passes).
  uint64_t candidate_subgraphs = 0;
  /// Candidate subgraphs that exceeded the budget (Procedure 9/10 taken).
  uint64_t candidate_overflows = 0;
  /// Number of edges classified into Φ2 during lower bounding.
  uint64_t phi2_edges = 0;
  /// Total edges classified (equals m when running to completion).
  uint64_t classified_edges = 0;
  uint32_t kmax = 0;
  /// I/O performed, in the Env's block units.
  io::IoStats io;
  double seconds = 0.0;
};

/// Approximate bytes of in-memory structure per edge when a candidate
/// subgraph or partition part is materialized (local CSR + edge array +
/// per-edge algorithm state). Used to convert the byte budget into the
/// partitioners' weight units and to decide whether H fits.
inline constexpr uint64_t kBytesPerEdgeInMemory = 48;

/// Converts a byte budget into partition weight units (deg+1 sums).
inline uint64_t BudgetToWeight(uint64_t budget_bytes) {
  const uint64_t units = budget_bytes / kBytesPerEdgeInMemory;
  return units == 0 ? 1 : units;
}

}  // namespace truss

#endif  // TRUSS_TRUSS_EXTERNAL_H_
