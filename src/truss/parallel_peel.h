// TD-parallel: PKT-style shared-memory parallel truss peeling
// (Kabir & Madduri, "Shared-Memory Graph Truss Decomposition", HiPC 2017;
// see PAPERS.md).
//
// Algorithm 2's peel is strictly sequential: one lowest-support edge at a
// time. This variant peels level-synchronously instead: all unprocessed
// edges with support ≤ l form the level-l frontier and are peeled
// together, in sub-levels —
//
//   1. Scan/compact the live edge array in parallel, pulling the frontier
//      and keeping the rest (deterministic per-shard partition merged in
//      shard order; empty levels are skipped via the minimum kept
//      support).
//   2. Process the frontier in degree-balanced shards (SplitBalanced):
//      each edge's triangles are enumerated hash-free by sorted-adjacency
//      intersection (ForEachCommonNeighbor), and the two remaining
//      triangle edges get their supports decremented with relaxed atomics
//      clamped at the level floor. Triangles shared by several frontier
//      edges are settled once, by the lowest edge id.
//   3. Edges whose support hits the floor join per-thread next-frontier
//      queues; the queues are merged in shard order and sorted, so the
//      next sub-level's frontier is canonical even though which thread
//      observed a transition is scheduling-dependent.
//
// Frontier membership is a fixpoint of the support values — it does not
// depend on processing order — so the truss numbers are identical to
// ImprovedTrussDecomposition and the naive oracle for every thread count.

#ifndef TRUSS_TRUSS_PARALLEL_PEEL_H_
#define TRUSS_TRUSS_PARALLEL_PEEL_H_

#include "common/hooks.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "graph/graph.h"
#include "truss/result.h"

namespace truss {

/// Level-synchronous parallel truss decomposition. `threads` parallelizes
/// both the support initialization and the peel; results are identical for
/// every thread count. `tracker` (optional) records peak structure memory.
/// `hooks` (optional) is polled once per sub-level: progress is reported
/// as stage "peel" with k = level + 2, and cancellation aborts the run
/// with Status::Cancelled. `timings` (optional) receives the support/peel
/// phase split.
TRUSS_NODISCARD Result<TrussDecompositionResult> ParallelTrussDecomposition(
    const Graph& g, MemoryTracker* tracker = nullptr, uint32_t threads = 1,
    const ExecutionHooks* hooks = nullptr, PhaseTimings* timings = nullptr);

}  // namespace truss

#endif  // TRUSS_TRUSS_PARALLEL_PEEL_H_
