// Result type of truss decomposition and k-truss / k-class extraction.
//
// Truss decomposition (problem definition, §2) assigns every edge its truss
// number ϕ(e) = max{k : e ∈ T_k}. The k-class Φ_k (Definition 3) is the set
// of edges with ϕ(e) = k, and the k-truss T_k (Definition 2) is the subgraph
// formed by ∪_{j≥k} Φ_j.

#ifndef TRUSS_TRUSS_RESULT_H_
#define TRUSS_TRUSS_RESULT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "graph/subgraph.h"

namespace truss {

/// Wall-clock split of an in-memory decomposition run: support
/// initialization (triangle counting) vs the peel proper. The in-memory
/// algorithms fill one when handed a non-null pointer; the engine surfaces
/// the split as DecomposeStats::support_seconds / peel_seconds so the
/// BENCH_* artifacts show where the time goes.
struct PhaseTimings {
  double support_seconds = 0.0;
  double peel_seconds = 0.0;
};

/// Truss numbers for every edge of a graph.
struct TrussDecompositionResult {
  /// truss_number[EdgeId] = ϕ(e) ≥ 2.
  std::vector<uint32_t> truss_number;
  /// Largest truss number of any edge (kmax); 2 for triangle-free graphs,
  /// 0 for edgeless graphs.
  uint32_t kmax = 0;

  /// The k-class Φ_k: ids of edges with ϕ(e) = k.
  std::vector<EdgeId> KClassEdges(uint32_t k) const;

  /// Edge ids of the k-truss T_k: edges with ϕ(e) ≥ k.
  std::vector<EdgeId> TrussEdges(uint32_t k) const;

  /// Sizes of all non-empty k-classes, keyed by k.
  std::map<uint32_t, uint64_t> ClassSizes() const;

  /// Recomputes kmax from truss_number (used by algorithms after filling).
  void RecomputeKmax();
};

/// Extracts T_k as a subgraph of `g` with parent mappings. For k == 2 this
/// is all of g restricted to non-isolated vertices.
Subgraph ExtractKTruss(const Graph& g, const TrussDecompositionResult& r,
                       uint32_t k);

/// True iff two decompositions agree edge-for-edge.
bool SameDecomposition(const TrussDecompositionResult& a,
                       const TrussDecompositionResult& b);

}  // namespace truss

#endif  // TRUSS_TRUSS_RESULT_H_
