// TD-inmem: Cohen's in-memory truss decomposition (paper Algorithm 1, [15]).
//
// For each k starting at 3, repeatedly removes an edge e = (u, v) with
// sup(e) < k-2, recomputing W = nb(u) ∩ nb(v) by sorted-list intersection in
// O(deg(u) + deg(v)) per removal — the step whose Σ_v deg(v)² total cost the
// improved Algorithm 2 eliminates. Kept as the baseline for Table 3.
//
// Per §3.1 we adopt the two concessions the paper itself makes for this
// baseline: supports are initialized with the fast triangle counter, and
// removal is implicit (a deleted-mark, not adjacency surgery).

#ifndef TRUSS_TRUSS_COHEN_H_
#define TRUSS_TRUSS_COHEN_H_

#include "common/memory_tracker.h"
#include "graph/graph.h"
#include "truss/result.h"

namespace truss {

/// Runs Algorithm 1. `tracker` (optional) records peak structure memory.
/// `threads` parallelizes the support initialization only; results are
/// identical for every thread count. `timings` (optional) receives the
/// support/peel phase split.
TrussDecompositionResult CohenTrussDecomposition(
    const Graph& g, MemoryTracker* tracker = nullptr, uint32_t threads = 1,
    PhaseTimings* timings = nullptr);

}  // namespace truss

#endif  // TRUSS_TRUSS_COHEN_H_
