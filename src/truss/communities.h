// Truss-based community structure.
//
// The paper motivates k-trusses as "hierarchical subgraphs that represent
// the cores of a network at different levels of granularity" (§1), suitable
// for community detection, visualization and fingerprinting. This module
// materializes that view: the connected components of each k-truss are the
// level-k communities, and every edge's community chain is nested along k
// (T_k ⊇ T_{k+1} implies each level-(k+1) community lies inside exactly one
// level-k community).

#ifndef TRUSS_TRUSS_COMMUNITIES_H_
#define TRUSS_TRUSS_COMMUNITIES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "truss/result.h"

namespace truss {

/// One connected component of a k-truss.
struct TrussCommunity {
  uint32_t k = 0;
  std::vector<VertexId> vertices;  // sorted parent vertex ids
  uint64_t edges = 0;
};

/// Sentinel returned by lookups that find no community.
inline constexpr uint32_t kNoCommunity = std::numeric_limits<uint32_t>::max();

/// The communities of every level 3..kmax.
///
/// Lookups return indices into `communities` rather than pointers: an index
/// stays valid when the hierarchy is copied or moved, which matters to
/// consumers (the serving layer's TrussIndex) that hold lookup results
/// across snapshot lifetimes where a raw pointer would dangle.
struct TrussHierarchy {
  /// All communities, ordered by (k, smallest member vertex).
  std::vector<TrussCommunity> communities;

  /// Indices into `communities` of the level-k communities, in storage
  /// order (ascending smallest member vertex).
  std::vector<uint32_t> AtLevel(uint32_t k) const;

  /// Index of the community at the largest k whose truss contains vertex v;
  /// kNoCommunity if v is in no 3-truss.
  uint32_t DeepestCommunityOf(VertexId v) const;
};

/// Builds the full hierarchy from a decomposition. O(Σ_k |T_k|) time.
TrussHierarchy BuildTrussHierarchy(const Graph& g,
                                   const TrussDecompositionResult& r);

/// Connected components of a single k-truss: each edge-induced component as
/// a community. Lighter than building the full hierarchy.
std::vector<TrussCommunity> KTrussCommunities(
    const Graph& g, const TrussDecompositionResult& r, uint32_t k);

}  // namespace truss

#endif  // TRUSS_TRUSS_COMMUNITIES_H_
