// TD-bottomup: the I/O-efficient bottom-up truss decomposition
// (paper Algorithm 4 with Procedure 5, and Procedure 9 when a candidate
// subgraph exceeds the memory budget).
//
// Stage 1 (LowerBounding, Algorithm 3) prunes Φ2 and annotates every
// remaining edge with a truss-number lower bound φ(e). Stage 2 walks k
// upward: the candidate vertex set U_k = {v : ∃e=(u,v) ∈ Gnew, φ(e) ≤ k}
// is collected in one scan of Gnew, the candidate subgraph H = NS(U_k) is
// extracted in a second scan, Φ_k is peeled out of H (in memory when H
// fits, by partitioned passes otherwise), and Φ_k is removed from Gnew
// before moving to k+1.

#ifndef TRUSS_TRUSS_BOTTOM_UP_H_
#define TRUSS_TRUSS_BOTTOM_UP_H_

#include <string>

#include "graph/graph.h"
#include "io/env.h"
#include "truss/external.h"
#include "truss/result.h"

namespace truss {

/// Runs the full bottom-up decomposition over `graph_file` (a (u,v)-sorted
/// GEdgeRecord file; consumed). Writes one ClassRecord per edge to
/// `classes_out` and returns execution statistics.
TRUSS_NODISCARD Result<ExternalStats> BottomUpDecomposeFile(io::Env& env,
                                            const std::string& graph_file,
                                            VertexId num_vertices,
                                            const ExternalConfig& config,
                                            const std::string& classes_out);

/// Convenience wrapper: ships `g` through the Env, runs the external
/// algorithm, and projects the classes back onto `g`'s edge ids (used by
/// tests and benchmarks, where the reference graph fits in memory anyway).
TRUSS_NODISCARD Result<TrussDecompositionResult> BottomUpDecompose(
    io::Env& env, const Graph& g, const ExternalConfig& config,
    ExternalStats* stats = nullptr);

}  // namespace truss

#endif  // TRUSS_TRUSS_BOTTOM_UP_H_
