#include "truss/communities.h"

#include <algorithm>
#include <unordered_map>

#include "graph/subgraph.h"

namespace truss {

namespace {

// Union-find over a dense id space.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

std::vector<uint32_t> TrussHierarchy::AtLevel(uint32_t k) const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < communities.size(); ++i) {
    if (communities[i].k == k) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

uint32_t TrussHierarchy::DeepestCommunityOf(VertexId v) const {
  uint32_t best = kNoCommunity;
  for (size_t i = 0; i < communities.size(); ++i) {
    const TrussCommunity& c = communities[i];
    if ((best == kNoCommunity || c.k > communities[best].k) &&
        std::binary_search(c.vertices.begin(), c.vertices.end(), v)) {
      best = static_cast<uint32_t>(i);
    }
  }
  return best;
}

std::vector<TrussCommunity> KTrussCommunities(
    const Graph& g, const TrussDecompositionResult& r, uint32_t k) {
  TRUSS_CHECK_EQ(r.truss_number.size(), g.num_edges());

  // Union endpoints of every T_k edge, then group by representative.
  UnionFind uf(g.num_vertices());
  std::vector<uint8_t> touched(g.num_vertices(), 0);
  std::vector<uint64_t> edge_count;  // indexed later per component
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (r.truss_number[e] < k) continue;
    const Edge edge = g.edge(e);
    uf.Union(edge.u, edge.v);
    touched[edge.u] = touched[edge.v] = 1;
  }

  std::unordered_map<uint32_t, size_t> component_of_root;
  std::vector<TrussCommunity> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (touched[v] == 0) continue;
    const uint32_t root = uf.Find(v);
    auto [it, inserted] = component_of_root.emplace(root, out.size());
    if (inserted) {
      out.emplace_back();
      out.back().k = k;
    }
    out[it->second].vertices.push_back(v);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (r.truss_number[e] < k) continue;
    const uint32_t root = uf.Find(g.edge(e).u);
    ++out[component_of_root.at(root)].edges;
  }
  // Vertices were appended in ascending order already; normalize ordering of
  // the communities themselves by smallest member.
  std::sort(out.begin(), out.end(),
            [](const TrussCommunity& a, const TrussCommunity& b) {
              return a.vertices.front() < b.vertices.front();
            });
  return out;
}

TrussHierarchy BuildTrussHierarchy(const Graph& g,
                                   const TrussDecompositionResult& r) {
  TrussHierarchy h;
  for (uint32_t k = 3; k <= r.kmax; ++k) {
    std::vector<TrussCommunity> level = KTrussCommunities(g, r, k);
    for (TrussCommunity& c : level) h.communities.push_back(std::move(c));
  }
  return h;
}

}  // namespace truss
