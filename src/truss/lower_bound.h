// LowerBounding (paper Algorithm 3): the first stage of both external
// algorithms.
//
// Iteratively partitions the shrinking on-disk graph G into memory-budgeted
// neighborhood subgraphs NS(P_i), computes local truss numbers ϕ(e, H) as
// lower bounds φ(e), extracts the 2-class (edges with zero support in the
// original graph), and emits the remaining edges as Gnew.
//
// Exactness of supports: a triangle is credited to all three of its edges in
// the single iteration where ≥2 of its vertices first co-locate in a part
// (the Chu–Cheng triangle-listing invariant [13]); credits for edges not yet
// internal are spilled as deltas and merge-joined into G's records at the end
// of each iteration. When an edge finally becomes internal, its exact
// support in the *original* graph is sup_acc + (local support in H) — see
// DESIGN.md §3.1 for why the accumulated value is required.
//
// Two modes (Algorithm 7, Step 1): the bottom-up algorithm labels Gnew edges
// with φ(e); the top-down algorithm labels them with the exact sup(e).

#ifndef TRUSS_TRUSS_LOWER_BOUND_H_
#define TRUSS_TRUSS_LOWER_BOUND_H_

#include <string>

#include "common/types.h"
#include "io/env.h"
#include "truss/external.h"

namespace truss {

/// Label written into Gnew records (Algorithm 3, Step 10 / Algorithm 7,
/// Step 1).
enum class BoundMode {
  kPhiLowerBound,  // label = φ(e), for the bottom-up algorithm
  kExactSupport,   // label = sup(e), for the top-down algorithm
};

struct LowerBoundingOutput {
  /// GnewRecord file sorted by (u, v); label per BoundMode, aux = 0, cls = 0.
  std::string gnew_file;
  uint64_t gnew_edges = 0;
  /// Edges written to `class_out` with truss number 2.
  uint64_t phi2_edges = 0;
  uint32_t iterations = 0;
  uint64_t parts_processed = 0;
};

/// Runs Algorithm 3 on `graph_file` (a (u,v)-sorted GEdgeRecord file, which
/// is consumed). Φ2 edges are appended to `class_out`. `num_vertices` bounds
/// vertex ids in the file.
TRUSS_NODISCARD Result<LowerBoundingOutput> RunLowerBounding(io::Env& env,
                                             const std::string& graph_file,
                                             VertexId num_vertices,
                                             const ExternalConfig& config,
                                             BoundMode mode,
                                             io::BlockWriter* class_out);

/// Computes the exact support of every edge of a *static* edge file within
/// that file's own graph, using the same iterative partition-and-accumulate
/// scheme (no classification, no removal from the caller's perspective).
/// Output: a (u,v)-sorted GEdgeRecord file whose sup_acc holds the exact
/// support. Used by the overflow Procedures 9/10 to certify termination.
TRUSS_NODISCARD Result<std::string> ComputeExactSupports(io::Env& env,
                                         const std::string& edge_file,
                                         VertexId num_vertices,
                                         const ExternalConfig& config);

}  // namespace truss

#endif  // TRUSS_TRUSS_LOWER_BOUND_H_
