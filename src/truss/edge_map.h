// Open-addressing hash map from normalized edges to EdgeId.
//
// Algorithm 2 needs expected-O(1) membership tests "(v, w) ∈ E_G" (§3.2,
// Step 8); the paper keeps E_G in a hashtable for exactly this reason. A
// flat table with linear probing over packed 64-bit keys outperforms
// std::unordered_map by a wide margin and has a predictable memory footprint
// (reported for Table 3's peak-memory column).

#ifndef TRUSS_TRUSS_EDGE_MAP_H_
#define TRUSS_TRUSS_EDGE_MAP_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace truss {

/// Immutable edge → EdgeId hash table built once from a graph.
class EdgeMap {
 public:
  explicit EdgeMap(const Graph& g) {
    // Power-of-two capacity at load factor ≤ 0.5.
    size_t cap = 16;
    while (cap < static_cast<size_t>(g.num_edges()) * 2) cap <<= 1;
    mask_ = cap - 1;
    keys_.assign(cap, kEmptyKey);
    values_.assign(cap, kInvalidEdge);
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      Insert(PackKey(g.edge(id)), id);
    }
  }

  /// Returns the edge id of {a, b}, or kInvalidEdge if absent.
  EdgeId Find(VertexId a, VertexId b) const {
    if (a == b) return kInvalidEdge;
    const uint64_t key = PackKey(MakeEdge(a, b));
    size_t slot = Hash(key) & mask_;
    while (true) {
      if (keys_[slot] == key) return values_[slot];
      if (keys_[slot] == kEmptyKey) return kInvalidEdge;
      slot = (slot + 1) & mask_;
    }
  }

  /// Approximate heap footprint in bytes.
  uint64_t SizeBytes() const {
    return keys_.size() * sizeof(uint64_t) + values_.size() * sizeof(EdgeId);
  }

 private:
  static constexpr uint64_t kEmptyKey = ~0ULL;

  static uint64_t PackKey(const Edge& e) {
    return (static_cast<uint64_t>(e.u) << 32) | e.v;
  }

  static uint64_t Hash(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  void Insert(uint64_t key, EdgeId value) {
    size_t slot = Hash(key) & mask_;
    while (keys_[slot] != kEmptyKey) {
      TRUSS_CHECK_NE(keys_[slot], key);  // edges are unique
      slot = (slot + 1) & mask_;
    }
    keys_[slot] = key;
    values_[slot] = value;
  }

  size_t mask_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<EdgeId> values_;
};

}  // namespace truss

#endif  // TRUSS_TRUSS_EDGE_MAP_H_
