// TD-MR: Cohen's MapReduce truss algorithm [16], the baseline of the
// paper's Table 4.
//
// Per peeling iteration the pipeline runs seven MapReduce rounds:
//   R1  vertex degrees            R2a attach degree to edge endpoints
//   R2b combine endpoint halves   R3  open triads from low-degree endpoints
//   R4  triad ⋈ edge → triangles  R5  per-edge triangle counts
//   R6  drop edges with sup < k-2
// and iterates until no edge is dropped (the fix-point is T_k); the full
// decomposition repeats this for k = 3, 4, … until the graph is exhausted.
// The repeated whole-graph triangle enumeration is precisely why the paper
// finds MapReduce unsuited to truss decomposition — the round counts and
// shuffle volumes reported by the stats reproduce that behavior.

#ifndef TRUSS_MAPREDUCE_MR_TRUSS_H_
#define TRUSS_MAPREDUCE_MR_TRUSS_H_

#include <vector>

#include "graph/graph.h"
#include "mapreduce/engine.h"
#include "truss/result.h"

namespace truss::mr {

struct MrTrussOptions {
  EngineOptions engine;
};

struct MrTrussStats {
  EngineStats engine;
  uint32_t kmax = 0;
  /// Total peeling iterations (each costs 7 rounds).
  uint32_t peel_iterations = 0;
  double seconds = 0.0;
};

/// Full truss decomposition of `g` via iterated MapReduce peeling.
TRUSS_NODISCARD Result<TrussDecompositionResult> MapReduceTrussDecomposition(
    io::Env& env, const Graph& g, const MrTrussOptions& options,
    MrTrussStats* stats = nullptr);

/// Computes the edge ids of the single k-truss T_k of `g`.
TRUSS_NODISCARD Result<std::vector<EdgeId>> MapReduceKTruss(io::Env& env, const Graph& g,
                                            uint32_t k,
                                            const MrTrussOptions& options,
                                            MrTrussStats* stats = nullptr);

}  // namespace truss::mr

#endif  // TRUSS_MAPREDUCE_MR_TRUSS_H_
