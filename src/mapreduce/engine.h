// Single-machine MapReduce runtime simulator.
//
// Substitutes for the 20-node Hadoop cluster of the paper's TD-MR baseline
// (§7.2, [16]); see DESIGN.md §2.3. Each round materializes the map output,
// shuffles it with a real external sort through the counting Env, and
// streams sorted groups through the reducer — the actual data movement a
// Hadoop round performs, minus cluster scheduling. Scheduling cost is
// modeled, not waited out: `per_round_latency_seconds` accumulates into
// Stats::simulated_latency_seconds so benches can report Hadoop-adjusted
// times without sleeping.
//
// All values flow as fixed 16-byte MrRec payloads keyed by uint64; rounds
// assign field meanings. Joins are expressed as multi-input rounds (one
// mapper per input, a shared reducer).

#ifndef TRUSS_MAPREDUCE_ENGINE_H_
#define TRUSS_MAPREDUCE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/env.h"

namespace truss::mr {

/// Generic 16-byte value record; each round interprets the fields.
struct MrRec {
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint32_t tag = 0;
};

/// Keyed record flowing through the shuffle.
struct KeyedRec {
  uint64_t key = 0;
  MrRec value;
};

struct EngineOptions {
  /// Memory budget for the shuffle's external sort.
  uint64_t memory_budget_bytes = 64ull << 20;
  /// Modeled scheduling latency charged per round (Hadoop-era job startup);
  /// accumulated in stats, never slept.
  double per_round_latency_seconds = 0.0;
};

struct EngineStats {
  uint64_t rounds = 0;
  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t reduce_groups = 0;
  uint64_t shuffle_bytes = 0;
  double simulated_latency_seconds = 0.0;
};

/// The runtime. One Engine instance accumulates stats across rounds.
class Engine {
 public:
  Engine(io::Env* env, EngineOptions options)
      : env_(*env), options_(options) {}

  using EmitFn = std::function<void(uint64_t key, const MrRec& value)>;
  /// Mapper: called once per input record with an emitter.
  using MapFn = std::function<void(const MrRec& rec, const EmitFn& emit)>;
  /// Reducer: called once per key group with all values and an emitter for
  /// output records (written to the round's output file).
  using ReduceFn = std::function<void(uint64_t key,
                                      const std::vector<MrRec>& values,
                                      const std::function<void(const MrRec&)>&
                                          emit)>;

  /// Runs one round: inputs[i] is mapped by mappers[i]; the merged keyed
  /// stream is shuffled and reduced into `output`.
  TRUSS_NODISCARD Status Run(const std::vector<std::string>& inputs,
             const std::vector<MapFn>& mappers, const ReduceFn& reducer,
             const std::string& output);

  const EngineStats& stats() const { return stats_; }
  io::Env& env() { return env_; }

 private:
  io::Env& env_;
  EngineOptions options_;
  EngineStats stats_;
};

}  // namespace truss::mr

#endif  // TRUSS_MAPREDUCE_ENGINE_H_
