#include "mapreduce/mr_truss.h"

#include <algorithm>

#include "common/timer.h"

namespace truss::mr {

namespace {

// Value tags distinguishing record roles inside join rounds.
enum : uint32_t {
  kTagDegree = 1,
  kTagEdge = 2,
  kTagTriad = 3,
  kTagCount = 4,
};

uint64_t PackEdge(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

// One peeling iteration at support threshold `threshold` (= k-2): runs the
// seven-round pipeline over `edges_in` (MrRec{a=u, b=v}) and writes the
// surviving edges to `edges_out`. Dropped edges are appended to `dropped`.
Status PeelIteration(Engine& engine, const std::string& edges_in,
                     const std::string& edges_out, uint32_t threshold,
                     std::vector<Edge>* dropped) {
  io::Env& env = engine.env();

  // R1: vertex degrees. edge -> (u,1),(v,1); reduce counts.
  const std::string deg_file = env.TempName("mr_deg");
  TRUSS_RETURN_IF_ERROR(engine.Run(
      {edges_in},
      {[](const MrRec& e, const Engine::EmitFn& emit) {
        emit(e.a, MrRec{});
        emit(e.b, MrRec{});
      }},
      [](uint64_t key, const std::vector<MrRec>& vals,
         const std::function<void(const MrRec&)>& out) {
        out(MrRec{static_cast<uint32_t>(key),
                  static_cast<uint32_t>(vals.size()), 0, kTagDegree});
      },
      deg_file));

  // R2a: join degrees onto edge endpoints. Emits one annotated half per
  // endpoint: {u, v, deg(vertex), tag = which endpoint}.
  const std::string half_file = env.TempName("mr_half");
  TRUSS_RETURN_IF_ERROR(engine.Run(
      {deg_file, edges_in},
      {[](const MrRec& d, const Engine::EmitFn& emit) { emit(d.a, d); },
       [](const MrRec& e, const Engine::EmitFn& emit) {
         emit(e.a, MrRec{e.a, e.b, 0, kTagEdge});
         emit(e.b, MrRec{e.a, e.b, 1, kTagEdge});
       }},
      [](uint64_t, const std::vector<MrRec>& vals,
         const std::function<void(const MrRec&)>& out) {
        uint32_t deg = 0;
        for (const MrRec& v : vals) {
          if (v.tag == kTagDegree) deg = v.b;
        }
        for (const MrRec& v : vals) {
          if (v.tag == kTagEdge) out(MrRec{v.a, v.b, deg, v.c});
        }
      },
      half_file));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(deg_file));

  // R2b: combine the two halves into {u, v, du, dv}.
  const std::string ann_file = env.TempName("mr_ann");
  TRUSS_RETURN_IF_ERROR(engine.Run(
      {half_file},
      {[](const MrRec& h, const Engine::EmitFn& emit) {
        emit(PackEdge(h.a, h.b), h);
      }},
      [](uint64_t, const std::vector<MrRec>& vals,
         const std::function<void(const MrRec&)>& out) {
        uint32_t du = 0, dv = 0;
        for (const MrRec& v : vals) {
          // tag here is the endpoint index set in R2a's edge mapper.
          if (v.tag == 0) du = v.c;
          if (v.tag == 1) dv = v.c;
        }
        out(MrRec{vals[0].a, vals[0].b, du, dv});
      },
      ann_file));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(half_file));

  // R3: open triads. Each edge is keyed by its lower-degree endpoint (ties
  // by id — Cohen's trick to bound reducer fan-out); the reducer pairs up
  // the opposite endpoints.
  const std::string triad_file = env.TempName("mr_triad");
  TRUSS_RETURN_IF_ERROR(engine.Run(
      {ann_file},
      {[](const MrRec& e, const Engine::EmitFn& emit) {
        const uint32_t du = e.c, dv = e.tag;
        const bool u_center = du != dv ? du < dv : e.a < e.b;
        if (u_center) {
          emit(e.a, MrRec{e.b, 0, 0, kTagEdge});
        } else {
          emit(e.b, MrRec{e.a, 0, 0, kTagEdge});
        }
      }},
      [](uint64_t key, const std::vector<MrRec>& vals,
         const std::function<void(const MrRec&)>& out) {
        const uint32_t center = static_cast<uint32_t>(key);
        for (size_t i = 0; i < vals.size(); ++i) {
          for (size_t j = i + 1; j < vals.size(); ++j) {
            const VertexId x = std::min(vals[i].a, vals[j].a);
            const VertexId y = std::max(vals[i].a, vals[j].a);
            out(MrRec{x, y, center, kTagTriad});
          }
        }
      },
      triad_file));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(ann_file));

  // R4: close triads against real edges -> triangles {a, b, c}.
  const std::string tri_file = env.TempName("mr_tri");
  TRUSS_RETURN_IF_ERROR(engine.Run(
      {triad_file, edges_in},
      {[](const MrRec& t, const Engine::EmitFn& emit) {
         emit(PackEdge(t.a, t.b), t);
       },
       [](const MrRec& e, const Engine::EmitFn& emit) {
         emit(PackEdge(e.a, e.b), MrRec{e.a, e.b, 0, kTagEdge});
       }},
      [](uint64_t, const std::vector<MrRec>& vals,
         const std::function<void(const MrRec&)>& out) {
        bool closed = false;
        for (const MrRec& v : vals) {
          if (v.tag == kTagEdge) closed = true;
        }
        if (!closed) return;
        for (const MrRec& v : vals) {
          if (v.tag == kTagTriad) out(MrRec{v.a, v.b, v.c, 0});
        }
      },
      tri_file));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(triad_file));

  // R5: per-edge support. Triangles contribute 1 to each of their three
  // edges; bare edges contribute 0 so zero-support edges keep a record.
  const std::string sup_file = env.TempName("mr_sup");
  TRUSS_RETURN_IF_ERROR(engine.Run(
      {tri_file, edges_in},
      {[](const MrRec& t, const Engine::EmitFn& emit) {
         const VertexId a = t.a, b = t.b, c = t.c;
         emit(PackEdge(a, b), MrRec{0, 0, 1, kTagCount});
         emit(PackEdge(std::min(a, c), std::max(a, c)),
              MrRec{0, 0, 1, kTagCount});
         emit(PackEdge(std::min(b, c), std::max(b, c)),
              MrRec{0, 0, 1, kTagCount});
       },
       [](const MrRec& e, const Engine::EmitFn& emit) {
         emit(PackEdge(e.a, e.b), MrRec{0, 0, 0, kTagEdge});
       }},
      [](uint64_t key, const std::vector<MrRec>& vals,
         const std::function<void(const MrRec&)>& out) {
        bool is_edge = false;
        uint32_t sup = 0;
        for (const MrRec& v : vals) {
          if (v.tag == kTagEdge) is_edge = true;
          if (v.tag == kTagCount) sup += v.c;
        }
        // Triads may reference non-edges only before R4's join; here every
        // count group must belong to a real edge.
        if (is_edge) {
          out(MrRec{static_cast<uint32_t>(key >> 32),
                    static_cast<uint32_t>(key & 0xffffffffu), sup, 0});
        }
      },
      sup_file));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(tri_file));

  // R6: filter. Edges with sup < threshold are dropped (collected on the
  // driver side); survivors form the next iteration's edge file.
  TRUSS_RETURN_IF_ERROR(engine.Run(
      {sup_file},
      {[](const MrRec& s, const Engine::EmitFn& emit) {
        emit(PackEdge(s.a, s.b), s);
      }},
      [threshold, dropped](uint64_t, const std::vector<MrRec>& vals,
                           const std::function<void(const MrRec&)>& out) {
        const MrRec& s = vals[0];
        if (s.c < threshold) {
          dropped->push_back(Edge{s.a, s.b});
        } else {
          out(MrRec{s.a, s.b, 0, 0});
        }
      },
      edges_out));
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(sup_file));
  return Status::OK();
}

Status WriteEdgesFile(io::Env& env, const Graph& g, const std::string& name) {
  auto writer = env.OpenWriter(name);
  TRUSS_RETURN_IF_ERROR(writer.status());
  for (const Edge& e : g.edges()) {
    writer.value()->WriteRecord(MrRec{e.u, e.v, 0, 0});
  }
  return writer.value()->Close();
}

}  // namespace

Result<TrussDecompositionResult> MapReduceTrussDecomposition(
    io::Env& env, const Graph& g, const MrTrussOptions& options,
    MrTrussStats* stats) {
  WallTimer timer;
  Engine engine(&env, options.engine);

  TrussDecompositionResult result;
  result.truss_number.assign(g.num_edges(), 0);

  std::string current = env.TempName("mr_edges");
  TRUSS_RETURN_IF_ERROR(WriteEdgesFile(env, g, current));
  uint64_t remaining = g.num_edges();
  uint32_t peel_iterations = 0;

  uint32_t k = 3;
  while (remaining > 0) {
    // Iterate the pipeline at threshold k-2 until the fix-point T_k.
    while (true) {
      std::vector<Edge> dropped;
      const std::string next = env.TempName("mr_edges");
      TRUSS_RETURN_IF_ERROR(
          PeelIteration(engine, current, next, k - 2, &dropped));
      TRUSS_RETURN_IF_ERROR(env.DeleteFile(current));
      current = next;
      ++peel_iterations;
      if (dropped.empty()) break;
      remaining -= dropped.size();
      for (const Edge& e : dropped) {
        const EdgeId id = g.FindEdge(e.u, e.v);
        TRUSS_CHECK_NE(id, kInvalidEdge);
        // Dropped while peeling toward T_k means not in T_k: ϕ(e) = k-1.
        result.truss_number[id] = k - 1;
      }
    }
    if (remaining > 0) ++k;
  }
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(current));

  result.RecomputeKmax();
  if (stats != nullptr) {
    stats->engine = engine.stats();
    stats->kmax = result.kmax;
    stats->peel_iterations = peel_iterations;
    stats->seconds = timer.Seconds();
  }
  return result;
}

Result<std::vector<EdgeId>> MapReduceKTruss(io::Env& env, const Graph& g,
                                            uint32_t k,
                                            const MrTrussOptions& options,
                                            MrTrussStats* stats) {
  TRUSS_CHECK_GE(k, 2u);
  WallTimer timer;
  Engine engine(&env, options.engine);

  std::string current = env.TempName("mr_edges");
  TRUSS_RETURN_IF_ERROR(WriteEdgesFile(env, g, current));
  uint32_t peel_iterations = 0;

  while (true) {
    std::vector<Edge> dropped;
    const std::string next = env.TempName("mr_edges");
    TRUSS_RETURN_IF_ERROR(
        PeelIteration(engine, current, next, k - 2, &dropped));
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(current));
    current = next;
    ++peel_iterations;
    if (dropped.empty()) break;
  }

  std::vector<EdgeId> truss_edges;
  {
    auto reader = env.OpenReader(current);
    TRUSS_RETURN_IF_ERROR(reader.status());
    MrRec rec;
    while (reader.value()->ReadRecord(&rec)) {
      const EdgeId id = g.FindEdge(rec.a, rec.b);
      TRUSS_CHECK_NE(id, kInvalidEdge);
      truss_edges.push_back(id);
    }
  }
  TRUSS_RETURN_IF_ERROR(env.DeleteFile(current));
  std::sort(truss_edges.begin(), truss_edges.end());

  if (stats != nullptr) {
    stats->engine = engine.stats();
    stats->kmax = k;
    stats->peel_iterations = peel_iterations;
    stats->seconds = timer.Seconds();
  }
  return truss_edges;
}

}  // namespace truss::mr
