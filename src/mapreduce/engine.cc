#include "mapreduce/engine.h"

#include "io/external_sort.h"

namespace truss::mr {

namespace {

struct KeyLess {
  bool operator()(const KeyedRec& x, const KeyedRec& y) const {
    return x.key < y.key;
  }
};

}  // namespace

Status Engine::Run(const std::vector<std::string>& inputs,
                   const std::vector<MapFn>& mappers, const ReduceFn& reducer,
                   const std::string& output) {
  TRUSS_CHECK_EQ(inputs.size(), mappers.size());

  // Map phase: stream every input through its mapper, spilling keyed output.
  const std::string spill = env_.TempName("mr_spill");
  {
    auto writer_res = env_.OpenWriter(spill);
    TRUSS_RETURN_IF_ERROR(writer_res.status());
    auto writer = writer_res.MoveValue();
    const EmitFn emit = [&](uint64_t key, const MrRec& value) {
      writer->WriteRecord(KeyedRec{key, value});
      ++stats_.map_output_records;
      stats_.shuffle_bytes += sizeof(KeyedRec);
    };
    for (size_t i = 0; i < inputs.size(); ++i) {
      auto reader = env_.OpenReader(inputs[i]);
      TRUSS_RETURN_IF_ERROR(reader.status());
      MrRec rec;
      while (reader.value()->ReadRecord(&rec)) {
        ++stats_.map_input_records;
        mappers[i](rec, emit);
      }
    }
    TRUSS_RETURN_IF_ERROR(writer->Close());
  }

  // Shuffle phase: a real external sort by key.
  const std::string sorted = env_.TempName("mr_sorted");
  TRUSS_RETURN_IF_ERROR((io::ExternalSort<KeyedRec, KeyLess>(
      env_, spill, sorted, KeyLess{}, options_.memory_budget_bytes)));
  TRUSS_RETURN_IF_ERROR(env_.DeleteFile(spill));

  // Reduce phase: stream sorted groups through the reducer.
  {
    auto reader = env_.OpenReader(sorted);
    TRUSS_RETURN_IF_ERROR(reader.status());
    auto writer_res = env_.OpenWriter(output);
    TRUSS_RETURN_IF_ERROR(writer_res.status());
    auto writer = writer_res.MoveValue();
    const auto emit_out = [&](const MrRec& rec) { writer->WriteRecord(rec); };

    KeyedRec rec;
    bool have = reader.value()->ReadRecord(&rec);
    std::vector<MrRec> group;
    while (have) {
      const uint64_t key = rec.key;
      group.clear();
      while (have && rec.key == key) {
        group.push_back(rec.value);
        have = reader.value()->ReadRecord(&rec);
      }
      ++stats_.reduce_groups;
      reducer(key, group, emit_out);
    }
    TRUSS_RETURN_IF_ERROR(writer->Close());
  }
  TRUSS_RETURN_IF_ERROR(env_.DeleteFile(sorted));

  ++stats_.rounds;
  stats_.simulated_latency_seconds += options_.per_round_latency_seconds;
  return Status::OK();
}

}  // namespace truss::mr
