// Audited helpers for the serving tier's monotonic atomic stat counters.
//
// Every counter in serve/ is bumped and read through these two functions so
// the memory-ordering contract lives in one place (and the atomics audit
// pass sees exactly one ordering site per operation) instead of at every
// ++/load in server.cc and rebuild_supervisor.cc.

#ifndef TRUSS_SERVE_STATS_UTIL_H_
#define TRUSS_SERVE_STATS_UTIL_H_

#include <atomic>
#include <cstdint>

namespace truss::serve {

/// One audited increment for a monotonic stat counter.
inline void BumpStat(std::atomic<uint64_t>& counter) {
  // ordering: relaxed — counters carry no data dependencies; the live
  // STATS reader tolerates an instantaneously stale view, and the final
  // report reads them after the RunShards join in Serve() has already
  // ordered every worker's updates.
  counter.fetch_add(1, std::memory_order_relaxed);
}

/// One audited read for a monotonic stat counter.
inline uint64_t ReadStat(const std::atomic<uint64_t>& counter) {
  // ordering: relaxed — same monotonic-stat-counter contract as BumpStat.
  return counter.load(std::memory_order_relaxed);
}

}  // namespace truss::serve

#endif  // TRUSS_SERVE_STATS_UTIL_H_
