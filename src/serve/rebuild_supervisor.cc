#include "serve/rebuild_supervisor.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "serve/stats_util.h"

namespace truss::serve {

RebuildSupervisor::RebuildSupervisor(SnapshotRebuilder* rebuilder,
                                     RetryPolicy policy)
    : rebuilder_(rebuilder), policy_(policy), rng_(policy.seed) {
  TRUSS_CHECK(rebuilder_ != nullptr);
  TRUSS_CHECK_GE(policy_.max_attempts, 1u);
}

RebuildSupervisor::~RebuildSupervisor() { Stop(); }

void RebuildSupervisor::ScheduleRetries(
    const engine::DecomposeOptions& options, const Status& error) {
  MutexLock lock(&mu_);
  degraded_ = true;
  last_error_ = error.ToString();
  pending_options_ = options;
  pending_ = true;
  if (thread_ == nullptr) {
    thread_ = std::make_unique<BackgroundThread>([this] { Run(); });
  }
  cv_.SignalAll();
}

void RebuildSupervisor::NoteSuccess() {
  MutexLock lock(&mu_);
  degraded_ = false;
  pending_ = false;
  last_error_.clear();
  cv_.SignalAll();
}

void RebuildSupervisor::Stop() {
  std::unique_ptr<BackgroundThread> thread;
  {
    MutexLock lock(&mu_);
    stop_ = true;
    cv_.SignalAll();
    thread = std::move(thread_);
  }
  thread.reset();  // joins, outside the lock
}

ServingHealth RebuildSupervisor::health() const {
  MutexLock lock(&mu_);
  return degraded_ ? ServingHealth::kDegraded : ServingHealth::kOk;
}

std::string RebuildSupervisor::last_error() const {
  MutexLock lock(&mu_);
  return last_error_;
}

uint64_t RebuildSupervisor::retries_attempted() const {
  return ReadStat(retries_attempted_);
}

uint64_t RebuildSupervisor::retries_succeeded() const {
  return ReadStat(retries_succeeded_);
}

void RebuildSupervisor::Run() {
  while (true) {
    engine::DecomposeOptions options;
    {
      MutexLock lock(&mu_);
      while (!stop_ && !pending_) cv_.Wait(&mu_);
      if (stop_) return;
      pending_ = false;
      options = pending_options_;
    }
    if (!RunRetryLoop(options)) return;
  }
}

uint64_t RebuildSupervisor::JitteredDelayMs(uint32_t attempt) {
  const uint32_t shift = std::min(attempt - 1, 31u);
  double base = static_cast<double>(policy_.initial_backoff_ms) *
                static_cast<double>(uint64_t{1} << shift);
  base = std::min(base, static_cast<double>(policy_.max_backoff_ms));
  const double jitter =
      1.0 + policy_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
  return static_cast<uint64_t>(std::max(0.0, base * jitter));
}

bool RebuildSupervisor::RunRetryLoop(const engine::DecomposeOptions& options) {
  for (uint32_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    const double delay_ms = static_cast<double>(JitteredDelayMs(attempt));
    {
      MutexLock lock(&mu_);
      WallTimer waited;
      while (!stop_ && !pending_ && degraded_ &&
             waited.Seconds() * 1000.0 < delay_ms) {
        const double remaining_ms = delay_ms - waited.Seconds() * 1000.0;
        (void)cv_.WaitFor(&mu_,
                          std::max<int64_t>(
                              1, static_cast<int64_t>(remaining_ms) + 1));
      }
      if (stop_) return false;
      if (pending_) return true;    // superseded by a newer schedule
      if (!degraded_) return true;  // a direct REBUILD succeeded meanwhile
    }

    BumpStat(retries_attempted_);
    auto outcome = rebuilder_->RebuildAndPublish(options);
    if (outcome.ok()) {
      BumpStat(retries_succeeded_);
      MutexLock lock(&mu_);
      degraded_ = false;
      last_error_.clear();
      return true;
    }
    MutexLock lock(&mu_);
    if (stop_) return false;
    last_error_ = outcome.status().ToString();
  }
  // Attempts exhausted: stay degraded; the server keeps answering from the
  // last published snapshot, and a later REBUILD re-arms the supervisor.
  return true;
}

}  // namespace truss::serve
