// TrussIndex — the read side of the truss query serving layer.
//
// Everything under src/truss computes a decomposition and exits; a serving
// system needs the opposite shape: pay the decomposition once, then answer
// point queries in microseconds, forever, from many threads at once. A
// TrussIndex is that materialization. It is built from a Graph plus a
// TrussDecompositionResult (and the TrussHierarchy derived from it) and
// lays the answers out for O(1)/O(log d) lookup:
//
//   - edge -> truss number       (EdgeTrussNumber: CSR binary search + flat
//                                 array)
//   - vertex -> max k            (VertexMaxK: flat array)
//   - (vertex, k) -> community   (CommunityAt: per-vertex membership chain,
//                                 O(1) — a vertex's community levels are
//                                 contiguous in k because T_k ⊇ T_{k+1})
//   - top-t densest communities  (DensestCommunities: precomputed order)
//
// A TrussIndex is immutable after construction. That is the concurrency
// story of the whole serving layer: queries against a built index need no
// locking whatsoever, and refresh is handled one level up by swapping
// whole indexes (serve/snapshot.h), never by mutating one in place.
//
// Construction follows the plan/statistics API shape of Katana's ktruss
// analytics (SNIPPETS.md Snippet 3): an IndexBuildPlan selects how the
// decomposition is obtained (always through the engine registry — never a
// concrete algorithm header), and TrussIndexStatistics::Compute summarizes
// a built index. Save/Load persist the index as a single binary file so a
// server restart skips re-decomposition entirely.

#ifndef TRUSS_SERVE_TRUSS_INDEX_H_
#define TRUSS_SERVE_TRUSS_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "graph/graph.h"
#include "truss/communities.h"
#include "truss/result.h"

namespace truss::serve {

/// Dense id of a community within one index. Ids are assigned in
/// (k, smallest member vertex) order and are only meaningful relative to
/// the index (snapshot) that produced them.
using CommunityId = uint32_t;
inline constexpr CommunityId kInvalidCommunity =
    std::numeric_limits<CommunityId>::max();

/// Per-community summary, laid out for point queries.
struct CommunityInfo {
  /// Truss level of this community (>= 3).
  uint32_t k = 0;
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  /// Edge density 2m / (n(n-1)) of the community's induced k-truss edges.
  double density = 0.0;
};

/// How a TrussIndex obtains its decomposition: always through the engine
/// registry, parameterized by DecomposeOptions. Modeled on Katana's
/// KTrussPlan — not directly constructible, so there is exactly one way to
/// configure a build.
class IndexBuildPlan {
 public:
  /// The in-memory default algorithm, single-threaded.
  static IndexBuildPlan Default() { return IndexBuildPlan({}); }

  /// Fully caller-specified engine options (algorithm, threads, hooks...).
  static IndexBuildPlan WithOptions(engine::DecomposeOptions options) {
    return IndexBuildPlan(std::move(options));
  }

  const engine::DecomposeOptions& options() const { return options_; }

 private:
  explicit IndexBuildPlan(engine::DecomposeOptions options)
      : options_(std::move(options)) {}

  engine::DecomposeOptions options_;
};

class TrussIndex;

/// Result of a plan-driven build: the index plus the engine's run stats
/// (the snapshot layer records decompose time per published version).
struct IndexBuildOutput {
  std::shared_ptr<const TrussIndex> index;
  engine::DecomposeStats decompose_stats;
};

/// Immutable truss query index over one graph snapshot. All const methods
/// are safe to call concurrently from any number of threads with no
/// synchronization (the object is never mutated after construction).
class TrussIndex {
 public:
  /// Builds from an existing decomposition (no engine run). `r` must be
  /// the decomposition of `*graph`; graph must be non-null.
  static std::shared_ptr<const TrussIndex> Build(
      std::shared_ptr<const Graph> graph, const TrussDecompositionResult& r);

  /// Decomposes `*graph` through the engine registry per `plan`, then
  /// builds. Fails if the engine run fails (bad options, cancellation).
  TRUSS_NODISCARD static Result<IndexBuildOutput> Build(std::shared_ptr<const Graph> graph,
                                        const IndexBuildPlan& plan);

  // --- point queries (lock-free) ---------------------------------------

  /// Truss number of edge {u, v}; 0 when the edge does not exist (truss
  /// numbers of real edges are always >= 2). Out-of-range ids return 0.
  uint32_t EdgeTrussNumber(VertexId u, VertexId v) const;

  /// Largest k such that vertex v is in the k-truss: max truss number over
  /// v's incident edges. 0 for isolated/out-of-range vertices, 2 for
  /// vertices with edges but no triangle.
  uint32_t VertexMaxK(VertexId v) const {
    return v < vertex_kmax_.size() ? vertex_kmax_[v] : 0;
  }

  /// The community containing v at level k (communities at one level are
  /// vertex-disjoint, so there is at most one); kInvalidCommunity when v
  /// is not in any k-truss or k < 3.
  CommunityId CommunityAt(VertexId v, uint32_t k) const {
    if (k < 3 || v >= vertex_kmax_.size() || vertex_kmax_[v] < k) {
      return kInvalidCommunity;
    }
    return members_[member_offsets_[v] + (k - 3)];
  }

  /// The community of v at its deepest level (VertexMaxK(v));
  /// kInvalidCommunity when v is in no 3-truss.
  CommunityId DeepestCommunity(VertexId v) const {
    return CommunityAt(v, VertexMaxK(v));
  }

  /// v's full nested community chain: element i is the community at level
  /// 3 + i, for i in [0, VertexMaxK(v) - 2). Empty if v is in no 3-truss.
  std::span<const CommunityId> MembershipChain(VertexId v) const {
    if (v >= vertex_kmax_.size()) return {};
    return {members_.data() + member_offsets_[v],
            members_.data() + member_offsets_[v + 1]};
  }

  /// Ids of the t densest communities, best first. Ties break towards the
  /// smaller id, so the order is deterministic. Returns fewer than t when
  /// the index holds fewer communities.
  std::span<const CommunityId> DensestCommunities(uint32_t t) const {
    const size_t n = std::min<size_t>(t, density_order_.size());
    return {density_order_.data(), n};
  }

  /// Summary of one community. `c` must be a valid id for this index.
  const CommunityInfo& Community(CommunityId c) const {
    TRUSS_DCHECK_LT(c, community_info_.size());
    return community_info_[c];
  }

  /// Sorted member vertices of one community.
  std::span<const VertexId> CommunityVertices(CommunityId c) const {
    TRUSS_DCHECK_LT(c, community_info_.size());
    return {community_vertices_.data() + community_vertex_offsets_[c],
            community_vertices_.data() + community_vertex_offsets_[c + 1]};
  }

  uint32_t kmax() const { return kmax_; }
  uint64_t num_communities() const { return community_info_.size(); }
  const Graph& graph() const { return *graph_; }
  std::shared_ptr<const Graph> graph_ptr() const { return graph_; }
  std::span<const uint32_t> truss_numbers() const { return truss_number_; }

  /// Approximate heap footprint of the index structures (excluding the
  /// shared graph).
  uint64_t SizeBytes() const;

  // --- persistence ------------------------------------------------------

  /// Writes the full index (including the graph's CSR arrays) as one
  /// binary file ("TRSI" magic + version header). A server restart loads
  /// it back and skips re-decomposition.
  TRUSS_NODISCARD Status Save(const std::string& path) const;

  /// Reads a Save() file. Fails with IOError on unreadable files and
  /// Corruption on bad magic/version, size mismatches, or structural
  /// inconsistencies (the embedded graph is revalidated via
  /// Graph::FromCsrParts; index arrays are cross-checked against it).
  TRUSS_NODISCARD static Result<std::shared_ptr<const TrussIndex>> Load(
      const std::string& path);

 private:
  TrussIndex() = default;

  std::shared_ptr<const Graph> graph_;
  uint32_t kmax_ = 0;

  // Per-edge truss numbers, indexed by EdgeId (copy of the decomposition).
  std::vector<uint32_t> truss_number_;
  // Per-vertex max truss level over incident edges.
  std::vector<uint32_t> vertex_kmax_;

  // Community summaries indexed by CommunityId, ordered by (k, smallest
  // member vertex).
  std::vector<CommunityInfo> community_info_;
  // CSR of sorted member vertices per community.
  std::vector<uint64_t> community_vertex_offsets_;  // size communities + 1
  std::vector<VertexId> community_vertices_;
  // CSR of per-vertex membership chains: vertex v's slice holds its
  // community at levels 3..vertex_kmax_[v], in ascending k.
  std::vector<uint64_t> member_offsets_;  // size n + 1
  std::vector<CommunityId> members_;
  // All community ids ordered by descending density (ties: ascending id).
  std::vector<CommunityId> density_order_;
};

/// Human-facing summary of a built index, in the shape of Katana's
/// KTrussStatistics.
struct TrussIndexStatistics {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t kmax = 0;
  uint64_t num_communities = 0;
  uint64_t largest_community_vertices = 0;
  double max_density = 0.0;
  uint64_t index_bytes = 0;

  static TrussIndexStatistics Compute(const TrussIndex& index);

  /// Prints the statistics in a human readable form.
  void Print(std::ostream& os) const;
};

}  // namespace truss::serve

#endif  // TRUSS_SERVE_TRUSS_INDEX_H_
