// Background rebuild retries with capped exponential backoff + jitter.
//
// When a REBUILD fails, the serving threads must not burn their time
// re-running decompositions: the server keeps answering queries from the
// last published snapshot (the registry guarantees it stays alive) and
// hands the failed options to this supervisor. A single background thread
// (common/parallel.h BackgroundThread — the sanctioned thread-creation
// site) retries the rebuild with exponential backoff, each delay jittered
// by a seeded common/rng.h generator so retry storms cannot synchronize
// and every schedule is reproducible from its seed.
//
// Degradation contract: from the first failure until some rebuild succeeds
// (a supervisor retry or a direct REBUILD), health() is kDegraded and
// last_error() carries the most recent failure — the server surfaces both
// in STATS as `state=DEGRADED last_rebuild_error=...`. Queries are never
// affected; degradation only means the snapshot is staler than requested.

#ifndef TRUSS_SERVE_REBUILD_SUPERVISOR_H_
#define TRUSS_SERVE_REBUILD_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/options.h"
#include "serve/snapshot.h"

namespace truss::serve {

/// Backoff schedule for rebuild retries. Attempt i (1-based) waits
/// min(initial_backoff_ms << (i-1), max_backoff_ms), scaled by a uniform
/// jitter in [1 - jitter_fraction, 1 + jitter_fraction].
struct RetryPolicy {
  uint32_t max_attempts = 8;
  uint32_t initial_backoff_ms = 50;
  uint32_t max_backoff_ms = 5000;
  double jitter_fraction = 0.2;
  /// Seed for the jitter Rng (reproducible schedules in tests).
  uint64_t seed = 42;
};

enum class ServingHealth {
  kOk,        // last rebuild (if any) succeeded
  kDegraded,  // rebuilds failing; still serving the last good snapshot
};

/// Owns the retry loop for one SnapshotRebuilder. Thread-safe; the
/// background thread starts lazily on the first ScheduleRetries and is
/// joined by Stop()/the destructor.
class RebuildSupervisor {
 public:
  /// `rebuilder` must outlive the supervisor.
  RebuildSupervisor(SnapshotRebuilder* rebuilder, RetryPolicy policy);
  ~RebuildSupervisor();

  RebuildSupervisor(const RebuildSupervisor&) = delete;
  RebuildSupervisor& operator=(const RebuildSupervisor&) = delete;

  /// Records a failed rebuild (entering kDegraded) and schedules background
  /// retries of `options`. A newer call replaces the pending options.
  void ScheduleRetries(const engine::DecomposeOptions& options,
                       const Status& error);

  /// Records a rebuild that succeeded outside the supervisor (a direct
  /// REBUILD): clears degradation and cancels pending retries.
  void NoteSuccess();

  /// Wakes and joins the background thread. Idempotent; called by the
  /// destructor. In-flight backoff waits are interrupted.
  void Stop();

  ServingHealth health() const;
  std::string last_error() const;

  uint64_t retries_attempted() const;
  uint64_t retries_succeeded() const;

 private:
  void Run();
  /// Runs the backoff/retry loop for one scheduled request. Returns false
  /// when asked to stop.
  bool RunRetryLoop(const engine::DecomposeOptions& options);
  uint64_t JitteredDelayMs(uint32_t attempt);

  SnapshotRebuilder* const rebuilder_;
  const RetryPolicy policy_;
  /// Jitter source; touched only on the supervisor thread.
  Rng rng_;

  mutable Mutex mu_;
  CondVar cv_;
  bool stop_ TRUSS_GUARDED_BY(mu_) = false;
  bool pending_ TRUSS_GUARDED_BY(mu_) = false;
  bool degraded_ TRUSS_GUARDED_BY(mu_) = false;
  engine::DecomposeOptions pending_options_ TRUSS_GUARDED_BY(mu_);
  std::string last_error_ TRUSS_GUARDED_BY(mu_);
  std::unique_ptr<BackgroundThread> thread_ TRUSS_GUARDED_BY(mu_);

  // Monotonic counters (see serve/stats_util.h for the ordering contract).
  std::atomic<uint64_t> retries_attempted_{0};
  std::atomic<uint64_t> retries_succeeded_{0};
};

}  // namespace truss::serve

#endif  // TRUSS_SERVE_REBUILD_SUPERVISOR_H_
