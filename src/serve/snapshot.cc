#include "serve/snapshot.h"

#include <utility>

#include "common/timer.h"

namespace truss::serve {

uint64_t SnapshotRegistry::Publish(std::shared_ptr<const TrussIndex> index,
                                   std::string description,
                                   double build_seconds) {
  TRUSS_CHECK(index != nullptr);
  MutexLock lock(&mu_);
  current_.index = std::move(index);
  current_.version += 1;
  current_.description = std::move(description);
  current_.build_seconds = build_seconds;
  return current_.version;
}

ServingSnapshot SnapshotRegistry::Current() const {
  MutexLock lock(&mu_);
  return current_;
}

uint64_t SnapshotRegistry::current_version() const {
  MutexLock lock(&mu_);
  return current_.version;
}

SnapshotRebuilder::SnapshotRebuilder(std::shared_ptr<const Graph> graph,
                                     SnapshotRegistry* registry)
    : graph_(std::move(graph)), registry_(registry) {
  TRUSS_CHECK(graph_ != nullptr);
  TRUSS_CHECK(registry_ != nullptr);
}

Result<RebuildOutcome> SnapshotRebuilder::RebuildAndPublish(
    const engine::DecomposeOptions& options) {
  {
    MutexLock lock(&mu_);
    if (in_flight_) {
      return Status::FailedPrecondition("a rebuild is already in flight");
    }
    in_flight_ = true;
  }
  // The decomposition runs outside the lock: readers keep querying the old
  // snapshot, and InFlight() stays observable, for the whole rebuild.
  WallTimer timer;
  auto built =
      TrussIndex::Build(graph_, IndexBuildPlan::WithOptions(options));
  // Both branches below assign; this default only surfaces if a future
  // edit adds a path that exits without assigning, and then it must name
  // the algorithm so the failure is attributable.
  Result<RebuildOutcome> result = Status::Internal(
      std::string("rebuild produced no result for algo=") +
      engine::AlgorithmName(options.algorithm));
  if (built.ok()) {
    RebuildOutcome outcome;
    outcome.decompose_seconds = built.value().decompose_stats.wall_seconds;
    outcome.total_seconds = timer.Seconds();
    outcome.version = registry_->Publish(
        std::move(built.value().index),
        std::string("algo=") + engine::AlgorithmName(options.algorithm) +
            " threads=" + std::to_string(options.threads),
        outcome.total_seconds);
    result = outcome;
  } else {
    result = built.status();
  }
  MutexLock lock(&mu_);
  in_flight_ = false;
  return result;
}

bool SnapshotRebuilder::InFlight() const {
  MutexLock lock(&mu_);
  return in_flight_;
}

}  // namespace truss::serve
