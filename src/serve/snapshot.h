// Immutable-snapshot versioning for the serving layer.
//
// A server must answer queries continuously while a fresh decomposition is
// computed and swapped in. The scheme here is the classic read-copy-publish
// shape:
//
//   - A snapshot is an immutable TrussIndex plus a monotonically increasing
//     version. Snapshots are never mutated after publication.
//   - SnapshotRegistry holds the current snapshot behind a truss::Mutex.
//     Publish() swaps the shared_ptr under the lock; Current() copies it
//     out under the lock. Both critical sections are a few pointer writes —
//     nanoseconds — and, crucially, the *query path* takes no lock at all:
//     once a reader holds the shared_ptr, every TrussIndex method is
//     lock-free against the immutable object, and the shared_ptr keeps the
//     old snapshot alive until its last in-flight reader drops it.
//   - SnapshotRebuilder produces new snapshots by re-running a
//     decomposition through the engine registry (never a concrete
//     algorithm header) and publishing the result. At most one rebuild
//     runs at a time; concurrent requests are rejected as
//     FailedPrecondition so callers (the server's REBUILD command) can
//     surface "busy" instead of queueing unbounded work.
//
// Shared state is annotated with TRUSS_GUARDED_BY and proven by the Clang
// thread-safety CI job; the TSan suite exercises readers racing Publish().

#ifndef TRUSS_SERVE_SNAPSHOT_H_
#define TRUSS_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/options.h"
#include "serve/truss_index.h"

namespace truss::serve {

/// One published snapshot: an immutable index plus its version metadata.
/// Copyable; copies share the index.
struct ServingSnapshot {
  std::shared_ptr<const TrussIndex> index;
  /// Monotonic from 1; 0 only in the empty sentinel returned by Current()
  /// before the first Publish().
  uint64_t version = 0;
  /// Human-readable provenance, e.g. "algo=parallel threads=4".
  std::string description;
  /// Wall seconds spent producing the snapshot (decompose + index build).
  double build_seconds = 0.0;
};

/// Holder of the current snapshot. All methods are thread-safe; see the
/// file comment for the locking story.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Publishes `index` as the next version and returns that version.
  /// Readers holding the previous snapshot are unaffected; the previous
  /// index is destroyed when its last holder releases it.
  uint64_t Publish(std::shared_ptr<const TrussIndex> index,
                   std::string description, double build_seconds);

  /// The current snapshot (version 0 with a null index before the first
  /// Publish). The returned copy is the reader's to keep for as long as it
  /// wants; queries on snapshot.index take no lock.
  ServingSnapshot Current() const;

  /// Version of the current snapshot (0 before the first Publish).
  uint64_t current_version() const;

 private:
  mutable Mutex mu_;
  ServingSnapshot current_ TRUSS_GUARDED_BY(mu_);
};

/// Outcome of one successful rebuild.
struct RebuildOutcome {
  uint64_t version = 0;
  double decompose_seconds = 0.0;
  /// Decompose + hierarchy/index build, i.e. the snapshot's build_seconds.
  double total_seconds = 0.0;
};

/// Re-decomposes a fixed base graph through the engine registry and
/// publishes the result. Thread-safe; at most one rebuild in flight.
class SnapshotRebuilder {
 public:
  /// `graph` is the base topology every rebuild decomposes (shared with
  /// the indexes, which only hold references to it). `registry` must
  /// outlive the rebuilder.
  SnapshotRebuilder(std::shared_ptr<const Graph> graph,
                    SnapshotRegistry* registry);

  /// Runs one decomposition with `options` (any registry algorithm),
  /// builds a TrussIndex, and publishes it. Returns FailedPrecondition
  /// when another rebuild is already in flight, and propagates engine
  /// failures (invalid options, cancellation) without publishing.
  TRUSS_NODISCARD Result<RebuildOutcome> RebuildAndPublish(
      const engine::DecomposeOptions& options);

  /// True while a RebuildAndPublish call is running (on any thread).
  bool InFlight() const;

 private:
  std::shared_ptr<const Graph> graph_;
  SnapshotRegistry* const registry_;
  mutable Mutex mu_;
  bool in_flight_ TRUSS_GUARDED_BY(mu_) = false;
};

}  // namespace truss::serve

#endif  // TRUSS_SERVE_SNAPSHOT_H_
