// TrussServer — a TCP line-protocol query server over a SnapshotRegistry.
//
// Protocol (newline-delimited ASCII; full grammar in docs/SERVING.md):
//
//   TRUSS <u> <v>     truss number of edge {u, v}
//   MAXK <v>          deepest truss level of vertex v + its community there
//   COMM <v> <k>      the level-k community containing v
//   TOP <t>           the t densest communities
//   MEMBERS <c>       member vertices of community c (size-capped)
//   STATS             index + server statistics
//   VERSION           current snapshot version
//   REBUILD [algo]    re-decompose and atomically publish a new snapshot
//   PING / QUIT       liveness / close connection
//
// Every response is a single line: "OK ..." or "ERR <CODE> ...".
//
// Threading model: Serve() runs `workers` threads through
// truss::RunShards (the repo's only sanctioned thread-creation path —
// see scripts/lint_arch.py). All workers block in accept() on the shared
// listening socket; the kernel load-balances incoming connections, so
// there is no connection queue and no shared accept state. Each worker
// then owns its connection outright: reads, query execution, and writes
// touch only worker-local state plus (a) the SnapshotRegistry, whose
// swap/acquire is mutex-annotated and whose query path is lock-free on the
// immutable snapshot, and (b) the server's atomic stat counters. Polling
// with a short timeout (rather than indefinite blocking) is what makes
// Stop() graceful: workers finish the request in flight, notice the flag,
// and exit; RunShards' join returns Serve() to the caller.
//
// A REBUILD command runs synchronously on the worker that received it;
// the other workers keep serving the old snapshot until the atomic
// publish, which is the whole point of the snapshot layer. A REBUILD that
// *fails* is handed to the RebuildSupervisor, which retries it with capped
// exponential backoff on its own background thread; until a rebuild
// succeeds the server stays fully available on the last good snapshot and
// STATS reports state=DEGRADED with the last rebuild error.

#ifndef TRUSS_SERVE_SERVER_H_
#define TRUSS_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/options.h"
#include "serve/rebuild_supervisor.h"
#include "serve/snapshot.h"

namespace truss::serve {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back from port() after Start). Loopback-only by design: production
  /// deployments put a local proxy or mesh sidecar in front rather than
  /// exposing the bare line protocol.
  uint16_t port = 0;
  /// Worker threads (= maximum concurrent connections served).
  uint32_t workers = 4;
  /// Template options for REBUILD commands; the command's optional
  /// algorithm argument overrides `rebuild_options.algorithm`.
  engine::DecomposeOptions rebuild_options;
  /// Per-line size cap; a client exceeding it gets ERR BAD_REQUEST and is
  /// disconnected (protects worker memory from a hostile peer).
  uint32_t max_line_bytes = 4096;
  /// Cap on TOP t and MEMBERS responses, keeping single-line replies
  /// bounded.
  uint32_t top_cap = 64;
  uint32_t members_cap = 1024;
  /// Poll interval for the accept/read loops; bounds Stop() latency.
  int poll_interval_ms = 100;
  /// A connection with a started-but-unfinished line is disconnected after
  /// this long (slow-loris protection: a trickling client cannot pin a
  /// worker's buffer forever). <= 0 disables.
  int request_deadline_ms = 10'000;
  /// A connection with no traffic at all is reaped after this long, freeing
  /// the worker for fresh connections. <= 0 disables.
  int idle_timeout_ms = 60'000;
  /// A response write that cannot complete within this budget (dead or
  /// unreading peer) is abandoned and counted in send_errors. <= 0 means
  /// wait forever (not recommended).
  int send_timeout_ms = 5'000;
  /// Backoff policy for background REBUILD retries (see
  /// serve/rebuild_supervisor.h).
  RetryPolicy rebuild_retry;
};

/// Monotonic server counters (a consistent-enough snapshot of the atomic
/// counters; see stats()).
struct ServerStats {
  uint64_t connections = 0;
  uint64_t queries = 0;  // protocol lines answered, excluding blank lines
  uint64_t errors = 0;   // ERR responses
  uint64_t truss_queries = 0;
  uint64_t maxk_queries = 0;
  uint64_t comm_queries = 0;
  uint64_t top_queries = 0;
  uint64_t rebuilds = 0;         // successful REBUILDs
  uint64_t failed_rebuilds = 0;  // REBUILDs answered ERR (excluding BUSY)
  uint64_t rebuild_retries = 0;  // background retry attempts so far
  uint64_t send_errors = 0;      // responses dropped on a dead/slow peer
  uint64_t idle_disconnects = 0;      // connections reaped while idle
  uint64_t deadline_disconnects = 0;  // partial lines past the deadline
  /// True while rebuilds are failing; queries still answer from the last
  /// published snapshot (see serve/rebuild_supervisor.h).
  bool degraded = false;
  /// Most recent rebuild failure while degraded; empty otherwise.
  std::string last_rebuild_error;
};

class TrussServer {
 public:
  /// `graph` is the base topology REBUILD re-decomposes; `registry` is
  /// where snapshots are read and published (callers publish the initial
  /// snapshot before Start, or clients see ERR UNAVAILABLE). `registry`
  /// must outlive the server.
  TrussServer(std::shared_ptr<const Graph> graph, SnapshotRegistry* registry,
              ServerOptions options);
  ~TrussServer();

  TrussServer(const TrussServer&) = delete;
  TrussServer& operator=(const TrussServer&) = delete;

  /// Binds and listens on 127.0.0.1:options.port. Fails with IOError when
  /// the port is taken or sockets are unavailable.
  TRUSS_NODISCARD Status Start();

  /// Accept-and-serve loop; blocks until Stop()/RequestStop(). Requires a
  /// successful Start().
  void Serve();

  /// Graceful shutdown: workers finish their in-flight request and exit.
  /// Safe from any thread; returns immediately (Serve() unblocks within
  /// ~poll_interval_ms).
  void Stop();

  /// Async-signal-safe subset of Stop() (a lock-free atomic store), for
  /// SIGINT/SIGTERM handlers. Shutdown latency is one poll interval.
  // ordering: relaxed — pure quit flag, no data published through it; the
  // worker loops poll it and tolerate one stale read (one extra poll tick).
  void RequestStop() { stopping_.store(true, std::memory_order_relaxed); }

  /// The bound port (after Start); useful with options.port == 0.
  uint16_t port() const { return port_; }

  /// Executes one protocol line and returns the response line (without the
  /// trailing newline). Exposed for unit tests and in-process callers; the
  /// socket path funnels through here. Returns an empty string for blank
  /// input (which the socket path does not answer).
  std::string HandleLine(std::string_view line);

  ServerStats stats() const;

 private:
  void ServeWorker();
  void HandleConnection(int fd);

  std::shared_ptr<const Graph> graph_;
  SnapshotRegistry* const registry_;
  SnapshotRebuilder rebuilder_;
  const ServerOptions options_;
  /// Retries failed REBUILDs off the serving threads; also the source of
  /// the DEGRADED flag in STATS. Declared after rebuilder_/options_ (it
  /// borrows both) so construction and destruction order are safe.
  RebuildSupervisor supervisor_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  // Set by Stop()/RequestStop(), polled by every worker loop. Plain
  // flag semantics: no data is published through it (relaxed ordering),
  // workers just exit when they observe it.
  std::atomic<bool> stopping_{false};

  // Monotonic counters, incremented with relaxed ordering: they are
  // sums with no cross-thread ordering requirement, read only by stats()
  // reporting.
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> truss_queries_{0};
  std::atomic<uint64_t> maxk_queries_{0};
  std::atomic<uint64_t> comm_queries_{0};
  std::atomic<uint64_t> top_queries_{0};
  std::atomic<uint64_t> rebuilds_{0};
  std::atomic<uint64_t> failed_rebuilds_{0};
  std::atomic<uint64_t> send_errors_{0};
  std::atomic<uint64_t> idle_disconnects_{0};
  std::atomic<uint64_t> deadline_disconnects_{0};
};

}  // namespace truss::serve

#endif  // TRUSS_SERVE_SERVER_H_
