#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "serve/stats_util.h"

namespace truss::serve {
namespace {

// Splits on single spaces; empty fields (double spaces) are rejected by
// the strict parsers below, so no trimming is needed beyond the \r strip
// done by the caller.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t start = 0;
  while (start <= line.size()) {
    size_t space = line.find(' ', start);
    if (space == std::string_view::npos) space = line.size();
    tokens.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return tokens;
}

// Strict decimal parse: the whole token must be digits and fit.
bool ParseU32(std::string_view token, uint32_t* out) {
  if (token.empty()) return false;
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(token.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

std::string FormatDouble(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

// Appends "id:k:vertices:density" for one TOP entry.
void AppendCommunityEntry(std::string* out, CommunityId id,
                          const CommunityInfo& info) {
  out->append(std::to_string(id));
  out->push_back(':');
  out->append(std::to_string(info.k));
  out->push_back(':');
  out->append(std::to_string(info.num_vertices));
  out->push_back(':');
  out->append(FormatDouble("%.6g", info.density));
}

// Writes all of `data`, retrying short writes and EINTR. MSG_NOSIGNAL:
// a peer that closed mid-response must produce an error return, not
// SIGPIPE. Returns false once the connection is unusable, or when the
// whole response cannot be delivered within timeout_ms (a dead or
// unreading peer must not pin a worker; <= 0 waits forever).
TRUSS_NODISCARD bool SendAll(int fd, std::string_view data, int timeout_ms) {
  WallTimer timer;
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = 250;
      if (timeout_ms > 0) {
        const double remaining =
            static_cast<double>(timeout_ms) - timer.Seconds() * 1000.0;
        if (remaining <= 0.0) return false;
        wait_ms = std::min(wait_ms, static_cast<int>(remaining) + 1);
      }
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, wait_ms);
      continue;
    }
    return false;
  }
  return true;
}

// Replaces newlines/spaces so a free-form error message can ride in a
// single space-delimited STATS line without breaking its field grammar.
std::string SanitizeStatsField(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') c = '_';
  }
  return out;
}

}  // namespace

TrussServer::TrussServer(std::shared_ptr<const Graph> graph,
                         SnapshotRegistry* registry, ServerOptions options)
    : graph_(std::move(graph)),
      registry_(registry),
      rebuilder_(graph_, registry),
      options_(std::move(options)),
      supervisor_(&rebuilder_, options_.rebuild_retry) {
  TRUSS_CHECK(graph_ != nullptr);
  TRUSS_CHECK(registry_ != nullptr);
  TRUSS_CHECK(options_.workers >= 1);
}

TrussServer::~TrussServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status TrussServer::Start() {
  TRUSS_CHECK(listen_fd_ < 0);
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket() failed, errno=" + std::to_string(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IOError("bind(127.0.0.1:" + std::to_string(options_.port) +
                           ") failed, errno=" + std::to_string(errno));
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return Status::IOError("listen() failed, errno=" + std::to_string(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::IOError("getsockname() failed, errno=" +
                           std::to_string(errno));
  }
  // Non-blocking listen socket: several workers may poll() it at once, and
  // the one that loses the accept race must get EAGAIN instead of
  // blocking past the stop flag.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  // ordering: relaxed — Start() runs before any worker exists; the
  // RunShards fork in Serve() publishes this store to every worker.
  stopping_.store(false, std::memory_order_relaxed);
  return Status::OK();
}

void TrussServer::Serve() {
  TRUSS_CHECK(listen_fd_ >= 0);
  RunShards(options_.workers, [this](uint32_t) { ServeWorker(); });
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TrussServer::Stop() { RequestStop(); }

void TrussServer::ServeWorker() {
  // ordering: relaxed — pure quit flag with no data payload; a worker that
  // reads a stale false only runs one extra <= poll_interval_ms iteration.
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready <= 0 || !(pfd.revents & POLLIN)) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) continue;  // lost the accept race, or transient error
    BumpStat(connections_);
    HandleConnection(fd);
    ::close(fd);
  }
}

void TrussServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  // Two clocks guard the connection: `activity` restarts on every received
  // byte (idle reaping), `line_start` restarts whenever the buffer turns
  // non-empty (per-request deadline — slow-loris protection).
  WallTimer activity;
  WallTimer line_start;
  // ordering: relaxed — same quit-flag contract as ServeWorker's loop.
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (buffer.empty()) {
      if (options_.idle_timeout_ms > 0 &&
          activity.Seconds() * 1000.0 >
              static_cast<double>(options_.idle_timeout_ms)) {
        BumpStat(idle_disconnects_);
        return;
      }
    } else if (options_.request_deadline_ms > 0 &&
               line_start.Seconds() * 1000.0 >
                   static_cast<double>(options_.request_deadline_ms)) {
      BumpStat(deadline_disconnects_);
      // Best-effort notice; the connection is being reaped either way.
      if (!SendAll(fd, "ERR DEADLINE request incomplete past deadline\n",
                   options_.send_timeout_ms)) {
        BumpStat(send_errors_);
      }
      return;
    }

    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;  // timeout: recheck stop flag and deadlines
    if (pfd.revents & (POLLERR | POLLNVAL)) return;

    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return;  // peer closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return;
    }
    activity.Reset();
    if (buffer.empty()) line_start.Reset();
    buffer.append(chunk, static_cast<size_t>(n));

    bool finished_a_line = false;
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string_view line(buffer.data(), newline);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      const bool quit = (line == "QUIT");
      std::string response = HandleLine(line);
      if (!response.empty()) {
        response.push_back('\n');
        if (!SendAll(fd, response, options_.send_timeout_ms)) {
          // The client never saw this answer — count the drop so operators
          // can tell "no queries" apart from "answers going nowhere".
          BumpStat(send_errors_);
          return;
        }
      }
      if (quit) return;
      buffer.erase(0, newline + 1);
      finished_a_line = true;
    }
    // A partial line left over after completed ones began with this recv;
    // its deadline starts now. (A partial that merely grew keeps its
    // original clock — that is the slow-loris protection.)
    if (finished_a_line && !buffer.empty()) line_start.Reset();
    if (buffer.size() > options_.max_line_bytes) {
      BumpStat(errors_);
      // Courtesy reply: the connection is being dropped either way and the
      // protocol error was already counted, but a failed delivery is still
      // a send error worth counting.
      if (!SendAll(fd, "ERR BAD_REQUEST line exceeds limit\n",
                   options_.send_timeout_ms)) {
        BumpStat(send_errors_);
      }
      return;
    }
  }
}

std::string TrussServer::HandleLine(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.empty()) return "";
  BumpStat(queries_);

  auto err = [this](std::string_view code, std::string_view msg) {
    BumpStat(errors_);
    std::string out = "ERR ";
    out.append(code);
    out.push_back(' ');
    out.append(msg);
    return out;
  };

  const std::vector<std::string_view> tokens = Tokenize(line);
  const std::string_view cmd = tokens[0];

  if (cmd == "PING") {
    if (tokens.size() != 1) return err("BAD_REQUEST", "usage: PING");
    return "OK PONG";
  }
  if (cmd == "QUIT") {
    if (tokens.size() != 1) return err("BAD_REQUEST", "usage: QUIT");
    return "OK BYE";
  }
  if (cmd == "VERSION") {
    if (tokens.size() != 1) return err("BAD_REQUEST", "usage: VERSION");
    return "OK VERSION " + std::to_string(registry_->current_version());
  }
  if (cmd == "REBUILD") {
    if (tokens.size() > 2) return err("BAD_REQUEST", "usage: REBUILD [algo]");
    engine::DecomposeOptions options = options_.rebuild_options;
    if (tokens.size() == 2) {
      const engine::AlgorithmInfo* info = engine::Engine::FindAlgorithm(tokens[1]);
      if (info == nullptr) {
        return err("BAD_REQUEST",
                   "unknown algorithm '" + std::string(tokens[1]) + "'");
      }
      options.algorithm = info->id;
    }
    auto outcome = rebuilder_.RebuildAndPublish(options);
    if (!outcome.ok()) {
      if (outcome.status().code() == StatusCode::kFailedPrecondition) {
        // Another rebuild is in flight — not a failure of the serving tier,
        // so no degradation and no retries.
        return err("BUSY", outcome.status().message());
      }
      BumpStat(failed_rebuilds_);
      if (outcome.status().code() != StatusCode::kInvalidArgument) {
        // Retry off the serving threads; bad configuration is permanent and
        // would fail identically every attempt, so it is not retried.
        supervisor_.ScheduleRetries(options, outcome.status());
      }
      return err("INTERNAL", outcome.status().message());
    }
    BumpStat(rebuilds_);
    supervisor_.NoteSuccess();
    return "OK REBUILD version=" + std::to_string(outcome.value().version) +
           " seconds=" + FormatDouble("%.3f", outcome.value().total_seconds);
  }

  // Every remaining command reads the index. One Current() call per line:
  // the snapshot pins a consistent index for the whole answer even if a
  // REBUILD publishes concurrently.
  const ServingSnapshot snapshot = registry_->Current();

  if (cmd == "STATS") {
    if (tokens.size() != 1) return err("BAD_REQUEST", "usage: STATS");
    std::string out = "OK STATS version=" + std::to_string(snapshot.version);
    if (snapshot.index != nullptr) {
      const TrussIndex& index = *snapshot.index;
      out += " vertices=" + std::to_string(index.graph().num_vertices()) +
             " edges=" + std::to_string(index.graph().num_edges()) +
             " kmax=" + std::to_string(index.kmax()) +
             " communities=" + std::to_string(index.num_communities()) +
             " index_bytes=" + std::to_string(index.SizeBytes());
    }
    const ServerStats s = stats();
    // New fields append only at the end: existing clients parse this line
    // positionally up to `rebuilds`.
    out += " connections=" + std::to_string(s.connections) +
           " queries=" + std::to_string(s.queries) +
           " errors=" + std::to_string(s.errors) +
           " rebuilds=" + std::to_string(s.rebuilds) +
           " failed_rebuilds=" + std::to_string(s.failed_rebuilds) +
           " rebuild_retries=" + std::to_string(s.rebuild_retries) +
           " send_errors=" + std::to_string(s.send_errors) +
           " idle_disconnects=" + std::to_string(s.idle_disconnects) +
           " deadline_disconnects=" + std::to_string(s.deadline_disconnects) +
           " state=";
    out += s.degraded ? "DEGRADED" : "OK";
    if (s.degraded && !s.last_rebuild_error.empty()) {
      out += " last_rebuild_error=" + SanitizeStatsField(s.last_rebuild_error);
    }
    return out;
  }

  if (snapshot.index == nullptr) {
    return err("UNAVAILABLE", "no snapshot published");
  }
  const TrussIndex& index = *snapshot.index;

  if (cmd == "TRUSS") {
    uint32_t u, v;
    if (tokens.size() != 3 || !ParseU32(tokens[1], &u) ||
        !ParseU32(tokens[2], &v)) {
      return err("BAD_REQUEST", "usage: TRUSS <u> <v>");
    }
    BumpStat(truss_queries_);
    // 0 means {u, v} is not an edge; real edges always report >= 2.
    return "OK TRUSS " + std::to_string(index.EdgeTrussNumber(u, v));
  }

  if (cmd == "MAXK") {
    uint32_t v;
    if (tokens.size() != 2 || !ParseU32(tokens[1], &v)) {
      return err("BAD_REQUEST", "usage: MAXK <v>");
    }
    BumpStat(maxk_queries_);
    const uint32_t k = index.VertexMaxK(v);
    std::string out = "OK MAXK k=" + std::to_string(k);
    const CommunityId c = index.DeepestCommunity(v);
    if (c == kInvalidCommunity) {
      out += " community=none";
    } else {
      out += " community=" + std::to_string(c) +
             " size=" + std::to_string(index.Community(c).num_vertices);
    }
    return out;
  }

  if (cmd == "COMM") {
    uint32_t v, k;
    if (tokens.size() != 3 || !ParseU32(tokens[1], &v) ||
        !ParseU32(tokens[2], &k)) {
      return err("BAD_REQUEST", "usage: COMM <v> <k>");
    }
    BumpStat(comm_queries_);
    const CommunityId c = index.CommunityAt(v, k);
    if (c == kInvalidCommunity) {
      return err("NOT_FOUND", "vertex " + std::to_string(v) +
                                  " is in no " + std::to_string(k) + "-truss");
    }
    const CommunityInfo& info = index.Community(c);
    return "OK COMM id=" + std::to_string(c) + " k=" + std::to_string(info.k) +
           " vertices=" + std::to_string(info.num_vertices) +
           " edges=" + std::to_string(info.num_edges) +
           " density=" + FormatDouble("%.6g", info.density);
  }

  if (cmd == "TOP") {
    uint32_t t;
    if (tokens.size() != 2 || !ParseU32(tokens[1], &t) || t == 0) {
      return err("BAD_REQUEST", "usage: TOP <t>  (t >= 1)");
    }
    BumpStat(top_queries_);
    if (t > options_.top_cap) t = options_.top_cap;
    const auto top = index.DensestCommunities(t);
    std::string out = "OK TOP " + std::to_string(top.size());
    for (CommunityId id : top) {
      out.push_back(' ');
      AppendCommunityEntry(&out, id, index.Community(id));
    }
    return out;
  }

  if (cmd == "MEMBERS") {
    uint32_t c;
    if (tokens.size() != 2 || !ParseU32(tokens[1], &c)) {
      return err("BAD_REQUEST", "usage: MEMBERS <c>");
    }
    if (c >= index.num_communities()) {
      return err("NOT_FOUND", "no community " + std::to_string(c));
    }
    const auto vertices = index.CommunityVertices(c);
    std::string out = "OK MEMBERS " + std::to_string(vertices.size());
    const size_t listed =
        std::min<size_t>(vertices.size(), options_.members_cap);
    for (size_t i = 0; i < listed; ++i) {
      out.push_back(' ');
      out.append(std::to_string(vertices[i]));
    }
    return out;
  }

  return err("BAD_REQUEST", "unknown command '" + std::string(cmd) + "'");
}

ServerStats TrussServer::stats() const {
  ServerStats s;
  s.connections = ReadStat(connections_);
  s.queries = ReadStat(queries_);
  s.errors = ReadStat(errors_);
  s.truss_queries = ReadStat(truss_queries_);
  s.maxk_queries = ReadStat(maxk_queries_);
  s.comm_queries = ReadStat(comm_queries_);
  s.top_queries = ReadStat(top_queries_);
  s.rebuilds = ReadStat(rebuilds_);
  s.failed_rebuilds = ReadStat(failed_rebuilds_);
  s.rebuild_retries = supervisor_.retries_attempted();
  s.send_errors = ReadStat(send_errors_);
  s.idle_disconnects = ReadStat(idle_disconnects_);
  s.deadline_disconnects = ReadStat(deadline_disconnects_);
  s.degraded = supervisor_.health() == ServingHealth::kDegraded;
  s.last_rebuild_error = supervisor_.last_error();
  return s;
}

}  // namespace truss::serve
