#include "serve/truss_index.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <ostream>
#include <system_error>
#include <utility>

#include "engine/engine.h"
#include "io/checksum_file.h"

namespace truss::serve {

namespace {

constexpr uint32_t kMagic = 0x49535254;  // "TRSI" little-endian
// Version 2 appended the checksum footer and made saves atomic
// (write-to-temp + rename, see io/checksum_file.h).
constexpr uint32_t kVersion = 2;

// The save format below writes raw arrays; keep the element sizes pinned
// so a drifting struct layout cannot silently change the file format.
static_assert(sizeof(uint64_t) == 8);
static_assert(sizeof(AdjEntry) == 8);
static_assert(sizeof(Edge) == 8);
static_assert(sizeof(uint32_t) == 4);

struct IndexHeader {
  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint32_t kmax = 0;
  uint32_t reserved = 0;
  // Graph CSR array lengths (same meaning as the TRSB snapshot header).
  uint64_t offsets_count = 0;
  uint64_t adj_count = 0;
  uint64_t edges_count = 0;
  // Index array lengths.
  uint64_t community_count = 0;
  uint64_t community_vertices_count = 0;
  uint64_t member_count = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
Status ReadArray(std::FILE* f, std::vector<T>* data, uint64_t count,
                 const std::string& path) {
  data->resize(count);
  if (count == 0) return Status::OK();
  if (std::fread(data->data(), sizeof(T), count, f) != count) {
    return Status::Corruption("truncated index file: " + path);
  }
  return Status::OK();
}

double Density(uint32_t num_vertices, uint64_t num_edges) {
  if (num_vertices < 2) return 0.0;
  const double pairs =
      0.5 * static_cast<double>(num_vertices) *
      static_cast<double>(num_vertices - 1);
  return static_cast<double>(num_edges) / pairs;
}

std::vector<uint32_t> ComputeVertexKmax(const Graph& g,
                                        std::span<const uint32_t> truss) {
  std::vector<uint32_t> vertex_kmax(g.num_vertices(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge edge = g.edge(e);
    vertex_kmax[edge.u] = std::max(vertex_kmax[edge.u], truss[e]);
    vertex_kmax[edge.v] = std::max(vertex_kmax[edge.v], truss[e]);
  }
  return vertex_kmax;
}

}  // namespace

std::shared_ptr<const TrussIndex> TrussIndex::Build(
    std::shared_ptr<const Graph> graph, const TrussDecompositionResult& r) {
  TRUSS_CHECK(graph != nullptr);
  TRUSS_CHECK_EQ(r.truss_number.size(), graph->num_edges());
  std::shared_ptr<TrussIndex> idx(new TrussIndex());
  const Graph& g = *graph;
  idx->graph_ = std::move(graph);
  idx->kmax_ = r.kmax;
  idx->truss_number_ = r.truss_number;
  idx->vertex_kmax_ = ComputeVertexKmax(g, idx->truss_number_);

  // Flatten the community hierarchy. CommunityId is the position in the
  // hierarchy's (k, smallest member vertex) order.
  const TrussHierarchy h = BuildTrussHierarchy(g, r);
  const size_t communities = h.communities.size();
  idx->community_info_.resize(communities);
  idx->community_vertex_offsets_.assign(communities + 1, 0);
  for (size_t c = 0; c < communities; ++c) {
    const TrussCommunity& src = h.communities[c];
    CommunityInfo& info = idx->community_info_[c];
    info.k = src.k;
    info.num_vertices = static_cast<uint32_t>(src.vertices.size());
    info.num_edges = src.edges;
    info.density = Density(info.num_vertices, info.num_edges);
    idx->community_vertex_offsets_[c + 1] =
        idx->community_vertex_offsets_[c] + src.vertices.size();
  }
  idx->community_vertices_.reserve(idx->community_vertex_offsets_.back());
  for (const TrussCommunity& src : h.communities) {
    idx->community_vertices_.insert(idx->community_vertices_.end(),
                                    src.vertices.begin(), src.vertices.end());
  }

  // Per-vertex membership chains. A vertex's community levels are exactly
  // 3..vertex_kmax (T_k ⊇ T_{k+1}: any incident edge with ϕ >= k keeps v
  // in every shallower truss), so the chain is dense in k and CommunityAt
  // is one subtraction and one load.
  const VertexId n = g.num_vertices();
  idx->member_offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t chain =
        idx->vertex_kmax_[v] >= 3 ? idx->vertex_kmax_[v] - 2 : 0;
    idx->member_offsets_[v + 1] = idx->member_offsets_[v] + chain;
  }
  idx->members_.assign(idx->member_offsets_.back(), kInvalidCommunity);
  for (size_t c = 0; c < communities; ++c) {
    const uint32_t k = idx->community_info_[c].k;
    for (const VertexId v : idx->CommunityVertices(
             static_cast<CommunityId>(c))) {
      idx->members_[idx->member_offsets_[v] + (k - 3)] =
          static_cast<CommunityId>(c);
    }
  }
#if !defined(NDEBUG)
  // Every chain slot must have been filled by exactly the level it encodes.
  for (const CommunityId m : idx->members_) {
    TRUSS_DCHECK_NE(m, kInvalidCommunity);
  }
#endif

  // Densest-first order, ties towards the smaller id for determinism.
  idx->density_order_.resize(communities);
  for (size_t c = 0; c < communities; ++c) {
    idx->density_order_[c] = static_cast<CommunityId>(c);
  }
  std::sort(idx->density_order_.begin(), idx->density_order_.end(),
            [&](CommunityId a, CommunityId b) {
              const double da = idx->community_info_[a].density;
              const double db = idx->community_info_[b].density;
              if (da != db) return da > db;
              return a < b;
            });
  return idx;
}

Result<IndexBuildOutput> TrussIndex::Build(std::shared_ptr<const Graph> graph,
                                           const IndexBuildPlan& plan) {
  TRUSS_CHECK(graph != nullptr);
  auto out = engine::Engine::Decompose(*graph, plan.options());
  if (!out.ok()) return out.status();
  if (out.value().result.truss_number.size() != graph->num_edges()) {
    return Status::InvalidArgument(
        "index build requires a full decomposition (top_t must be -1)");
  }
  IndexBuildOutput built;
  built.decompose_stats = out.value().stats;
  built.index = Build(std::move(graph), out.value().result);
  return built;
}

uint32_t TrussIndex::EdgeTrussNumber(VertexId u, VertexId v) const {
  const VertexId n = graph_->num_vertices();
  if (u >= n || v >= n || u == v) return 0;
  const EdgeId e = graph_->FindEdge(u, v);
  return e == kInvalidEdge ? 0 : truss_number_[e];
}

uint64_t TrussIndex::SizeBytes() const {
  return truss_number_.size() * sizeof(uint32_t) +
         vertex_kmax_.size() * sizeof(uint32_t) +
         community_info_.size() * sizeof(CommunityInfo) +
         community_vertex_offsets_.size() * sizeof(uint64_t) +
         community_vertices_.size() * sizeof(VertexId) +
         member_offsets_.size() * sizeof(uint64_t) +
         members_.size() * sizeof(CommunityId) +
         density_order_.size() * sizeof(CommunityId);
}

Status TrussIndex::Save(const std::string& path) const {
  io::AtomicFileWriter w(path);
  TRUSS_RETURN_IF_ERROR(w.Open());

  std::vector<uint32_t> community_k(community_info_.size());
  std::vector<uint64_t> community_edges(community_info_.size());
  for (size_t c = 0; c < community_info_.size(); ++c) {
    community_k[c] = community_info_[c].k;
    community_edges[c] = community_info_[c].num_edges;
  }

  IndexHeader header;
  header.kmax = kmax_;
  header.offsets_count = graph_->offsets().size();
  header.adj_count = graph_->adjacency().size();
  header.edges_count = graph_->edges().size();
  header.community_count = community_info_.size();
  header.community_vertices_count = community_vertices_.size();
  header.member_count = members_.size();
  TRUSS_RETURN_IF_ERROR(w.Append(&header, sizeof(header)));

  TRUSS_RETURN_IF_ERROR(w.AppendSpan(graph_->offsets()));
  TRUSS_RETURN_IF_ERROR(w.AppendSpan(graph_->adjacency()));
  TRUSS_RETURN_IF_ERROR(w.AppendSpan(graph_->edges()));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(truss_number_));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(vertex_kmax_));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(community_k));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(community_edges));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(community_vertex_offsets_));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(community_vertices_));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(member_offsets_));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(members_));
  return w.Commit();
}

Result<std::shared_ptr<const TrussIndex>> TrussIndex::Load(
    const std::string& path) {
  // Whole-file integrity first: a torn or bit-flipped index must fail here
  // with Corruption before any of its bytes are interpreted.
  TRUSS_RETURN_IF_ERROR(io::VerifyChecksummedFile(path).status());

  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for reading");
  }

  IndexHeader header;
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1) {
    return Status::Corruption("truncated index header: " + path);
  }
  if (header.magic != kMagic) {
    return Status::Corruption("bad magic in " + path +
                              " (not a TRSI index file)");
  }
  if (header.version != kVersion) {
    return Status::Corruption("unsupported index version " +
                              std::to_string(header.version) + " in " + path);
  }

  // Check header counts against the actual file size before any
  // allocation, exactly like Graph::LoadBinary: a bit-flipped count must
  // surface as Corruption, not a giant resize() aborting the process.
  const VertexId vertex_count =
      header.offsets_count == 0
          ? 0
          : static_cast<VertexId>(header.offsets_count - 1);
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path);
  const uint64_t max_count = file_size / sizeof(uint32_t);
  if (header.offsets_count > max_count || header.adj_count > max_count ||
      header.edges_count > max_count || header.community_count > max_count ||
      header.community_vertices_count > max_count ||
      header.member_count > max_count) {
    return Status::Corruption("array lengths exceed file size in " + path);
  }
  const uint64_t expected =
      sizeof(IndexHeader) + header.offsets_count * sizeof(uint64_t) +
      header.adj_count * sizeof(AdjEntry) + header.edges_count * sizeof(Edge) +
      header.edges_count * sizeof(uint32_t) +          // truss_number
      static_cast<uint64_t>(vertex_count) * sizeof(uint32_t) +  // vertex_kmax
      header.community_count * (sizeof(uint32_t) + sizeof(uint64_t)) +
      (header.community_count + 1) * sizeof(uint64_t) +
      header.community_vertices_count * sizeof(VertexId) +
      (static_cast<uint64_t>(vertex_count) + 1) * sizeof(uint64_t) +
      header.member_count * sizeof(CommunityId) +
      sizeof(io::ChecksumFooter);
  if (file_size != expected) {
    return Status::Corruption("file size does not match header in " + path);
  }

  std::vector<uint64_t> offsets;
  std::vector<AdjEntry> adj;
  std::vector<Edge> edges;
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &offsets, header.offsets_count, path));
  TRUSS_RETURN_IF_ERROR(ReadArray(f.get(), &adj, header.adj_count, path));
  TRUSS_RETURN_IF_ERROR(ReadArray(f.get(), &edges, header.edges_count, path));

  std::shared_ptr<TrussIndex> idx(new TrussIndex());
  std::vector<uint32_t> community_k;
  std::vector<uint64_t> community_edges;
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &idx->truss_number_, header.edges_count, path));
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &idx->vertex_kmax_, vertex_count, path));
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &community_k, header.community_count, path));
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &community_edges, header.community_count, path));
  TRUSS_RETURN_IF_ERROR(ReadArray(f.get(), &idx->community_vertex_offsets_,
                                  header.community_count + 1, path));
  TRUSS_RETURN_IF_ERROR(ReadArray(f.get(), &idx->community_vertices_,
                                  header.community_vertices_count, path));
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &idx->member_offsets_,
                static_cast<uint64_t>(vertex_count) + 1, path));
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &idx->members_, header.member_count, path));

  // The embedded graph gets the full structural revalidation; the index
  // arrays are then cross-checked against it so a corrupt file cannot
  // smuggle in out-of-range lookups.
  auto graph = Graph::FromCsrParts(std::move(offsets), std::move(adj),
                                   std::move(edges));
  if (!graph.ok()) {
    return Status::Corruption(graph.status().message() + " in " + path);
  }
  idx->graph_ = std::make_shared<const Graph>(graph.MoveValue());
  idx->kmax_ = header.kmax;

  const Graph& g = *idx->graph_;
  uint32_t recomputed_kmax = 0;
  for (const uint32_t t : idx->truss_number_) {
    if (t < 2) return Status::Corruption("truss number < 2 in " + path);
    recomputed_kmax = std::max(recomputed_kmax, t);
  }
  if (recomputed_kmax != idx->kmax_) {
    return Status::Corruption("kmax does not match truss numbers in " + path);
  }
  if (ComputeVertexKmax(g, idx->truss_number_) != idx->vertex_kmax_) {
    return Status::Corruption("vertex kmax table inconsistent in " + path);
  }

  const uint64_t communities = header.community_count;
  if (idx->community_vertex_offsets_.front() != 0 ||
      idx->community_vertex_offsets_.back() !=
          header.community_vertices_count ||
      !std::is_sorted(idx->community_vertex_offsets_.begin(),
                      idx->community_vertex_offsets_.end())) {
    return Status::Corruption("bad community vertex offsets in " + path);
  }
  if (idx->member_offsets_.front() != 0 ||
      idx->member_offsets_.back() != header.member_count ||
      !std::is_sorted(idx->member_offsets_.begin(),
                      idx->member_offsets_.end())) {
    return Status::Corruption("bad membership offsets in " + path);
  }
  for (VertexId v = 0; v < vertex_count; ++v) {
    const uint64_t chain =
        idx->vertex_kmax_[v] >= 3 ? idx->vertex_kmax_[v] - 2 : 0;
    if (idx->member_offsets_[v + 1] - idx->member_offsets_[v] != chain) {
      return Status::Corruption("membership chain length mismatch in " +
                                path);
    }
  }
  for (const CommunityId m : idx->members_) {
    if (m >= communities) {
      return Status::Corruption("membership id out of range in " + path);
    }
  }
  idx->community_info_.resize(communities);
  for (uint64_t c = 0; c < communities; ++c) {
    if (community_k[c] < 3 || community_k[c] > idx->kmax_) {
      return Status::Corruption("community level out of range in " + path);
    }
    const uint64_t nv = idx->community_vertex_offsets_[c + 1] -
                        idx->community_vertex_offsets_[c];
    if (nv == 0) {
      return Status::Corruption("empty community in " + path);
    }
    CommunityInfo& info = idx->community_info_[c];
    info.k = community_k[c];
    info.num_vertices = static_cast<uint32_t>(nv);
    info.num_edges = community_edges[c];
    info.density = Density(info.num_vertices, info.num_edges);
  }
  for (const VertexId v : idx->community_vertices_) {
    if (v >= vertex_count) {
      return Status::Corruption("community vertex out of range in " + path);
    }
  }

  idx->density_order_.resize(communities);
  for (uint64_t c = 0; c < communities; ++c) {
    idx->density_order_[c] = static_cast<CommunityId>(c);
  }
  std::sort(idx->density_order_.begin(), idx->density_order_.end(),
            [&](CommunityId a, CommunityId b) {
              const double da = idx->community_info_[a].density;
              const double db = idx->community_info_[b].density;
              if (da != db) return da > db;
              return a < b;
            });
  return std::shared_ptr<const TrussIndex>(std::move(idx));
}

TrussIndexStatistics TrussIndexStatistics::Compute(const TrussIndex& index) {
  TrussIndexStatistics stats;
  stats.num_vertices = index.graph().num_vertices();
  stats.num_edges = index.graph().num_edges();
  stats.kmax = index.kmax();
  stats.num_communities = index.num_communities();
  stats.index_bytes = index.SizeBytes();
  for (CommunityId c = 0; c < index.num_communities(); ++c) {
    const CommunityInfo& info = index.Community(c);
    stats.largest_community_vertices = std::max<uint64_t>(
        stats.largest_community_vertices, info.num_vertices);
    stats.max_density = std::max(stats.max_density, info.density);
  }
  return stats;
}

void TrussIndexStatistics::Print(std::ostream& os) const {
  os << "TrussIndex: " << num_vertices << " vertices, " << num_edges
     << " edges, kmax " << kmax << ", " << num_communities
     << " communities (largest " << largest_community_vertices
     << " vertices, max density " << max_density << "), index "
     << index_bytes << " bytes\n";
}

}  // namespace truss::serve
