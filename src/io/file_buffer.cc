#include "io/file_buffer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#define TRUSS_HAS_MMAP 1
#include <sys/mman.h>
#else
#define TRUSS_HAS_MMAP 0
#endif

namespace truss::io {

namespace {

/// RAII fd so every early return closes the file.
struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Result<FileBuffer> FileBuffer::Load(const std::string& path, Mode mode) {
  const FdCloser fd{::open(path.c_str(), O_RDONLY)};
  if (fd.fd < 0) return Errno("cannot open", path);

  struct stat st;
  if (::fstat(fd.fd, &st) != 0) return Errno("cannot stat", path);
  if (!S_ISREG(st.st_mode)) {
    // Pipes and directories have no meaningful size to map; the parser
    // needs random access, so reject them up front.
    return Status::IOError("not a regular file: " + path);
  }
  const auto size = static_cast<size_t>(st.st_size);

  FileBuffer out;
  out.size_ = size;
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty view needs no backing.
    out.data_ = "";
    return out;
  }

#if TRUSS_HAS_MMAP
  if (mode != Mode::kRead) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
    if (map != MAP_FAILED) {
      // The parser scans front to back; tell the kernel to read ahead.
      ::madvise(map, size, MADV_SEQUENTIAL);
      out.data_ = static_cast<const char*>(map);
      out.mapped_ = true;
      return out;
    }
    if (mode == Mode::kMmap) return Errno("cannot mmap", path);
  }
#else
  if (mode == Mode::kMmap) {
    return Status::IOError("mmap not available on this platform: " + path);
  }
#endif

  out.owned_.resize(size);
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::read(fd.fd, out.owned_.data() + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("read error on", path);
    }
    if (got == 0) {
      // The file shrank between fstat and read; a short buffer would parse
      // as a silently truncated dataset.
      return Status::IOError("short read on " + path);
    }
    done += static_cast<size_t>(got);
  }
  out.data_ = out.owned_.data();
  return out;
}

void FileBuffer::Release() {
#if TRUSS_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owned_.clear();
}

}  // namespace truss::io
