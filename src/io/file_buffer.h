// Whole-file read-only buffers for bulk text ingestion.
//
// The chunked SNAP parser (graph/text_io) wants the entire file addressable
// as one contiguous byte range so it can split work at newline boundaries
// without any per-line syscalls. FileBuffer provides that range either by
// mmap-ing the file (zero-copy, the kernel pages it in as shards scan) or,
// where mmap is unavailable or fails, by reading it into an owned heap
// buffer with large sequential read()s.

#ifndef TRUSS_IO_FILE_BUFFER_H_
#define TRUSS_IO_FILE_BUFFER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace truss::io {

/// Read-only view of a whole file. Move-only; unmaps / frees on destruction.
class FileBuffer {
 public:
  /// How Load acquires the bytes.
  enum class Mode {
    kAuto,  // mmap when possible, silently fall back to buffered reads
    kMmap,  // mmap or fail (tests pin the zero-copy path)
    kRead,  // always buffered reads (tests pin the fallback path)
  };

  /// Loads `path` in its entirety. Fails with IOError on unreadable files
  /// (including mmap failure under Mode::kMmap).
  TRUSS_NODISCARD static Result<FileBuffer> Load(const std::string& path,
                                 Mode mode = Mode::kAuto);

  FileBuffer() = default;
  ~FileBuffer() { Release(); }

  FileBuffer(FileBuffer&& other) noexcept { *this = std::move(other); }
  FileBuffer& operator=(FileBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      size_ = other.size_;
      mapped_ = other.mapped_;
      owned_ = std::move(other.owned_);
      other.data_ = nullptr;
      other.size_ = 0;
      other.mapped_ = false;
    }
    return *this;
  }

  FileBuffer(const FileBuffer&) = delete;
  FileBuffer& operator=(const FileBuffer&) = delete;

  std::string_view view() const { return {data_, size_}; }
  size_t size() const { return size_; }
  /// True when the bytes are a shared mapping rather than an owned copy.
  bool is_mapped() const { return mapped_; }

 private:
  void Release();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<char> owned_;
};

}  // namespace truss::io

#endif  // TRUSS_IO_FILE_BUFFER_H_
