// Counting file environment implementing the paper's I/O model (§2, [2]).
//
// All disk traffic of the external-memory algorithms flows through an Env so
// that cost is measured in block transfers: reading/writing N bytes costs
// ⌈N/B⌉ I/Os (scan(N) = Θ(N/B)). BlockReader/BlockWriter are sequential,
// buffered streams whose buffer is exactly one block; every buffer fill or
// flush increments the shared IoStats. The design follows the RocksDB Env
// idiom: algorithms receive an Env and never touch the filesystem directly,
// which also centralizes temp-file management for tests.

#ifndef TRUSS_IO_ENV_H_
#define TRUSS_IO_ENV_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace truss::io {

/// Cumulative I/O counters, shared by all streams of an Env.
struct IoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t block_reads = 0;
  uint64_t block_writes = 0;
  uint64_t files_created = 0;
  uint64_t files_deleted = 0;

  uint64_t total_blocks() const { return block_reads + block_writes; }

  IoStats& operator+=(const IoStats& o) {
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    block_reads += o.block_reads;
    block_writes += o.block_writes;
    files_created += o.files_created;
    files_deleted += o.files_deleted;
    return *this;
  }
};

/// Per-field difference `end - start`, for attributing I/O to one phase.
inline IoStats DiffStats(const IoStats& end, const IoStats& start) {
  IoStats d;
  d.bytes_read = end.bytes_read - start.bytes_read;
  d.bytes_written = end.bytes_written - start.bytes_written;
  d.block_reads = end.block_reads - start.block_reads;
  d.block_writes = end.block_writes - start.block_writes;
  d.files_created = end.files_created - start.files_created;
  d.files_deleted = end.files_deleted - start.files_deleted;
  return d;
}

class Env;  // forward declaration for the stream constructors

/// Sequential block-buffered reader. Obtain via Env::OpenReader.
class BlockReader {
 public:
  ~BlockReader();

  /// Reads up to `n` bytes into `out`; returns the count actually read
  /// (0 at end of file).
  size_t Read(void* out, size_t n);

  /// Reads exactly sizeof(T) bytes into a trivially copyable record.
  /// Returns false cleanly at end of file; aborts on a torn record.
  template <typename T>
  bool ReadRecord(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t got = Read(out, sizeof(T));
    if (got == 0) return false;
    TRUSS_CHECK_EQ(got, sizeof(T));
    return true;
  }

 private:
  friend class Env;
  BlockReader(std::FILE* f, size_t block_size, IoStats* stats);

  bool Fill();

  std::FILE* file_;
  IoStats* stats_;
  std::vector<char> buffer_;
  size_t pos_ = 0;
  size_t limit_ = 0;
  bool eof_ = false;
};

/// Sequential block-buffered writer. Obtain via Env::OpenWriter.
class BlockWriter {
 public:
  ~BlockWriter();

  void Write(const void* data, size_t n);

  template <typename T>
  void WriteRecord(const T& rec) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(&rec, sizeof(T));
  }

  /// Flushes the final partial block and closes the file, reporting any
  /// error. The destructor also flushes and closes, but silently; call
  /// Close() whenever write durability matters.
  TRUSS_NODISCARD Status Close();

 private:
  friend class Env;
  BlockWriter(std::FILE* f, size_t block_size, IoStats* stats);

  void FlushBlock();

  std::FILE* file_;
  IoStats* stats_;
  std::vector<char> buffer_;
  size_t pos_ = 0;
};

/// File environment rooted at a directory, with a single block size B.
class Env {
 public:
  /// Creates (or reuses) `root_dir` as the working directory.
  /// `block_size` is B of the I/O model.
  explicit Env(std::string root_dir, size_t block_size = 64 * 1024);
  ~Env();

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  size_t block_size() const { return block_size_; }
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  /// Opens `name` (relative to the root) for sequential reading.
  TRUSS_NODISCARD Result<std::unique_ptr<BlockReader>> OpenReader(const std::string& name);

  /// Opens `name` for writing (truncates).
  TRUSS_NODISCARD Result<std::unique_ptr<BlockWriter>> OpenWriter(const std::string& name);

  bool FileExists(const std::string& name) const;
  TRUSS_NODISCARD Result<uint64_t> FileSize(const std::string& name) const;
  TRUSS_NODISCARD Status DeleteFile(const std::string& name);
  TRUSS_NODISCARD Status RenameFile(const std::string& from, const std::string& to);

  /// Returns a unique file name with the given prefix (not yet created).
  std::string TempName(const std::string& prefix);

  /// Absolute path of a file name under this Env's root.
  std::string FullPath(const std::string& name) const;

  /// Deletes every file under the root that was created via this Env.
  void CleanupAll();

 private:
  std::string root_;
  size_t block_size_;
  IoStats stats_;
  uint64_t temp_counter_ = 0;
  std::vector<std::string> created_;
};

}  // namespace truss::io

#endif  // TRUSS_IO_ENV_H_
