// Counting file environment implementing the paper's I/O model (§2, [2]).
//
// All disk traffic of the external-memory algorithms flows through an Env so
// that cost is measured in block transfers: reading/writing N bytes costs
// ⌈N/B⌉ I/Os (scan(N) = Θ(N/B)). BlockReader/BlockWriter are sequential,
// buffered streams whose buffer is exactly one block; every buffer fill or
// flush increments the shared IoStats. The design follows the RocksDB Env
// idiom: algorithms receive an Env and never touch the filesystem directly,
// which also centralizes temp-file management for tests.
//
// Failure model. The streams never abort on I/O failure: an error on any
// block transfer (a real fread/fwrite failure, or one injected by a
// FaultInjector — see io/fault_env.h) makes the stream *sticky-failed*.
// A failed writer drops subsequent writes and reports the first error from
// Close(); a failed reader returns short/false from Read()/ReadRecord() and
// reports the first error from status(). Every stream error is also
// recorded in the owning Env's health() so driver code can gate a whole
// multi-stream stage with one check (see TRUSS_RETURN_IF_ERROR(env.health())
// in the external decomposition drivers).

#ifndef TRUSS_IO_ENV_H_
#define TRUSS_IO_ENV_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace truss::io {

/// Cumulative I/O counters, shared by all streams of an Env.
struct IoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t block_reads = 0;
  uint64_t block_writes = 0;
  uint64_t files_created = 0;
  uint64_t files_deleted = 0;

  uint64_t total_blocks() const { return block_reads + block_writes; }

  IoStats& operator+=(const IoStats& o) {
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    block_reads += o.block_reads;
    block_writes += o.block_writes;
    files_created += o.files_created;
    files_deleted += o.files_deleted;
    return *this;
  }
};

/// Per-field difference `end - start`, for attributing I/O to one phase.
inline IoStats DiffStats(const IoStats& end, const IoStats& start) {
  IoStats d;
  d.bytes_read = end.bytes_read - start.bytes_read;
  d.bytes_written = end.bytes_written - start.bytes_written;
  d.block_reads = end.block_reads - start.block_reads;
  d.block_writes = end.block_writes - start.block_writes;
  d.files_created = end.files_created - start.files_created;
  d.files_deleted = end.files_deleted - start.files_deleted;
  return d;
}

class Env;  // forward declaration for the stream constructors

/// What a fault injector decides for one block transfer. Default
/// constructed: the transfer proceeds normally.
struct FaultDecision {
  /// Non-OK fails the transfer with this status (after any partial write
  /// requested below).
  Status status;
  /// Writes only: when < the block's byte count, that prefix is written
  /// (and flushed) before the failure — a torn block, as a crash or a
  /// short write would leave it. Ignored when status is OK.
  size_t short_bytes = static_cast<size_t>(-1);
  /// EINTR-style transient failure: the stream retries the transfer
  /// (re-consulting the injector) up to kTransientRetryLimit times before
  /// treating the error as hard.
  bool transient = false;
};

/// Consulted by BlockReader/BlockWriter before every block transfer.
/// Implemented by FaultInjectionEnv (io/fault_env.h); production streams
/// carry no injector and skip the hook entirely.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultDecision OnWriteBlock(const std::string& file, size_t n) = 0;
  virtual FaultDecision OnReadBlock(const std::string& file) = 0;
};

/// How many times a stream retries a transient (EINTR-style) injected
/// failure before treating it as hard.
inline constexpr int kTransientRetryLimit = 4;

/// Sequential block-buffered reader. Obtain via Env::OpenReader.
class BlockReader {
 public:
  ~BlockReader();

  /// Reads up to `n` bytes into `out`; returns the count actually read
  /// (0 at end of file or after an error — distinguish via status()).
  size_t Read(void* out, size_t n);

  /// Reads exactly sizeof(T) bytes into a trivially copyable record.
  /// Returns false at end of file, on a read error, and on a torn
  /// (partial) record; the latter two leave a non-OK status().
  template <typename T>
  bool ReadRecord(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t got = Read(out, sizeof(T));
    if (got == sizeof(T)) return true;
    if (got != 0 && status_.ok()) {
      Fail(Status::Corruption("torn record in " + name_));
    }
    return false;
  }

  /// OK until the first read failure; then the first error, sticky. A
  /// loop that drains a file via ReadRecord() must check this afterwards
  /// to distinguish EOF from a failed or truncated read.
  const Status& status() const { return status_; }

 private:
  friend class Env;
  BlockReader(std::FILE* f, Env* env, std::string name,
              FaultInjector* injector);

  bool Fill();
  void Fail(Status st);

  std::FILE* file_;
  Env* env_;
  std::string name_;
  FaultInjector* injector_;
  Status status_;
  std::vector<char> buffer_;
  size_t pos_ = 0;
  size_t limit_ = 0;
  bool eof_ = false;
};

/// Sequential block-buffered writer. Obtain via Env::OpenWriter.
class BlockWriter {
 public:
  ~BlockWriter();

  /// Buffers `n` bytes. After a write failure the writer is sticky-failed:
  /// further writes are dropped and Close() reports the first error.
  void Write(const void* data, size_t n);

  template <typename T>
  void WriteRecord(const T& rec) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(&rec, sizeof(T));
  }

  /// Flushes the final partial block and closes the file, reporting the
  /// first error of the stream's lifetime. The destructor also flushes and
  /// closes, but silently; call Close() whenever write durability matters.
  TRUSS_NODISCARD Status Close();

  /// OK until the first write failure; then the first error, sticky.
  const Status& status() const { return status_; }

 private:
  friend class Env;
  BlockWriter(std::FILE* f, Env* env, std::string name,
              FaultInjector* injector);

  void FlushBlock();
  void Fail(Status st);

  std::FILE* file_;
  Env* env_;
  std::string name_;
  FaultInjector* injector_;
  Status status_;
  std::vector<char> buffer_;
  size_t pos_ = 0;
};

/// File environment rooted at a directory, with a single block size B.
/// The file-manipulating entry points are virtual so a decorator (the
/// fault-injecting Env, a future read-only or in-memory Env) can intercept
/// them while every algorithm keeps taking a plain `io::Env&`.
class Env {
 public:
  /// Creates (or reuses) `root_dir` as the working directory.
  /// `block_size` is B of the I/O model.
  explicit Env(std::string root_dir, size_t block_size = 64 * 1024);
  virtual ~Env();

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  size_t block_size() const { return block_size_; }
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  /// First error recorded by any stream of this Env (OK while healthy).
  /// Stage drivers gate on this so a read loop that ended early on a
  /// failed or truncated stream surfaces a typed Status instead of
  /// silently computing on a prefix of the data.
  const Status& health() const { return first_error_; }
  void ResetHealth() { first_error_ = Status::OK(); }

  /// Opens `name` (relative to the root) for sequential reading.
  TRUSS_NODISCARD virtual Result<std::unique_ptr<BlockReader>> OpenReader(
      const std::string& name);

  /// Opens `name` for writing (truncates).
  TRUSS_NODISCARD virtual Result<std::unique_ptr<BlockWriter>> OpenWriter(
      const std::string& name);

  virtual bool FileExists(const std::string& name) const;
  TRUSS_NODISCARD virtual Result<uint64_t> FileSize(
      const std::string& name) const;
  TRUSS_NODISCARD virtual Status DeleteFile(const std::string& name);
  TRUSS_NODISCARD virtual Status RenameFile(const std::string& from,
                                            const std::string& to);

  /// Returns a unique file name with the given prefix (not yet created).
  std::string TempName(const std::string& prefix);

  /// Absolute path of a file name under this Env's root.
  std::string FullPath(const std::string& name) const;

  /// Deletes every file under the root that was created via this Env.
  void CleanupAll();

 protected:
  /// Shared open paths for subclasses: identical to OpenReader/OpenWriter
  /// but attach `injector` to the stream (nullptr = no fault hook).
  TRUSS_NODISCARD Result<std::unique_ptr<BlockReader>> OpenReaderImpl(
      const std::string& name, FaultInjector* injector);
  TRUSS_NODISCARD Result<std::unique_ptr<BlockWriter>> OpenWriterImpl(
      const std::string& name, FaultInjector* injector);

 private:
  friend class BlockReader;
  friend class BlockWriter;

  /// First-error-wins sink the streams report into; see health().
  void RecordStreamError(const Status& st);

  std::string root_;
  size_t block_size_;
  IoStats stats_;
  Status first_error_;
  uint64_t temp_counter_ = 0;
  std::vector<std::string> created_;
};

}  // namespace truss::io

#endif  // TRUSS_IO_ENV_H_
