// On-disk record formats used by the external-memory truss algorithms.
//
// The shrinking input graph G of the lower-bounding stage (Algorithm 3) is a
// file of GEdgeRecord sorted by (u, v); the classified working graph Gnew of
// the decomposition stages is a file of GnewRecord. Records are fixed-size
// PODs written through BlockWriter, so scan(N) block accounting is exact.

#ifndef TRUSS_IO_EDGE_RECORDS_H_
#define TRUSS_IO_EDGE_RECORDS_H_

#include <cstdint>

#include "common/types.h"

namespace truss::io {

/// Edge of the shrinking graph G during lower/upper bounding.
/// `sup_acc` accumulates exact triangle credits across iterations (DESIGN.md
/// §3.1); `phi_lb` is the best known truss-number lower bound φ(e).
struct GEdgeRecord {
  VertexId u = 0;
  VertexId v = 0;
  uint32_t sup_acc = 0;
  uint32_t phi_lb = 2;

  friend bool operator==(const GEdgeRecord&, const GEdgeRecord&) = default;
};

/// Edge of Gnew. `label` is φ(e) for the bottom-up algorithm and the exact
/// support sup(e) for the top-down algorithm. `aux` is unused by bottom-up;
/// top-down stores the upper bound ψ(e). `cls` is the assigned truss class
/// (0 while unknown) — only the top-down algorithm keeps classified edges
/// around (Procedure 8, Steps 7-9).
struct GnewRecord {
  VertexId u = 0;
  VertexId v = 0;
  uint32_t label = 0;
  uint32_t aux = 0;
  uint32_t cls = 0;

  friend bool operator==(const GnewRecord&, const GnewRecord&) = default;
};

/// Support/bound delta spilled while processing one partition part and
/// merge-joined into G at the end of an iteration.
struct DeltaRecord {
  VertexId u = 0;
  VertexId v = 0;
  uint32_t sup_delta = 0;
  uint32_t phi_cand = 0;
};

/// Final classification output: one record per original edge.
struct ClassRecord {
  VertexId u = 0;
  VertexId v = 0;
  uint32_t truss = 0;
};

/// Lexicographic (u, v) comparators shared by the external sorts.
struct ByEdgeLess {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

/// One (endpoint, support) incidence emitted per edge side during the
/// upper-bounding stage (Procedure 6); grouping by vertex yields the
/// support multiset from which the per-vertex h-index profile is computed.
struct IncidenceRecord {
  VertexId vertex = 0;
  uint32_t sup = 0;
};

struct ByVertexSupLess {
  bool operator()(const IncidenceRecord& a, const IncidenceRecord& b) const {
    return a.vertex != b.vertex ? a.vertex < b.vertex : a.sup < b.sup;
  }
};

}  // namespace truss::io

#endif  // TRUSS_IO_EDGE_RECORDS_H_
