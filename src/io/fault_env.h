// Fault-injecting Env for chaos testing (tests/fault_test.cc).
//
// FaultInjectionEnv is an io::Env whose block transfers can fail on a
// deterministic, seed-driven schedule: hard errors after N successful
// blocks, short (torn) writes, EINTR-style transient errors that succeed
// on retry, and a crash point that tears the file mid-block and then fails
// every subsequent operation — simulating the machine dying mid-save.
//
// Every knob draws from common/rng.h seeded by FaultInjectionOptions::seed,
// so a failing schedule reproduces exactly from its seed; there is no wall
// clock or global RNG anywhere in the schedule. The decorator follows the
// RocksDB FaultInjectionTestEnv idiom: algorithms take a plain `io::Env&`
// and never know whether faults are armed.
//
// Like Env itself, a FaultInjectionEnv is not thread-safe; use one per
// test thread.

#ifndef TRUSS_IO_FAULT_ENV_H_
#define TRUSS_IO_FAULT_ENV_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "io/env.h"

namespace truss::io {

/// Deterministic fault schedule. Default constructed: no faults — the env
/// behaves exactly like a plain Env.
struct FaultInjectionOptions {
  /// Seed for every probabilistic knob below (common/rng.h SplitMix64 /
  /// Xoshiro256**). Two envs with equal options inject identical faults.
  uint64_t seed = 1;

  /// After this many successful block writes (across all files of the env),
  /// every further block write fails hard. 0 disables. Sweeping this knob
  /// over 1..total_blocks exercises a failure at every write of a run.
  uint64_t fail_after_block_writes = 0;

  /// Same, for block reads. 0 disables.
  uint64_t fail_after_block_reads = 0;

  /// Probability that a block write is torn: a seed-chosen prefix of the
  /// block reaches the file, then the stream fails hard. 0 disables.
  double short_write_p = 0.0;

  /// Probability that a block transfer (read or write) fails with an
  /// EINTR-style transient error. The stream retries, re-consulting the
  /// schedule, up to kTransientRetryLimit times — so with p well below 1
  /// transients are invisible except in fault_stats(). 0 disables.
  double transient_p = 0.0;

  /// Crash point: once this many bytes have been submitted for writing
  /// across the env, the block in flight is truncated exactly at the
  /// boundary and the env goes down — every later open, write, read,
  /// delete, and rename fails. 0 disables. Models kill -9 mid-save.
  uint64_t crash_after_bytes = 0;
};

/// What the schedule actually injected (for asserting a fault fired).
struct FaultInjectionStats {
  uint64_t write_blocks_seen = 0;
  uint64_t read_blocks_seen = 0;
  uint64_t injected_write_errors = 0;
  uint64_t injected_read_errors = 0;
  uint64_t injected_short_writes = 0;
  uint64_t injected_transients = 0;
  uint64_t crashes = 0;
};

/// Env that injects the schedule above into every stream it opens.
class FaultInjectionEnv : public Env, private FaultInjector {
 public:
  FaultInjectionEnv(std::string root_dir, FaultInjectionOptions fault_options,
                    size_t block_size = 64 * 1024);

  TRUSS_NODISCARD Result<std::unique_ptr<BlockReader>> OpenReader(
      const std::string& name) override;
  TRUSS_NODISCARD Result<std::unique_ptr<BlockWriter>> OpenWriter(
      const std::string& name) override;
  TRUSS_NODISCARD Status DeleteFile(const std::string& name) override;
  TRUSS_NODISCARD Status RenameFile(const std::string& from,
                                    const std::string& to) override;

  const FaultInjectionStats& fault_stats() const { return fault_stats_; }

  /// True once the crash point has fired; the env refuses all further work.
  bool crashed() const { return crashed_; }

 private:
  FaultDecision OnWriteBlock(const std::string& file, size_t n) override;
  FaultDecision OnReadBlock(const std::string& file) override;
  TRUSS_NODISCARD Status CrashedStatus() const;

  FaultInjectionOptions options_;
  Rng rng_;
  FaultInjectionStats fault_stats_;
  uint64_t bytes_submitted_ = 0;
  bool crashed_ = false;
};

}  // namespace truss::io

#endif  // TRUSS_IO_FAULT_ENV_H_
