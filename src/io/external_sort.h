// External merge sort over fixed-size records.
//
// Standard two-phase sort in the Aggarwal–Vitter model: run formation sorts
// memory-budget-sized chunks, then a multi-way merge (loser-tree-free heap)
// combines the runs. Used by the MapReduce shuffle and by the delta merge of
// the lower-bounding stage.

#ifndef TRUSS_IO_EXTERNAL_SORT_H_
#define TRUSS_IO_EXTERNAL_SORT_H_

#include <algorithm>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "io/env.h"

namespace truss::io {

/// Sorts the records of file `input` into file `output` using at most
/// `memory_budget_bytes` of record buffer. `Record` must be trivially
/// copyable; `Less` must be a strict weak order.
template <typename Record, typename Less>
TRUSS_NODISCARD Status ExternalSort(Env& env, const std::string& input,
                    const std::string& output, Less less,
                    uint64_t memory_budget_bytes) {
  const uint64_t chunk_records =
      std::max<uint64_t>(1, memory_budget_bytes / sizeof(Record));

  // Phase 1: run formation.
  std::vector<std::string> runs;
  {
    auto in = env.OpenReader(input);
    TRUSS_RETURN_IF_ERROR(in.status());
    std::vector<Record> chunk;
    chunk.reserve(static_cast<size_t>(
        std::min<uint64_t>(chunk_records, 1u << 20)));
    bool done = false;
    while (!done) {
      chunk.clear();
      Record rec;
      while (chunk.size() < chunk_records) {
        if (!in.value()->ReadRecord(&rec)) {
          done = true;
          break;
        }
        chunk.push_back(rec);
      }
      // A false ReadRecord may be EOF or a failed read; only the stream's
      // status distinguishes them.
      TRUSS_RETURN_IF_ERROR(in.value()->status());
      if (chunk.empty()) break;
      std::sort(chunk.begin(), chunk.end(), less);
      const std::string run_name = env.TempName("sort_run");
      auto out = env.OpenWriter(run_name);
      TRUSS_RETURN_IF_ERROR(out.status());
      for (const Record& r : chunk) out.value()->WriteRecord(r);
      TRUSS_RETURN_IF_ERROR(out.value()->Close());
      runs.push_back(run_name);
    }
  }

  if (runs.empty()) {
    // Empty input: produce an empty output file.
    auto out = env.OpenWriter(output);
    TRUSS_RETURN_IF_ERROR(out.status());
    return out.value()->Close();
  }

  // Phase 2: multi-way merge. With the budgets used in this repo a single
  // merge level suffices (fan-in = number of runs); a heap keyed by the
  // head record of each run yields the output order.
  struct Head {
    Record rec;
    size_t run;
  };
  auto cmp = [&less](const Head& a, const Head& b) {
    return less(b.rec, a.rec);  // min-heap
  };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);

  std::vector<std::unique_ptr<BlockReader>> readers;
  readers.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    auto r = env.OpenReader(runs[i]);
    TRUSS_RETURN_IF_ERROR(r.status());
    readers.push_back(r.MoveValue());
    Record rec;
    if (readers[i]->ReadRecord(&rec)) heap.push(Head{rec, i});
    TRUSS_RETURN_IF_ERROR(readers[i]->status());
  }

  auto out = env.OpenWriter(output);
  TRUSS_RETURN_IF_ERROR(out.status());
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    out.value()->WriteRecord(head.rec);
    Record next;
    if (readers[head.run]->ReadRecord(&next)) heap.push(Head{next, head.run});
    TRUSS_RETURN_IF_ERROR(readers[head.run]->status());
  }
  TRUSS_RETURN_IF_ERROR(out.value()->Close());

  readers.clear();
  for (const std::string& run : runs) {
    TRUSS_RETURN_IF_ERROR(env.DeleteFile(run));
  }
  return Status::OK();
}

}  // namespace truss::io

#endif  // TRUSS_IO_EXTERNAL_SORT_H_
