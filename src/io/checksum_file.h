// Crash-safe file writing: write-to-temp + checksum footer + atomic rename.
//
// Snapshot files (TRSB graph snapshots, TRSI truss indexes) are written
// through AtomicFileWriter: the payload streams into a temp file next to
// the destination, a ChecksumFooter over the payload is appended, the file
// is flushed and closed, and only then renamed over the destination. A
// crash at any point leaves either the old file or the new file — never a
// half-written hybrid — and a tear the rename discipline cannot prevent
// (e.g. a corrupted sector after the fact) is caught by the footer:
// VerifyChecksummedFile re-checksums the payload on load and rejects any
// mismatch as Status::Corruption.

#ifndef TRUSS_IO_CHECKSUM_FILE_H_
#define TRUSS_IO_CHECKSUM_FILE_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/status.h"

namespace truss::io {

inline constexpr uint32_t kChecksumFooterMagic = 0x46535254;  // "TRSF"

/// Trailing 24 bytes of every checksummed snapshot file.
struct ChecksumFooter {
  uint32_t magic = kChecksumFooterMagic;
  uint32_t reserved = 0;
  uint64_t payload_bytes = 0;  // file size minus this footer
  uint64_t checksum = 0;       // Checksum64 over the payload bytes
};
static_assert(sizeof(ChecksumFooter) == 24);

/// Writes `path` atomically. Usage:
///
///   AtomicFileWriter w(path);
///   TRUSS_RETURN_IF_ERROR(w.Open());
///   TRUSS_RETURN_IF_ERROR(w.Append(&header, sizeof(header)));
///   TRUSS_RETURN_IF_ERROR(w.AppendSpan<uint64_t>(offsets));
///   return w.Commit();
///
/// Until Commit() returns OK the destination is untouched; any failure (or
/// destruction before Commit) removes the temp file. Not thread-safe, but
/// concurrent writers to the same destination are safe against each other:
/// each streams into its own temp file and the rename is atomic.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Creates the temp file. Must be called (and succeed) before Append.
  TRUSS_NODISCARD Status Open();

  /// Appends payload bytes, folding them into the running checksum.
  TRUSS_NODISCARD Status Append(const void* data, size_t n);

  template <typename T>
  TRUSS_NODISCARD Status AppendSpan(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Append(data.data(), data.size() * sizeof(T));
  }

  template <typename T>
  TRUSS_NODISCARD Status AppendVector(const std::vector<T>& data) {
    return AppendSpan(std::span<const T>(data));
  }

  /// Appends the footer, flushes, closes, and renames over the
  /// destination. Returns the first error of the writer's lifetime; on
  /// error the destination is untouched and the temp file removed.
  TRUSS_NODISCARD Status Commit();

 private:
  void Abandon();

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  Checksum64 sum_;
  Status status_;
};

/// Verifies the footer of `path`: footer magic, payload length against the
/// file size, and the checksum over the payload. Returns the payload byte
/// count on success, Status::Corruption on any mismatch. Streams the file
/// once; callers re-read the payload afterwards for parsing.
TRUSS_NODISCARD Result<uint64_t> VerifyChecksummedFile(
    const std::string& path);

/// Recomputes the checksum over the existing payload of `path` (which must
/// already end in a well-formed footer) and rewrites the footer in place.
/// For tests and recovery tooling that deliberately edit a payload and then
/// need the file loadable again; production writes go through
/// AtomicFileWriter only.
TRUSS_NODISCARD Status RewriteChecksumFooter(const std::string& path);

}  // namespace truss::io

#endif  // TRUSS_IO_CHECKSUM_FILE_H_
