#include "io/checksum_file.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <system_error>

namespace truss::io {

namespace {

namespace fs = std::filesystem;

/// Distinguishes temp files of concurrent writers within one process; the
/// pid distinguishes processes sharing a directory.
std::string NextTempSuffix() {
  static std::atomic<uint64_t> counter{0};
  // ordering: relaxed — the counter only needs uniqueness, not ordering.
  const uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  return ".tmp." + std::to_string(::getpid()) + "." + std::to_string(seq);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + NextTempSuffix()) {}

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

void AtomicFileWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::error_code ec;
  fs::remove(tmp_path_, ec);
}

Status AtomicFileWriter::Open() {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IOError("cannot open " + tmp_path_ + " for writing");
  }
  return status_;
}

Status AtomicFileWriter::Append(const void* data, size_t n) {
  if (!status_.ok()) return status_;
  if (n == 0) return Status::OK();
  if (std::fwrite(data, 1, n, file_) != n) {
    status_ = Status::IOError("short write to " + tmp_path_);
    Abandon();
    return status_;
  }
  sum_.Update(data, n);
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (!status_.ok()) {
    Abandon();
    return status_;
  }
  ChecksumFooter footer;
  footer.payload_bytes = sum_.bytes();
  footer.checksum = sum_.Digest();
  if (std::fwrite(&footer, sizeof(footer), 1, file_) != 1 ||
      std::fflush(file_) != 0) {
    status_ = Status::IOError("short write to " + tmp_path_);
    Abandon();
    return status_;
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    status_ = Status::IOError("close failed for " + tmp_path_);
    Abandon();
    return status_;
  }
  std::error_code ec;
  fs::rename(tmp_path_, path_, ec);
  if (ec) {
    status_ =
        Status::IOError("cannot rename " + tmp_path_ + " -> " + path_);
    Abandon();
    return status_;
  }
  return Status::OK();
}

Result<uint64_t> VerifyChecksummedFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for reading");
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  std::error_code ec;
  const uint64_t file_size = fs::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path);
  if (file_size < sizeof(ChecksumFooter)) {
    return Status::Corruption("missing checksum footer in " + path);
  }
  const uint64_t payload = file_size - sizeof(ChecksumFooter);

  Checksum64 sum;
  std::vector<char> buf(64 * 1024);
  uint64_t remaining = payload;
  while (remaining > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(remaining, buf.size()));
    if (std::fread(buf.data(), 1, want, f) != want) {
      return Status::Corruption("truncated payload in " + path);
    }
    sum.Update(buf.data(), want);
    remaining -= want;
  }

  ChecksumFooter footer;
  if (std::fread(&footer, sizeof(footer), 1, f) != 1) {
    return Status::Corruption("truncated checksum footer in " + path);
  }
  if (footer.magic != kChecksumFooterMagic) {
    return Status::Corruption("bad checksum footer magic in " + path);
  }
  // Reserved bytes are written as zero; validating them keeps every footer
  // byte covered by corruption detection.
  if (footer.reserved != 0) {
    return Status::Corruption("nonzero reserved footer bytes in " + path);
  }
  if (footer.payload_bytes != payload) {
    return Status::Corruption("checksum footer length mismatch in " + path);
  }
  if (footer.checksum != sum.Digest()) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  return payload;
}

Status RewriteChecksumFooter(const std::string& path) {
  std::error_code ec;
  const uint64_t file_size = fs::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path);
  if (file_size < sizeof(ChecksumFooter)) {
    return Status::Corruption("missing checksum footer in " + path);
  }
  const uint64_t payload = file_size - sizeof(ChecksumFooter);

  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for rewriting");
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  Checksum64 sum;
  std::vector<char> buf(64 * 1024);
  uint64_t remaining = payload;
  while (remaining > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(remaining, buf.size()));
    if (std::fread(buf.data(), 1, want, f) != want) {
      return Status::Corruption("truncated payload in " + path);
    }
    sum.Update(buf.data(), want);
    remaining -= want;
  }

  // Update-mode streams require a positioning call between a read and the
  // following write (C17 7.21.5.3/7); the no-op seek is that call.
  if (std::fseek(f, 0, SEEK_CUR) != 0) {
    return Status::IOError("cannot seek in " + path);
  }
  ChecksumFooter footer;
  footer.payload_bytes = payload;
  footer.checksum = sum.Digest();
  if (std::fwrite(&footer, sizeof(footer), 1, f) != 1 ||
      std::fflush(f) != 0) {
    return Status::IOError("cannot rewrite footer of " + path);
  }
  return Status::OK();
}

}  // namespace truss::io
