#include "io/env.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

namespace truss::io {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- reader --

BlockReader::BlockReader(std::FILE* f, Env* env, std::string name,
                         FaultInjector* injector)
    : file_(f),
      env_(env),
      name_(std::move(name)),
      injector_(injector),
      buffer_(env->block_size_) {}

BlockReader::~BlockReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BlockReader::Fail(Status st) {
  if (!status_.ok()) return;
  status_ = st;
  env_->RecordStreamError(st);
}

bool BlockReader::Fill() {
  if (eof_ || !status_.ok()) return false;
  if (injector_ != nullptr) {
    for (int attempt = 0;; ++attempt) {
      const FaultDecision d = injector_->OnReadBlock(name_);
      if (d.status.ok()) break;
      if (d.transient && attempt < kTransientRetryLimit) continue;
      Fail(d.status);
      eof_ = true;
      return false;
    }
  }
  limit_ = std::fread(buffer_.data(), 1, buffer_.size(), file_);
  pos_ = 0;
  if (limit_ == 0) {
    if (std::ferror(file_) != 0) {
      Fail(Status::IOError("read failed on " + name_));
    }
    eof_ = true;
    return false;
  }
  ++env_->stats_.block_reads;
  env_->stats_.bytes_read += limit_;
  return true;
}

size_t BlockReader::Read(void* out, size_t n) {
  char* dst = static_cast<char*>(out);
  size_t total = 0;
  while (total < n) {
    if (pos_ == limit_ && !Fill()) break;
    const size_t take = std::min(n - total, limit_ - pos_);
    std::memcpy(dst + total, buffer_.data() + pos_, take);
    pos_ += take;
    total += take;
  }
  return total;
}

// ---------------------------------------------------------------- writer --

BlockWriter::BlockWriter(std::FILE* f, Env* env, std::string name,
                         FaultInjector* injector)
    : file_(f),
      env_(env),
      name_(std::move(name)),
      injector_(injector),
      buffer_(env->block_size_) {}

BlockWriter::~BlockWriter() {
  // Flush-and-close on destruction so error paths that unwind past a writer
  // do not lose buffered data or leak the handle. Errors are swallowed
  // here; callers that care about write durability must call Close().
  if (file_ != nullptr) {
    FlushBlock();
    std::fclose(file_);
    file_ = nullptr;
  }
}

void BlockWriter::Fail(Status st) {
  if (!status_.ok()) return;
  status_ = st;
  env_->RecordStreamError(st);
}

void BlockWriter::FlushBlock() {
  const size_t n = pos_;
  pos_ = 0;
  if (n == 0) return;
  // Sticky failure: once a block transfer has failed, the file's contents
  // are undefined anyway — drop the data rather than write a gap after the
  // tear. Close() reports the first error.
  if (!status_.ok()) return;
  if (injector_ != nullptr) {
    for (int attempt = 0;; ++attempt) {
      const FaultDecision d = injector_->OnWriteBlock(name_, n);
      if (d.status.ok()) break;
      if (d.transient && attempt < kTransientRetryLimit) continue;
      // Torn block: persist the prefix the injector asked for (what a real
      // short write or crash would leave behind), then go sticky.
      const size_t keep = std::min(d.short_bytes, n);
      if (keep > 0) {
        const size_t wrote = std::fwrite(buffer_.data(), 1, keep, file_);
        env_->stats_.bytes_written += wrote;
        std::fflush(file_);
      }
      Fail(d.status);
      return;
    }
  }
  const size_t wrote = std::fwrite(buffer_.data(), 1, n, file_);
  env_->stats_.bytes_written += wrote;
  if (wrote != n) {
    Fail(Status::IOError("short write on " + name_));
    return;
  }
  ++env_->stats_.block_writes;
}

void BlockWriter::Write(const void* data, size_t n) {
  if (!status_.ok()) return;
  const char* src = static_cast<const char*>(data);
  size_t total = 0;
  while (total < n) {
    const size_t take = std::min(n - total, buffer_.size() - pos_);
    std::memcpy(buffer_.data() + pos_, src + total, take);
    pos_ += take;
    total += take;
    if (pos_ == buffer_.size()) {
      FlushBlock();
      if (!status_.ok()) return;
    }
  }
}

Status BlockWriter::Close() {
  FlushBlock();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (!status_.ok()) return status_;
  if (rc != 0) {
    Status st = Status::IOError("fclose failed on " + name_);
    Fail(st);
    return st;
  }
  return Status::OK();
}

// ------------------------------------------------------------------- env --

Env::Env(std::string root_dir, size_t block_size)
    : root_(std::move(root_dir)), block_size_(block_size) {
  TRUSS_CHECK_GE(block_size_, 64u);
  std::error_code ec;
  fs::create_directories(root_, ec);
  TRUSS_CHECK(!ec);
}

Env::~Env() = default;

void Env::RecordStreamError(const Status& st) {
  if (first_error_.ok()) first_error_ = st;
}

std::string Env::FullPath(const std::string& name) const {
  return (fs::path(root_) / name).string();
}

Result<std::unique_ptr<BlockReader>> Env::OpenReaderImpl(
    const std::string& name, FaultInjector* injector) {
  std::FILE* f = std::fopen(FullPath(name).c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for read: " + name);
  }
  return std::unique_ptr<BlockReader>(new BlockReader(f, this, name, injector));
}

Result<std::unique_ptr<BlockWriter>> Env::OpenWriterImpl(
    const std::string& name, FaultInjector* injector) {
  std::FILE* f = std::fopen(FullPath(name).c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + name);
  }
  ++stats_.files_created;
  created_.push_back(name);
  return std::unique_ptr<BlockWriter>(new BlockWriter(f, this, name, injector));
}

Result<std::unique_ptr<BlockReader>> Env::OpenReader(const std::string& name) {
  return OpenReaderImpl(name, nullptr);
}

Result<std::unique_ptr<BlockWriter>> Env::OpenWriter(const std::string& name) {
  return OpenWriterImpl(name, nullptr);
}

bool Env::FileExists(const std::string& name) const {
  std::error_code ec;
  return fs::exists(FullPath(name), ec);
}

Result<uint64_t> Env::FileSize(const std::string& name) const {
  std::error_code ec;
  const uint64_t size = fs::file_size(FullPath(name), ec);
  if (ec) return Status::IOError("cannot stat " + name);
  return size;
}

Status Env::DeleteFile(const std::string& name) {
  std::error_code ec;
  if (!fs::remove(FullPath(name), ec) || ec) {
    return Status::IOError("cannot delete " + name);
  }
  ++stats_.files_deleted;
  return Status::OK();
}

Status Env::RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(FullPath(from), FullPath(to), ec);
  if (ec) return Status::IOError("cannot rename " + from + " -> " + to);
  created_.push_back(to);
  return Status::OK();
}

std::string Env::TempName(const std::string& prefix) {
  return prefix + "." + std::to_string(temp_counter_++) + ".tmp";
}

void Env::CleanupAll() {
  for (const std::string& name : created_) {
    std::error_code ec;
    fs::remove(FullPath(name), ec);
  }
  created_.clear();
}

}  // namespace truss::io
