#include "io/fault_env.h"

#include <algorithm>

namespace truss::io {

FaultInjectionEnv::FaultInjectionEnv(std::string root_dir,
                                     FaultInjectionOptions fault_options,
                                     size_t block_size)
    : Env(std::move(root_dir), block_size),
      options_(fault_options),
      rng_(fault_options.seed) {}

Status FaultInjectionEnv::CrashedStatus() const {
  return Status::IOError("injected crash: env is down");
}

Result<std::unique_ptr<BlockReader>> FaultInjectionEnv::OpenReader(
    const std::string& name) {
  if (crashed_) return CrashedStatus();
  return OpenReaderImpl(name, this);
}

Result<std::unique_ptr<BlockWriter>> FaultInjectionEnv::OpenWriter(
    const std::string& name) {
  if (crashed_) return CrashedStatus();
  return OpenWriterImpl(name, this);
}

Status FaultInjectionEnv::DeleteFile(const std::string& name) {
  if (crashed_) return CrashedStatus();
  return Env::DeleteFile(name);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (crashed_) return CrashedStatus();
  return Env::RenameFile(from, to);
}

FaultDecision FaultInjectionEnv::OnWriteBlock(const std::string& file,
                                              size_t n) {
  ++fault_stats_.write_blocks_seen;
  FaultDecision d;
  if (crashed_) {
    d.status = CrashedStatus();
    d.short_bytes = 0;
    return d;
  }
  // Crash point fires on the exact submitted byte, tearing the in-flight
  // block at the boundary; everything after is refused.
  if (options_.crash_after_bytes > 0 &&
      bytes_submitted_ + n >= options_.crash_after_bytes) {
    d.short_bytes = static_cast<size_t>(std::min<uint64_t>(
        n, options_.crash_after_bytes - bytes_submitted_));
    crashed_ = true;
    ++fault_stats_.crashes;
    ++fault_stats_.injected_write_errors;
    d.status = Status::IOError("injected crash during write of " + file);
    return d;
  }
  if (options_.fail_after_block_writes > 0 &&
      fault_stats_.write_blocks_seen > options_.fail_after_block_writes) {
    ++fault_stats_.injected_write_errors;
    d.short_bytes = 0;
    d.status = Status::IOError(
        "injected write error after " +
        std::to_string(options_.fail_after_block_writes) + " blocks (" + file +
        ")");
    return d;
  }
  if (options_.transient_p > 0.0 && rng_.Bernoulli(options_.transient_p)) {
    ++fault_stats_.injected_transients;
    d.transient = true;
    d.status = Status::IOError("injected transient write error (EINTR)");
    return d;
  }
  if (options_.short_write_p > 0.0 && rng_.Bernoulli(options_.short_write_p)) {
    ++fault_stats_.injected_short_writes;
    ++fault_stats_.injected_write_errors;
    d.short_bytes = n == 0 ? 0 : static_cast<size_t>(rng_.Uniform(n));
    d.status = Status::IOError("injected short write on " + file);
    return d;
  }
  bytes_submitted_ += n;
  return d;
}

FaultDecision FaultInjectionEnv::OnReadBlock(const std::string& file) {
  ++fault_stats_.read_blocks_seen;
  FaultDecision d;
  if (crashed_) {
    d.status = CrashedStatus();
    return d;
  }
  if (options_.fail_after_block_reads > 0 &&
      fault_stats_.read_blocks_seen > options_.fail_after_block_reads) {
    ++fault_stats_.injected_read_errors;
    d.status = Status::IOError(
        "injected read error after " +
        std::to_string(options_.fail_after_block_reads) + " blocks (" + file +
        ")");
    return d;
  }
  if (options_.transient_p > 0.0 && rng_.Bernoulli(options_.transient_p)) {
    ++fault_stats_.injected_transients;
    d.transient = true;
    d.status = Status::IOError("injected transient read error (EINTR)");
    return d;
  }
  return d;
}

}  // namespace truss::io
