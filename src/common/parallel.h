// Minimal shared-memory parallelism utilities: a fork-join ParallelFor over
// contiguous index ranges plus a weight-balanced range splitter.
//
// Design constraints, in order:
//   1. Determinism. Shard boundaries depend only on the inputs, never on
//      scheduling, so any consumer that merges per-shard results in shard
//      order produces byte-identical output for every thread count.
//   2. No hidden global state. Each call spawns its own workers (shard 0
//      runs on the calling thread) and joins them before returning; there is
//      no process-wide pool to configure, leak, or contend on.
//   3. Exact accounting of the requested width: callers ask for N threads,
//      EffectiveThreads() clamps to the item count and a process sanity cap,
//      and that clamped width is what actually runs.
//
// Concurrency contract (the reason shard result collection needs no locks
// and no annotations): each worker writes only its own shard's slot of any
// per-shard result array (disjoint indices, no conflicting accesses), and
// RunShards joins every worker before returning. std::thread construction
// happens-before the worker body ([thread.thread.constr]), and worker
// completion happens-before join() returns ([thread.thread.member]), so
// everything written inside a shard is visible to the caller — and to the
// workers of any later ParallelFor — without atomics or mutexes. State that
// IS written concurrently from several shards must be relaxed-atomic
// (common/flags.h ByteFlags, the parallel peel's support CAS) or guarded by
// an annotated truss::Mutex (common/mutex.h); plain shared writes are a
// data race the TSan CI job is wired to catch.

#ifndef TRUSS_COMMON_PARALLEL_H_
#define TRUSS_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <span>
#include <thread>
#include <vector>

namespace truss {

/// Hard cap on worker threads per ParallelFor call; requests beyond it are
/// clamped by EffectiveThreads. Generous for any machine this targets while
/// keeping an absurd request (e.g. --threads 1000000) from exhausting the
/// process.
inline constexpr uint32_t kMaxParallelThreads = 256;

/// Worker count actually used for `requested` threads over `items` units of
/// work: min(max(requested, 1), items, kMaxParallelThreads), with a floor of
/// 1 — zero items yields one worker so callers' sequential fallbacks fire
/// instead of spawning threads with nothing to do.
uint32_t EffectiveThreads(uint32_t requested, uint64_t items);

/// Runs body(shard) for shard = 0..shards-1, each shard on its own thread
/// (shard 0 on the calling thread), and joins them all before returning.
/// `body` must not throw. The join is the publication point: per-shard
/// results written by body(s) may be read freely — by the caller or by a
/// subsequent parallel phase — once RunShards returns (see the concurrency
/// contract above).
void RunShards(uint32_t shards, const std::function<void(uint32_t)>& body);

/// Splits [0, n) into EffectiveThreads(threads, n) contiguous equal-width
/// ranges and runs body(begin, end, shard) for each, in parallel. Ranges
/// cover [0, n) exactly, in shard order, with no overlap.
void ParallelFor(
    uint32_t threads, uint64_t n,
    const std::function<void(uint64_t begin, uint64_t end, uint32_t shard)>&
        body);

/// Weight-balanced shard bounds over n items described by their prefix-sum
/// weights (`prefix` has n+1 non-decreasing entries, prefix[0] == 0; item i
/// weighs prefix[i+1] - prefix[i]). Returns `shards` + 1 bounds b with
/// b[0] == 0, b[shards] == n, b non-decreasing, chosen so every shard's
/// total weight is as close to total/shards as contiguity allows. A CSR
/// offsets array is exactly such a prefix, so this shards vertices into
/// degree-balanced ranges.
std::vector<uint64_t> SplitBalanced(std::span<const uint64_t> prefix,
                                    uint32_t shards);

/// One long-lived background thread, started at construction and joined at
/// destruction (or by an explicit Join). The fork-join helpers above cover
/// compute parallelism; this is for supervisory loops that must run off
/// the latency-sensitive threads — e.g. the serving tier's rebuild-retry
/// supervisor. Lives here because common/parallel.{h,cc} is the repo's
/// only sanctioned thread-creation site (see the concurrency arch pass).
///
/// `body` must return on its own once the owner asks it to stop (typically
/// via a CondVar-signalled flag); Join blocks until it does.
class BackgroundThread {
 public:
  explicit BackgroundThread(std::function<void()> body);
  ~BackgroundThread();

  BackgroundThread(const BackgroundThread&) = delete;
  BackgroundThread& operator=(const BackgroundThread&) = delete;

  /// Blocks until the body returns. Idempotent.
  void Join();

 private:
  std::thread thread_;
};

}  // namespace truss

#endif  // TRUSS_COMMON_PARALLEL_H_
