#include "common/parallel.h"

#include <algorithm>
#include <thread>

#include "common/macros.h"

namespace truss {

uint32_t EffectiveThreads(uint32_t requested, uint64_t items) {
  if (items == 0) return 1;
  const uint64_t effective =
      std::min<uint64_t>(std::max<uint64_t>(requested, 1), kMaxParallelThreads);
  return static_cast<uint32_t>(std::min(effective, items));
}

void RunShards(uint32_t shards, const std::function<void(uint32_t)>& body) {
  TRUSS_CHECK_GE(shards, 1u);
  if (shards == 1) {
    body(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  for (uint32_t s = 1; s < shards; ++s) {
    workers.emplace_back([&body, s] { body(s); });
  }
  body(0);
  for (std::thread& worker : workers) worker.join();
}

void ParallelFor(
    uint32_t threads, uint64_t n,
    const std::function<void(uint64_t begin, uint64_t end, uint32_t shard)>&
        body) {
  const uint32_t shards = EffectiveThreads(threads, n);
  if (shards == 1) {
    body(0, n, 0);
    return;
  }
  RunShards(shards, [&](uint32_t shard) {
    const uint64_t begin = n * shard / shards;
    const uint64_t end = n * (shard + 1) / shards;
    body(begin, end, shard);
  });
}

std::vector<uint64_t> SplitBalanced(std::span<const uint64_t> prefix,
                                    uint32_t shards) {
  TRUSS_CHECK_GE(prefix.size(), 1u);
  TRUSS_CHECK_GE(shards, 1u);
  const uint64_t n = prefix.size() - 1;
  const uint64_t total = prefix.back();
  std::vector<uint64_t> bounds(shards + 1, n);
  bounds[0] = 0;
  for (uint32_t s = 1; s < shards; ++s) {
    // First item index whose cumulative weight reaches shard s's target;
    // lower_bound keeps the bounds non-decreasing because targets are.
    const uint64_t target = total * s / shards;
    const auto it =
        std::lower_bound(prefix.begin() + 1, prefix.end(), target + 1);
    bounds[s] = static_cast<uint64_t>(it - (prefix.begin() + 1));
  }
  bounds[shards] = n;
  for (uint32_t s = 1; s <= shards; ++s) {
    bounds[s] = std::max(bounds[s], bounds[s - 1]);
  }
  return bounds;
}

BackgroundThread::BackgroundThread(std::function<void()> body)
    : thread_(std::move(body)) {}

BackgroundThread::~BackgroundThread() { Join(); }

void BackgroundThread::Join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace truss
