// Fixed-width ASCII table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables; this helper keeps
// their output format uniform (header row, separator, right-aligned cells).

#ifndef TRUSS_COMMON_TABLE_PRINTER_H_
#define TRUSS_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace truss {

/// Collects rows of string cells and renders them as an aligned table.
class TablePrinter {
 public:
  /// `headers` defines the column count; rows must match it.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one data row. Aborts if the cell count differs from the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table (headers, separator, rows) with 2-space gutters.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace truss

#endif  // TRUSS_COMMON_TABLE_PRINTER_H_
