// Fundamental vertex/edge types shared by every module.
//
// The paper (§2) works with undirected, unweighted simple graphs whose
// adjacency lists are sorted by vertex ID. We represent an undirected edge as
// a normalized pair (u < v) and give every edge a dense EdgeId so per-edge
// algorithm state (support, truss number, bounds) lives in flat arrays.

#ifndef TRUSS_COMMON_TYPES_H_
#define TRUSS_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "common/macros.h"

namespace truss {

using VertexId = uint32_t;
using EdgeId = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// An undirected edge stored with u < v (normalized form).
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Builds a normalized edge from an unordered endpoint pair.
/// Endpoints must differ (the graph model has no self-loops).
inline Edge MakeEdge(VertexId a, VertexId b) {
  TRUSS_CHECK_NE(a, b);
  return a < b ? Edge{a, b} : Edge{b, a};
}

/// Hash functor for Edge, for use in unordered containers.
struct EdgeHash {
  size_t operator()(const Edge& e) const {
    // Pack into 64 bits then finalize with a SplitMix64-style mixer.
    uint64_t z = (static_cast<uint64_t>(e.u) << 32) | e.v;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

/// One adjacency-list slot: the neighbor and the id of the connecting edge.
struct AdjEntry {
  VertexId neighbor;
  EdgeId edge;
};

}  // namespace truss

#endif  // TRUSS_COMMON_TYPES_H_
