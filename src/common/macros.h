// Project-wide assertion and utility macros.
//
// TRUSS_CHECK* macros are enabled in all build types: truss decomposition is
// an exact algorithm and silent invariant violations would corrupt results,
// so we prefer fail-fast semantics (see DESIGN.md "Key design decisions").

#ifndef TRUSS_COMMON_MACROS_H_
#define TRUSS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Marks a type or function whose return value must never be silently
// discarded. Applied to truss::Status / truss::Result at the class level
// (so the compiler flags a dropped return through *any* signature) and to
// every Status/Result-returning API declaration (enforced by the
// truss-tidy `nodiscard` pass, scripts/analysis/run.py).
#define TRUSS_NODISCARD [[nodiscard]]

// Aborts with a message when `condition` is false. Usable in any build type.
#define TRUSS_CHECK(condition)                                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "TRUSS_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define TRUSS_CHECK_OP(op, a, b)                                            \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      std::fprintf(stderr,                                                  \
                   "TRUSS_CHECK failed at %s:%d: %s %s %s (values %lld "    \
                   "vs %lld)\n",                                            \
                   __FILE__, __LINE__, #a, #op, #b,                         \
                   static_cast<long long>(a), static_cast<long long>(b));   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define TRUSS_CHECK_EQ(a, b) TRUSS_CHECK_OP(==, a, b)
#define TRUSS_CHECK_NE(a, b) TRUSS_CHECK_OP(!=, a, b)
#define TRUSS_CHECK_LT(a, b) TRUSS_CHECK_OP(<, a, b)
#define TRUSS_CHECK_LE(a, b) TRUSS_CHECK_OP(<=, a, b)
#define TRUSS_CHECK_GT(a, b) TRUSS_CHECK_OP(>, a, b)
#define TRUSS_CHECK_GE(a, b) TRUSS_CHECK_OP(>=, a, b)

// TRUSS_DCHECK* mirror TRUSS_CHECK* but compile to nothing under NDEBUG
// (Release builds). Use them on hot paths where the check would cost real
// time, and for programmer-error preconditions that tier-1 Debug/ASan runs
// should catch before they ship.
#if !defined(NDEBUG)
#define TRUSS_DCHECK(condition) TRUSS_CHECK(condition)
#define TRUSS_DCHECK_EQ(a, b) TRUSS_CHECK_EQ(a, b)
#define TRUSS_DCHECK_NE(a, b) TRUSS_CHECK_NE(a, b)
#define TRUSS_DCHECK_LT(a, b) TRUSS_CHECK_LT(a, b)
#define TRUSS_DCHECK_LE(a, b) TRUSS_CHECK_LE(a, b)
#define TRUSS_DCHECK_GT(a, b) TRUSS_CHECK_GT(a, b)
#define TRUSS_DCHECK_GE(a, b) TRUSS_CHECK_GE(a, b)
#else
// sizeof keeps the operands type-checked without evaluating them.
#define TRUSS_DCHECK(condition) \
  do {                          \
    (void)sizeof(condition);    \
  } while (0)
#define TRUSS_DCHECK_OP_NOOP(a, b)     \
  do {                                 \
    (void)sizeof(a), (void)sizeof(b);  \
  } while (0)
#define TRUSS_DCHECK_EQ(a, b) TRUSS_DCHECK_OP_NOOP(a, b)
#define TRUSS_DCHECK_NE(a, b) TRUSS_DCHECK_OP_NOOP(a, b)
#define TRUSS_DCHECK_LT(a, b) TRUSS_DCHECK_OP_NOOP(a, b)
#define TRUSS_DCHECK_LE(a, b) TRUSS_DCHECK_OP_NOOP(a, b)
#define TRUSS_DCHECK_GT(a, b) TRUSS_DCHECK_OP_NOOP(a, b)
#define TRUSS_DCHECK_GE(a, b) TRUSS_DCHECK_OP_NOOP(a, b)
#endif

// Marks a status-returning expression whose failure is fatal.
#define TRUSS_CHECK_OK(expr)                                                \
  do {                                                                      \
    const ::truss::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                        \
      std::fprintf(stderr, "TRUSS_CHECK_OK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__, _st.message().c_str());              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // TRUSS_COMMON_MACROS_H_
