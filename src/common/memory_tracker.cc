#include "common/memory_tracker.h"

// Header-only logic today; this translation unit pins the library target and
// reserves a home for future out-of-line additions.
