#include "common/memory_tracker.h"

namespace truss {

void MemoryTracker::Add(uint64_t bytes) {
  MutexLock lock(&mu_);
  current_ += bytes;
  if (current_ > peak_) peak_ = current_;
}

void MemoryTracker::Release(uint64_t bytes) {
  MutexLock lock(&mu_);
  bytes = bytes > current_ ? current_ : bytes;
  current_ -= bytes;
}

uint64_t MemoryTracker::current_bytes() const {
  MutexLock lock(&mu_);
  return current_;
}

uint64_t MemoryTracker::peak_bytes() const {
  MutexLock lock(&mu_);
  return peak_;
}

void MemoryTracker::Reset() {
  MutexLock lock(&mu_);
  current_ = peak_ = 0;
}

}  // namespace truss
