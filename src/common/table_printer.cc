#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace truss {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TRUSS_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TRUSS_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row, char pad) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      // First column left-aligned (labels), the rest right-aligned (numbers).
      const size_t fill = widths[c] - row[c].size();
      if (c == 0) {
        line += row[c];
        line.append(fill, pad);
      } else {
        line.append(fill, pad);
        line += row[c];
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_, ' ');
  std::vector<std::string> dashes;
  dashes.reserve(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    dashes.emplace_back(widths[c], '-');
  }
  out += render_row(dashes, '-');
  for (const auto& row : rows_) out += render_row(row, ' ');
  return out;
}

void TablePrinter::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace truss
