// Wall-clock timing utilities used by benchmarks and examples.

#ifndef TRUSS_COMMON_TIMER_H_
#define TRUSS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace truss {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration like "1.23 s" / "45.6 ms" for human-readable tables.
std::string FormatDuration(double seconds);

/// Formats a byte count like "1.5 GB" / "317 KB".
std::string FormatBytes(uint64_t bytes);

/// Formats a count with K/M/G suffixes like the paper's Table 2.
std::string FormatCount(uint64_t count);

}  // namespace truss

#endif  // TRUSS_COMMON_TIMER_H_
