// Cooperative execution hooks: progress reporting and cancellation.
//
// Long-running decompositions accept an ExecutionHooks bundle (via
// engine::DecomposeOptions or ExternalConfig) and poll it at stage
// boundaries — once per lower-bounding iteration and once per k-level for
// the external algorithms. Cancellation is cooperative: when `cancel`
// returns true the algorithm abandons the run and surfaces
// Status::Cancelled; partial on-disk state is cleaned up by the owning Env.

#ifndef TRUSS_COMMON_HOOKS_H_
#define TRUSS_COMMON_HOOKS_H_

#include <cstdint>
#include <functional>

namespace truss {

/// One progress tick. `stage` is a stable identifier ("lower_bound",
/// "peel", "decompose"); `k` is the current truss level (0 when the stage
/// has no level); `done`/`total` count edges classified so far out of the
/// input edge count (`total` is 0 when unknown).
struct ProgressEvent {
  const char* stage = "";
  uint32_t k = 0;
  uint64_t done = 0;
  uint64_t total = 0;
};

/// Observer of ProgressEvents. Must be cheap; called on the decomposition
/// thread.
using ProgressFn = std::function<void(const ProgressEvent&)>;

/// Polled at stage boundaries; returning true requests cancellation.
using CancelFn = std::function<bool()>;

/// Optional hook bundle. Default-constructed hooks are no-ops.
///
/// Thread-safety contract: the algorithm invokes both callbacks from the
/// decomposition thread only — never from ParallelFor/RunShards workers —
/// so a progress observer needs no internal locking against the peel.
/// `cancel`, however, exists to be flipped from *another* thread (a UI or
/// request-timeout thread); any state it reads must therefore be safe to
/// write concurrently with the poll. Use a std::atomic<bool> (the pattern
/// in tests/engine_test.cc) or state guarded by truss::Mutex; a plain bool
/// written by the canceller is a data race. The callbacks themselves must
/// not be reassigned while a decomposition is running.
struct ExecutionHooks {
  ProgressFn progress;
  CancelFn cancel;

  bool ShouldCancel() const { return cancel && cancel(); }

  void Report(const char* stage, uint32_t k, uint64_t done,
              uint64_t total) const {
    if (progress) progress(ProgressEvent{stage, k, done, total});
  }
};

}  // namespace truss

#endif  // TRUSS_COMMON_HOOKS_H_
