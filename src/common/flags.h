// Flat byte-per-flag set with relaxed-atomic access.
//
// std::vector<bool> packs flags into machine words, so flipping one bit is
// a read-modify-write of the containing word — a data race under concurrent
// writers to neighboring bits, and measurably slower than a plain byte
// store even single-threaded (bench_micro_kernels BM_RemovedFlags*).
// ByteFlags spends one byte per flag instead: every access is a relaxed
// atomic load/store of its own byte, so any mix of concurrent Set/Clear/
// Test calls is race-free, and on mainstream hardware the relaxed byte
// accesses compile to ordinary MOVs. Used for the `removed`/`processed`
// edge marks of the peel loops (sequential and parallel).
//
// Relaxed ordering is deliberate: the peels only need each flag's own
// value, never ordering against other memory. Callers that publish flag
// updates across threads do so via fork-join boundaries (ParallelFor /
// RunShards join before the next phase reads).
//
// Capability-annotation note (the TRUSS_PT_GUARDED_BY analogue for
// lock-free state): Clang's thread-safety analysis models mutexes, not
// atomics, so ByteFlags carries its contract in prose instead of
// attributes. Treat the flag array as if annotated "guarded by the
// fork-join structure of the owning phase":
//   - WITHIN a parallel phase, any mix of Set/Clear/Test on any index is
//     race-free (each call is one relaxed atomic access to its own byte),
//     but a Test is only guaranteed to observe writes that happened-before
//     the phase started. A concurrently-set flag may read stale — callers
//     must tolerate that (the peels do: a missed `processed` mark only
//     causes a redundant, clamped decrement).
//   - ACROSS phases, the RunShards/ParallelFor join is the release/acquire
//     edge: thread join synchronizes-with the caller, so every Set/Clear
//     from the finished phase is visible to all later Tests with no
//     fencing here (see common/parallel.h "Concurrency contract").

#ifndef TRUSS_COMMON_FLAGS_H_
#define TRUSS_COMMON_FLAGS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace truss {

/// Fixed-size set of boolean flags, one relaxed-atomic byte each. All
/// flags start false. Not copyable (atomics are not), and the size is
/// fixed at construction.
class ByteFlags {
 public:
  explicit ByteFlags(size_t n) : flags_(n) {}  // value-init: all false

  ByteFlags(const ByteFlags&) = delete;
  ByteFlags& operator=(const ByteFlags&) = delete;

  size_t size() const { return flags_.size(); }

  bool Test(size_t i) const {
    TRUSS_DCHECK_LT(i, flags_.size());
    // ordering: relaxed — no happens-before edge is needed here. Within a
    // phase the callers tolerate observing a stale value for a
    // concurrently-set flag; across phases the fork-join join already
    // ordered the writes (file comment above).
    return flags_[i].load(std::memory_order_relaxed) != 0;
  }

  void Set(size_t i) {
    TRUSS_DCHECK_LT(i, flags_.size());
    // ordering: relaxed — publication to other threads is the job of the
    // owning phase's join, not of this store. Nothing is ordered against
    // the flag byte itself.
    flags_[i].store(1, std::memory_order_relaxed);
  }

  void Clear(size_t i) {
    TRUSS_DCHECK_LT(i, flags_.size());
    // ordering: relaxed — same publication contract as Set.
    flags_[i].store(0, std::memory_order_relaxed);
  }

  /// Approximate heap footprint in bytes (one byte per flag).
  uint64_t SizeBytes() const { return flags_.size(); }

 private:
  std::vector<std::atomic<uint8_t>> flags_;
};

}  // namespace truss

#endif  // TRUSS_COMMON_FLAGS_H_
