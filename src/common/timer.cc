#include "common/timer.h"

#include <cinttypes>
#include <cstdio>

namespace truss {

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  constexpr uint64_t kKB = 1024;
  constexpr uint64_t kMB = kKB * 1024;
  constexpr uint64_t kGB = kMB * 1024;
  if (bytes >= kGB) {
    std::snprintf(buf, sizeof(buf), "%.1f GB",
                  static_cast<double>(bytes) / static_cast<double>(kGB));
  } else if (bytes >= kMB) {
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / static_cast<double>(kMB));
  } else if (bytes >= kKB) {
    std::snprintf(buf, sizeof(buf), "%.1f KB",
                  static_cast<double>(bytes) / static_cast<double>(kKB));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

std::string FormatCount(uint64_t count) {
  char buf[64];
  if (count >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fG",
                  static_cast<double>(count) / 1e9);
  } else if (count >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fM",
                  static_cast<double>(count) / 1e6);
  } else if (count >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fK",
                  static_cast<double>(count) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, count);
  }
  return buf;
}

}  // namespace truss
