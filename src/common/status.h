// Lightweight Status / Result<T> error propagation (RocksDB-style).
//
// Core algorithm code never throws; fallible operations (file I/O, parsing)
// return Status or Result<T> so callers decide how to react.

#ifndef TRUSS_COMMON_STATUS_H_
#define TRUSS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace truss {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kCancelled,
};

/// Returns a human-readable name for a status code ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic error indicator. A default-constructed Status is OK.
/// Class-level TRUSS_NODISCARD: discarding any returned Status is a
/// compile error — route it through TRUSS_RETURN_IF_ERROR, TRUSS_CHECK_OK,
/// or an explicit branch.
class TRUSS_NODISCARD Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  TRUSS_NODISCARD static Status OK() { return Status(); }
  TRUSS_NODISCARD static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  TRUSS_NODISCARD static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  TRUSS_NODISCARD static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  TRUSS_NODISCARD static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  TRUSS_NODISCARD static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  TRUSS_NODISCARD static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  TRUSS_NODISCARD static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  TRUSS_NODISCARD static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or a non-OK Status.
template <typename T>
class TRUSS_NODISCARD Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {    // NOLINT(runtime/explicit)
    TRUSS_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  /// Returns the contained value; aborts if this holds an error.
  T& value() {
    TRUSS_CHECK(ok());
    return std::get<T>(value_);
  }
  const T& value() const {
    TRUSS_CHECK(ok());
    return std::get<T>(value_);
  }

  T&& MoveValue() {
    TRUSS_CHECK(ok());
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

// Propagates a non-OK Status to the caller.
#define TRUSS_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::truss::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace truss

#endif  // TRUSS_COMMON_STATUS_H_
