// Deterministic pseudo-random number generation.
//
// Every randomized component in this repository (graph generators, the
// randomized partitioner, property-test input construction) draws from these
// generators with an explicit seed so results are bit-reproducible across
// runs and platforms. We implement SplitMix64 (seeding) and Xoshiro256**
// (bulk generation) rather than rely on unspecified std::mt19937 stream
// details across standard libraries.

#ifndef TRUSS_COMMON_RNG_H_
#define TRUSS_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace truss {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into the
/// larger state of Xoshiro256**. Also usable standalone for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t Uniform(uint64_t bound) {
    TRUSS_CHECK_GT(bound, 0u);
    // 128-bit multiply; rejection zone keeps the distribution exact.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace truss

#endif  // TRUSS_COMMON_RNG_H_
