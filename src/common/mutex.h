// Annotated mutex shim: std::mutex with Clang Thread Safety Analysis
// attributes attached.
//
// std::mutex itself carries no annotations, so state it guards is invisible
// to -Wthread-safety. truss::Mutex wraps it as a declared capability and
// truss::MutexLock is the RAII holder the analysis understands; together
// they let members be declared TRUSS_GUARDED_BY(mu_) and have the compiler
// prove every access happens under the lock (see
// common/thread_annotations.h and docs/STATIC_ANALYSIS.md).
//
// Locking discipline for this repository: the compute hot paths are
// lock-free by design (fork-join phases + relaxed atomics; see
// common/parallel.h), so a Mutex belongs only on cold, genuinely shared
// control state — accounting (MemoryTracker), future serving-layer
// registries and snapshot swaps — never inside a peel or support loop.

#ifndef TRUSS_COMMON_MUTEX_H_
#define TRUSS_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace truss {

/// A std::mutex declared as a thread-safety capability. Non-recursive;
/// lock-order within the repo is documented at each multi-mutex site (none
/// exist today).
class TRUSS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TRUSS_ACQUIRE() { mu_.lock(); }
  void Unlock() TRUSS_RELEASE() { mu_.unlock(); }
  bool TryLock() TRUSS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock holder for truss::Mutex — the only sanctioned way to hold one
/// (a bare Lock()/Unlock() pair cannot be matched across early returns, and
/// the analysis flags it at the call site).
class TRUSS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TRUSS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TRUSS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace truss

#endif  // TRUSS_COMMON_MUTEX_H_
