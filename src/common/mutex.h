// Annotated mutex shim: std::mutex with Clang Thread Safety Analysis
// attributes attached.
//
// std::mutex itself carries no annotations, so state it guards is invisible
// to -Wthread-safety. truss::Mutex wraps it as a declared capability and
// truss::MutexLock is the RAII holder the analysis understands; together
// they let members be declared TRUSS_GUARDED_BY(mu_) and have the compiler
// prove every access happens under the lock (see
// common/thread_annotations.h and docs/STATIC_ANALYSIS.md).
//
// Locking discipline for this repository: the compute hot paths are
// lock-free by design (fork-join phases + relaxed atomics; see
// common/parallel.h), so a Mutex belongs only on cold, genuinely shared
// control state — accounting (MemoryTracker), future serving-layer
// registries and snapshot swaps — never inside a peel or support loop.

#ifndef TRUSS_COMMON_MUTEX_H_
#define TRUSS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace truss {

class CondVar;

/// A std::mutex declared as a thread-safety capability. Non-recursive;
/// lock-order within the repo is documented at each multi-mutex site (none
/// exist today).
class TRUSS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TRUSS_ACQUIRE() { mu_.lock(); }
  void Unlock() TRUSS_RELEASE() { mu_.unlock(); }
  bool TryLock() TRUSS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling for CondVar only: std::condition_variable_any
  // unlocks/relocks through internal library helpers (which friendship
  // cannot reach), so these must be public. They are deliberately
  // unannotated — the wait-time unlock/relock happens inside the standard
  // library, invisible to the analysis either way. Everything else in the
  // repo locks via MutexLock; the code-review convention (and the
  // annotated Lock/Unlock being the documented surface) keeps it that way.
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Condition variable paired with truss::Mutex — the sanctioned way to
/// block on a predicate change (the concurrency arch pass confines
/// std::condition_variable to this header, like std::mutex).
///
/// Usage mirrors absl::CondVar: hold the Mutex (via MutexLock), loop on the
/// predicate around Wait/WaitFor, Signal/SignalAll after mutating guarded
/// state. Wait atomically releases the mutex while blocked and re-acquires
/// it before returning; the analysis models the caller as holding the lock
/// throughout, which matches the visible lock state at every statement.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until a Signal/SignalAll (or spuriously); caller must hold mu.
  void Wait(Mutex* mu) TRUSS_REQUIRES(mu) { cv_.wait(*mu); }

  /// Waits at most `timeout_ms`; returns false on timeout. Spurious
  /// wakeups return true, so callers must re-check their predicate either
  /// way.
  bool WaitFor(Mutex* mu, int64_t timeout_ms) TRUSS_REQUIRES(mu) {
    return cv_.wait_for(*mu, std::chrono::milliseconds(timeout_ms)) ==
           std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// RAII lock holder for truss::Mutex — the only sanctioned way to hold one
/// (a bare Lock()/Unlock() pair cannot be matched across early returns, and
/// the analysis flags it at the call site).
class TRUSS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TRUSS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TRUSS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace truss

#endif  // TRUSS_COMMON_MUTEX_H_
