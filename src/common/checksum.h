// Streaming 64-bit checksum for snapshot files.
//
// Not cryptographic — the goal is detecting torn writes, truncation, and
// bit flips in our own snapshot files (TRSB graph snapshots, TRSI truss
// indexes), not resisting an adversary. The state absorbs the payload one
// 64-bit word at a time through the SplitMix64 finalizer (the same mixer
// common/rng.h seeds with), and the digest folds in the total byte count,
// so a file truncated at a word boundary still fails verification.

#ifndef TRUSS_COMMON_CHECKSUM_H_
#define TRUSS_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace truss {

/// SplitMix64 finalizer: a cheap full-avalanche 64-bit mixer.
inline uint64_t MixChecksumWord(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Incremental checksum: feed bytes in any chunking, read Digest() at the
/// end. Equal byte streams produce equal digests regardless of chunking.
class Checksum64 {
 public:
  void Update(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    bytes_ += n;
    // Top up a partial word left by a previous chunk.
    while (pending_len_ > 0 && n > 0) {
      AbsorbByte(*p++);
      --n;
    }
    while (n >= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      state_ = MixChecksumWord(state_ ^ w);
      p += 8;
      n -= 8;
    }
    while (n > 0) {
      AbsorbByte(*p++);
      --n;
    }
  }

  /// Digest over everything fed so far (the length is part of the digest).
  uint64_t Digest() const {
    uint64_t h = state_;
    if (pending_len_ > 0) {
      // Tag the tail with its length (< 8, so the top byte is free) to
      // distinguish e.g. a 1-byte tail of 0x00 from a 2-byte one.
      h = MixChecksumWord(
          h ^ pending_ ^ (static_cast<uint64_t>(pending_len_) << 56));
    }
    return MixChecksumWord(h ^ bytes_);
  }

  uint64_t bytes() const { return bytes_; }

 private:
  void AbsorbByte(unsigned char b) {
    pending_ |= static_cast<uint64_t>(b) << (8 * pending_len_);
    if (++pending_len_ == 8) {
      state_ = MixChecksumWord(state_ ^ pending_);
      pending_ = 0;
      pending_len_ = 0;
    }
  }

  uint64_t state_ = 0x9e3779b97f4a7c15ULL;  // golden-ratio seed
  uint64_t bytes_ = 0;
  uint64_t pending_ = 0;
  unsigned pending_len_ = 0;
};

/// One-shot convenience over a contiguous buffer.
inline uint64_t Checksum64Of(const void* data, size_t n) {
  Checksum64 sum;
  sum.Update(data, n);
  return sum.Digest();
}

}  // namespace truss

#endif  // TRUSS_COMMON_CHECKSUM_H_
