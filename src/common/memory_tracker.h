// Deterministic memory accounting for the in-memory algorithm comparison
// (paper Table 3 reports peak memory of TD-inmem vs TD-inmem+).
//
// Rather than sample process RSS (noisy, allocator-dependent), algorithms
// register the byte footprint of the structures they hold; the tracker keeps
// a running total and a high-water mark. This gives bit-reproducible numbers
// that reflect the structures the paper's complexity analysis talks about
// (graph, support array, sorted edge array / queue, hash table).

#ifndef TRUSS_COMMON_MEMORY_TRACKER_H_
#define TRUSS_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace truss {

/// Accumulates the live-byte total and peak across Add/Release calls.
class MemoryTracker {
 public:
  /// Registers `bytes` of newly allocated structure memory.
  void Add(uint64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Registers that `bytes` of structure memory were freed.
  void Release(uint64_t bytes) {
    bytes = bytes > current_ ? current_ : bytes;
    current_ -= bytes;
  }

  uint64_t current_bytes() const { return current_; }
  uint64_t peak_bytes() const { return peak_; }

  void Reset() { current_ = peak_ = 0; }

 private:
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
};

/// RAII registration of a fixed-size structure with a tracker.
/// Tolerates a null tracker so instrumentation is zero-cost when unused.
class ScopedMemory {
 public:
  ScopedMemory(MemoryTracker* tracker, uint64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->Add(bytes_);
  }
  ~ScopedMemory() {
    if (tracker_ != nullptr) tracker_->Release(bytes_);
  }

  ScopedMemory(const ScopedMemory&) = delete;
  ScopedMemory& operator=(const ScopedMemory&) = delete;

 private:
  MemoryTracker* tracker_;
  uint64_t bytes_;
};

}  // namespace truss

#endif  // TRUSS_COMMON_MEMORY_TRACKER_H_
