// Deterministic memory accounting for the in-memory algorithm comparison
// (paper Table 3 reports peak memory of TD-inmem vs TD-inmem+).
//
// Rather than sample process RSS (noisy, allocator-dependent), algorithms
// register the byte footprint of the structures they hold; the tracker keeps
// a running total and a high-water mark. This gives bit-reproducible numbers
// that reflect the structures the paper's complexity analysis talks about
// (graph, support array, sorted edge array / queue, hash table).
//
// Thread safety: all methods are safe to call concurrently. The counters
// are guarded by an annotated truss::Mutex, so a tracker can be shared
// across worker threads (parallel shards registering transient buffers, the
// future serving layer accounting per-snapshot structures) and Clang's
// -Wthread-safety proves every access takes the lock. Registration happens
// at structure granularity — once per algorithm phase, never per element —
// so the lock is nowhere near a hot path.

#ifndef TRUSS_COMMON_MEMORY_TRACKER_H_
#define TRUSS_COMMON_MEMORY_TRACKER_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace truss {

/// Accumulates the live-byte total and peak across Add/Release calls.
/// Thread-safe; not copyable (it owns a Mutex).
class MemoryTracker {
 public:
  MemoryTracker() = default;

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Registers `bytes` of newly allocated structure memory.
  void Add(uint64_t bytes) TRUSS_EXCLUDES(mu_);

  /// Registers that `bytes` of structure memory were freed. Clamped at the
  /// live total, so an over-release cannot wrap the counter.
  void Release(uint64_t bytes) TRUSS_EXCLUDES(mu_);

  uint64_t current_bytes() const TRUSS_EXCLUDES(mu_);
  uint64_t peak_bytes() const TRUSS_EXCLUDES(mu_);

  void Reset() TRUSS_EXCLUDES(mu_);

 private:
  /// Guards both counters: peak_ must be updated atomically with current_
  /// or two concurrent Adds could both miss the combined high-water mark.
  mutable Mutex mu_;
  uint64_t current_ TRUSS_GUARDED_BY(mu_) = 0;
  uint64_t peak_ TRUSS_GUARDED_BY(mu_) = 0;
};

/// RAII registration of a fixed-size structure with a tracker.
/// Tolerates a null tracker so instrumentation is zero-cost when unused.
class ScopedMemory {
 public:
  ScopedMemory(MemoryTracker* tracker, uint64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->Add(bytes_);
  }
  ~ScopedMemory() {
    if (tracker_ != nullptr) tracker_->Release(bytes_);
  }

  ScopedMemory(const ScopedMemory&) = delete;
  ScopedMemory& operator=(const ScopedMemory&) = delete;

 private:
  MemoryTracker* tracker_;
  uint64_t bytes_;
};

}  // namespace truss

#endif  // TRUSS_COMMON_MEMORY_TRACKER_H_
