// Clang Thread Safety Analysis attribute wrappers.
//
// Clang's -Wthread-safety pass proves lock discipline at compile time: a
// member annotated TRUSS_GUARDED_BY(mu_) may only be touched while mu_ is
// held, a function annotated TRUSS_REQUIRES(mu_) may only be called with
// mu_ held, and so on. The macros expand to the Clang attributes when the
// compiler supports them and to nothing elsewhere, so annotated code
// compiles identically under GCC/MSVC and the analysis runs wherever the
// CMake option TRUSS_THREAD_SAFETY_ANALYSIS=ON meets a Clang toolchain
// (the CI `static-analysis` job; see docs/STATIC_ANALYSIS.md).
//
// The annotation vocabulary follows the Clang documentation's capability
// model (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html): a
// "capability" is a resource (usually a mutex) that must be held to touch
// the data it protects. truss::Mutex / truss::MutexLock (common/mutex.h)
// are the annotated capability types this repository uses; raw std::mutex
// is invisible to the analysis and should not guard annotated state.
//
// Note the analysis is lock-based only. The relaxed-atomic structures
// (common/flags.h ByteFlags, the parallel peel's support array) are
// correct without locks and carry prose contracts instead — attributes
// cannot express "safe because every access is a relaxed atomic on its
// own address and phases are separated by fork-join joins".

#ifndef TRUSS_COMMON_THREAD_ANNOTATIONS_H_
#define TRUSS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define TRUSS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TRUSS_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable resource). `x` is the
/// capability kind shown in diagnostics, e.g. TRUSS_CAPABILITY("mutex").
#define TRUSS_CAPABILITY(x) TRUSS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (see truss::MutexLock).
#define TRUSS_SCOPED_CAPABILITY TRUSS_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be read or written while the given capability is
/// held.
#define TRUSS_GUARDED_BY(x) TRUSS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability (the
/// pointer itself may be read freely).
#define TRUSS_PT_GUARDED_BY(x) TRUSS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) before calling, and still
/// holds it after.
#define TRUSS_REQUIRES(...) \
  TRUSS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define TRUSS_REQUIRES_SHARED(...) \
  TRUSS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it before
/// returning.
#define TRUSS_ACQUIRE(...) \
  TRUSS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define TRUSS_ACQUIRE_SHARED(...) \
  TRUSS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which the caller must hold).
#define TRUSS_RELEASE(...) \
  TRUSS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define TRUSS_RELEASE_SHARED(...) \
  TRUSS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the boolean first argument
/// states the return value that means "acquired".
#define TRUSS_TRY_ACQUIRE(...) \
  TRUSS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for
/// self-locking APIs).
#define TRUSS_EXCLUDES(...) TRUSS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held, teaching the analysis
/// the fact without acquiring.
#define TRUSS_ASSERT_CAPABILITY(x) \
  TRUSS_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability.
#define TRUSS_RETURN_CAPABILITY(x) TRUSS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define TRUSS_NO_THREAD_SAFETY_ANALYSIS \
  TRUSS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // TRUSS_COMMON_THREAD_ANNOTATIONS_H_
