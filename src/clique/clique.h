// Maximal/maximum clique search with k-truss / k-core pruning (§7.4).
//
// The paper argues the k-truss is a sharper clique-search heuristic than the
// k-core: a clique of c vertices lies inside the c-truss and inside the
// (c-1)-core, and kmax is a (much) tighter upper bound on the maximum clique
// size than cmax + 1. MaximumClique exploits that: candidate sizes are tried
// from the bound downward, searching only the s-truss (resp. (s-1)-core)
// for a clique of size s. The searcher itself is Bron–Kerbosch with pivoting
// over a degeneracy ordering [7, 17].

#ifndef TRUSS_CLIQUE_CLIQUE_H_
#define TRUSS_CLIQUE_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace truss {

/// Enumerates maximal cliques (each as a sorted vertex list) via
/// Bron–Kerbosch with pivoting over a degeneracy ordering. Stops after
/// `limit` cliques when given.
std::vector<std::vector<VertexId>> MaximalCliques(const Graph& g,
                                                  size_t limit = SIZE_MAX);

/// Pruning strategy for MaximumClique.
enum class CliquePruning {
  kNone,   // plain branch-and-bound on the whole graph
  kCore,   // search the (s-1)-core for a clique of size s (cmax+1 bound)
  kTruss,  // search the s-truss for a clique of size s (kmax bound)
};

struct MaxCliqueResult {
  std::vector<VertexId> clique;  // vertices of one maximum clique, sorted
  /// Upper bound used to start the search (kmax, cmax+1, or n).
  uint32_t initial_bound = 0;
  /// Branch-and-bound nodes expanded (work measure for the §7.4 claim).
  uint64_t nodes_explored = 0;
  /// Edges of the subgraph actually searched at the successful size.
  uint64_t searched_edges = 0;
};

/// Finds a maximum clique. Exact for all pruning modes; the modes differ
/// only in how much of the graph the search must touch.
MaxCliqueResult MaximumClique(const Graph& g, CliquePruning pruning);

}  // namespace truss

#endif  // TRUSS_CLIQUE_CLIQUE_H_
