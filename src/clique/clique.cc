#include "clique/clique.h"

#include <algorithm>

#include "kcore/kcore.h"
#include "truss/improved.h"
#include "truss/result.h"

namespace truss {

namespace {

// Sorted-vector intersection helper.
std::vector<VertexId> Intersect(const std::vector<VertexId>& sorted,
                                const Graph& g, VertexId v) {
  std::vector<VertexId> out;
  const auto adj = g.neighbors(v);
  size_t i = 0, j = 0;
  while (i < sorted.size() && j < adj.size()) {
    if (sorted[i] < adj[j].neighbor) {
      ++i;
    } else if (sorted[i] > adj[j].neighbor) {
      ++j;
    } else {
      out.push_back(sorted[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

// Classic Bron–Kerbosch with pivoting. P and X are sorted vertex lists.
struct BkEnumerator {
  const Graph& g;
  size_t limit;
  std::vector<std::vector<VertexId>>* out;
  std::vector<VertexId> r;
  bool done = false;

  void Recurse(std::vector<VertexId> p, std::vector<VertexId> x) {
    if (done) return;
    if (p.empty() && x.empty()) {
      out->push_back(r);
      std::sort(out->back().begin(), out->back().end());
      if (out->size() >= limit) done = true;
      return;
    }
    // Pivot: the vertex of P ∪ X with the most neighbors in P minimizes the
    // branching set P \ nb(pivot).
    VertexId pivot = kInvalidVertex;
    size_t best = 0;
    for (const auto& set : {p, x}) {
      for (const VertexId v : set) {
        const size_t cnt = Intersect(p, g, v).size();
        if (pivot == kInvalidVertex || cnt > best) {
          pivot = v;
          best = cnt;
        }
      }
    }
    std::vector<VertexId> candidates;
    if (pivot == kInvalidVertex) {
      candidates = p;
    } else {
      const std::vector<VertexId> covered = Intersect(p, g, pivot);
      std::set_difference(p.begin(), p.end(), covered.begin(), covered.end(),
                          std::back_inserter(candidates));
    }
    for (const VertexId v : candidates) {
      if (done) return;
      r.push_back(v);
      Recurse(Intersect(p, g, v), Intersect(x, g, v));
      r.pop_back();
      // Move v from P to X.
      p.erase(std::lower_bound(p.begin(), p.end(), v));
      x.insert(std::lower_bound(x.begin(), x.end(), v), v);
    }
  }
};

// Degeneracy order = reverse core-decomposition peel order; iterating the
// outer Bron–Kerbosch level along it keeps candidate sets small [17].
std::vector<VertexId> DegeneracyOrder(const Graph& g) {
  // Re-peel using the core numbers: sort by (core, degree, id) gives a valid
  // degeneracy-like order that is simpler than replaying the exact peel and
  // equally effective for pivot-BK seeding.
  const CoreDecomposition cores = DecomposeCores(g);
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (cores.core[a] != cores.core[b]) return cores.core[a] < cores.core[b];
    if (g.degree(a) != g.degree(b)) return g.degree(a) < g.degree(b);
    return a < b;
  });
  return order;
}

// Branch and bound: does `g` contain a clique of size ≥ target?
// Returns it via *found; counts expanded nodes in *nodes.
bool FindCliqueOfSize(const Graph& g, uint32_t target,
                      std::vector<VertexId>* found, uint64_t* nodes) {
  std::vector<VertexId> r;

  // Recursive lambda over sorted candidate sets.
  const std::function<bool(std::vector<VertexId>)> recurse =
      [&](std::vector<VertexId> p) -> bool {
    ++(*nodes);
    if (r.size() >= target) {
      *found = r;
      std::sort(found->begin(), found->end());
      return true;
    }
    if (r.size() + p.size() < target) return false;  // bound
    while (!p.empty()) {
      if (r.size() + p.size() < target) return false;
      const VertexId v = p.back();
      p.pop_back();
      r.push_back(v);
      if (recurse(Intersect(p, g, v))) return true;
      r.pop_back();
    }
    return false;
  };

  std::vector<VertexId> all;
  all.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) + 1 >= target) all.push_back(v);
  }
  return recurse(std::move(all));
}

}  // namespace

std::vector<std::vector<VertexId>> MaximalCliques(const Graph& g,
                                                  size_t limit) {
  std::vector<std::vector<VertexId>> out;
  if (g.num_vertices() == 0 || limit == 0) return out;

  const std::vector<VertexId> order = DegeneracyOrder(g);
  std::vector<uint32_t> rank(g.num_vertices());
  for (uint32_t i = 0; i < order.size(); ++i) rank[order[i]] = i;

  BkEnumerator bk{g, limit, &out, {}, false};
  for (const VertexId v : order) {
    if (bk.done) break;
    // Later-ranked neighbors are candidates, earlier-ranked are excluded.
    std::vector<VertexId> p, x;
    for (const AdjEntry& a : g.neighbors(v)) {
      if (rank[a.neighbor] > rank[v]) {
        p.push_back(a.neighbor);
      } else {
        x.push_back(a.neighbor);
      }
    }
    std::sort(p.begin(), p.end());
    std::sort(x.begin(), x.end());
    bk.r = {v};
    bk.Recurse(std::move(p), std::move(x));
  }
  return out;
}

MaxCliqueResult MaximumClique(const Graph& g, CliquePruning pruning) {
  MaxCliqueResult result;
  if (g.num_edges() == 0) {
    if (g.num_vertices() > 0) result.clique = {0};
    result.initial_bound = g.num_vertices() > 0 ? 1 : 0;
    return result;
  }

  // Establish the size bound and the pruned search space per candidate size.
  CoreDecomposition cores;
  TrussDecompositionResult truss;
  uint32_t bound = 0;
  switch (pruning) {
    case CliquePruning::kNone:
      bound = g.num_vertices();
      break;
    case CliquePruning::kCore:
      cores = DecomposeCores(g);
      bound = cores.cmax + 1;  // a clique of size s is in the (s-1)-core
      break;
    case CliquePruning::kTruss:
      truss = ImprovedTrussDecomposition(g);
      bound = truss.kmax;  // a clique of size s is in the s-truss
      break;
  }
  result.initial_bound = bound;

  for (uint32_t s = bound; s >= 2; --s) {
    // Restrict the search space to where a size-s clique must live.
    Subgraph sub;
    const Graph* space = &g;
    switch (pruning) {
      case CliquePruning::kNone:
        break;
      case CliquePruning::kCore:
        sub = ExtractKCore(g, cores, s - 1);
        space = &sub.graph;
        break;
      case CliquePruning::kTruss:
        sub = ExtractKTruss(g, truss, s);
        space = &sub.graph;
        break;
    }
    if (space->num_vertices() < s) continue;

    std::vector<VertexId> found;
    if (FindCliqueOfSize(*space, s, &found, &result.nodes_explored)) {
      result.searched_edges = space->num_edges();
      if (space == &g) {
        result.clique = found;
      } else {
        for (const VertexId v : found) {
          result.clique.push_back(sub.vertex_to_parent[v]);
        }
        std::sort(result.clique.begin(), result.clique.end());
      }
      return result;
    }
  }
  // No edge-based clique found (unreachable when m > 0: any edge is a
  // 2-clique).
  TRUSS_CHECK(false);
  return result;
}

}  // namespace truss
