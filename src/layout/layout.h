// Cache-aware graph layout: vertex reordering policies and the CSR rebuild
// that applies them.
//
// Triangle enumeration — the support-initialization bottleneck of every
// in-memory algorithm (§3) — walks sorted adjacency. Its locality is
// therefore a function of the vertex id assignment: with ids assigned in
// degree-descending order the hub vertices cluster at the front of every
// CSR array, the degree-ordered orientation (triangle/triangle.h Dodg)
// collapses to "out-neighbors are the adjacency prefix below v", and the
// out-degree of every vertex is bounded by O(√m) by construction. This
// module computes such orders (ComputeOrder), materializes them as a
// renumbered graph (ApplyPermutation), and maps per-edge results back to
// the caller's id space (MapEdgeValuesToOriginal) — the engine wires the
// three together behind DecomposeOptions::layout, so external ids go in
// and external ids come out (see docs/LAYOUT.md for the contract).

#ifndef TRUSS_LAYOUT_LAYOUT_H_
#define TRUSS_LAYOUT_LAYOUT_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace truss::layout {

/// Vertex-reordering policy.
enum class Policy : uint8_t {
  /// Identity: keep the caller's ids. ComputeOrder returns the identity
  /// permutation; the engine skips reordering entirely.
  kNone,
  /// Degree-descending: new id 0 is the highest-degree vertex; ties break
  /// by ascending old id, so the order (and everything downstream of it)
  /// is deterministic.
  kDegree,
};

/// Stable name of a policy ("none", "degree") for CLI flags and METRIC /
/// bench labels.
const char* PolicyName(Policy policy);

/// Parses a PolicyName back to its Policy. Returns false (leaving *policy
/// untouched) for unknown names.
bool PolicyFromName(std::string_view name, Policy* policy);

/// A vertex renumbering as both maps: new_id is the forward direction
/// (old id -> new id), old_id the inverse (new id -> old id). Producers
/// guarantee the two are mutual inverses over [0, n).
struct VertexPermutation {
  std::vector<VertexId> new_id;
  std::vector<VertexId> old_id;

  VertexId size() const { return static_cast<VertexId>(new_id.size()); }
};

/// Computes the permutation realizing `policy` on `g`. kDegree runs a
/// counting sort on degrees with per-shard histograms (parallel via
/// RunShards/ParallelFor; deterministic — byte-identical for every thread
/// count). The result is Debug-validated as a true bijection.
VertexPermutation ComputeOrder(const Graph& g, Policy policy,
                               uint32_t threads = 1);

/// A reordered graph plus the edge-id correspondence needed to translate
/// per-edge results back: edge e of `graph` is edge original_edge[e] of
/// the source graph.
struct PermutedGraph {
  Graph graph;
  std::vector<EdgeId> original_edge;
};

/// Rebuilds `g`'s CSR in the id space of `perm` (new id = perm.new_id[old
/// id]). Vertex and edge counts are preserved exactly — a bijection of a
/// simple graph never merges edges — and edge ids are reassigned in the
/// new lexicographic order, with original_edge recording where each one
/// came from. The rebuilt CSR is Debug-validated with graph::ValidateCsr.
PermutedGraph ApplyPermutation(const Graph& g, const VertexPermutation& perm,
                               uint32_t threads = 1);

/// Scatters per-edge values computed on a permuted graph back into the
/// source graph's edge-id space: result[original_edge[e]] = values[e].
/// `original_edge` must be the mapping ApplyPermutation produced for that
/// graph (sizes must match).
std::vector<uint32_t> MapEdgeValuesToOriginal(
    std::span<const EdgeId> original_edge, std::span<const uint32_t> values);

}  // namespace truss::layout

#endif  // TRUSS_LAYOUT_LAYOUT_H_
