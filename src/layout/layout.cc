#include "layout/layout.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/macros.h"
#include "common/parallel.h"
#include "graph/validate.h"

namespace truss::layout {

namespace {

/// Debug-only bijection check: the two maps must be mutual inverses over
/// [0, n). Compiled out under NDEBUG (the loop itself, not just the
/// assertions).
void DCheckPermutation(const VertexPermutation& perm, VertexId n) {
#ifndef NDEBUG
  TRUSS_DCHECK_EQ(perm.new_id.size(), static_cast<size_t>(n));
  TRUSS_DCHECK_EQ(perm.old_id.size(), static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    TRUSS_DCHECK_LT(perm.new_id[v], n);
    TRUSS_DCHECK_EQ(perm.old_id[perm.new_id[v]], v);
  }
#else
  (void)perm;
  (void)n;
#endif
}

VertexPermutation IdentityPermutation(VertexId n) {
  VertexPermutation perm;
  perm.new_id.resize(n);
  std::iota(perm.new_id.begin(), perm.new_id.end(), 0);
  perm.old_id = perm.new_id;
  return perm;
}

}  // namespace

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kNone:
      return "none";
    case Policy::kDegree:
      return "degree";
  }
  return "unknown";
}

bool PolicyFromName(std::string_view name, Policy* policy) {
  if (name == "none") {
    *policy = Policy::kNone;
    return true;
  }
  if (name == "degree") {
    *policy = Policy::kDegree;
    return true;
  }
  return false;
}

VertexPermutation ComputeOrder(const Graph& g, Policy policy,
                               uint32_t threads) {
  const VertexId n = g.num_vertices();
  if (policy == Policy::kNone) return IdentityPermutation(n);

  // Degree-descending counting sort. All three passes shard [0, n) with the
  // same clamped worker count, so the per-shard histograms line up with the
  // placement ranges and the result is byte-identical for every thread
  // count.
  const uint32_t workers = EffectiveThreads(threads, n);

  // Pass 1: maximum degree (per-shard maxima in disjoint slots).
  std::vector<uint32_t> shard_max(workers, 0);
  ParallelFor(workers, n, [&](uint64_t begin, uint64_t end, uint32_t shard) {
    uint32_t mx = 0;
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      mx = std::max(mx, g.degree(v));
    }
    shard_max[shard] = mx;
  });
  const uint32_t dmax = *std::max_element(shard_max.begin(), shard_max.end());

  // Pass 2: per-shard degree histograms. Buffers are allocated here on the
  // calling thread so an allocation failure surfaces normally (RunShards
  // bodies must not throw).
  std::vector<std::vector<uint64_t>> hist(workers);
  for (std::vector<uint64_t>& h : hist) {
    h.assign(static_cast<size_t>(dmax) + 1, 0);
  }
  ParallelFor(workers, n, [&](uint64_t begin, uint64_t end, uint32_t shard) {
    std::vector<uint64_t>& h = hist[shard];
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      ++h[g.degree(v)];
    }
  });

  // Exclusive scan across shards per degree (hist[s][d] becomes the count
  // of degree-d vertices in shards before s), then the bucket starts with
  // degree buckets laid out from dmax down to 0.
  std::vector<uint64_t> total(static_cast<size_t>(dmax) + 1, 0);
  for (uint32_t d = 0; d <= dmax; ++d) {
    uint64_t running = 0;
    for (uint32_t s = 0; s < workers; ++s) {
      const uint64_t count = hist[s][d];
      hist[s][d] = running;
      running += count;
    }
    total[d] = running;
  }
  std::vector<uint64_t> bucket_start(static_cast<size_t>(dmax) + 1, 0);
  uint64_t placed = 0;
  for (uint32_t d = dmax;; --d) {
    bucket_start[d] = placed;
    placed += total[d];
    if (d == 0) break;
  }

  // Pass 3: placement. Each shard advances its own cursors, seeded from the
  // exclusive scan; within a shard old ids ascend and across shards the
  // scan keeps them ascending, so equal-degree ties land in ascending old
  // id order regardless of the thread count.
  VertexPermutation perm;
  perm.new_id.resize(n);
  perm.old_id.resize(n);
  std::vector<std::vector<uint64_t>> cursor(workers);
  for (uint32_t s = 0; s < workers; ++s) {
    cursor[s].resize(static_cast<size_t>(dmax) + 1);
    for (uint32_t d = 0; d <= dmax; ++d) {
      cursor[s][d] = bucket_start[d] + hist[s][d];
    }
  }
  ParallelFor(workers, n, [&](uint64_t begin, uint64_t end, uint32_t shard) {
    std::vector<uint64_t>& c = cursor[shard];
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      perm.new_id[v] = static_cast<VertexId>(c[g.degree(v)]++);
    }
  });
  // Invert. new_id is a bijection, so every old_id slot is written exactly
  // once (disjoint indices across shards — no conflicting accesses).
  ParallelFor(workers, n, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      perm.old_id[perm.new_id[v]] = v;
    }
  });
  DCheckPermutation(perm, n);
  return perm;
}

PermutedGraph ApplyPermutation(const Graph& g, const VertexPermutation& perm,
                               uint32_t threads) {
  const VertexId n = g.num_vertices();
  TRUSS_CHECK_EQ(perm.new_id.size(), static_cast<size_t>(n));
  TRUSS_CHECK_EQ(perm.old_id.size(), static_cast<size_t>(n));
  DCheckPermutation(perm, n);
  const EdgeId m = g.num_edges();

  // Tag each renumbered edge with its source id and sort into the new
  // lexicographic order. Graph::FromEdges assigns EdgeIds in exactly that
  // order, so after the rebuild the tags line up with the new ids
  // positionally.
  struct Tagged {
    Edge edge;
    EdgeId original;
  };
  std::vector<Tagged> tagged(m);
  const uint32_t workers = EffectiveThreads(threads, m);
  ParallelFor(workers, m, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (EdgeId e = static_cast<EdgeId>(begin); e < end; ++e) {
      const Edge& src = g.edge(e);
      tagged[e] = Tagged{MakeEdge(perm.new_id[src.u], perm.new_id[src.v]), e};
    }
  });
  std::sort(tagged.begin(), tagged.end(),
            [](const Tagged& a, const Tagged& b) { return a.edge < b.edge; });

  PermutedGraph out;
  std::vector<Edge> edges(m);
  out.original_edge.resize(m);
  for (EdgeId e = 0; e < m; ++e) {
    edges[e] = tagged[e].edge;
    out.original_edge[e] = tagged[e].original;
  }
  out.graph = Graph::FromEdges(std::move(edges), n);
  // A bijection of a simple graph cannot merge, drop, or create edges.
  TRUSS_CHECK_EQ(out.graph.num_edges(), m);
  graph::DCheckValidCsr(out.graph);
  return out;
}

std::vector<uint32_t> MapEdgeValuesToOriginal(
    std::span<const EdgeId> original_edge, std::span<const uint32_t> values) {
  TRUSS_CHECK_EQ(original_edge.size(), values.size());
  std::vector<uint32_t> out(values.size(), 0);
  for (size_t e = 0; e < values.size(); ++e) {
    out[original_edge[e]] = values[e];
  }
  return out;
}

}  // namespace truss::layout
