#include "graph/text_io.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/parallel.h"

namespace truss {

namespace {

// Some SNAP exports (and almost anything that passed through a Windows
// editor) carry a UTF-8 byte-order mark; it sits inside row 1 and must not
// make that row malformed.
constexpr std::string_view kUtf8Bom = "\xEF\xBB\xBF";

// Error text is part of the readers' contract: the parallel reader must
// report the same message, with the same line number, as the sequential
// reference for any malformed file.
std::string MalformedRowMessage(uint64_t line_no, const std::string& path) {
  return "malformed row " + std::to_string(line_no) + " in " + path +
         " (vertex ids must be plain unsigned decimals)";
}

std::string TooManyIdsMessage(const std::string& path) {
  return "too many distinct vertex ids in " + path +
         " (compact ids are 32-bit)";
}

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Parses one whitespace-delimited token in [*cursor, end) as a plain
// unsigned decimal (digits only — no sign, no hex, no trailing garbage
// inside the token) and advances *cursor past it. Rejects overflow past
// uint64_t. SNAP ids are non-negative integers; anything else (notably
// "-1", which sscanf's %llu would silently wrap to 2^64-1) is a malformed
// row.
bool ParseVertexId(const char** cursor, const char* end, uint64_t* out) {
  const char* p = *cursor;
  if (p == end || !IsDigit(*p)) return false;
  uint64_t value = 0;
  for (; p != end && IsDigit(*p); ++p) {
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  if (p != end && !IsSpace(*p)) {
    return false;  // token continues with non-digit characters, e.g. "12x"
  }
  *cursor = p;
  *out = value;
  return true;
}

const char* SkipSpace(const char* p, const char* end) {
  while (p != end && IsSpace(*p)) ++p;
  return p;
}

enum class RowKind { kSkip, kEdge, kMalformed };

// One row of the shared grammar: optional leading whitespace, then either
// nothing / a '#' comment (kSkip) or two unsigned decimal ids (kEdge).
// Columns after the second id are ignored, as SNAP tooling does.
RowKind ParseRow(const char* p, const char* end, uint64_t* a, uint64_t* b) {
  p = SkipSpace(p, end);
  if (p == end || *p == '#') return RowKind::kSkip;
  if (!ParseVertexId(&p, end, a)) return RowKind::kMalformed;
  p = SkipSpace(p, end);
  if (!ParseVertexId(&p, end, b)) return RowKind::kMalformed;
  return RowKind::kEdge;
}

// --- chunked parallel reader ----------------------------------------------
//
// Pipeline (deterministic for every thread count and chunking):
//   1. Chunk the buffer at newline boundaries, so no row straddles chunks.
//   2. Parse chunks in parallel. Each chunk interns its labels into a
//      *local* table in first-seen order and records edges as local ids —
//      shared-nothing, no atomics.
//   3. Merge sequentially in chunk order: walking each chunk's local
//      first-seen labels in order reproduces the global first-seen order
//      exactly (a label's first occurrence lies in the earliest chunk that
//      saw it), and only distinct labels — not every token — pass through
//      the global table. Malformed-row errors surface here in file order.
//   4. Remap local edges to compact ids in parallel into one edge array at
//      per-chunk offsets, then build the CSR graph.

// Nominal chunk size when SnapReadOptions::chunk_bytes is 0: big enough
// that per-chunk table setup amortizes away, small enough that 4 chunks
// per thread smooth out skewed comment/blank density.
constexpr uint64_t kAutoMinChunkBytes = 1ull << 20;

struct LocalEdge {
  uint32_t a;
  uint32_t b;
};

struct ChunkState {
  std::vector<LocalEdge> edges;
  /// labels[local id] = file label, in this chunk's first-seen order.
  std::vector<uint64_t> labels;
  /// Rows seen, including a trailing malformed one.
  uint64_t lines = 0;
  /// 1-based row index (within the chunk) of the first malformed row;
  /// 0 when the chunk parsed cleanly.
  uint64_t bad_line = 0;
};

// `max_ids` is the (clamped) SnapReadOptions::max_distinct_ids. The local
// table may grow to max_ids + 1 entries: a chunk holding that many
// *distinct* labels is guaranteed to trip the merge phase's global guard
// (global count >= this chunk's local count > max_ids), so stopping there
// both keeps local ids from ever wrapping uint32 and reports the exact
// Corruption the sequential reader would — while a chunk with up to
// max_ids distinct labels (which may be legal overall) parses in full.
void ParseChunk(const char* begin, const char* end, uint64_t max_ids,
                ChunkState* out) {
  std::unordered_map<uint64_t, uint32_t> local;
  // Returns false when the label is new but the table is full.
  auto intern_local = [&](uint64_t label, uint32_t* id) {
    const auto it = local.find(label);
    if (it != local.end()) {
      *id = it->second;
      return true;
    }
    if (out->labels.size() > max_ids) return false;
    *id = static_cast<uint32_t>(out->labels.size());
    local.emplace(label, *id);
    out->labels.push_back(label);
    return true;
  };

  const char* p = begin;
  while (p < end) {
    const auto* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(end - p)));
    const char* line_end = (nl != nullptr) ? nl : end;
    ++out->lines;

    uint64_t a = 0, b = 0;
    const RowKind kind = ParseRow(p, line_end, &a, &b);
    if (kind == RowKind::kMalformed) {
      out->bad_line = out->lines;
      return;  // labels/edges of earlier rows stay valid for error ordering
    }
    if (kind == RowKind::kEdge && a != b) {  // drop self-loops
      // Sequence the interning so ids follow first-seen order
      // (function-argument evaluation order would be unspecified).
      uint32_t la = 0, lb = 0;
      if (!intern_local(a, &la) || !intern_local(b, &lb)) {
        return;  // table full; the merge phase reports the guard error
      }
      out->edges.push_back({la, lb});
    }
    p = (nl != nullptr) ? nl + 1 : end;
  }
}

}  // namespace

Result<LoadedGraph> ReadSnapEdgeList(const std::string& path,
                                     const SnapReadOptions& options) {
  auto buffer = io::FileBuffer::Load(path, options.buffer_mode);
  if (!buffer.ok()) return buffer.status();

  std::string_view bytes = buffer.value().view();
  if (bytes.starts_with(kUtf8Bom)) bytes.remove_prefix(kUtf8Bom.size());
  const uint64_t max_ids =
      std::min<uint64_t>(options.max_distinct_ids, kInvalidVertex);

  // Chunk boundaries: nominal multiples of chunk_bytes, each extended to
  // the next newline so rows never straddle chunks. Boundaries depend only
  // on the bytes and chunk size — never on scheduling.
  uint64_t chunk_bytes = options.chunk_bytes;
  if (chunk_bytes == 0) {
    const uint32_t workers = EffectiveThreads(options.threads, bytes.size());
    chunk_bytes = std::max<uint64_t>(
        kAutoMinChunkBytes, (bytes.size() + 4ull * workers - 1) /
                                (4ull * workers));
  }
  std::vector<std::pair<const char*, const char*>> ranges;
  const char* const end = bytes.data() + bytes.size();
  const char* start = bytes.data();
  while (start < end) {
    const char* stop = end;
    if (static_cast<uint64_t>(end - start) > chunk_bytes) {
      const char* probe = start + chunk_bytes - 1;
      const auto* nl = static_cast<const char*>(
          std::memchr(probe, '\n', static_cast<size_t>(end - probe)));
      stop = (nl != nullptr) ? nl + 1 : end;
    }
    ranges.emplace_back(start, stop);
    start = stop;
  }

  // Phase 1-2: shared-nothing parallel parse.
  std::vector<ChunkState> chunks(ranges.size());
  ParallelFor(options.threads, ranges.size(),
              [&](uint64_t lo, uint64_t hi, uint32_t /*shard*/) {
                for (uint64_t c = lo; c < hi; ++c) {
                  ParseChunk(ranges[c].first, ranges[c].second, max_ids,
                             &chunks[c]);
                }
              });

  // Phase 3: deterministic merge in chunk (= file) order.
  std::unordered_map<uint64_t, VertexId> compact;
  std::vector<uint64_t> original_id;
  std::vector<std::vector<VertexId>> remap(chunks.size());
  uint64_t line_prefix = 0;
  uint64_t total_edges = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    remap[c].reserve(chunks[c].labels.size());
    for (const uint64_t label : chunks[c].labels) {
      auto it = compact.find(label);
      if (it == compact.end()) {
        if (original_id.size() >= max_ids) {
          return Status::Corruption(TooManyIdsMessage(path));
        }
        it = compact
                 .emplace(label, static_cast<VertexId>(original_id.size()))
                 .first;
        original_id.push_back(label);
      }
      remap[c].push_back(it->second);
    }
    // Report a malformed row only after interning the labels of the rows
    // before it: if the distinct-id guard trips on those, the sequential
    // reader would have failed with that error first.
    if (chunks[c].bad_line != 0) {
      return Status::Corruption(
          MalformedRowMessage(line_prefix + chunks[c].bad_line, path));
    }
    line_prefix += chunks[c].lines;
    total_edges += chunks[c].edges.size();
  }

  // Phase 4: parallel remap into one pre-sized edge array. Chunks write
  // disjoint ranges; each releases its scratch as soon as it is remapped.
  std::vector<uint64_t> edge_offset(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    edge_offset[c + 1] = edge_offset[c] + chunks[c].edges.size();
  }
  std::vector<Edge> edges(total_edges);
  ParallelFor(options.threads, chunks.size(),
              [&](uint64_t lo, uint64_t hi, uint32_t /*shard*/) {
                for (uint64_t c = lo; c < hi; ++c) {
                  uint64_t at = edge_offset[c];
                  for (const LocalEdge& le : chunks[c].edges) {
                    edges[at++] = MakeEdge(remap[c][le.a], remap[c][le.b]);
                  }
                  chunks[c].edges = {};
                  chunks[c].labels = {};
                  remap[c] = {};
                }
              });

  LoadedGraph out;
  out.graph = Graph::FromEdges(std::move(edges),
                               static_cast<VertexId>(original_id.size()));
  out.original_id = std::move(original_id);
  return out;
}

Result<LoadedGraph> ReadSnapEdgeList(const std::string& path,
                                     uint32_t threads) {
  SnapReadOptions options;
  options.threads = threads;
  return ReadSnapEdgeList(path, options);
}

Result<LoadedGraph> ReadSnapEdgeListSequential(const std::string& path,
                                               uint64_t max_distinct_ids) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  const uint64_t max_ids = std::min<uint64_t>(max_distinct_ids,
                                              kInvalidVertex);

  std::unordered_map<uint64_t, VertexId> compact;
  std::vector<uint64_t> original_id;
  GraphBuilder builder;

  // kInvalidVertex is never a valid compact id (max_ids caps the table
  // below it), so it doubles as the table-full sentinel.
  auto intern = [&](uint64_t label) {
    const auto it = compact.find(label);
    if (it != compact.end()) return it->second;
    if (original_id.size() >= max_ids) return kInvalidVertex;
    const auto id = static_cast<VertexId>(original_id.size());
    compact.emplace(label, id);
    original_id.push_back(label);
    return id;
  };

  // std::getline grows the buffer to the line, so arbitrarily long rows
  // (huge ids, deep indentation, kilobyte comments) parse as one row
  // instead of being silently split at a fixed buffer size.
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const char* p = line.data();
    const char* line_end = line.data() + line.size();
    if (line_no == 1 && std::string_view(line).starts_with(kUtf8Bom)) {
      p += kUtf8Bom.size();
    }

    uint64_t a = 0, b = 0;
    const RowKind kind = ParseRow(p, line_end, &a, &b);
    if (kind == RowKind::kSkip) continue;  // blank or comment
    if (kind == RowKind::kMalformed) {
      return Status::Corruption(MalformedRowMessage(line_no, path));
    }
    if (a == b) continue;  // drop self-loops, as the simple-graph model does
    // Sequence the interning so compact ids follow first-seen order
    // (function-argument evaluation order would be unspecified).
    const VertexId ua = intern(a);
    const VertexId ub = intern(b);
    if (ua == kInvalidVertex || ub == kInvalidVertex) {
      return Status::Corruption(TooManyIdsMessage(path));
    }
    builder.AddEdge(ua, ub);
  }
  if (in.bad()) {
    return Status::IOError("read error on " + path);
  }

  LoadedGraph out;
  out.graph = builder.Build();
  out.original_id = std::move(original_id);
  return out;
}

bool SameLoadedGraph(const LoadedGraph& a, const LoadedGraph& b) {
  if (a.original_id != b.original_id) return false;
  if (a.graph.num_vertices() != b.graph.num_vertices() ||
      a.graph.num_edges() != b.graph.num_edges()) {
    return false;
  }
  const auto ae = a.graph.edges();
  const auto be = b.graph.edges();
  return std::equal(ae.begin(), ae.end(), be.begin(), be.end());
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  // fprintf returns a negative count on write failure (e.g. a full disk);
  // ignoring it would report Status::OK() for a truncated file.
  auto fail = [&](const char* what) {
    std::fclose(f);
    return Status::IOError(std::string(what) + " " + path);
  };
  if (std::fprintf(f, "# Undirected edge list: %u vertices, %u edges\n",
                   g.num_vertices(), g.num_edges()) < 0) {
    return fail("short write to");
  }
  for (const Edge& e : g.edges()) {
    if (std::fprintf(f, "%u %u\n", e.u, e.v) < 0) {
      return fail("short write to");
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("error closing " + path);
  }
  return Status::OK();
}

}  // namespace truss
