#include "graph/text_io.h"

#include <cctype>
#include <cstdio>
#include <unordered_map>

namespace truss {

Result<LoadedGraph> ReadSnapEdgeList(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }

  std::unordered_map<uint64_t, VertexId> compact;
  std::vector<uint64_t> original_id;
  GraphBuilder builder;

  auto intern = [&](uint64_t label) {
    auto [it, inserted] =
        compact.emplace(label, static_cast<VertexId>(original_id.size()));
    if (inserted) original_id.push_back(label);
    return it->second;
  };

  char line[512];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    const char* p = line;
    while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (*p == '\0' || *p == '#') continue;  // blank or comment

    unsigned long long a = 0, b = 0;
    if (std::sscanf(p, "%llu %llu", &a, &b) != 2) {
      std::fclose(f);
      return Status::Corruption("malformed row " + std::to_string(line_no) +
                                " in " + path);
    }
    if (a == b) continue;  // drop self-loops, as the simple-graph model does
    // Sequence the interning so compact ids follow first-seen order
    // (function-argument evaluation order would be unspecified).
    const VertexId ua = intern(a);
    const VertexId ub = intern(b);
    builder.AddEdge(ua, ub);
  }
  std::fclose(f);

  LoadedGraph out;
  out.graph = builder.Build();
  out.original_id = std::move(original_id);
  return out;
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "# Undirected edge list: %u vertices, %u edges\n",
               g.num_vertices(), g.num_edges());
  for (const Edge& e : g.edges()) {
    std::fprintf(f, "%u %u\n", e.u, e.v);
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("error closing " + path);
  }
  return Status::OK();
}

}  // namespace truss
