#include "graph/text_io.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>

namespace truss {

namespace {

// Parses one whitespace-delimited token at *cursor as a plain unsigned
// decimal (digits only — no sign, no hex, no trailing garbage inside the
// token) and advances *cursor past it. Rejects overflow past uint64_t.
// SNAP ids are non-negative integers; anything else (notably "-1", which
// sscanf's %llu would silently wrap to 2^64-1) is a malformed row.
bool ParseVertexId(const char** cursor, uint64_t* out) {
  const char* p = *cursor;
  if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  uint64_t value = 0;
  for (; std::isdigit(static_cast<unsigned char>(*p)); ++p) {
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  if (*p != '\0' && !std::isspace(static_cast<unsigned char>(*p))) {
    return false;  // token continues with non-digit characters, e.g. "12x"
  }
  *cursor = p;
  *out = value;
  return true;
}

const char* SkipSpace(const char* p) {
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  return p;
}

}  // namespace

Result<LoadedGraph> ReadSnapEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }

  std::unordered_map<uint64_t, VertexId> compact;
  std::vector<uint64_t> original_id;
  GraphBuilder builder;

  auto intern = [&](uint64_t label) {
    auto [it, inserted] =
        compact.emplace(label, static_cast<VertexId>(original_id.size()));
    if (inserted) original_id.push_back(label);
    return it->second;
  };

  // std::getline grows the buffer to the line, so arbitrarily long rows
  // (huge ids, deep indentation, kilobyte comments) parse as one row
  // instead of being silently split at a fixed buffer size.
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const char* p = SkipSpace(line.c_str());
    if (*p == '\0' || *p == '#') continue;  // blank or comment

    uint64_t a = 0, b = 0;
    if (!ParseVertexId(&p, &a) || (p = SkipSpace(p), !ParseVertexId(&p, &b))) {
      return Status::Corruption(
          "malformed row " + std::to_string(line_no) + " in " + path +
          " (vertex ids must be plain unsigned decimals)");
    }
    if (a == b) continue;  // drop self-loops, as the simple-graph model does
    // Sequence the interning so compact ids follow first-seen order
    // (function-argument evaluation order would be unspecified).
    const VertexId ua = intern(a);
    const VertexId ub = intern(b);
    builder.AddEdge(ua, ub);
  }
  if (in.bad()) {
    return Status::IOError("read error on " + path);
  }

  LoadedGraph out;
  out.graph = builder.Build();
  out.original_id = std::move(original_id);
  return out;
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  // fprintf returns a negative count on write failure (e.g. a full disk);
  // ignoring it would report Status::OK() for a truncated file.
  auto fail = [&](const char* what) {
    std::fclose(f);
    return Status::IOError(std::string(what) + " " + path);
  };
  if (std::fprintf(f, "# Undirected edge list: %u vertices, %u edges\n",
                   g.num_vertices(), g.num_edges()) < 0) {
    return fail("short write to");
  }
  for (const Edge& e : g.edges()) {
    if (std::fprintf(f, "%u %u\n", e.u, e.v) < 0) {
      return fail("short write to");
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("error closing " + path);
  }
  return Status::OK();
}

}  // namespace truss
