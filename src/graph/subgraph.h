// Subgraph extraction with mappings back to the parent graph.
//
// Used pervasively: the k-truss / k-class subgraphs (Definition 2/3), the
// neighborhood subgraphs NS(U) of the external algorithms (Definition 4),
// and the max-core / max-truss comparisons of §7.4.

#ifndef TRUSS_GRAPH_SUBGRAPH_H_
#define TRUSS_GRAPH_SUBGRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace truss {

/// A subgraph re-indexed with compact local IDs, plus the local→parent maps.
struct Subgraph {
  Graph graph;
  /// vertex_to_parent[local v] = parent vertex id. Sorted ascending.
  std::vector<VertexId> vertex_to_parent;
  /// edge_to_parent[local e] = parent edge id.
  std::vector<EdgeId> edge_to_parent;
};

/// Induced subgraph G[U]: vertices U and every parent edge with both
/// endpoints in U. Duplicate vertices in `vertices` are tolerated.
Subgraph InducedSubgraph(const Graph& g, std::span<const VertexId> vertices);

/// Subgraph formed by an edge subset: its vertex set is exactly the set of
/// endpoints of `edge_ids` (Definition 2 builds k-trusses this way: the
/// subgraph formed by the union of k-classes).
Subgraph SubgraphFromEdges(const Graph& g, std::span<const EdgeId> edge_ids);

/// Neighborhood subgraph NS(U) (Definition 4): vertices U ∪ nb(U); edges
/// {(u,v) ∈ E : u ∈ U}. Local vertex IDs are assigned with all of U first
/// (so `internal_vertex_count` prefix-classifies internality); edges whose
/// both endpoints lie in U are the internal edges.
struct NeighborhoodSubgraph {
  Subgraph sub;
  /// Local vertex ids < internal_vertex_count are internal (members of U).
  VertexId internal_vertex_count = 0;

  /// True iff local vertex id is internal.
  bool IsInternalVertex(VertexId local_v) const {
    return local_v < internal_vertex_count;
  }
  /// True iff the local edge has both endpoints internal.
  bool IsInternalEdge(EdgeId local_e) const {
    const Edge& e = sub.graph.edge(local_e);
    return IsInternalVertex(e.u) && IsInternalVertex(e.v);
  }
};

/// Extracts NS(U) from an in-memory graph. `U` may contain duplicates.
NeighborhoodSubgraph ExtractNeighborhoodSubgraph(
    const Graph& g, std::span<const VertexId> internal_vertices);

}  // namespace truss

#endif  // TRUSS_GRAPH_SUBGRAPH_H_
