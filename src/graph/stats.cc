#include "graph/stats.h"

#include <algorithm>
#include <vector>

namespace truss {

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  const VertexId n = g.num_vertices();
  if (n == 0) return stats;

  std::vector<uint32_t> degrees(n);
  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = g.degree(v);
    stats.max = std::max(stats.max, degrees[v]);
    total += degrees[v];
  }
  auto mid = degrees.begin() + (n - 1) / 2;
  std::nth_element(degrees.begin(), mid, degrees.end());
  stats.median = *mid;
  stats.mean = static_cast<double>(total) / n;
  return stats;
}

double LocalClusteringCoefficient(const Graph& g, VertexId v) {
  const uint32_t deg = g.degree(v);
  if (deg < 2) return 0.0;

  // Count edges among v's neighbors via sorted-adjacency intersection.
  uint64_t links = 0;
  const auto adj = g.neighbors(v);
  for (size_t i = 0; i < adj.size(); ++i) {
    for (size_t j = i + 1; j < adj.size(); ++j) {
      if (g.HasEdge(adj[i].neighbor, adj[j].neighbor)) ++links;
    }
  }
  const double possible = 0.5 * deg * (deg - 1);
  return static_cast<double>(links) / possible;
}

double AverageClusteringCoefficient(const Graph& g, bool include_low_degree) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0.0;

  double sum = 0.0;
  uint64_t counted = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (g.degree(v) < 2) {
      if (include_low_degree) ++counted;  // contributes 0
      continue;
    }
    sum += LocalClusteringCoefficient(g, v);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

uint64_t CountConnectedComponents(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<bool> visited(n, false);
  std::vector<VertexId> stack;
  uint64_t components = 0;

  for (VertexId s = 0; s < n; ++s) {
    if (visited[s]) continue;
    ++components;
    visited[s] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const AdjEntry& a : g.neighbors(v)) {
        if (!visited[a.neighbor]) {
          visited[a.neighbor] = true;
          stack.push_back(a.neighbor);
        }
      }
    }
  }
  return components;
}

}  // namespace truss
