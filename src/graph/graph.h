// Immutable in-memory graph in CSR (compressed sparse row) form, plus the
// mutable builder that constructs it.
//
// Matches the paper's storage model (§2): undirected, unweighted, simple;
// adjacency lists sorted in ascending order of neighbor ID. Every edge has a
// dense EdgeId assigned in lexicographic (u, v) order of its normalized form,
// so algorithms keep per-edge state in flat vectors indexed by EdgeId.

#ifndef TRUSS_GRAPH_GRAPH_H_
#define TRUSS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/types.h"

namespace truss {

/// Immutable undirected simple graph. Construct via GraphBuilder or
/// Graph::FromEdges.
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Builds a graph from an edge list. Self-loops are rejected by MakeEdge;
  /// parallel edges are deduplicated. `num_vertices` may exceed the largest
  /// endpoint + 1 to include isolated vertices; pass 0 to infer it.
  static Graph FromEdges(std::vector<Edge> edges, VertexId num_vertices = 0);

  /// Adopts pre-built CSR arrays after full structural validation
  /// (graph::ValidateCsrParts); fails with Corruption on any invariant
  /// violation. This is the entry point for deserializers that carry the
  /// three arrays inside a larger container (e.g. the serving layer's
  /// TrussIndex snapshots) and therefore cannot go through LoadBinary's
  /// whole-file path.
  TRUSS_NODISCARD static Result<Graph> FromCsrParts(std::vector<uint64_t> offsets,
                                    std::vector<AdjEntry> adj,
                                    std::vector<Edge> edges);

  /// Number of vertices n (IDs are 0..n-1).
  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// The paper's |G| = n + m.
  uint64_t PaperSize() const {
    return static_cast<uint64_t>(num_vertices()) + num_edges();
  }

  /// Degree of vertex v. v must be a valid vertex ID; on a default-constructed
  /// (empty) graph every v is out of range.
  uint32_t degree(VertexId v) const {
    TRUSS_DCHECK_LT(v, num_vertices());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Adjacency list of v, sorted by ascending neighbor ID. Same bounds
  /// contract as degree().
  std::span<const AdjEntry> neighbors(VertexId v) const {
    TRUSS_DCHECK_LT(v, num_vertices());
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Endpoints of edge id `e` in normalized (u < v) form.
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// All edges, sorted lexicographically; EdgeId i is edges()[i].
  std::span<const Edge> edges() const { return edges_; }

  /// Finds the edge id joining u and v via binary search on the sorted
  /// adjacency of the lower-degree endpoint; returns kInvalidEdge if absent.
  EdgeId FindEdge(VertexId u, VertexId v) const;

  bool HasEdge(VertexId u, VertexId v) const {
    return FindEdge(u, v) != kInvalidEdge;
  }

  /// Total number of directed adjacency slots (2m).
  size_t adjacency_size() const { return adj_.size(); }

  /// Raw CSR arrays. offsets()[v]..offsets()[v+1] delimit v's slice of
  /// adjacency(); empty spans on a default-constructed graph. Exposed for
  /// structure-level consumers — graph::ValidateCsr, SplitBalanced (the
  /// offsets are a degree prefix sum), and snapshot/serving code that
  /// walks the arrays wholesale.
  std::span<const uint64_t> offsets() const { return offsets_; }
  std::span<const AdjEntry> adjacency() const { return adj_; }

  /// Approximate heap footprint of this graph in bytes.
  uint64_t SizeBytes() const;

  /// Writes this graph as a binary CSR snapshot ("TRSB" magic + format
  /// version header, then the raw offset/adjacency/edge arrays). Loading a
  /// snapshot skips the edge normalization and sorting of FromEdges, which
  /// is what makes it suitable as a dataset cache (see bench/bench_util.h).
  TRUSS_NODISCARD Status SaveBinary(const std::string& path) const;

  /// Reads a SaveBinary snapshot. Fails with IOError on unreadable files
  /// and Corruption on bad magic, unsupported versions, or structural
  /// inconsistencies (truncation, non-monotone offsets, size mismatches).
  TRUSS_NODISCARD static Result<Graph> LoadBinary(const std::string& path);

 private:
  friend class GraphBuilder;

  // offsets_[v]..offsets_[v+1] delimit v's slice of adj_.
  std::vector<uint64_t> offsets_;
  std::vector<AdjEntry> adj_;
  std::vector<Edge> edges_;
};

/// Accumulates edges, then produces a normalized Graph. Duplicate edges and
/// both orientations of the same pair collapse into one undirected edge.
class GraphBuilder {
 public:
  /// `num_vertices` is a lower bound; AddEdge grows it as needed.
  explicit GraphBuilder(VertexId num_vertices = 0)
      : num_vertices_(num_vertices) {}

  /// Adds the undirected edge {a, b}. Silently ignores self-loops (a == b),
  /// matching how network datasets with noisy rows are normally ingested.
  void AddEdge(VertexId a, VertexId b);

  /// Number of edge insertions accepted so far (before deduplication).
  size_t pending_edges() const { return pending_.size(); }

  /// Deduplicates the pending edges in place and releases the excess
  /// capacity; after it, pending_edges() counts distinct undirected
  /// edges. Build() itself gets the same effect from Graph::FromEdges
  /// (which normalizes the moved buffer and shrinks it before the CSR
  /// arrays exist — the raw both-directions half of a SNAP listing no
  /// longer survives into CSR construction, which roughly doubled peak
  /// RSS); call Compact() between insertion phases to bound the builder's
  /// own footprint early.
  void Compact();

  /// Builds the graph. The builder is left empty and reusable.
  Graph Build();

 private:
  VertexId num_vertices_;
  std::vector<Edge> pending_;
};

}  // namespace truss

#endif  // TRUSS_GRAPH_GRAPH_H_
