// SNAP-style text edge-list ingestion and export.
//
// The paper's datasets come from snap.stanford.edu in whitespace-separated
// "u v" rows with '#' comment lines. Vertex IDs in such files are arbitrary;
// we compact them to 0..n-1 and return the mapping.

#ifndef TRUSS_GRAPH_TEXT_IO_H_
#define TRUSS_GRAPH_TEXT_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace truss {

/// Result of parsing a text edge list.
struct LoadedGraph {
  Graph graph;
  /// original_id[compact v] = the vertex label used in the file.
  std::vector<uint64_t> original_id;
};

/// Reads a SNAP-format edge list ('#'-comments, "u v" rows; directed rows are
/// collapsed to undirected simple edges). Fails with IOError / Corruption on
/// unreadable files or malformed rows.
Result<LoadedGraph> ReadSnapEdgeList(const std::string& path);

/// Writes `g` as a text edge list (one "u v" row per edge, u < v).
Status WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace truss

#endif  // TRUSS_GRAPH_TEXT_IO_H_
