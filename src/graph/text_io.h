// SNAP-style text edge-list ingestion and export.
//
// The paper's datasets come from snap.stanford.edu in whitespace-separated
// "u v" rows with '#' comment lines. Vertex IDs in such files are arbitrary;
// we compact them to 0..n-1 and return the mapping.
//
// Two readers share one row grammar:
//
//  * ReadSnapEdgeList — the production reader. Loads the file as one buffer
//    (io::FileBuffer: mmap, or buffered reads where mmap is unavailable),
//    splits it into chunks at newline boundaries, parses chunks in parallel
//    on truss::ParallelFor, then merges with a deterministic two-phase label
//    interning. Output (graph, original_id, and error/line-number reporting
//    for malformed rows) is byte-identical to the sequential reference for
//    every thread count and every chunking.
//
//  * ReadSnapEdgeListSequential — the line-at-a-time reference the parallel
//    reader is verified against in tests and bench_ingest.
//
// Both accept real-world SNAP quirks: a leading UTF-8 BOM, CRLF line
// endings, blank lines, '#' comments, arbitrary extra whitespace, and
// trailing columns after the two vertex ids (ignored, as SNAP tools do).

#ifndef TRUSS_GRAPH_TEXT_IO_H_
#define TRUSS_GRAPH_TEXT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "io/file_buffer.h"

namespace truss {

/// Result of parsing a text edge list.
struct LoadedGraph {
  Graph graph;
  /// original_id[compact v] = the vertex label used in the file.
  std::vector<uint64_t> original_id;
};

/// Tuning and test knobs for ReadSnapEdgeList. The defaults are correct for
/// production use; tests override chunk_bytes / buffer_mode /
/// max_distinct_ids to pin specific paths.
struct SnapReadOptions {
  /// Worker threads for chunk parsing and edge remapping. Results are
  /// byte-identical for every value (clamped to [1, kMaxParallelThreads]).
  uint32_t threads = 1;

  /// Nominal chunk size in bytes before newline alignment; 0 picks a size
  /// from the file length and thread count. Any value yields identical
  /// output — tiny sizes exist for chunk-boundary torture tests.
  uint64_t chunk_bytes = 0;

  /// How the file bytes are acquired (mmap vs buffered reads).
  io::FileBuffer::Mode buffer_mode = io::FileBuffer::Mode::kAuto;

  /// Cap on distinct vertex labels before the reader fails with
  /// Corruption("too many distinct vertex ids..."). Compact ids are
  /// VertexId (uint32), so the cap cannot exceed its default,
  /// kInvalidVertex; tests lower it to exercise the guard without a
  /// 17 GB fixture.
  uint64_t max_distinct_ids = kInvalidVertex;
};

/// Reads a SNAP-format edge list ('#'-comments, "u v" rows; directed rows
/// are collapsed to undirected simple edges, self-loops dropped) with the
/// chunked parallel parser. Fails with IOError / Corruption on unreadable
/// files or malformed rows.
TRUSS_NODISCARD Result<LoadedGraph> ReadSnapEdgeList(const std::string& path,
                                     const SnapReadOptions& options);

/// Convenience overload: default options with `threads` workers.
TRUSS_NODISCARD Result<LoadedGraph> ReadSnapEdgeList(const std::string& path,
                                     uint32_t threads = 1);

/// The sequential line-at-a-time reference reader. Same grammar, same
/// results, same error messages as ReadSnapEdgeList; kept as the oracle the
/// parallel reader is compared against (tests, bench_ingest).
TRUSS_NODISCARD Result<LoadedGraph> ReadSnapEdgeListSequential(
    const std::string& path, uint64_t max_distinct_ids = kInvalidVertex);

/// True when two parse results are structurally identical: the same
/// first-seen label mapping and the same compact graph (vertex count and
/// normalized edge array; the CSR adjacency is a deterministic function of
/// those). This is the single definition of the readers' "byte-identical"
/// contract, shared by the tests and bench_ingest.
bool SameLoadedGraph(const LoadedGraph& a, const LoadedGraph& b);

/// Writes `g` as a text edge list (one "u v" row per edge, u < v).
TRUSS_NODISCARD Status WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace truss

#endif  // TRUSS_GRAPH_TEXT_IO_H_
