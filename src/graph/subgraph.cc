#include "graph/subgraph.h"

#include <algorithm>
#include <unordered_map>

namespace truss {

namespace {

// Sorted, deduplicated copy of a vertex list.
std::vector<VertexId> SortedUnique(std::span<const VertexId> vertices) {
  std::vector<VertexId> sorted(vertices.begin(), vertices.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted;
}

}  // namespace

Subgraph InducedSubgraph(const Graph& g, std::span<const VertexId> vertices) {
  const std::vector<VertexId> verts = SortedUnique(vertices);

  std::unordered_map<VertexId, VertexId> to_local;
  to_local.reserve(verts.size());
  for (VertexId i = 0; i < verts.size(); ++i) to_local.emplace(verts[i], i);

  std::vector<Edge> local_edges;
  std::vector<EdgeId> edge_to_parent;
  for (VertexId local_u = 0; local_u < verts.size(); ++local_u) {
    const VertexId u = verts[local_u];
    for (const AdjEntry& a : g.neighbors(u)) {
      if (a.neighbor <= u) continue;  // visit each parent edge once, from u<v
      auto it = to_local.find(a.neighbor);
      if (it == to_local.end()) continue;
      local_edges.push_back(MakeEdge(local_u, it->second));
      edge_to_parent.push_back(a.edge);
    }
  }

  // Graph::FromEdges sorts edges; sort the parent map the same way so that
  // local EdgeId i still corresponds to edge_to_parent[i].
  std::vector<size_t> order(local_edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return local_edges[a] < local_edges[b];
  });
  std::vector<Edge> sorted_edges(local_edges.size());
  std::vector<EdgeId> sorted_map(local_edges.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_edges[i] = local_edges[order[i]];
    sorted_map[i] = edge_to_parent[order[i]];
  }

  Subgraph out;
  out.graph = Graph::FromEdges(std::move(sorted_edges),
                               static_cast<VertexId>(verts.size()));
  out.vertex_to_parent = verts;
  out.edge_to_parent = std::move(sorted_map);
  return out;
}

Subgraph SubgraphFromEdges(const Graph& g, std::span<const EdgeId> edge_ids) {
  std::vector<VertexId> endpoints;
  endpoints.reserve(edge_ids.size() * 2);
  for (EdgeId id : edge_ids) {
    endpoints.push_back(g.edge(id).u);
    endpoints.push_back(g.edge(id).v);
  }
  const std::vector<VertexId> verts = SortedUnique(endpoints);

  std::unordered_map<VertexId, VertexId> to_local;
  to_local.reserve(verts.size());
  for (VertexId i = 0; i < verts.size(); ++i) to_local.emplace(verts[i], i);

  // Deduplicate edge ids, then translate endpoints.
  std::vector<EdgeId> ids(edge_ids.begin(), edge_ids.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  std::vector<Edge> local_edges;
  local_edges.reserve(ids.size());
  for (EdgeId id : ids) {
    const Edge& e = g.edge(id);
    local_edges.push_back(MakeEdge(to_local.at(e.u), to_local.at(e.v)));
  }

  // Parent edge ids are sorted, and translating preserves lexicographic
  // order because the vertex renumbering verts→local is monotone.
  Subgraph out;
  out.graph = Graph::FromEdges(std::move(local_edges),
                               static_cast<VertexId>(verts.size()));
  out.vertex_to_parent = verts;
  out.edge_to_parent = std::move(ids);
  TRUSS_CHECK_EQ(out.graph.num_edges(), out.edge_to_parent.size());
  return out;
}

NeighborhoodSubgraph ExtractNeighborhoodSubgraph(
    const Graph& g, std::span<const VertexId> internal_vertices) {
  const std::vector<VertexId> internal = SortedUnique(internal_vertices);

  // Collect external frontier: neighbors of U outside U.
  std::vector<VertexId> external;
  for (VertexId u : internal) {
    for (const AdjEntry& a : g.neighbors(u)) {
      if (!std::binary_search(internal.begin(), internal.end(), a.neighbor)) {
        external.push_back(a.neighbor);
      }
    }
  }
  std::sort(external.begin(), external.end());
  external.erase(std::unique(external.begin(), external.end()),
                 external.end());

  // Local numbering: internal vertices first (ascending), then external.
  std::unordered_map<VertexId, VertexId> to_local;
  to_local.reserve(internal.size() + external.size());
  std::vector<VertexId> vertex_to_parent;
  vertex_to_parent.reserve(internal.size() + external.size());
  for (VertexId u : internal) {
    to_local.emplace(u, static_cast<VertexId>(vertex_to_parent.size()));
    vertex_to_parent.push_back(u);
  }
  for (VertexId u : external) {
    to_local.emplace(u, static_cast<VertexId>(vertex_to_parent.size()));
    vertex_to_parent.push_back(u);
  }

  // ENS(U) = edges with at least one endpoint in U (Definition 4).
  std::vector<Edge> local_edges;
  std::vector<EdgeId> edge_to_parent;
  for (VertexId u : internal) {
    for (const AdjEntry& a : g.neighbors(u)) {
      const bool nb_internal = std::binary_search(
          internal.begin(), internal.end(), a.neighbor);
      // Emit each edge once: internal-internal edges from the smaller
      // endpoint; internal-external edges from the internal endpoint.
      if (nb_internal && a.neighbor < u) continue;
      local_edges.push_back(MakeEdge(to_local.at(u), to_local.at(a.neighbor)));
      edge_to_parent.push_back(a.edge);
    }
  }

  std::vector<size_t> order(local_edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return local_edges[a] < local_edges[b];
  });
  std::vector<Edge> sorted_edges(local_edges.size());
  std::vector<EdgeId> sorted_map(local_edges.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_edges[i] = local_edges[order[i]];
    sorted_map[i] = edge_to_parent[order[i]];
  }

  NeighborhoodSubgraph out;
  out.sub.graph =
      Graph::FromEdges(std::move(sorted_edges),
                       static_cast<VertexId>(vertex_to_parent.size()));
  out.sub.vertex_to_parent = std::move(vertex_to_parent);
  out.sub.edge_to_parent = std::move(sorted_map);
  out.internal_vertex_count = static_cast<VertexId>(internal.size());
  return out;
}

}  // namespace truss
