// Structural statistics: degree summaries, clustering coefficients,
// connected components.
//
// These feed Table 2 (dataset statistics), Table 6 (CC of the kmax-truss vs
// the cmax-core), and Example 1 (CC of G vs 3-core vs 4-truss).

#ifndef TRUSS_GRAPH_STATS_H_
#define TRUSS_GRAPH_STATS_H_

#include <cstdint>

#include "graph/graph.h"

namespace truss {

/// Degree summary of a graph.
struct DegreeStats {
  uint32_t max = 0;
  uint32_t median = 0;
  double mean = 0.0;
};

/// Computes max / median / mean degree. Median uses the lower middle element
/// of the sorted degree sequence (matching the paper's integer d_med).
DegreeStats ComputeDegreeStats(const Graph& g);

/// Local clustering coefficient of v: triangles(v) / C(deg(v), 2).
/// Returns 0 for vertices of degree < 2.
double LocalClusteringCoefficient(const Graph& g, VertexId v);

/// Watts–Strogatz average clustering coefficient [33]: the mean of local
/// coefficients. When `include_low_degree` is true (the networkx convention,
/// used throughout the repo), vertices of degree < 2 contribute 0; otherwise
/// they are excluded from the average.
double AverageClusteringCoefficient(const Graph& g,
                                    bool include_low_degree = true);

/// Number of connected components (isolated vertices count as components).
uint64_t CountConnectedComponents(const Graph& g);

}  // namespace truss

#endif  // TRUSS_GRAPH_STATS_H_
