#include "graph/graph.h"

#include <algorithm>

#include "graph/validate.h"

namespace truss {

Result<Graph> Graph::FromCsrParts(std::vector<uint64_t> offsets,
                                  std::vector<AdjEntry> adj,
                                  std::vector<Edge> edges) {
  std::string violation;
  if (!graph::ValidateCsrParts(offsets, adj, edges, &violation)) {
    return Status::Corruption("invalid CSR arrays: " + violation);
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  g.edges_ = std::move(edges);
  return g;
}

Graph Graph::FromEdges(std::vector<Edge> edges, VertexId num_vertices) {
  // Normalize: sort lexicographically and drop duplicates. EdgeId order is
  // therefore the lexicographic order of (u, v) pairs.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  // Release the capacity of the erased duplicates before the CSR arrays
  // are allocated: a SNAP file listing every edge in both directions
  // otherwise carries a 2x-sized edge buffer through peak memory.
  edges.shrink_to_fit();

  VertexId n = num_vertices;
  for (const Edge& e : edges) {
    TRUSS_CHECK_LT(e.u, e.v);
    if (e.v + 1 > n) n = e.v + 1;
  }

  Graph g;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);

  // Two-pass CSR construction: count degrees, prefix-sum, then fill slots.
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (size_t v = 1; v < g.offsets_.size(); ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  g.adj_.resize(g.offsets_.back());

  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adj_[cursor[e.u]++] = AdjEntry{e.v, id};
    g.adj_[cursor[e.v]++] = AdjEntry{e.u, id};
  }

  // Filling in ascending EdgeId order yields neighbor lists sorted by
  // neighbor ID automatically for the `u` side (edges sorted by (u, v)), but
  // not for the `v` side, so sort each list explicitly.
  for (VertexId v = 0; v < n; ++v) {
    auto begin = g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]);
    auto end = g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end, [](const AdjEntry& a, const AdjEntry& b) {
      return a.neighbor < b.neighbor;
    });
  }
  return g;
}

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (u == v || u >= num_vertices() || v >= num_vertices()) {
    return kInvalidEdge;
  }
  // Search the shorter adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const AdjEntry& a, VertexId target) { return a.neighbor < target; });
  if (it != adj.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

uint64_t Graph::SizeBytes() const {
  return offsets_.size() * sizeof(uint64_t) + adj_.size() * sizeof(AdjEntry) +
         edges_.size() * sizeof(Edge);
}

void GraphBuilder::AddEdge(VertexId a, VertexId b) {
  if (a == b) return;
  pending_.push_back(MakeEdge(a, b));
  const VertexId hi = std::max(a, b);
  if (hi + 1 > num_vertices_) num_vertices_ = hi + 1;
}

void GraphBuilder::Compact() {
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());
  pending_.shrink_to_fit();
}

Graph GraphBuilder::Build() {
  // FromEdges sorts/uniques/shrinks the moved buffer in place before any
  // CSR allocation, so calling Compact() here would only sort twice.
  Graph g = Graph::FromEdges(std::move(pending_), num_vertices_);
  pending_.clear();
  num_vertices_ = 0;
  return g;
}

}  // namespace truss
