// Binary CSR snapshots (Graph::SaveBinary / Graph::LoadBinary).
//
// Layout: a fixed header {magic "TRSB", format version, array lengths}
// followed by the three raw arrays of the CSR representation (offsets,
// adjacency, edges), then an io::ChecksumFooter over everything before it.
// Saving is crash-safe — the file streams into a temp name and is renamed
// over the destination only after the footer is flushed (see
// io/checksum_file.h) — and loading verifies the checksum before parsing,
// then performs structural validation — magic, version, exact file length,
// monotone offsets summing to the adjacency length — so a stale, torn, or
// bit-flipped cache file is rejected as Corruption rather than producing
// an inconsistent graph.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <system_error>

#include "graph/graph.h"
#include "graph/validate.h"
#include "io/checksum_file.h"

namespace truss {

namespace {

constexpr uint32_t kMagic = 0x42535254;  // "TRSB" little-endian
// Version 2 appended the checksum footer and made saves atomic.
constexpr uint32_t kVersion = 2;

// The size validation in LoadBinary assumes 8-byte array elements.
static_assert(sizeof(uint64_t) == 8);
static_assert(sizeof(AdjEntry) == 8);
static_assert(sizeof(Edge) == 8);

struct SnapshotHeader {
  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint64_t offsets_count = 0;
  uint64_t adj_count = 0;
  uint64_t edges_count = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
Status ReadArray(std::FILE* f, std::vector<T>* data, uint64_t count,
                 const std::string& path) {
  data->resize(count);
  if (count == 0) return Status::OK();
  if (std::fread(data->data(), sizeof(T), count, f) != count) {
    return Status::Corruption("truncated snapshot: " + path);
  }
  return Status::OK();
}

}  // namespace

Status Graph::SaveBinary(const std::string& path) const {
  io::AtomicFileWriter w(path);
  TRUSS_RETURN_IF_ERROR(w.Open());

  SnapshotHeader header;
  header.offsets_count = offsets_.size();
  header.adj_count = adj_.size();
  header.edges_count = edges_.size();
  TRUSS_RETURN_IF_ERROR(w.Append(&header, sizeof(header)));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(offsets_));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(adj_));
  TRUSS_RETURN_IF_ERROR(w.AppendVector(edges_));
  return w.Commit();
}

Result<Graph> Graph::LoadBinary(const std::string& path) {
  // Whole-file integrity first: a torn or bit-flipped snapshot must fail
  // here with Corruption before any of its bytes are interpreted.
  TRUSS_RETURN_IF_ERROR(io::VerifyChecksummedFile(path).status());

  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for reading");
  }

  SnapshotHeader header;
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1) {
    return Status::Corruption("truncated snapshot header: " + path);
  }
  if (header.magic != kMagic) {
    return Status::Corruption("bad magic in " + path +
                              " (not a TRSB snapshot)");
  }
  if (header.version != kVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(header.version) + " in " + path);
  }
  if (header.adj_count != 2 * header.edges_count ||
      (header.offsets_count == 0 && header.adj_count != 0)) {
    return Status::Corruption("inconsistent array lengths in " + path);
  }
  // Check the header's counts against the actual file size before any
  // allocation: a bit-flipped count must surface as Corruption, not as a
  // multi-exabyte resize() aborting the process.
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path);
  // Every array element is 8 bytes, so any honest count is bounded by
  // file_size / 8; rejecting larger counts first keeps the size formula
  // below free of uint64 overflow.
  const uint64_t max_count = file_size / sizeof(uint64_t);
  if (header.offsets_count > max_count || header.adj_count > max_count ||
      header.edges_count > max_count) {
    return Status::Corruption("array lengths exceed file size in " + path);
  }
  const uint64_t expected = sizeof(SnapshotHeader) +
                            header.offsets_count * sizeof(uint64_t) +
                            header.adj_count * sizeof(AdjEntry) +
                            header.edges_count * sizeof(Edge) +
                            sizeof(io::ChecksumFooter);
  if (file_size != expected) {
    return Status::Corruption("file size does not match header in " + path);
  }

  Graph g;
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &g.offsets_, header.offsets_count, path));
  TRUSS_RETURN_IF_ERROR(ReadArray(f.get(), &g.adj_, header.adj_count, path));
  TRUSS_RETURN_IF_ERROR(
      ReadArray(f.get(), &g.edges_, header.edges_count, path));
  io::ChecksumFooter footer;
  if (std::fread(&footer, sizeof(footer), 1, f.get()) != 1) {
    return Status::Corruption("truncated checksum footer in " + path);
  }
  if (std::fgetc(f.get()) != EOF) {
    return Status::Corruption("trailing bytes in " + path);
  }

  // Full structural validation (graph/validate.h): monotone offsets,
  // sorted adjacency, symmetric entries, normalized sorted edges. Every
  // algorithm assumes these invariants without rechecking, so a stale or
  // crafted cache file must not be able to smuggle in, e.g., an unsorted
  // adjacency list that would silently break the binary searches.
  std::string violation;
  if (!graph::ValidateCsrParts(g.offsets_, g.adj_, g.edges_, &violation)) {
    return Status::Corruption(violation + " in " + path);
  }
  return g;
}

}  // namespace truss
