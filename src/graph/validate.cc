#include "graph/validate.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/macros.h"

namespace truss::graph {

namespace {

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

std::string At(const char* what, uint64_t index) {
  return std::string(what) + " at index " + std::to_string(index);
}

}  // namespace

bool ValidateCsrParts(std::span<const uint64_t> offsets,
                      std::span<const AdjEntry> adj,
                      std::span<const Edge> edges, std::string* error) {
  if (offsets.empty()) {
    if (!adj.empty() || !edges.empty()) {
      return Fail(error, "empty offsets with non-empty adjacency/edges");
    }
    return true;
  }
  if (offsets.front() != 0) return Fail(error, "offsets[0] != 0");
  if (offsets.back() != adj.size()) {
    return Fail(error, "offsets do not span the adjacency array");
  }
  if (adj.size() != 2 * edges.size()) {
    return Fail(error, "adjacency size is not 2 * edge count");
  }
  const VertexId n = static_cast<VertexId>(offsets.size() - 1);
  const EdgeId m = static_cast<EdgeId>(edges.size());

  // Every directed entry must be matched by its reverse; because each
  // entry also has to agree with edges[e], counting two references per
  // edge id is equivalent to checking symmetry explicitly.
  std::vector<uint8_t> edge_refs(m, 0);

  // Monotonicity first: the per-entry walk below indexes adj with
  // [offsets[u], offsets[u+1]) and would misattribute entries (or read a
  // nonsense range) if a later offset ran backwards.
  for (VertexId u = 0; u < n; ++u) {
    if (offsets[u + 1] < offsets[u]) {
      return Fail(error, At("non-monotone offsets", u));
    }
  }

  for (VertexId u = 0; u < n; ++u) {
    for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const AdjEntry& entry = adj[i];
      if (entry.neighbor >= n) {
        return Fail(error, At("out-of-range neighbor", i));
      }
      if (entry.neighbor == u) return Fail(error, At("self-loop", i));
      if (entry.edge >= m) return Fail(error, At("out-of-range edge id", i));
      if (i > offsets[u] && adj[i - 1].neighbor >= entry.neighbor) {
        return Fail(error, At("unsorted or duplicate adjacency", i));
      }
      const Edge& e = edges[entry.edge];
      const VertexId lo = u < entry.neighbor ? u : entry.neighbor;
      const VertexId hi = u < entry.neighbor ? entry.neighbor : u;
      if (e.u != lo || e.v != hi) {
        return Fail(error, At("adjacency entry disagrees with its edge", i));
      }
      if (edge_refs[entry.edge] >= 2) {
        return Fail(error, At("edge referenced more than twice", i));
      }
      ++edge_refs[entry.edge];
    }
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (edge_refs[e] != 2) {
      return Fail(error, At("asymmetric adjacency for edge", e));
    }
    if (edges[e].u >= edges[e].v) {
      return Fail(error, At("non-normalized edge", e));
    }
    if (e > 0 && !(edges[e - 1] < edges[e])) {
      return Fail(error, At("edge array not strictly sorted", e));
    }
  }
  return true;
}

bool ValidateCsr(const Graph& g, std::string* error) {
  return ValidateCsrParts(g.offsets(), g.adjacency(), g.edges(), error);
}

void DCheckValidCsr(const Graph& g) {
#if !defined(NDEBUG)
  std::string error;
  if (!ValidateCsr(g, &error)) {
    std::fprintf(stderr, "DCheckValidCsr failed: %s\n", error.c_str());
    std::abort();
  }
#else
  (void)g;
#endif
}

}  // namespace truss::graph
