// Structural CSR invariant validation (debug validators, leg 4 of the
// static-analysis layer; see docs/STATIC_ANALYSIS.md).
//
// Every algorithm in this repository leans on the Graph representation
// invariants without rechecking them: sorted adjacency (binary search and
// two-pointer intersection in triangle/), symmetric directed entries (the
// support/peel loops see each undirected edge from both endpoints), and
// monotone offsets (degree arithmetic, SplitBalanced sharding). A Graph
// built by GraphBuilder satisfies them by construction — but a graph
// deserialized from a snapshot, or produced by future mutating code
// (dynamic batch maintenance, serving-layer refresh), can silently break
// them and corrupt results far from the cause. ValidateCsr is the single
// checkable statement of those invariants: O(n + m), no allocation beyond
// a per-edge counter, suitable to run always at load boundaries and under
// TRUSS_DCHECK at algorithm boundaries.

#ifndef TRUSS_GRAPH_VALIDATE_H_
#define TRUSS_GRAPH_VALIDATE_H_

#include <span>
#include <string>

#include "graph/graph.h"
#include "common/types.h"

namespace truss::graph {

/// True iff (offsets, adj, edges) form a structurally valid CSR graph:
///   - offsets: either empty (the empty graph; adj/edges must be empty
///     too) or a monotone prefix sum with offsets[0] == 0 and
///     offsets.back() == adj.size();
///   - adj.size() == 2 * edges.size();
///   - each vertex's adjacency slice is strictly increasing by neighbor id
///     (sorted, no duplicate neighbors, no self-loops) with in-range
///     neighbor and edge ids;
///   - every directed entry (u -> v, e) agrees with edges[e] == (min(u,v),
///     max(u,v)), and every edge id is referenced exactly twice (symmetry);
///   - edges is strictly increasing lexicographically with u < v (the
///     dense-EdgeId ordering contract of common/types.h).
/// On failure returns false and, when `error` is non-null, stores a
/// one-line description of the first violation found.
bool ValidateCsrParts(std::span<const uint64_t> offsets,
                      std::span<const AdjEntry> adj,
                      std::span<const Edge> edges,
                      std::string* error = nullptr);

/// ValidateCsrParts over a Graph's own arrays.
bool ValidateCsr(const Graph& g, std::string* error = nullptr);

/// Debug boundary check: aborts with the violation message when `g` is
/// structurally invalid; compiles to nothing under NDEBUG. Algorithm entry
/// points call this so every Debug/ASan test run exercises the invariants
/// on every input graph.
void DCheckValidCsr(const Graph& g);

}  // namespace truss::graph

#endif  // TRUSS_GRAPH_VALIDATE_H_
