#include "triangle/triangle.h"

#include <algorithm>
#include <numeric>

#include "common/parallel.h"

namespace truss {

Dodg::Dodg(const Graph& g, uint32_t threads) {
  const VertexId n = g.num_vertices();
  const uint32_t workers = EffectiveThreads(threads, n);

  // Fast-path detection: ids already degree-descending means "u precedes v
  // in (degree desc, id asc) order" is exactly "u < v", so no position
  // array is needed at all.
  id_ordered_ = true;
  for (VertexId v = 1; v < n; ++v) {
    if (g.degree(v) > g.degree(v - 1)) {
      id_ordered_ = false;
      break;
    }
  }

  // General path: position of each vertex in the (degree desc, id asc)
  // order. One O(n log n) sort; the entries themselves never need sorting
  // because filtering preserves the adjacency's ascending-id order.
  std::vector<VertexId> pos;
  if (!id_ordered_) {
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      const uint32_t da = g.degree(a), db = g.degree(b);
      return da != db ? da > db : a < b;
    });
    pos.resize(n);
    for (VertexId r = 0; r < n; ++r) pos[order[r]] = r;
  }
  const auto precedes = [&](VertexId u, VertexId v) {
    return id_ordered_ ? u < v : pos[u] < pos[v];
  };

  // Out-degree count: each shard writes a disjoint offsets_ slice.
  offsets_.assign(static_cast<size_t>(n) + 1, 0);
  ParallelFor(workers, n, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      uint64_t out_deg = 0;
      for (const AdjEntry& a : g.neighbors(v)) {
        if (precedes(a.neighbor, v)) ++out_deg;
      }
      offsets_[v + 1] = out_deg;
    }
  });
  for (VertexId v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  entries_.resize(offsets_.back());

  // Fill: vertex slices of entries_ are disjoint, and the filtered copy
  // stays id-sorted for free.
  ParallelFor(workers, n, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      uint64_t cursor = offsets_[v];
      for (const AdjEntry& a : g.neighbors(v)) {
        if (precedes(a.neighbor, v)) entries_[cursor++] = a;
      }
    }
  });
}

OrientedAdjacency::OrientedAdjacency(const Graph& g, uint32_t threads) {
  const VertexId n = g.num_vertices();
  const uint32_t workers = EffectiveThreads(threads, n);

  // Rank by (degree, id) ascending: rank_[v] = position of v in that order.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const uint32_t da = g.degree(a), db = g.degree(b);
    return da != db ? da < db : a < b;
  });
  rank_.resize(n);
  for (uint32_t r = 0; r < n; ++r) rank_[order[r]] = r;

  // Out-degree count: each shard writes a disjoint offsets_ slice.
  offsets_.assign(static_cast<size_t>(n) + 1, 0);
  ParallelFor(workers, n, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      uint64_t out_deg = 0;
      for (const AdjEntry& a : g.neighbors(v)) {
        if (rank_[a.neighbor] > rank_[v]) ++out_deg;
      }
      offsets_[v + 1] = out_deg;
    }
  });
  for (VertexId v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  entries_.resize(offsets_.back());

  // Fill + per-vertex rank sort: vertex slices of entries_ are disjoint.
  ParallelFor(workers, n, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      uint64_t cursor = offsets_[v];
      for (const AdjEntry& a : g.neighbors(v)) {
        if (rank_[a.neighbor] > rank_[v]) {
          entries_[cursor++] = Entry{rank_[a.neighbor], a.neighbor, a.edge};
        }
      }
      auto first = entries_.begin() + static_cast<ptrdiff_t>(offsets_[v]);
      auto last = entries_.begin() + static_cast<ptrdiff_t>(offsets_[v + 1]);
      std::sort(first, last,
                [](const Entry& x, const Entry& y) { return x.rank < y.rank; });
    }
  });
}

uint64_t CountTriangles(const Graph& g) {
  uint64_t count = 0;
  ForEachTriangle(g, [&](VertexId, VertexId, VertexId, EdgeId, EdgeId,
                         EdgeId) { ++count; });
  return count;
}

std::vector<uint32_t> ComputeEdgeSupports(const Graph& g) {
  std::vector<uint32_t> sup(g.num_edges(), 0);
  const Dodg dodg(g);
#ifndef NDEBUG
  uint64_t listed = 0;
#endif
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ForEachTriangleEdgesAt(dodg, v, [&](EdgeId e1, EdgeId e2, EdgeId e3) {
      ++sup[e1];
      ++sup[e2];
      ++sup[e3];
#ifndef NDEBUG
      ++listed;
#endif
    });
  }
#ifndef NDEBUG
  // Exactly-once cross-check against the independent rank-oriented
  // enumeration: the DODG must list |△G| triangles, no more, no fewer.
  TRUSS_DCHECK_EQ(listed, CountTriangles(g));
#endif
  return sup;
}

std::vector<uint32_t> ComputeEdgeSupports(const Graph& g, uint32_t threads) {
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  const uint32_t workers = EffectiveThreads(threads, n);
  if (workers <= 1) return ComputeEdgeSupports(g);

  const Dodg dodg(g, workers);
  // Work-balanced vertex shards: the forward algorithm's work at v is
  // proportional to its oriented out-entries, whose prefix sum is exactly
  // the DODG's CSR offsets.
  const std::vector<uint64_t> bounds = SplitBalanced(dodg.offsets(), workers);

  // Each worker counts its shard's triangles into a private buffer; an edge
  // may gain support from triangles found by different shards, so buffers
  // are merged below rather than shared (no atomics on the hot path).
  // Buffers are allocated here, on the calling thread, so an allocation
  // failure surfaces exactly like the sequential path's would instead of
  // escaping a worker (RunShards bodies must not throw).
  std::vector<std::vector<uint32_t>> local(workers);
  for (std::vector<uint32_t>& buffer : local) buffer.assign(m, 0);
#ifndef NDEBUG
  std::vector<uint64_t> listed(workers, 0);
#endif
  RunShards(workers, [&](uint32_t shard) {
    std::vector<uint32_t>& sup = local[shard];
    for (VertexId v = static_cast<VertexId>(bounds[shard]);
         v < bounds[shard + 1]; ++v) {
      ForEachTriangleEdgesAt(dodg, v, [&](EdgeId e1, EdgeId e2, EdgeId e3) {
        ++sup[e1];
        ++sup[e2];
        ++sup[e3];
#ifndef NDEBUG
        ++listed[shard];
#endif
      });
    }
  });
#ifndef NDEBUG
  // Same exactly-once cross-check as the sequential path; shard counters
  // are summed after the join, so the hot loop stays atomics-free.
  TRUSS_DCHECK_EQ(std::accumulate(listed.begin(), listed.end(), uint64_t{0}),
                  CountTriangles(g));
#endif

  // Merge in shard order over disjoint edge ranges. uint32_t addition is
  // exact and order-independent, so the result matches the sequential path
  // bit for bit.
  std::vector<uint32_t> sup(m, 0);
  ParallelFor(workers, m, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (const std::vector<uint32_t>& partial : local) {
      for (uint64_t e = begin; e < end; ++e) sup[e] += partial[e];
    }
  });
  return sup;
}

std::vector<uint32_t> ComputeEdgeSupportsNaive(const Graph& g) {
  std::vector<uint32_t> sup(g.num_edges(), 0);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    const auto nb_u = g.neighbors(e.u);
    const auto nb_v = g.neighbors(e.v);
    // Sorted-merge intersection |nb(u) ∩ nb(v)|.
    size_t i = 0, j = 0;
    uint32_t common = 0;
    while (i < nb_u.size() && j < nb_v.size()) {
      if (nb_u[i].neighbor < nb_v[j].neighbor) {
        ++i;
      } else if (nb_u[i].neighbor > nb_v[j].neighbor) {
        ++j;
      } else {
        ++common;
        ++i;
        ++j;
      }
    }
    sup[id] = common;
  }
  return sup;
}

}  // namespace truss
