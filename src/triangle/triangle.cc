#include "triangle/triangle.h"

#include <algorithm>
#include <numeric>

namespace truss {

OrientedAdjacency::OrientedAdjacency(const Graph& g) {
  const VertexId n = g.num_vertices();

  // Rank by (degree, id) ascending: rank_[v] = position of v in that order.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const uint32_t da = g.degree(a), db = g.degree(b);
    return da != db ? da < db : a < b;
  });
  rank_.resize(n);
  for (uint32_t r = 0; r < n; ++r) rank_[order[r]] = r;

  offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t out_deg = 0;
    for (const AdjEntry& a : g.neighbors(v)) {
      if (rank_[a.neighbor] > rank_[v]) ++out_deg;
    }
    offsets_[v + 1] = offsets_[v] + out_deg;
  }
  entries_.resize(offsets_.back());

  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (const AdjEntry& a : g.neighbors(v)) {
      if (rank_[a.neighbor] > rank_[v]) {
        entries_[cursor[v]++] = Entry{rank_[a.neighbor], a.neighbor, a.edge};
      }
    }
    auto begin = entries_.begin() + static_cast<ptrdiff_t>(offsets_[v]);
    auto end = entries_.begin() + static_cast<ptrdiff_t>(offsets_[v + 1]);
    std::sort(begin, end,
              [](const Entry& x, const Entry& y) { return x.rank < y.rank; });
  }
}

uint64_t CountTriangles(const Graph& g) {
  uint64_t count = 0;
  ForEachTriangle(g, [&](VertexId, VertexId, VertexId, EdgeId, EdgeId,
                         EdgeId) { ++count; });
  return count;
}

std::vector<uint32_t> ComputeEdgeSupports(const Graph& g) {
  std::vector<uint32_t> sup(g.num_edges(), 0);
  ForEachTriangle(g, [&](VertexId, VertexId, VertexId, EdgeId e1, EdgeId e2,
                         EdgeId e3) {
    ++sup[e1];
    ++sup[e2];
    ++sup[e3];
  });
  return sup;
}

std::vector<uint32_t> ComputeEdgeSupportsNaive(const Graph& g) {
  std::vector<uint32_t> sup(g.num_edges(), 0);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    const auto nb_u = g.neighbors(e.u);
    const auto nb_v = g.neighbors(e.v);
    // Sorted-merge intersection |nb(u) ∩ nb(v)|.
    size_t i = 0, j = 0;
    uint32_t common = 0;
    while (i < nb_u.size() && j < nb_v.size()) {
      if (nb_u[i].neighbor < nb_v[j].neighbor) {
        ++i;
      } else if (nb_u[i].neighbor > nb_v[j].neighbor) {
        ++j;
      } else {
        ++common;
        ++i;
        ++j;
      }
    }
    sup[id] = common;
  }
  return sup;
}

}  // namespace truss
