// In-memory triangle counting and listing.
//
// Implements the degree-ordered "forward" algorithm (Schank [27]; Latapy
// [20]): orient every edge from its lower-ranked endpoint to its
// higher-ranked endpoint, where rank orders vertices by (degree, id)
// ascending; every out-neighborhood then has size O(√m) and intersecting the
// out-lists of an edge's endpoints lists each triangle exactly once, for
// O(m^1.5) total work — the lower-bound complexity the paper's Theorem 1
// matches. Support initialization for both in-memory truss algorithms (§3)
// and the local computations of the external algorithms (§5, §6) run on it.

#ifndef TRUSS_TRIANGLE_TRIANGLE_H_
#define TRUSS_TRIANGLE_TRIANGLE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace truss {

/// Degree ratio beyond which ForEachCommonNeighbor switches from the
/// linear merge walk to galloping (binary search in the longer list).
/// Below the ratio the merge's sequential scans are cache-friendlier;
/// above it the O(min_deg · log max_deg) search wins.
inline constexpr size_t kGallopDegreeRatio = 32;

/// Enumerates the triangles through the edge (u, v) with no hash table:
/// the sorted adjacency lists of u and v are intersected directly, and
/// because every AdjEntry carries its edge id, both remaining triangle
/// edges come out of the walk for free. Calls cb(w, e_uw, e_vw) for every
/// common neighbor w. Cost is O(deg(u) + deg(v)) via a two-pointer merge,
/// dropping to O(min_deg · log(max_deg)) by galloping when the degrees are
/// skewed by more than kGallopDegreeRatio — this replaces the expected-O(1)
/// hash probes of Algorithm 2 Step 8 with branch-predictable scans over
/// contiguous memory (see truss/edge_map.h for the hash table it displaced
/// from the peel hot loop; bench_micro_kernels BM_TriangleEnumHashVsIntersect
/// measures the two side by side).
template <typename CommonNeighborCallback>
void ForEachCommonNeighbor(const Graph& g, VertexId u, VertexId v,
                           CommonNeighborCallback&& cb) {
  std::span<const AdjEntry> a = g.neighbors(u);  // yields e_uw
  std::span<const AdjEntry> b = g.neighbors(v);  // yields e_vw
  const bool swapped = a.size() > b.size();
  if (swapped) std::swap(a, b);
  auto emit = [&](const AdjEntry& ea, const AdjEntry& eb) {
    if (swapped) {
      cb(ea.neighbor, eb.edge, ea.edge);
    } else {
      cb(ea.neighbor, ea.edge, eb.edge);
    }
  };
  if (a.size() * kGallopDegreeRatio < b.size()) {
    // Skewed: look each short-list neighbor up in the (shrinking) long
    // list. The search window only ever narrows, so the total is
    // O(|a| · log |b|).
    auto first = b.begin();
    for (const AdjEntry& ea : a) {
      first = std::lower_bound(
          first, b.end(), ea.neighbor,
          [](const AdjEntry& e, VertexId w) { return e.neighbor < w; });
      if (first == b.end()) break;
      if (first->neighbor == ea.neighbor) {
        emit(ea, *first);
        ++first;
      }
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const VertexId wa = a[i].neighbor;
    const VertexId wb = b[j].neighbor;
    if (wa < wb) {
      ++i;
    } else if (wa > wb) {
      ++j;
    } else {
      emit(a[i], b[j]);
      ++i;
      ++j;
    }
  }
}

/// Degree-ordered orientation of a graph: each vertex's out-list holds only
/// higher-ranked neighbors, sorted by rank.
class OrientedAdjacency {
 public:
  struct Entry {
    uint32_t rank;    // rank of `vertex`
    VertexId vertex;  // out-neighbor
    EdgeId edge;      // id of the connecting edge in the source graph
  };

  /// Builds the orientation. `threads` > 1 parallelizes the out-degree count
  /// and the fill+sort passes over vertex ranges; the result is identical
  /// for every thread count.
  explicit OrientedAdjacency(const Graph& g, uint32_t threads = 1);

  std::span<const Entry> out(VertexId v) const {
    return {entries_.data() + offsets_[v], entries_.data() + offsets_[v + 1]};
  }

  uint32_t rank(VertexId v) const { return rank_[v]; }

  /// CSR offsets of the out-lists: offsets()[v]..offsets()[v+1] delimit
  /// out(v). Being a prefix sum of out-degrees, this is the natural weight
  /// input for SplitBalanced when sharding vertices by oriented work.
  std::span<const uint64_t> offsets() const { return offsets_; }

 private:
  std::vector<uint32_t> rank_;
  std::vector<uint64_t> offsets_;
  std::vector<Entry> entries_;
};

/// Enumerates the triangles whose lowest-ranked corner is `u`, exactly once
/// each. Callback contract matches ForEachTriangle. Distinct `u` values
/// touch disjoint triangle sets, so per-vertex calls are the unit of
/// parallel work (each out-list is only read).
template <typename TriangleCallback>
void ForEachTriangleAt(const OrientedAdjacency& oriented, VertexId u,
                       TriangleCallback&& cb) {
  const auto out_u = oriented.out(u);
  for (const auto& uv : out_u) {
    const VertexId v = uv.vertex;
    const auto out_v = oriented.out(v);
    // Two-pointer intersection over rank-sorted out-lists.
    size_t i = 0, j = 0;
    while (i < out_u.size() && j < out_v.size()) {
      if (out_u[i].rank < out_v[j].rank) {
        ++i;
      } else if (out_u[i].rank > out_v[j].rank) {
        ++j;
      } else {
        cb(u, v, out_u[i].vertex, uv.edge, out_u[i].edge, out_v[j].edge);
        ++i;
        ++j;
      }
    }
  }
}

/// Enumerates every triangle of `g` exactly once. The callback receives the
/// three corner vertices and the ids of the three edges:
///   cb(u, v, w, e_uv, e_uw, e_vw)
/// with rank(u) < rank(v) < rank(w).
template <typename TriangleCallback>
void ForEachTriangle(const Graph& g, TriangleCallback&& cb) {
  const OrientedAdjacency oriented(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    ForEachTriangleAt(oriented, u, cb);
  }
}

/// Total number of triangles |△G|.
uint64_t CountTriangles(const Graph& g);

/// Per-edge supports sup(e) (Definition 1), indexed by EdgeId.
std::vector<uint32_t> ComputeEdgeSupports(const Graph& g);

/// Parallel support computation: shards vertices into degree-balanced
/// contiguous ranges (balanced on oriented out-degree, the unit of forward-
/// algorithm work), accumulates each shard's triangle increments into a
/// per-thread buffer, and merges the buffers in shard order — no atomics on
/// the hot path, and the output is byte-identical to the sequential version
/// for every thread count. Transient memory cost: one uint32_t[num_edges]
/// buffer per worker. `threads` is clamped by EffectiveThreads; threads <= 1
/// falls back to the sequential path.
std::vector<uint32_t> ComputeEdgeSupports(const Graph& g, uint32_t threads);

/// Naive O(Σ deg²) support computation via per-edge neighbor-list
/// intersection — the initialization step the paper's Algorithm 1 describes
/// literally (Steps 2-3). Kept as a test oracle and micro-bench baseline.
std::vector<uint32_t> ComputeEdgeSupportsNaive(const Graph& g);

}  // namespace truss

#endif  // TRUSS_TRIANGLE_TRIANGLE_H_
