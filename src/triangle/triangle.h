// In-memory triangle counting and listing.
//
// Two related structures implement the degree-ordered "forward" algorithm
// (Schank [27]; Latapy [20]): orient every edge from its lower-ordered
// endpoint to its higher-ordered endpoint in a degree-monotone vertex
// order; every out-neighborhood then has size O(√m) and intersecting the
// out-lists of an edge's endpoints lists each triangle exactly once, for
// O(m^1.5) total work — the lower-bound complexity the paper's Theorem 1
// matches.
//
//   - Dodg, the degree-ordered directed graph, is the hot-path structure:
//     one 8-byte AdjEntry per undirected edge, out-lists kept in the CSR's
//     ascending-id order so intersections run directly on vertex ids with
//     the shared merge/galloping kernel. Support initialization for the
//     in-memory truss algorithms (§3) and the local computations of the
//     external algorithms (§5, §6) run on it (ComputeEdgeSupports). When
//     the graph has been renumbered degree-descending (layout::
//     ApplyPermutation with Policy::kDegree), the orientation collapses to
//     "toward the smaller id" and the build is a rank-free prefix copy.
//   - OrientedAdjacency is the rank-indexed variant: entries carry the
//     (degree, id) rank so enumeration visits corners in rank order —
//     the contract ForEachTriangle's callback exposes, which the truss
//     lower-bound machinery and verification depend on. It also serves as
//     the independent cross-check the Dodg paths assert against in Debug.

#ifndef TRUSS_TRIANGLE_TRIANGLE_H_
#define TRUSS_TRIANGLE_TRIANGLE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace truss {

/// Degree ratio beyond which the intersection kernel switches from the
/// linear merge walk to galloping (binary search in the longer list).
/// Below the ratio the merge's sequential scans are cache-friendlier;
/// above it the O(min_deg · log max_deg) search wins.
inline constexpr size_t kGallopDegreeRatio = 32;

/// Intersects two id-sorted AdjEntry spans and calls cb(ea, eb) for every
/// vertex present in both, where ea always comes from `a` and eb from `b`.
/// Two-pointer merge in O(|a| + |b|), dropping to O(min · log max) by
/// galloping (binary search over a window that only ever narrows) when the
/// sizes are skewed by more than kGallopDegreeRatio. This is the one
/// intersection kernel behind both the undirected per-edge enumeration
/// (ForEachCommonNeighbor) and the DODG triangle listing
/// (ForEachTriangleEdgesAt).
template <typename EntryPairCallback>
void IntersectSortedEntries(std::span<const AdjEntry> a,
                            std::span<const AdjEntry> b,
                            EntryPairCallback&& cb) {
  const bool swapped = a.size() > b.size();
  if (swapped) std::swap(a, b);
  auto emit = [&](const AdjEntry& ea, const AdjEntry& eb) {
    if (swapped) {
      cb(eb, ea);
    } else {
      cb(ea, eb);
    }
  };
  if (a.size() * kGallopDegreeRatio < b.size()) {
    // Skewed: look each short-list neighbor up in the (shrinking) long
    // list. The search window only ever narrows, so the total is
    // O(|a| · log |b|).
    auto first = b.begin();
    for (const AdjEntry& ea : a) {
      first = std::lower_bound(
          first, b.end(), ea.neighbor,
          [](const AdjEntry& e, VertexId w) { return e.neighbor < w; });
      if (first == b.end()) break;
      if (first->neighbor == ea.neighbor) {
        emit(ea, *first);
        ++first;
      }
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const VertexId wa = a[i].neighbor;
    const VertexId wb = b[j].neighbor;
    if (wa < wb) {
      ++i;
    } else if (wa > wb) {
      ++j;
    } else {
      emit(a[i], b[j]);
      ++i;
      ++j;
    }
  }
}

/// Enumerates the triangles through the edge (u, v) with no hash table:
/// the sorted adjacency lists of u and v are intersected directly, and
/// because every AdjEntry carries its edge id, both remaining triangle
/// edges come out of the walk for free. Calls cb(w, e_uw, e_vw) for every
/// common neighbor w. This replaces the expected-O(1) hash probes of
/// Algorithm 2 Step 8 with branch-predictable scans over contiguous memory
/// (see truss/edge_map.h for the hash table it displaced from the peel hot
/// loop; bench_micro_kernels BM_TriangleEnumHashVsIntersect measures the
/// two side by side).
template <typename CommonNeighborCallback>
void ForEachCommonNeighbor(const Graph& g, VertexId u, VertexId v,
                           CommonNeighborCallback&& cb) {
  IntersectSortedEntries(g.neighbors(u), g.neighbors(v),
                         [&](const AdjEntry& ea, const AdjEntry& eb) {
                           cb(ea.neighbor, ea.edge, eb.edge);
                         });
}

/// Degree-ordered directed graph (DODG): every undirected edge stored
/// exactly once, oriented toward the endpoint that comes earlier in the
/// degree-descending vertex order (ties toward the lower id) — i.e. out(v)
/// holds the neighbors of v that precede v in that order, so
/// |out(v)| ≤ √(2m). Out-lists are subsequences of the CSR adjacency:
/// same ascending-id order, edge ids carried along, which is what lets the
/// triangle listing intersect them with the shared id-keyed kernel and no
/// rank indirection.
///
/// When the graph's ids already run degree-descending — deg(v)
/// non-increasing in v, which is exactly what layout::ApplyPermutation
/// with layout::Policy::kDegree produces — the orientation predicate
/// collapses to `u < v`: out(v) is the adjacency prefix below v, no order
/// array is built at all, and enumeration touches renumbered ids that
/// cluster hubs at the front of every array. The collapse is detected
/// automatically (id_ordered()); on arbitrary graphs a (degree desc, id
/// asc) position array restores the same bound.
class Dodg {
 public:
  /// Builds the orientation. `threads` > 1 parallelizes the out-degree
  /// count and fill passes over vertex ranges; the result is identical for
  /// every thread count.
  explicit Dodg(const Graph& g, uint32_t threads = 1);

  /// Out-neighbors of v (the neighbors preceding v in the degree order),
  /// sorted by ascending vertex id, each entry carrying its source EdgeId.
  std::span<const AdjEntry> out(VertexId v) const {
    return {entries_.data() + offsets_[v], entries_.data() + offsets_[v + 1]};
  }

  /// CSR offsets of the out-lists: offsets()[v]..offsets()[v+1] delimit
  /// out(v). Being a prefix sum of out-degrees — the unit of forward-
  /// algorithm work — this is the natural weight input for SplitBalanced.
  std::span<const uint64_t> offsets() const { return offsets_; }

  /// True when the source graph's ids already ran degree-descending and
  /// the build took the rank-free prefix path.
  bool id_ordered() const { return id_ordered_; }

 private:
  bool id_ordered_ = false;
  std::vector<uint64_t> offsets_;
  std::vector<AdjEntry> entries_;
};

/// Enumerates the triangles whose latest-ordered corner is `v`, exactly
/// once each, as edge-id triples cb(e_uv, e_uw, e_vw): u runs over out(v)
/// and w over the common out-neighbors closing the triangle. Distinct `v`
/// values enumerate disjoint triangle sets, so per-vertex calls are the
/// unit of parallel work (out-lists are only read).
template <typename TriangleEdgesCallback>
void ForEachTriangleEdgesAt(const Dodg& dodg, VertexId v,
                            TriangleEdgesCallback&& cb) {
  const std::span<const AdjEntry> out_v = dodg.out(v);
  for (const AdjEntry& uv : out_v) {
    IntersectSortedEntries(dodg.out(uv.neighbor), out_v,
                           [&](const AdjEntry& uw, const AdjEntry& vw) {
                             cb(uv.edge, uw.edge, vw.edge);
                           });
  }
}

/// Degree-ordered orientation of a graph: each vertex's out-list holds only
/// higher-ranked neighbors, sorted by rank (by (degree, id) ascending).
/// This is the rank-indexed sibling of Dodg: 12-byte entries and a rank
/// indirection buy the rank-ordered corner contract of ForEachTriangle.
class OrientedAdjacency {
 public:
  struct Entry {
    uint32_t rank;    // rank of `vertex`
    VertexId vertex;  // out-neighbor
    EdgeId edge;      // id of the connecting edge in the source graph
  };

  /// Builds the orientation. `threads` > 1 parallelizes the out-degree count
  /// and the fill+sort passes over vertex ranges; the result is identical
  /// for every thread count.
  explicit OrientedAdjacency(const Graph& g, uint32_t threads = 1);

  std::span<const Entry> out(VertexId v) const {
    return {entries_.data() + offsets_[v], entries_.data() + offsets_[v + 1]};
  }

  uint32_t rank(VertexId v) const { return rank_[v]; }

  /// CSR offsets of the out-lists: offsets()[v]..offsets()[v+1] delimit
  /// out(v). Being a prefix sum of out-degrees, this is the natural weight
  /// input for SplitBalanced when sharding vertices by oriented work.
  std::span<const uint64_t> offsets() const { return offsets_; }

 private:
  std::vector<uint32_t> rank_;
  std::vector<uint64_t> offsets_;
  std::vector<Entry> entries_;
};

/// Enumerates the triangles whose lowest-ranked corner is `u`, exactly once
/// each. Callback contract matches ForEachTriangle. Distinct `u` values
/// touch disjoint triangle sets, so per-vertex calls are the unit of
/// parallel work (each out-list is only read).
template <typename TriangleCallback>
void ForEachTriangleAt(const OrientedAdjacency& oriented, VertexId u,
                       TriangleCallback&& cb) {
  const auto out_u = oriented.out(u);
  for (const auto& uv : out_u) {
    const VertexId v = uv.vertex;
    const auto out_v = oriented.out(v);
    // Two-pointer intersection over rank-sorted out-lists.
    size_t i = 0, j = 0;
    while (i < out_u.size() && j < out_v.size()) {
      if (out_u[i].rank < out_v[j].rank) {
        ++i;
      } else if (out_u[i].rank > out_v[j].rank) {
        ++j;
      } else {
        cb(u, v, out_u[i].vertex, uv.edge, out_u[i].edge, out_v[j].edge);
        ++i;
        ++j;
      }
    }
  }
}

/// Enumerates every triangle of `g` exactly once. The callback receives the
/// three corner vertices and the ids of the three edges:
///   cb(u, v, w, e_uv, e_uw, e_vw)
/// with rank(u) < rank(v) < rank(w).
template <typename TriangleCallback>
void ForEachTriangle(const Graph& g, TriangleCallback&& cb) {
  const OrientedAdjacency oriented(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    ForEachTriangleAt(oriented, u, cb);
  }
}

/// Total number of triangles |△G|.
uint64_t CountTriangles(const Graph& g);

/// Per-edge supports sup(e) (Definition 1), indexed by EdgeId. Runs the
/// DODG listing: each triangle is enumerated exactly once (cross-checked
/// against the independent rank-oriented count in Debug builds) and its
/// three covering edges incremented.
std::vector<uint32_t> ComputeEdgeSupports(const Graph& g);

/// Parallel support computation on the DODG: shards vertices into
/// contiguous ranges balanced on oriented out-degree (the unit of forward-
/// algorithm work), accumulates each shard's triangle increments into a
/// per-thread buffer, and merges the buffers in shard order — no atomics on
/// the hot path, and the output is byte-identical to the sequential version
/// for every thread count. Transient memory cost: one uint32_t[num_edges]
/// buffer per worker. `threads` is clamped by EffectiveThreads; threads <= 1
/// falls back to the sequential path.
std::vector<uint32_t> ComputeEdgeSupports(const Graph& g, uint32_t threads);

/// Naive O(Σ deg²) support computation via per-edge neighbor-list
/// intersection over the *undirected* adjacency — the initialization step
/// the paper's Algorithm 1 describes literally (Steps 2-3), discovering
/// each triangle three times. Kept as a test oracle and as the baseline
/// the DODG path is benched against (BM_SupportDodgVsUndirected).
std::vector<uint32_t> ComputeEdgeSupportsNaive(const Graph& g);

}  // namespace truss

#endif  // TRUSS_TRIANGLE_TRIANGLE_H_
