// Registry of the nine evaluation datasets (paper Table 2) and their
// synthetic stand-ins.
//
// The paper evaluates on SNAP/Yahoo/BTC graphs that are not available
// offline; each entry here pairs the paper-reported statistics with a
// deterministic generator whose structural knobs (degree skew, clustering,
// kmax via planted cliques, relative scale ordering) mimic the original.
// Absolute sizes are scaled down so the full benchmark suite runs on one
// machine in minutes — EXPERIMENTS.md documents paper-vs-measured values.

#ifndef TRUSS_DATASETS_DATASETS_H_
#define TRUSS_DATASETS_DATASETS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace truss::datasets {

struct DatasetSpec {
  std::string name;
  /// What the stand-in mimics and how.
  std::string description;
  /// True for LJ/BTC/Web — the paper's targets for the external algorithms.
  bool large = false;

  // Paper-reported Table 2 values, for side-by-side output.
  uint64_t paper_vertices = 0;
  uint64_t paper_edges = 0;
  uint32_t paper_dmax = 0;
  uint32_t paper_dmed = 0;
  uint32_t paper_kmax = 0;

  /// Deterministic generator of the scaled synthetic stand-in.
  std::function<Graph()> generate;
};

/// All nine datasets in the paper's Table 2 order:
/// P2P, HEP, Amazon, Wiki, Skitter, Blog, LJ, BTC, Web.
const std::vector<DatasetSpec>& PaperDatasets();

/// Lookup by name; aborts on unknown names (programmer error).
const DatasetSpec& DatasetByName(const std::string& name);

}  // namespace truss::datasets

#endif  // TRUSS_DATASETS_DATASETS_H_
