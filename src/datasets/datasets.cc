#include "datasets/datasets.h"

#include "common/macros.h"
#include "common/rng.h"
#include "gen/generators.h"

namespace truss::datasets {

namespace {

// Plants `count` cliques with sizes in [min_size, max_size] on random
// vertex subsets — the stand-in for the dense co-author / co-purchase /
// community cores that give real networks their truss structure.
Graph PlantRandomCliques(const Graph& base, uint32_t count, uint32_t min_size,
                         uint32_t max_size, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges(base.edges().begin(), base.edges().end());
  const VertexId n = base.num_vertices();
  std::vector<VertexId> members;
  for (uint32_t c = 0; c < count; ++c) {
    const uint32_t size =
        min_size + static_cast<uint32_t>(rng.Uniform(max_size - min_size + 1));
    members.clear();
    while (members.size() < size) {
      const VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (std::find(members.begin(), members.end(), v) == members.end()) {
        members.push_back(v);
      }
    }
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        edges.push_back(MakeEdge(members[i], members[j]));
      }
    }
  }
  return Graph::FromEdges(std::move(edges), n);
}

// Attaches a hub: `leaves` random distinct vertices gain an edge to the
// current maximum-degree vertex. Real networks in Table 2 have extreme
// hubs (Wiki dmax 100029); the hub both matches the dmax column and drives
// Table 3's gap, since Algorithm 1 pays O(deg(hub)) for every removal of a
// hub edge while Algorithm 2 walks the leaf side.
Graph AddHubStar(const Graph& base, uint32_t leaves, uint64_t seed) {
  // The hub gets the highest vertex id: in the sorted-merge intersection of
  // Algorithm 1, every (hub, leaf) removal must then scan the hub's entire
  // adjacency before the leaf side (whose largest neighbor is the hub id)
  // is exhausted — the literal O(deg(u) + deg(v)) cost of §3.1.
  const VertexId hub = base.num_vertices() - 1;
  Rng rng(seed);
  std::vector<Edge> edges(base.edges().begin(), base.edges().end());
  for (uint32_t i = 0; i < leaves; ++i) {
    const VertexId v = static_cast<VertexId>(rng.Uniform(base.num_vertices()));
    if (v != hub) edges.push_back(MakeEdge(hub, v));
  }
  return Graph::FromEdges(std::move(edges), base.num_vertices());
}

std::vector<DatasetSpec> BuildRegistry() {
  std::vector<DatasetSpec> specs;

  specs.push_back(DatasetSpec{
      "P2P",
      "Gnutella peer-to-peer: near-random sparse connections, almost no "
      "triangles (ER(n,m) + a planted 5-clique for kmax).",
      false, 6300, 41600, 97, 3, 5, [] {
        Graph base = gen::ErdosRenyiGnm(6301, 41464, /*seed=*/101);
        base = AddHubStar(base, 90, /*seed=*/103);
        return gen::PlantClique(base, 5, /*seed=*/102);
      }});

  specs.push_back(DatasetSpec{
      "HEP",
      "High-energy-physics citations: power-law backbone with dense "
      "co-author cliques (BA + 150 planted cliques, largest 32).",
      false, 9900, 52000, 65, 3, 32, [] {
        Graph g = gen::BarabasiAlbert(9877, 4, /*seed=*/201);
        g = PlantRandomCliques(g, 150, 4, 12, /*seed=*/202);
        return gen::PlantClique(g, 32, /*seed=*/203);
      }});

  specs.push_back(DatasetSpec{
      "Amazon",
      "Product co-purchasing: many small tight communities, flat degree "
      "distribution (planted communities + an 11-clique).",
      false, 400000, 3400000, 2752, 10, 11, [] {
        Graph g = gen::PlantedCommunities(10000, 8, 0.6, 120000,
                                          /*seed=*/301);
        g = AddHubStar(g, 2700, /*seed=*/303);
        return gen::PlantClique(g, 11, /*seed=*/302);
      }});

  specs.push_back(DatasetSpec{
      "Wiki",
      "Wikipedia talk: extreme hub skew, median degree 1 "
      "(R-MAT a=0.65 + a 53-clique).",
      false, 2400000, 5000000, 100029, 1, 53, [] {
        Graph base = gen::RMat(18, 300000, 0.65, 0.17, 0.12,
                               /*seed=*/401);
        base = AddHubStar(base, 80000, /*seed=*/403);
        return gen::PlantClique(base, 53, /*seed=*/402);
      }});

  specs.push_back(DatasetSpec{
      "Skitter",
      "Internet topology: heavy-tailed with mid-size cores "
      "(R-MAT a=0.57 + cliques up to 68).",
      false, 1700000, 11000000, 35455, 5, 68, [] {
        Graph g = gen::RMat(17, 620000, 0.57, 0.19, 0.19, /*seed=*/501);
        g = PlantRandomCliques(g, 40, 6, 20, /*seed=*/502);
        g = AddHubStar(g, 35000, /*seed=*/504);
        return gen::PlantClique(g, 68, /*seed=*/503);
      }});

  specs.push_back(DatasetSpec{
      "Blog",
      "Blog co-occurrence: dense power-law with strong clustering "
      "(BA m=6 + cliques up to 49).",
      false, 1000000, 12800000, 6154, 2, 49, [] {
        Graph g = gen::BarabasiAlbert(110000, 6, /*seed=*/601);
        g = PlantRandomCliques(g, 60, 5, 16, /*seed=*/602);
        g = AddHubStar(g, 6000, /*seed=*/604);
        return gen::PlantClique(g, 49, /*seed=*/603);
      }});

  specs.push_back(DatasetSpec{
      "LJ",
      "LiveJournal friendships: the paper's large social network with a "
      "very deep truss hierarchy (BA m=10 + a 362-clique).",
      true, 4800000, 69000000, 20333, 5, 362, [] {
        Graph g = gen::BarabasiAlbert(100000, 10, /*seed=*/701);
        g = PlantRandomCliques(g, 80, 8, 40, /*seed=*/702);
        g = AddHubStar(g, 15000, /*seed=*/704);
        return gen::PlantClique(g, 362, /*seed=*/703);
      }});

  specs.push_back(DatasetSpec{
      "BTC",
      "Billion Triple Challenge RDF: enormous, extremely sparse and "
      "star-like, kmax only 7 (preferential-attachment tree + random "
      "edges + a 7-clique; hubby yet nearly triangle-free).",
      true, 165000000, 773000000, 1637619, 1, 7, [] {
        const Graph tree = gen::BarabasiAlbert(524288, 1, /*seed=*/801);
        const Graph er = gen::ErdosRenyiGnm(524288, 2400000, /*seed=*/802);
        std::vector<Edge> extra(er.edges().begin(), er.edges().end());
        Graph base = gen::AddEdges(tree, extra);
        base = AddHubStar(base, 120000, /*seed=*/804);
        return gen::PlantClique(base, 7, /*seed=*/803);
      }});

  specs.push_back(DatasetSpec{
      "Web",
      "UK web crawl: power-law hyperlink graph with very dense page "
      "clusters (R-MAT a=0.6 + cliques up to 166).",
      true, 106000000, 1092000000, 36484, 2, 166, [] {
        Graph g = gen::RMat(18, 1900000, 0.6, 0.18, 0.12, /*seed=*/901);
        g = PlantRandomCliques(g, 50, 10, 60, /*seed=*/902);
        g = AddHubStar(g, 20000, /*seed=*/904);
        return gen::PlantClique(g, 166, /*seed=*/903);
      }});

  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& PaperDatasets() {
  static const std::vector<DatasetSpec>* registry =
      new std::vector<DatasetSpec>(BuildRegistry());
  return *registry;
}

const DatasetSpec& DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name) return spec;
  }
  std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
  std::abort();
}

}  // namespace truss::datasets
