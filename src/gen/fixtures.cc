#include "gen/fixtures.h"

#include <unordered_map>

#include "common/types.h"

namespace truss::gen {

namespace {

// Vertex ids for the Figure 2 example: a=0, b=1, ..., l=11.
enum : VertexId { A, B, C, D, E, F, G_, H, I, J, K, L };

}  // namespace

std::string Figure2Fixture::VertexName(VertexId v) {
  TRUSS_CHECK_LT(v, 12u);
  return std::string(1, static_cast<char>('a' + v));
}

Figure2Fixture Figure2Graph() {
  // Example 2 enumerates the classes explicitly:
  //   Φ2 = {(i,k)}
  //   Φ3 = {(d,g),(d,k),(d,l),(e,f),(e,g),(f,g),(g,h),(g,k),(g,l)}
  //   Φ4 = {(f,h),(f,i),(f,j),(h,i),(h,j),(i,j)}
  //   Φ5 = the clique {a,b,c,d,e}
  struct Labeled {
    Edge e;
    uint32_t truss;
  };
  const std::vector<Labeled> labeled = {
      {MakeEdge(I, K), 2},
      {MakeEdge(D, G_), 3}, {MakeEdge(D, K), 3},  {MakeEdge(D, L), 3},
      {MakeEdge(E, F), 3},  {MakeEdge(E, G_), 3}, {MakeEdge(F, G_), 3},
      {MakeEdge(G_, H), 3}, {MakeEdge(G_, K), 3}, {MakeEdge(G_, L), 3},
      {MakeEdge(F, H), 4},  {MakeEdge(F, I), 4},  {MakeEdge(F, J), 4},
      {MakeEdge(H, I), 4},  {MakeEdge(H, J), 4},  {MakeEdge(I, J), 4},
      {MakeEdge(A, B), 5},  {MakeEdge(A, C), 5},  {MakeEdge(A, D), 5},
      {MakeEdge(A, E), 5},  {MakeEdge(B, C), 5},  {MakeEdge(B, D), 5},
      {MakeEdge(B, E), 5},  {MakeEdge(C, D), 5},  {MakeEdge(C, E), 5},
      {MakeEdge(D, E), 5},
  };

  std::vector<Edge> edges;
  edges.reserve(labeled.size());
  std::unordered_map<Edge, uint32_t, EdgeHash> truss_of;
  for (const Labeled& le : labeled) {
    edges.push_back(le.e);
    truss_of.emplace(le.e, le.truss);
  }

  Figure2Fixture fx;
  fx.graph = Graph::FromEdges(std::move(edges), 12);
  fx.expected_truss.resize(fx.graph.num_edges());
  for (EdgeId id = 0; id < fx.graph.num_edges(); ++id) {
    fx.expected_truss[id] = truss_of.at(fx.graph.edge(id));
  }
  fx.expected_kmax = 5;
  return fx;
}

std::vector<std::vector<VertexId>> ManagerFourTrussCliques() {
  // The paper's cliques use 1-based manager numbers; subtract 1.
  return {
      {3, 7, 9, 17},    // {4, 8, 10, 18}
      {3, 7, 17, 20},   // {4, 8, 18, 21}
      {4, 9, 17, 18},   // {5, 10, 18, 19}
      {6, 13, 17, 20},  // {7, 14, 18, 21}
      {9, 14, 17, 18},  // {10, 15, 18, 19}
  };
}

Graph ManagerAdviceGraph() {
  // 1-based edge list; the dense core is exactly the union of the five
  // 4-cliques above, and the periphery attaches the remaining managers with
  // degree ≤ 4 and at most one triangle per edge so no additional 4-truss
  // edges arise. Manager 1 has degree 2 and drops from the 3-core.
  static const std::pair<int, int> kEdges1Based[] = {
      // Clique-union core (22 edges).
      {4, 8},   {4, 10},  {4, 18},  {8, 10},  {8, 18},  {10, 18},
      {4, 21},  {8, 21},  {18, 21},
      {5, 10},  {5, 18},  {5, 19},  {10, 19}, {18, 19},
      {7, 14},  {7, 18},  {7, 21},  {14, 18}, {14, 21},
      {10, 15}, {15, 18}, {15, 19},
      // Periphery (24 edges). Manager 1's two advisors are deliberately
      // non-adjacent (local CC 0), so dropping 1 from the 3-core raises the
      // average clustering coefficient as in Example 1.
      {1, 4},   {1, 19},
      {2, 3},   {2, 21},  {2, 20},
      {3, 6},   {3, 21},
      {5, 6},   {6, 19},
      {9, 10},  {9, 11},  {9, 15},
      {10, 11}, {11, 12},
      {12, 13}, {12, 14},
      {13, 14}, {13, 16},
      {7, 16},  {16, 17},
      {7, 17},  {17, 20},
      {15, 20}, {19, 20},
  };

  std::vector<Edge> edges;
  edges.reserve(std::size(kEdges1Based));
  for (const auto& [a, b] : kEdges1Based) {
    edges.push_back(MakeEdge(static_cast<VertexId>(a - 1),
                             static_cast<VertexId>(b - 1)));
  }
  return Graph::FromEdges(std::move(edges), 21);
}

}  // namespace truss::gen
