// Fixture graphs reproducing the paper's illustrative figures.
//
// Figure 2 is the 12-vertex running example whose exact k-classes the paper
// enumerates (Example 2); Figure 1 is the 21-manager "seek-advice-from"
// network (Example 1). The paper does not print Figure 1's edge list, so
// ManagerAdviceGraph() is a reconstruction that satisfies every structural
// claim Example 1 makes: the 4-truss is exactly the union of the five named
// 4-cliques, no 5-truss or 4-core exists, the 3-core covers nearly all
// vertices, and clustering coefficient rises from G to 3-core to 4-truss.

#ifndef TRUSS_GEN_FIXTURES_H_
#define TRUSS_GEN_FIXTURES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace truss::gen {

/// The Figure 2 running example together with its ground-truth k-classes.
struct Figure2Fixture {
  Graph graph;
  /// expected_truss[EdgeId] = the truss number ϕ(e) from Example 2.
  std::vector<uint32_t> expected_truss;
  /// kmax of the example (5).
  uint32_t expected_kmax;

  /// Vertex names 'a'..'l' for display: name of vertex id v.
  static std::string VertexName(VertexId v);
};

/// Builds the Figure 2 graph (vertices a..l mapped to ids 0..11) and the
/// ground-truth truss numbers of Example 2.
Figure2Fixture Figure2Graph();

/// Reconstruction of the Figure 1 manager advice network. Vertex id v
/// corresponds to manager number v+1 (managers are numbered 1..21 in the
/// paper). See file comment for the guarantees.
Graph ManagerAdviceGraph();

/// The five 4-cliques the paper lists as contained in the 4-truss of the
/// manager network, as 0-based vertex ids.
std::vector<std::vector<VertexId>> ManagerFourTrussCliques();

}  // namespace truss::gen

#endif  // TRUSS_GEN_FIXTURES_H_
