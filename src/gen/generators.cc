#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace truss::gen {

namespace {

// Number of distinct unordered pairs over n vertices.
uint64_t MaxEdges(VertexId n) {
  return static_cast<uint64_t>(n) * (n - 1) / 2;
}

}  // namespace

Graph ErdosRenyiGnm(VertexId n, uint64_t m, uint64_t seed) {
  TRUSS_CHECK_GE(n, 2u);
  TRUSS_CHECK_LE(m, MaxEdges(n));
  Rng rng(seed);
  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const VertexId a = static_cast<VertexId>(rng.Uniform(n));
    const VertexId b = static_cast<VertexId>(rng.Uniform(n));
    if (a == b) continue;
    const Edge e = MakeEdge(a, b);
    if (seen.insert(e).second) edges.push_back(e);
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph ErdosRenyiGnp(VertexId n, double p, uint64_t seed) {
  TRUSS_CHECK_GE(n, 2u);
  TRUSS_CHECK(p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  std::vector<Edge> edges;
  if (p > 0.0) {
    // Geometric skipping over the linearized pair index (Batagelj & Brandes).
    const double log1mp = std::log(1.0 - p);
    uint64_t idx = 0;
    const uint64_t total = MaxEdges(n);
    while (true) {
      // Draw skip ~ Geometric(p).
      const double r = rng.NextDouble();
      const uint64_t skip =
          p >= 1.0 ? 0
                   : static_cast<uint64_t>(std::log(1.0 - r) / log1mp);
      idx += skip;
      if (idx >= total) break;
      // Decode pair index -> (u, v). Row u holds pairs (u, u+1..n-1).
      // Find u via the quadratic formula on cumulative row sizes.
      const double nn = static_cast<double>(n);
      const double x = static_cast<double>(idx);
      VertexId u = static_cast<VertexId>(
          nn - 2 -
          std::floor(std::sqrt(-8.0 * x + 4.0 * nn * (nn - 1) - 7) / 2.0 -
                     0.5));
      // Guard against floating point off-by-one.
      auto row_start = [&](VertexId r) {
        return static_cast<uint64_t>(r) * n - static_cast<uint64_t>(r) * (r + 1) / 2;
      };
      while (u > 0 && row_start(u) > idx) --u;
      while (row_start(u + 1) <= idx) ++u;
      const VertexId v = static_cast<VertexId>(u + 1 + (idx - row_start(u)));
      edges.push_back(Edge{u, v});
      ++idx;
    }
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph BarabasiAlbert(VertexId n, uint32_t edges_per_vertex, uint64_t seed) {
  TRUSS_CHECK_GE(edges_per_vertex, 1u);
  TRUSS_CHECK_GT(n, edges_per_vertex);
  Rng rng(seed);

  // Repeated-endpoints implementation: sampling a uniform element of the
  // endpoint multiset is equivalent to degree-proportional sampling.
  std::vector<VertexId> endpoints;
  std::vector<Edge> edges;
  const VertexId m0 = edges_per_vertex + 1;  // initial clique
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      edges.push_back(Edge{u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::unordered_set<Edge, EdgeHash> seen(edges.begin(), edges.end());
  for (VertexId u = m0; u < n; ++u) {
    uint32_t attached = 0;
    while (attached < edges_per_vertex) {
      const VertexId t = endpoints[rng.Uniform(endpoints.size())];
      if (t == u) continue;
      const Edge e = MakeEdge(u, t);
      if (!seen.insert(e).second) continue;
      edges.push_back(e);
      endpoints.push_back(u);
      endpoints.push_back(t);
      ++attached;
    }
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph RMat(uint32_t scale, uint64_t target_edges, double a, double b,
           double c, uint64_t seed) {
  TRUSS_CHECK_LE(scale, 28u);
  const double d = 1.0 - a - b - c;
  TRUSS_CHECK(d >= 0.0);
  const VertexId n = static_cast<VertexId>(1u) << scale;
  TRUSS_CHECK_LE(target_edges, MaxEdges(n));
  Rng rng(seed);

  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(target_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(target_edges);
  // Rejection loop; duplicates and self-loops are re-drawn, which slightly
  // flattens the core of the distribution but keeps exactly target_edges.
  while (edges.size() < target_edges) {
    VertexId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    const Edge e = MakeEdge(u, v);
    if (seen.insert(e).second) edges.push_back(e);
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph WattsStrogatz(VertexId n, uint32_t k, double beta, uint64_t seed) {
  TRUSS_CHECK_GE(n, 3u);
  TRUSS_CHECK_GE(k, 1u);
  TRUSS_CHECK_LT(2 * k, n);
  Rng rng(seed);

  std::unordered_set<Edge, EdgeHash> seen;
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      seen.insert(MakeEdge(u, (u + j) % n));
    }
  }
  // Rewire each lattice edge's far endpoint with probability beta.
  std::vector<Edge> lattice(seen.begin(), seen.end());
  std::sort(lattice.begin(), lattice.end());
  for (const Edge& e : lattice) {
    if (!rng.Bernoulli(beta)) continue;
    seen.erase(e);
    VertexId w;
    Edge replacement;
    do {
      w = static_cast<VertexId>(rng.Uniform(n));
    } while (w == e.u || (replacement = MakeEdge(e.u, w), seen.count(replacement) > 0));
    seen.insert(replacement);
  }
  std::vector<Edge> edges(seen.begin(), seen.end());
  return Graph::FromEdges(std::move(edges), n);
}

Graph PlantedCommunities(uint32_t communities, uint32_t community_size,
                         double p_in, uint64_t inter_edges, uint64_t seed) {
  TRUSS_CHECK_GE(communities, 1u);
  TRUSS_CHECK_GE(community_size, 2u);
  Rng rng(seed);
  const VertexId n = communities * community_size;

  std::unordered_set<Edge, EdgeHash> seen;
  std::vector<Edge> edges;
  for (uint32_t cidx = 0; cidx < communities; ++cidx) {
    const VertexId base = cidx * community_size;
    for (VertexId i = 0; i < community_size; ++i) {
      for (VertexId j = i + 1; j < community_size; ++j) {
        if (rng.Bernoulli(p_in)) {
          const Edge e{base + i, base + j};
          if (seen.insert(e).second) edges.push_back(e);
        }
      }
    }
  }
  uint64_t added = 0;
  while (added < inter_edges) {
    const VertexId a = static_cast<VertexId>(rng.Uniform(n));
    const VertexId b = static_cast<VertexId>(rng.Uniform(n));
    if (a == b || a / community_size == b / community_size) continue;
    const Edge e = MakeEdge(a, b);
    if (seen.insert(e).second) {
      edges.push_back(e);
      ++added;
    }
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph PlantClique(const Graph& base, uint32_t clique_size, uint64_t seed) {
  TRUSS_CHECK_LE(clique_size, base.num_vertices());
  Rng rng(seed);
  // Floyd's algorithm for a uniform size-k subset of 0..n-1.
  std::unordered_set<VertexId> chosen;
  const VertexId n = base.num_vertices();
  for (VertexId j = n - clique_size; j < n; ++j) {
    VertexId t = static_cast<VertexId>(rng.Uniform(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<VertexId> members(chosen.begin(), chosen.end());
  std::sort(members.begin(), members.end());

  std::vector<Edge> edges(base.edges().begin(), base.edges().end());
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      edges.push_back(Edge{members[i], members[j]});
    }
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph AddEdges(const Graph& g, const std::vector<Edge>& extra) {
  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  VertexId n = g.num_vertices();
  for (const Edge& e : extra) {
    edges.push_back(MakeEdge(e.u, e.v));
    n = std::max(n, static_cast<VertexId>(std::max(e.u, e.v) + 1));
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph Complete(VertexId n) {
  std::vector<Edge> edges;
  edges.reserve(MaxEdges(n));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph Cycle(VertexId n) {
  TRUSS_CHECK_GE(n, 3u);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (VertexId u = 0; u < n; ++u) edges.push_back(MakeEdge(u, (u + 1) % n));
  return Graph::FromEdges(std::move(edges), n);
}

Graph Path(VertexId n) {
  TRUSS_CHECK_GE(n, 2u);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (VertexId u = 0; u + 1 < n; ++u) edges.push_back(Edge{u, u + 1});
  return Graph::FromEdges(std::move(edges), n);
}

Graph Star(VertexId n) {
  TRUSS_CHECK_GE(n, 2u);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return Graph::FromEdges(std::move(edges), n);
}

Graph Grid(VertexId rows, VertexId cols) {
  TRUSS_CHECK_GE(rows, 1u);
  TRUSS_CHECK_GE(cols, 1u);
  std::vector<Edge> edges;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back(Edge{id(r, c), id(r + 1, c)});
    }
  }
  return Graph::FromEdges(std::move(edges), rows * cols);
}

}  // namespace truss::gen
