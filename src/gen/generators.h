// Synthetic graph generators.
//
// These substitute for the paper's real-world datasets (see DESIGN.md §2):
// Erdős–Rényi for flat-degree networks, Barabási–Albert and R-MAT for
// power-law networks, Watts–Strogatz for high-clustering networks, and
// planted cliques/communities to control kmax (a planted c-clique forces
// kmax ≥ c because every edge of K_c has support c-2 inside it). Small
// deterministic shapes (complete/cycle/star/grid) support unit tests.
//
// All generators are deterministic functions of their explicit seed.

#ifndef TRUSS_GEN_GENERATORS_H_
#define TRUSS_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace truss::gen {

/// G(n, m): exactly `m` distinct edges sampled uniformly among the C(n,2)
/// possible pairs. `m` must not exceed C(n,2).
Graph ErdosRenyiGnm(VertexId n, uint64_t m, uint64_t seed);

/// G(n, p): each pair independently an edge with probability p. Uses
/// geometric skipping, O(m) expected time.
Graph ErdosRenyiGnp(VertexId n, double p, uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a small seed clique,
/// then each new vertex attaches to `edges_per_vertex` existing vertices
/// chosen proportionally to degree. Produces a power-law degree tail.
Graph BarabasiAlbert(VertexId n, uint32_t edges_per_vertex, uint64_t seed);

/// R-MAT / Kronecker-style recursive generator (used widely to mimic web and
/// social graphs). Generates `target_edges` distinct undirected edges over
/// 2^scale vertices with quadrant probabilities (a, b, c, implicit d).
Graph RMat(uint32_t scale, uint64_t target_edges, double a, double b,
           double c, uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side rewired with probability beta. High clustering coefficient.
Graph WattsStrogatz(VertexId n, uint32_t k, double beta, uint64_t seed);

/// Planted-community graph: `communities` groups of `community_size` vertices
/// wired internally with probability p_in, plus `inter_edges` random
/// cross-community edges. Yields strong k-trusses inside communities.
Graph PlantedCommunities(uint32_t communities, uint32_t community_size,
                         double p_in, uint64_t inter_edges, uint64_t seed);

/// Returns `base` with an additional clique planted on `clique_size`
/// distinct random vertices. Guarantees kmax(result) ≥ clique_size.
Graph PlantClique(const Graph& base, uint32_t clique_size, uint64_t seed);

/// Union of `g` and extra explicit edges.
Graph AddEdges(const Graph& g, const std::vector<Edge>& extra);

// --- small deterministic shapes for tests -------------------------------

/// Complete graph K_n. kmax(K_n) = n (every edge in n-2 triangles).
Graph Complete(VertexId n);

/// Cycle C_n (n ≥ 3). Triangle-free for n > 3, so kmax = 2.
Graph Cycle(VertexId n);

/// Path P_n (n-1 edges). kmax = 2.
Graph Path(VertexId n);

/// Star S_n: one hub, n-1 leaves. Triangle-free, kmax = 2.
Graph Star(VertexId n);

/// rows×cols grid graph. Triangle-free, kmax = 2.
Graph Grid(VertexId rows, VertexId cols);

}  // namespace truss::gen

#endif  // TRUSS_GEN_GENERATORS_H_
