#include "engine/options.h"

#include <string>

#include "common/parallel.h"

namespace truss::engine {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kImproved:
      return "improved";
    case Algorithm::kCohen:
      return "cohen";
    case Algorithm::kBottomUp:
      return "bottomup";
    case Algorithm::kTopDown:
      return "topdown";
    case Algorithm::kParallel:
      return "parallel";
  }
  return "unknown";
}

Status DecomposeOptions::Validate() const {
  if (memory_budget_bytes == 0) {
    return Status::InvalidArgument(
        "memory_budget_bytes must be positive (it is M of the I/O model)");
  }
  if (io_block_size_bytes == 0) {
    return Status::InvalidArgument("io_block_size_bytes must be positive");
  }
  if (top_t == 0 || top_t < -1) {
    return Status::InvalidArgument(
        "top_t must be -1 (all classes) or >= 1, got " +
        std::to_string(top_t));
  }
  if (top_t >= 1 && algorithm != Algorithm::kTopDown) {
    return Status::InvalidArgument(
        std::string("top_t requires the topdown algorithm; '") +
        AlgorithmName(algorithm) + "' always computes all classes");
  }
  if (layout != layout::Policy::kNone && top_t >= 1) {
    return Status::InvalidArgument(
        "layout reordering is incompatible with top_t class queries (class "
        "records carry vertex ids, which a reorder would leave in the "
        "renumbered space); use layout=none for top-t");
  }
  if (threads == 0) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  // Catches typos and wrapped negatives (a CLI "--threads -1" casts to
  // ~4.3e9) before they turn into hundreds of workers each holding a
  // per-edge buffer.
  if (threads > kMaxParallelThreads) {
    return Status::InvalidArgument(
        "threads must be <= " + std::to_string(kMaxParallelThreads) +
        ", got " + std::to_string(threads));
  }
  return Status::OK();
}

ExternalConfig DecomposeOptions::ToExternalConfig() const {
  ExternalConfig config;
  config.memory_budget_bytes = memory_budget_bytes;
  config.strategy = strategy;
  config.seed = seed;
  config.top_t = top_t;
  config.threads = threads;
  config.verbose = verbose;
  config.hooks = hooks;
  return config;
}

}  // namespace truss::engine
