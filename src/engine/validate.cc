#include "engine/validate.h"

#include <algorithm>
#include <cstdint>

#include "common/macros.h"
#include "triangle/triangle.h"

namespace truss::engine {

namespace {

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

std::string EdgeLabel(const Graph& g, EdgeId e) {
  const Edge edge = g.edge(e);
  return "edge " + std::to_string(e) + " = (" + std::to_string(edge.u) + "," +
         std::to_string(edge.v) + ")";
}

}  // namespace

bool ValidateDecomposeOutput(const Graph& g,
                             const TrussDecompositionResult& result,
                             std::string* error) {
  const EdgeId m = g.num_edges();
  if (result.truss_number.size() != m) {
    return Fail(error, "truss_number has " +
                           std::to_string(result.truss_number.size()) +
                           " entries for " + std::to_string(m) + " edges");
  }
  if (m == 0) {
    if (result.kmax != 0) {
      return Fail(error, "kmax must be 0 for an edgeless graph");
    }
    return true;
  }

  uint32_t max_seen = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (result.truss_number[e] < 2) {
      return Fail(error,
                  EdgeLabel(g, e) + " has truss number " +
                      std::to_string(result.truss_number[e]) + " < 2");
    }
    max_seen = std::max(max_seen, result.truss_number[e]);
  }
  if (result.kmax != max_seen) {
    return Fail(error, "kmax " + std::to_string(result.kmax) +
                           " != max truss number " + std::to_string(max_seen));
  }

  // Deterministic stride sample: every (m / kValidateSpotCheckEdges + 1)-th
  // edge, so small graphs are covered exhaustively and coverage of a given
  // graph never varies run to run.
  const EdgeId stride =
      static_cast<EdgeId>(m / kValidateSpotCheckEdges + 1);
  for (EdgeId e = 0; e < m; e += stride) {
    const Edge edge = g.edge(e);
    const uint32_t k = result.truss_number[e];
    uint64_t triangles = 0;
    uint64_t at_level = 0;  // triangles whose other edges sit in T_k
    ForEachCommonNeighbor(g, edge.u, edge.v,
                          [&](VertexId, EdgeId uw, EdgeId vw) {
                            ++triangles;
                            if (result.truss_number[uw] >= k &&
                                result.truss_number[vw] >= k) {
                              ++at_level;
                            }
                          });
    if (triangles > 0 && k < 3) {
      return Fail(error, EdgeLabel(g, e) + " closes " +
                             std::to_string(triangles) +
                             " triangle(s) but has truss number " +
                             std::to_string(k) + " < 3");
    }
    if (at_level + 2 < k) {
      return Fail(error, EdgeLabel(g, e) + " has truss number " +
                             std::to_string(k) + " but only " +
                             std::to_string(at_level) +
                             " triangles inside its own truss (need >= " +
                             std::to_string(k - 2) + ")");
    }
  }
  return true;
}

void DCheckDecomposeOutput(const Graph& g,
                           const TrussDecompositionResult& result) {
#if !defined(NDEBUG)
  std::string error;
  if (!ValidateDecomposeOutput(g, result, &error)) {
    std::fprintf(stderr, "DCheckDecomposeOutput failed: %s\n", error.c_str());
    std::abort();
  }
#else
  (void)g;
  (void)result;
#endif
}

}  // namespace truss::engine
