// Decomposition-output invariant validation (debug validators, leg 4 of
// the static-analysis layer; see docs/STATIC_ANALYSIS.md).
//
// A truss decomposition admits cheap necessary conditions that catch whole
// classes of algorithm bugs (mis-merged shards, off-by-one peel levels,
// stale supports) without re-running a reference decomposition:
//   - shape: one truss number per edge; kmax equals the maximum;
//   - range: every truss number is >= 2 (Definition 3: phi(e) >= 2 for any
//     edge), and any edge that closes at least one triangle has
//     phi(e) >= 3 (its triangle alone is a 3-truss);
//   - support consistency (spot check): for an edge e with phi(e) = k, the
//     triangles through e whose other two edges both have truss number
//     >= k must number at least k - 2 — e's support within T_k, which
//     Definition 2 lower-bounds by k - 2.
// The spot check walks a deterministic stride-sample of edges so the
// validator stays cheap on big graphs while small test graphs (the common
// case under Debug/ASan) are covered completely.

#ifndef TRUSS_ENGINE_VALIDATE_H_
#define TRUSS_ENGINE_VALIDATE_H_

#include <string>

#include "graph/graph.h"
#include "truss/result.h"

namespace truss::engine {

/// Maximum edges the support-consistency spot check inspects per call;
/// edges are sampled at a fixed stride so coverage is deterministic and
/// graphs with at most this many edges are checked exhaustively.
inline constexpr uint64_t kValidateSpotCheckEdges = 128;

/// True iff `result` is a plausible truss decomposition of `g` under the
/// invariants above. On failure returns false and, when `error` is
/// non-null, stores a one-line description of the first violation.
bool ValidateDecomposeOutput(const Graph& g,
                             const TrussDecompositionResult& result,
                             std::string* error = nullptr);

/// Debug boundary check: aborts with the violation message when `result`
/// violates the invariants; compiles to nothing under NDEBUG. The engine
/// calls this after every full decomposition, so every Debug/ASan test run
/// validates every algorithm's output.
void DCheckDecomposeOutput(const Graph& g,
                           const TrussDecompositionResult& result);

}  // namespace truss::engine

#endif  // TRUSS_ENGINE_VALIDATE_H_
