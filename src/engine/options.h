// Options for the unified truss::engine::Engine facade.
//
// The paper presents four decompositions — TD-inmem (Cohen, Algorithm 1),
// TD-inmem+ (improved, Algorithm 2), TD-bottomup (Algorithm 4) and
// TD-topdown (Algorithm 7) — as one family over a shared problem
// definition. DecomposeOptions is the single knob surface for that family:
// an algorithm selector plus the union of each algorithm's tuning
// parameters, with Validate() rejecting incoherent combinations instead of
// silently ignoring them.

#ifndef TRUSS_ENGINE_OPTIONS_H_
#define TRUSS_ENGINE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/hooks.h"
#include "common/status.h"
#include "layout/layout.h"
#include "partition/partition.h"
#include "truss/external.h"

namespace truss::engine {

/// The paper's four decomposition algorithms plus the PKT-style parallel
/// peel (see src/truss/parallel_peel.h).
enum class Algorithm {
  kImproved,  // TD-inmem+: Algorithm 2, the in-memory default
  kCohen,     // TD-inmem: Algorithm 1, the in-memory baseline
  kBottomUp,  // TD-bottomup: Algorithm 4, I/O-efficient full decomposition
  kTopDown,   // TD-topdown: Algorithm 7, I/O-efficient, supports top-t
  kParallel,  // TD-parallel: PKT-style level-synchronous parallel peel
};

/// Stable registry name of an algorithm ("improved", "parallel", "cohen",
/// "bottomup", "topdown").
const char* AlgorithmName(Algorithm algorithm);

/// Options for one decomposition run. Defaults run TD-inmem+ with a 256 MB
/// external budget; fields that do not apply to the selected algorithm are
/// ignored unless Validate() flags the combination as incoherent.
struct DecomposeOptions {
  /// Which decomposition to run.
  Algorithm algorithm = Algorithm::kImproved;

  /// Simulated main-memory size M of the I/O model (external algorithms).
  /// Must be positive.
  uint64_t memory_budget_bytes = 256ull << 20;

  /// Partitioning strategy for neighborhood subgraphs (external algorithms).
  partition::Strategy strategy = partition::Strategy::kSequential;

  /// Seed for randomized partitioning.
  uint64_t seed = 42;

  /// Number of top classes to compute: -1 = all classes, t >= 1 = the t
  /// highest non-empty classes. Only the top-down algorithm supports t >= 1;
  /// Validate() rejects it elsewhere.
  int32_t top_t = -1;

  /// Worker threads. Parallelizes support initialization (triangle
  /// counting) for every algorithm, and — for kParallel — the peel itself
  /// (level-synchronous frontiers). Results are deterministic —
  /// byte-identical for every value. Each support-init worker keeps a
  /// private per-edge support buffer (4 bytes x num_edges, transient), so
  /// memory grows linearly with this knob. Default 1 (fully sequential).
  uint32_t threads = 1;

  /// Cache-aware vertex reordering applied before dispatch (see
  /// docs/LAYOUT.md). kDegree renumbers vertices degree-descending, runs
  /// the decomposition in the new id space — where the triangle kernels'
  /// degree-ordered orientation becomes a rank-free adjacency prefix —
  /// and maps the truss numbers back, so callers see their own edge ids
  /// either way. Truss numbers are byte-identical to a kNone run; the
  /// reorder cost lands in DecomposeStats::reorder_seconds. Incompatible
  /// with top_t queries (Validate() rejects the combination). Default
  /// kNone: no reordering.
  layout::Policy layout = layout::Policy::kNone;

  /// Scratch directory for the external algorithms' Env. Empty = the engine
  /// creates (and removes) a unique directory under the system temp dir; a
  /// caller-supplied directory is reused and left in place.
  std::string scratch_dir;

  /// Block size B of the I/O model (external algorithms).
  size_t io_block_size_bytes = 64 * 1024;

  /// Emit per-stage progress lines on stderr (external algorithms).
  bool verbose = false;

  /// Progress-callback + cooperative-cancellation hooks. The external
  /// algorithms poll them once per lower-bounding iteration and once per
  /// k-level; the in-memory algorithms are checked at run boundaries.
  ExecutionHooks hooks;

  /// Rejects incoherent combinations: a zero memory budget or block size,
  /// top_t values other than -1 or >= 1, top_t with a non-topdown
  /// algorithm, top_t combined with layout reordering, and threads
  /// outside [1, kMaxParallelThreads].
  TRUSS_NODISCARD Status Validate() const;

  /// Projects these options onto the external algorithms' config.
  ExternalConfig ToExternalConfig() const;
};

}  // namespace truss::engine

#endif  // TRUSS_ENGINE_OPTIONS_H_
