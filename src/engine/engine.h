// truss::engine::Engine — the unified entry point for every decomposition
// algorithm.
//
// The facade gives every consumer (CLI, benches, examples, library users)
// one options-driven call instead of incompatible per-algorithm APIs:
//
//   truss::engine::DecomposeOptions options;
//   options.algorithm = truss::engine::Algorithm::kBottomUp;
//   auto out = truss::engine::Engine::Decompose(graph, options);
//   if (out.ok()) use(out.value().result, out.value().stats);
//
// Algorithms are also resolvable by registry name ("improved", "parallel",
// "cohen", "bottomup", "topdown") via Engine::FindAlgorithm, so dispatch
// code never needs per-algorithm includes. The algorithm modules under
// src/truss remain the internal layer the engine wraps.

#ifndef TRUSS_ENGINE_ENGINE_H_
#define TRUSS_ENGINE_ENGINE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/options.h"
#include "graph/graph.h"
#include "graph/text_io.h"
#include "io/edge_records.h"
#include "io/env.h"
#include "truss/external.h"
#include "truss/result.h"

namespace truss::engine {

/// One registry entry: everything a dispatcher needs to offer an algorithm
/// without including its module header.
struct AlgorithmInfo {
  Algorithm id;
  /// Stable string key ("improved", "parallel", "cohen", "bottomup",
  /// "topdown").
  const char* name;
  /// One-line description for --help output and docs.
  const char* summary;
  /// True for the I/O-efficient algorithms that run through an Env and
  /// honor the memory budget / partition strategy.
  bool external;
  /// True when top_t >= 1 queries are supported (top-down only).
  bool supports_top_t;
};

/// Merged execution statistics of one run, covering both algorithm
/// families. `external` is all-zeros for the in-memory algorithms;
/// `peak_memory_bytes` is 0 for the external ones (their footprint is the
/// memory budget by construction).
struct DecomposeStats {
  Algorithm algorithm = Algorithm::kImproved;
  double wall_seconds = 0.0;
  /// Time spent parsing the input text file (DecomposeSnapFile only; 0
  /// elsewhere). Not included in wall_seconds, which times decomposition.
  double ingest_seconds = 0.0;
  /// Phase split of the in-memory algorithms: support initialization
  /// (triangle counting) vs the peel proper. Both sum to ~wall_seconds
  /// for in-memory runs and stay 0 for the external algorithms (whose
  /// stage accounting lives in `external`).
  double support_seconds = 0.0;
  double peel_seconds = 0.0;
  /// Time spent computing and applying the vertex reordering when
  /// DecomposeOptions::layout != kNone (0 otherwise). Included in
  /// wall_seconds. bench_table3_inmem emits it as a METRIC line, so
  /// BENCH_table3_inmem.json tracks the reorder overhead against the
  /// support/peel time it buys back.
  double reorder_seconds = 0.0;
  /// Peak structure memory from MemoryTracker (in-memory algorithms).
  uint64_t peak_memory_bytes = 0;
  /// I/O counters and stage statistics (external algorithms).
  ExternalStats external;

  uint64_t total_io_blocks() const { return external.io.total_blocks(); }
};

/// Result of Engine::Decompose.
struct DecomposeOutput {
  /// Full decomposition: truss numbers for every edge + kmax. Left empty
  /// for top-t queries (see top_classes).
  TrussDecompositionResult result;
  /// Top-t queries only (topdown with top_t >= 1): the class records of the
  /// t highest non-empty classes, plus Φ2. kmax is stats.external.kmax.
  std::vector<io::ClassRecord> top_classes;
  DecomposeStats stats;
};

/// Static facade over the registry's decomposition algorithms.
class Engine {
 public:
  /// Decomposes an in-memory graph with the selected algorithm. External
  /// algorithms ship `g` through a scratch Env (see
  /// DecomposeOptions::scratch_dir) and project the classes back onto `g`'s
  /// edge ids. With DecomposeOptions::layout != kNone the graph is
  /// renumbered first (any registry algorithm) and the truss numbers are
  /// mapped back before returning, so results are always in `g`'s edge-id
  /// space. Fails with InvalidArgument/FailedPrecondition on incoherent
  /// options (Validate) and Cancelled when the cancel hook fires.
  TRUSS_NODISCARD static Result<DecomposeOutput> Decompose(const Graph& g,
                                           const DecomposeOptions& options);

  /// File-to-file decomposition over `env`: reads `graph_file` (a
  /// (u,v)-sorted GEdgeRecord file; consumed), writes one ClassRecord per
  /// classified edge to `classes_out`. The external algorithms stream; the
  /// in-memory ones materialize the file's graph first (it must fit).
  TRUSS_NODISCARD static Result<DecomposeStats> DecomposeFile(io::Env& env,
                                              const std::string& graph_file,
                                              VertexId num_vertices,
                                              const DecomposeOptions& options,
                                              const std::string& classes_out);

  /// Loads a SNAP-format text edge list with the chunked parallel reader
  /// (options.threads accelerates ingestion too, not just decomposition)
  /// and decomposes it. Ingestion time lands in stats.ingest_seconds. When
  /// `loaded` is non-null the parsed graph and original-id mapping are
  /// moved there, so callers can run follow-up queries (k-truss extraction,
  /// communities) without re-reading the file.
  TRUSS_NODISCARD static Result<DecomposeOutput> DecomposeSnapFile(
      const std::string& path, const DecomposeOptions& options,
      LoadedGraph* loaded = nullptr);

  /// Loads a graph file, sniffing the format from its magic bytes: a TRSB
  /// binary CSR snapshot (Graph::SaveBinary) loads directly and skips
  /// parsing/normalization; anything else parses as a SNAP text edge list
  /// with `threads` reader workers. Binary snapshots carry compact ids
  /// already, so their original_id mapping is the identity.
  TRUSS_NODISCARD static Result<LoadedGraph> LoadGraphFile(const std::string& path,
                                           uint32_t threads = 1);

  /// The registry: the paper's four algorithms in presentation order, with
  /// the PKT-style parallel peel listed beside its sequential sibling.
  static std::span<const AlgorithmInfo> Algorithms();

  /// Looks up a registry entry by its string key; nullptr if unknown.
  static const AlgorithmInfo* FindAlgorithm(std::string_view name);
};

}  // namespace truss::engine

#endif  // TRUSS_ENGINE_ENGINE_H_
