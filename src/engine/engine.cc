#include "engine/engine.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/memory_tracker.h"
#include "common/timer.h"
#include "engine/validate.h"
#include "graph/validate.h"
#include "layout/layout.h"
#include "truss/bottom_up.h"
#include "truss/cohen.h"
#include "truss/external_util.h"
#include "truss/improved.h"
#include "truss/parallel_peel.h"
#include "truss/top_down.h"

namespace truss::engine {

namespace {

constexpr AlgorithmInfo kRegistry[] = {
    {Algorithm::kImproved, "improved",
     "TD-inmem+ (Algorithm 2): O(m^1.5) in-memory peel, the default",
     /*external=*/false, /*supports_top_t=*/false},
    {Algorithm::kParallel, "parallel",
     "TD-parallel (PKT): level-synchronous in-memory peel, scales with "
     "--threads",
     /*external=*/false, /*supports_top_t=*/false},
    {Algorithm::kCohen, "cohen",
     "TD-inmem (Algorithm 1): Cohen's in-memory baseline",
     /*external=*/false, /*supports_top_t=*/false},
    {Algorithm::kBottomUp, "bottomup",
     "TD-bottomup (Algorithm 4): I/O-efficient, walks k upward",
     /*external=*/true, /*supports_top_t=*/false},
    {Algorithm::kTopDown, "topdown",
     "TD-topdown (Algorithm 7): I/O-efficient, walks k downward, top-t",
     /*external=*/true, /*supports_top_t=*/true},
};

/// Scratch directory for an engine-owned Env: unique per process + call,
/// removed on destruction. Caller-supplied directories are reused as-is and
/// left in place.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& requested) {
    if (!requested.empty()) {
      path_ = requested;
      owned_ = false;
      return;
    }
    // Relaxed RMW would suffice (only uniqueness of the drawn value
    // matters, and RMW coherence alone guarantees that), but the default
    // seq_cst fetch_add is kept: concurrent Decompose calls hit this once
    // per run, so the fence cost is unmeasurable and the default is
    // self-documenting.
    static std::atomic<uint64_t> counter{0};
    const auto dir = std::filesystem::temp_directory_path() / "truss_engine" /
                     (std::to_string(::getpid()) + "_" +
                      std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    path_ = dir.string();
    owned_ = true;
  }

  ~ScratchDir() {
    if (owned_) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);  // best effort
    }
  }

  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool owned_ = false;
};

/// Runs one in-memory algorithm with memory accounting and phase timings.
/// Only kParallel can fail (cooperative cancellation mid-peel).
Result<TrussDecompositionResult> RunInMemory(const Graph& g,
                                             const DecomposeOptions& options,
                                             DecomposeStats* stats) {
  MemoryTracker tracker;
  PhaseTimings timings;
  TrussDecompositionResult result;
  switch (options.algorithm) {
    case Algorithm::kImproved:
      result = ImprovedTrussDecomposition(g, &tracker, options.threads,
                                          &timings);
      break;
    case Algorithm::kCohen:
      result = CohenTrussDecomposition(g, &tracker, options.threads,
                                       &timings);
      break;
    case Algorithm::kParallel: {
      auto run = ParallelTrussDecomposition(g, &tracker, options.threads,
                                            &options.hooks, &timings);
      TRUSS_RETURN_IF_ERROR_RESULT(run);
      result = run.MoveValue();
      break;
    }
    case Algorithm::kBottomUp:
    case Algorithm::kTopDown:
      // No default: a new enumerator must be routed here explicitly or
      // -Wswitch turns the omission into a build error.
      return Status::Internal("RunInMemory called with an external algorithm");
  }
  stats->peak_memory_bytes = tracker.peak_bytes();
  stats->support_seconds = timings.support_seconds;
  stats->peel_seconds = timings.peel_seconds;
  return result;
}

/// The dispatch proper: runs `options.algorithm` on `g` as-is (no layout
/// handling, no validation — Engine::Decompose owns both) and fills every
/// stat except wall_seconds.
Result<DecomposeOutput> DecomposeDispatch(const Graph& g,
                                          const DecomposeOptions& options) {
  DecomposeOutput out;
  out.stats.algorithm = options.algorithm;

  switch (options.algorithm) {
    case Algorithm::kImproved:
    case Algorithm::kCohen:
    case Algorithm::kParallel: {
      options.hooks.Report("decompose", 0, 0, g.num_edges());
      auto run = RunInMemory(g, options, &out.stats);
      TRUSS_RETURN_IF_ERROR_RESULT(run);
      out.result = run.MoveValue();
      options.hooks.Report("decompose", out.result.kmax, g.num_edges(),
                           g.num_edges());
      break;
    }
    case Algorithm::kBottomUp:
    case Algorithm::kTopDown: {
      const ScratchDir scratch(options.scratch_dir);
      io::Env env(scratch.path(), options.io_block_size_bytes);
      const ExternalConfig config = options.ToExternalConfig();
      if (options.algorithm == Algorithm::kTopDown && options.top_t >= 1) {
        auto records = TopDownTopClasses(env, g, config, &out.stats.external);
        TRUSS_RETURN_IF_ERROR_RESULT(records);
        out.top_classes = records.MoveValue();
      } else if (options.algorithm == Algorithm::kTopDown) {
        auto result = TopDownDecompose(env, g, config, &out.stats.external);
        TRUSS_RETURN_IF_ERROR_RESULT(result);
        out.result = result.MoveValue();
      } else {
        auto result = BottomUpDecompose(env, g, config, &out.stats.external);
        TRUSS_RETURN_IF_ERROR_RESULT(result);
        out.result = result.MoveValue();
      }
      env.CleanupAll();
      break;
    }
  }

  // Top-t queries leave out.result empty; everything else must be a
  // plausible full decomposition of g.
  if (out.result.truss_number.size() == g.num_edges()) {
    DCheckDecomposeOutput(g, out.result);
  }
  return out;
}

}  // namespace

Result<DecomposeOutput> Engine::Decompose(const Graph& g,
                                          const DecomposeOptions& options) {
  TRUSS_RETURN_IF_ERROR(options.Validate());
  // Debug boundary validators (docs/STATIC_ANALYSIS.md): the input graph
  // is structurally checked on the way in, the decomposition on the way
  // out, so every Debug/ASan test run exercises both on every engine call.
  graph::DCheckValidCsr(g);
  if (options.hooks.ShouldCancel()) {
    return Status::Cancelled("decomposition cancelled before start");
  }

  WallTimer timer;
  if (options.layout == layout::Policy::kNone) {
    auto out = DecomposeDispatch(g, options);
    TRUSS_RETURN_IF_ERROR_RESULT(out);
    out.value().stats.wall_seconds = timer.Seconds();
    return out;
  }

  // Layout path: renumber, decompose in the permuted id space (any
  // registry algorithm — the external ones stream the permuted graph
  // through their Env like any other), then scatter the truss numbers
  // back so the caller sees g's own edge ids. Validate() already rejected
  // top-t, so the result is always a full decomposition.
  WallTimer reorder_timer;
  const layout::VertexPermutation perm =
      layout::ComputeOrder(g, options.layout, options.threads);
  const layout::PermutedGraph permuted =
      layout::ApplyPermutation(g, perm, options.threads);
  const double reorder_seconds = reorder_timer.Seconds();

  auto run = DecomposeDispatch(permuted.graph, options);
  TRUSS_RETURN_IF_ERROR_RESULT(run);
  DecomposeOutput out = run.MoveValue();
  if (out.result.truss_number.size() == permuted.graph.num_edges()) {
    out.result.truss_number = layout::MapEdgeValuesToOriginal(
        permuted.original_edge, out.result.truss_number);
    // Truss numbers are invariant under relabeling; re-check in the
    // original space so a bad edge mapping cannot escape a Debug run.
    DCheckDecomposeOutput(g, out.result);
  }
  out.stats.reorder_seconds = reorder_seconds;
  out.stats.wall_seconds = timer.Seconds();
  return out;
}

Result<DecomposeStats> Engine::DecomposeFile(io::Env& env,
                                             const std::string& graph_file,
                                             VertexId num_vertices,
                                             const DecomposeOptions& options,
                                             const std::string& classes_out) {
  TRUSS_RETURN_IF_ERROR(options.Validate());
  if (options.hooks.ShouldCancel()) {
    return Status::Cancelled("decomposition cancelled before start");
  }
  if (options.layout != layout::Policy::kNone &&
      (options.algorithm == Algorithm::kBottomUp ||
       options.algorithm == Algorithm::kTopDown)) {
    return Status::InvalidArgument(
        "layout reordering is not supported for external algorithms in "
        "DecomposeFile: the graph streams from disk and is never "
        "materialized to reorder; use Engine::Decompose, or layout=none");
  }

  DecomposeStats stats;
  stats.algorithm = options.algorithm;
  const ExternalConfig config = options.ToExternalConfig();

  switch (options.algorithm) {
    case Algorithm::kBottomUp: {
      auto res = BottomUpDecomposeFile(env, graph_file, num_vertices, config,
                                       classes_out);
      TRUSS_RETURN_IF_ERROR_RESULT(res);
      stats.external = res.MoveValue();
      stats.wall_seconds = stats.external.seconds;
      return stats;
    }
    case Algorithm::kTopDown: {
      auto res = TopDownDecomposeFile(env, graph_file, num_vertices, config,
                                      classes_out);
      TRUSS_RETURN_IF_ERROR_RESULT(res);
      stats.external = res.MoveValue();
      stats.wall_seconds = stats.external.seconds;
      return stats;
    }
    case Algorithm::kImproved:
    case Algorithm::kCohen:
    case Algorithm::kParallel: {
      // Materialize the file's graph (the in-memory algorithms need it
      // anyway), decompose, and emit ClassRecords in the file's original
      // vertex ids. Matches the external entry points' contract: the input
      // file is consumed. Routing through Decompose (rather than the bare
      // in-memory runner) is what lets this path inherit the layout
      // option — reorder, run, map back — plus the Debug validators.
      WallTimer timer;
      auto records = ReadAllRecords<io::GEdgeRecord>(env, graph_file);
      TRUSS_RETURN_IF_ERROR_RESULT(records);
      const LocalGraphView local(records.value());
      auto run = Decompose(local.graph(), options);
      TRUSS_RETURN_IF_ERROR_RESULT(run);
      const TrussDecompositionResult& result = run.value().result;

      auto writer = env.OpenWriter(classes_out);
      TRUSS_RETURN_IF_ERROR(writer.status());
      for (EdgeId e = 0; e < local.graph().num_edges(); ++e) {
        const io::ClassRecord rec{records.value()[e].u, records.value()[e].v,
                                  result.truss_number[e]};
        writer.value()->WriteRecord(rec);
      }
      TRUSS_RETURN_IF_ERROR(writer.value()->Close());
      TRUSS_RETURN_IF_ERROR(env.DeleteFile(graph_file));
      stats.external.classified_edges = local.graph().num_edges();
      stats.external.kmax = result.kmax;
      stats.wall_seconds = timer.Seconds();
      return stats;
    }
  }
  return Status::Internal("unreachable: unknown algorithm");
}

Result<DecomposeOutput> Engine::DecomposeSnapFile(const std::string& path,
                                                  const DecomposeOptions& options,
                                                  LoadedGraph* loaded) {
  // Validate before paying for ingestion: a bad flag combination should
  // fail in microseconds, not after parsing 69M rows.
  TRUSS_RETURN_IF_ERROR(options.Validate());

  WallTimer ingest_timer;
  SnapReadOptions read_options;
  read_options.threads = options.threads;
  auto parsed = ReadSnapEdgeList(path, read_options);
  TRUSS_RETURN_IF_ERROR_RESULT(parsed);
  const double ingest_seconds = ingest_timer.Seconds();

  auto out = Decompose(parsed.value().graph, options);
  TRUSS_RETURN_IF_ERROR_RESULT(out);
  out.value().stats.ingest_seconds = ingest_seconds;
  if (loaded != nullptr) *loaded = parsed.MoveValue();
  return out;
}

Result<LoadedGraph> Engine::LoadGraphFile(const std::string& path,
                                          uint32_t threads) {
  // Sniff the TRSB magic (graph/binary_io.cc) rather than trusting file
  // extensions; a short or unreadable file falls through to the text
  // reader, whose error messages name the real problem.
  bool is_binary = false;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot open " + path);
    }
    uint32_t magic = 0;
    is_binary = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
                magic == 0x42535254;  // "TRSB" little-endian
    std::fclose(f);
  }
  if (is_binary) {
    auto g = Graph::LoadBinary(path);
    TRUSS_RETURN_IF_ERROR_RESULT(g);
    LoadedGraph loaded;
    loaded.graph = g.MoveValue();
    loaded.original_id.resize(loaded.graph.num_vertices());
    for (VertexId v = 0; v < loaded.graph.num_vertices(); ++v) {
      loaded.original_id[v] = v;
    }
    return loaded;
  }
  return ReadSnapEdgeList(path, threads);
}

std::span<const AlgorithmInfo> Engine::Algorithms() { return kRegistry; }

const AlgorithmInfo* Engine::FindAlgorithm(std::string_view name) {
  for (const AlgorithmInfo& info : kRegistry) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

}  // namespace truss::engine
