#include "partition/partition.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "common/rng.h"

namespace truss::partition {

namespace {

uint64_t Weight(const std::vector<uint32_t>& degree, VertexId v) {
  return static_cast<uint64_t>(degree[v]) + 1;
}

// Packs `order` greedily into consecutive parts under the weight cap.
PartitionResult PackInOrder(const std::vector<uint32_t>& degree,
                            const std::vector<VertexId>& order,
                            uint64_t max_weight) {
  PartitionResult result;
  result.part_of.assign(degree.size(), PartitionResult::kNoPart);

  std::vector<VertexId> current;
  uint64_t current_weight = 0;
  auto flush = [&]() {
    if (current.empty()) return;
    for (const VertexId v : current) {
      result.part_of[v] = static_cast<uint32_t>(result.parts.size());
    }
    result.parts.push_back(std::move(current));
    current.clear();
    current_weight = 0;
  };

  for (const VertexId v : order) {
    const uint64_t w = Weight(degree, v);
    if (!current.empty() && current_weight + w > max_weight) flush();
    current.push_back(v);
    current_weight += w;
  }
  flush();
  return result;
}

std::vector<VertexId> ActiveVertices(const std::vector<uint32_t>& degree) {
  std::vector<VertexId> active;
  for (VertexId v = 0; v < degree.size(); ++v) {
    if (degree[v] > 0) active.push_back(v);
  }
  return active;
}

PartitionResult SequentialPartition(const std::vector<uint32_t>& degree,
                                    uint64_t max_weight) {
  return PackInOrder(degree, ActiveVertices(degree), max_weight);
}

PartitionResult RandomizedPartition(const std::vector<uint32_t>& degree,
                                    uint64_t max_weight, uint64_t seed) {
  std::vector<VertexId> order = ActiveVertices(degree);
  // Order by a keyed hash: a seeded pseudo-random permutation without
  // needing to materialize RNG state per vertex.
  std::sort(order.begin(), order.end(), [seed](VertexId a, VertexId b) {
    SplitMix64 ha(seed ^ (static_cast<uint64_t>(a) << 1));
    SplitMix64 hb(seed ^ (static_cast<uint64_t>(b) << 1));
    const uint64_t ka = ha.Next(), kb = hb.Next();
    return ka != kb ? ka < kb : a < b;
  });
  return PackInOrder(degree, order, max_weight);
}

PartitionResult DominatingSetPartition(const std::vector<uint32_t>& degree,
                                       const EdgeScanFn& scan_edges,
                                       uint64_t max_weight) {
  const size_t n = degree.size();
  // dominator[v] = the seed vertex that covers v (or v itself).
  std::vector<VertexId> dominator(n, kInvalidVertex);

  // One scan grouped by u: if u is still uncovered when its group starts,
  // u becomes a seed and covers itself and all scanned neighbors. Neighbors
  // v > u get covered here; any vertex left uncovered at its own group
  // becomes a seed. Isolated-in-scan leftovers seed themselves below.
  scan_edges([&](VertexId u, VertexId v) {
    if (dominator[u] == kInvalidVertex) dominator[u] = u;  // u seeds itself
    if (dominator[u] == u && dominator[v] == kInvalidVertex) {
      dominator[v] = u;  // covered by seed u
    }
  });

  std::vector<VertexId> active = ActiveVertices(degree);
  for (const VertexId v : active) {
    if (dominator[v] == kInvalidVertex) dominator[v] = v;
  }

  // Group vertices by dominator to form clusters, then first-fit pack
  // clusters (in decreasing weight) into parts. Clusters heavier than the
  // cap are split by sequential packing inside the cluster.
  std::sort(active.begin(), active.end(), [&](VertexId a, VertexId b) {
    return dominator[a] != dominator[b] ? dominator[a] < dominator[b]
                                        : a < b;
  });

  struct Cluster {
    uint64_t weight = 0;
    std::vector<VertexId> members;
  };
  std::vector<Cluster> clusters;
  for (size_t i = 0; i < active.size();) {
    Cluster c;
    const VertexId dom = dominator[active[i]];
    while (i < active.size() && dominator[active[i]] == dom) {
      c.members.push_back(active[i]);
      c.weight += Weight(degree, active[i]);
      ++i;
    }
    clusters.push_back(std::move(c));
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.weight > b.weight;
            });

  PartitionResult result;
  result.part_of.assign(n, PartitionResult::kNoPart);
  std::vector<uint64_t> part_weight;
  auto new_part = [&]() {
    result.parts.emplace_back();
    part_weight.push_back(0);
    return result.parts.size() - 1;
  };
  auto assign = [&](size_t part, VertexId v) {
    result.parts[part].push_back(v);
    part_weight[part] += Weight(degree, v);
    result.part_of[v] = static_cast<uint32_t>(part);
  };

  for (const Cluster& c : clusters) {
    if (c.weight > max_weight) {
      // Split oversize cluster sequentially.
      size_t part = new_part();
      for (const VertexId v : c.members) {
        if (part_weight[part] > 0 &&
            part_weight[part] + Weight(degree, v) > max_weight) {
          part = new_part();
        }
        assign(part, v);
      }
      continue;
    }
    // First-fit over existing parts.
    size_t target = SIZE_MAX;
    for (size_t p = 0; p < result.parts.size(); ++p) {
      if (part_weight[p] + c.weight <= max_weight) {
        target = p;
        break;
      }
    }
    if (target == SIZE_MAX) target = new_part();
    for (const VertexId v : c.members) assign(target, v);
  }
  return result;
}

}  // namespace

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kSequential:
      return "sequential";
    case Strategy::kDominatingSet:
      return "dominating-set";
    case Strategy::kRandomized:
      return "randomized";
  }
  return "unknown";
}

PartitionResult PartitionVertices(const std::vector<uint32_t>& degree,
                                  const EdgeScanFn& scan_edges,
                                  const Options& options) {
  TRUSS_CHECK_GT(options.max_part_weight, 0u);
  switch (options.strategy) {
    case Strategy::kSequential:
      return SequentialPartition(degree, options.max_part_weight);
    case Strategy::kDominatingSet:
      return DominatingSetPartition(degree, scan_edges,
                                    options.max_part_weight);
    case Strategy::kRandomized:
      return RandomizedPartition(degree, options.max_part_weight,
                                 options.seed);
  }
  TRUSS_CHECK(false);
  return {};
}

}  // namespace truss::partition
