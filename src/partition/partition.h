// Vertex partitioners for the external-memory algorithms (§5.1, [13]).
//
// Algorithm 3 partitions the vertex set of the (shrinking) graph into parts
// P_1..P_p such that each neighborhood subgraph NS(P_i) fits in the memory
// budget. Following Chu & Cheng's triangle-listing partitioners we provide:
//
//  * kSequential   — pack vertices in ID order; fast, no iteration-count
//                    guarantee.
//  * kDominatingSet — greedily build a dominating set from one edge scan,
//                    cluster every vertex with its dominator, then bin-pack
//                    clusters; O(n) memory, O(m/M) iterations.
//  * kRandomized   — pack vertices in seeded pseudo-random order; O(m/M)
//                    iterations with high probability and no extra memory.
//
// Part capacity is expressed in weight units with weight(v) = deg(v) + 1,
// which upper-bounds |NS(P_i)| ≥ |ENS(P_i)| + |P_i| contributions of P_i.

#ifndef TRUSS_PARTITION_PARTITION_H_
#define TRUSS_PARTITION_PARTITION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace truss::partition {

enum class Strategy {
  kSequential,
  kDominatingSet,
  kRandomized,
};

/// Human-readable strategy name for logs and bench tables.
const char* StrategyName(Strategy s);

struct Options {
  Strategy strategy = Strategy::kSequential;
  /// Maximum Σ (deg(v)+1) per part. A single vertex heavier than this still
  /// gets its own part (the caller's overflow path handles oversized NS).
  uint64_t max_part_weight = 0;
  /// Seed for kRandomized.
  uint64_t seed = 42;
};

/// Invokes the inner callback once per edge (u < v), grouped by ascending u.
/// Abstracts over disk-resident edge files so the dominating-set strategy
/// can run from a single sequential scan.
using EdgeScanFn =
    std::function<void(const std::function<void(VertexId, VertexId)>&)>;

struct PartitionResult {
  static constexpr uint32_t kNoPart = UINT32_MAX;

  std::vector<std::vector<VertexId>> parts;
  /// part_of[v] = index into parts, or kNoPart for inactive (degree-0)
  /// vertices.
  std::vector<uint32_t> part_of;
};

/// Partitions every vertex with degree[v] > 0 into parts of bounded weight.
/// `scan_edges` is only invoked by the dominating-set strategy.
PartitionResult PartitionVertices(const std::vector<uint32_t>& degree,
                                  const EdgeScanFn& scan_edges,
                                  const Options& options);

}  // namespace truss::partition

#endif  // TRUSS_PARTITION_PARTITION_H_
