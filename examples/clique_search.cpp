// k-truss as a maximum-clique heuristic (§7.4).
//
// The paper observes that a clique of c vertices must lie inside the
// c-truss, and that kmax bounds the maximum clique size far more tightly
// than cmax + 1. This example hides a 14-clique in a 100K-edge power-law
// graph and compares maximum-clique search under no pruning, k-core
// pruning, and k-truss pruning: all three find the same clique, but the
// truss-pruned search explores a dramatically smaller subgraph.

#include <cstdio>

#include "clique/clique.h"
#include "common/timer.h"
#include "gen/generators.h"

int main() {
  truss::Graph g = truss::gen::BarabasiAlbert(25000, 4, /*seed=*/71);
  g = truss::gen::PlantClique(g, 14, /*seed=*/72);

  // Embed a dense random block (500 vertices, avg degree ~48): it drives
  // the core numbers far above any truss number — random blocks are nearly
  // triangle-free relative to their density — so the cmax+1 clique bound
  // becomes much looser than kmax, which is exactly the paper's point.
  {
    const truss::Graph dense = truss::gen::ErdosRenyiGnm(500, 12000, 73);
    std::vector<truss::Edge> shifted;
    shifted.reserve(dense.num_edges());
    for (const truss::Edge& e : dense.edges()) {
      shifted.push_back(truss::Edge{e.u + 1000, e.v + 1000});
    }
    g = truss::gen::AddEdges(g, shifted);
  }
  std::printf(
      "graph: %u vertices, %u edges (planted 14-clique + dense block)\n\n",
      g.num_vertices(), g.num_edges());

  struct Mode {
    const char* name;
    truss::CliquePruning pruning;
  };
  const Mode modes[] = {
      {"no pruning", truss::CliquePruning::kNone},
      {"k-core pruning", truss::CliquePruning::kCore},
      {"k-truss pruning", truss::CliquePruning::kTruss},
  };

  std::printf("%-18s %8s %12s %16s %12s\n", "mode", "omega", "bound",
              "searched edges", "time");
  for (const Mode& mode : modes) {
    truss::WallTimer timer;
    const truss::MaxCliqueResult r = truss::MaximumClique(g, mode.pruning);
    std::printf("%-18s %8zu %12u %16llu %12s\n", mode.name, r.clique.size(),
                r.initial_bound,
                static_cast<unsigned long long>(r.searched_edges),
                truss::FormatDuration(timer.Seconds()).c_str());
  }

  const truss::MaxCliqueResult best =
      truss::MaximumClique(g, truss::CliquePruning::kTruss);
  std::printf("\nmaximum clique (%zu vertices): ", best.clique.size());
  for (const truss::VertexId v : best.clique) std::printf("%u ", v);
  std::printf("\n");
  return best.clique.size() >= 14 ? 0 : 1;
}
