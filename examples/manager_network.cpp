// Reproduces Figure 1 / Example 1: the 21-manager "seek-advice-from"
// network, its 3-core, and its 4-truss.
//
// The paper reports clustering coefficients 0.51 (G), 0.65 (3-core), and
// 0.80 (4-truss) on the original Krackhardt data; our reconstruction (see
// src/gen/fixtures.h) reproduces the qualitative claims: the 3-core barely
// filters G, the 4-truss is exactly the union of the five named 4-cliques,
// no 4-core or 5-truss exists, and the clustering coefficient rises
// strictly from G to the 3-core to the 4-truss.

#include <cstdio>

#include "engine/engine.h"
#include "gen/fixtures.h"
#include "graph/stats.h"
#include "kcore/kcore.h"
#include "truss/result.h"

int main() {
  const truss::Graph g = truss::gen::ManagerAdviceGraph();
  std::printf("Manager advice network: %u managers, %u advice ties\n\n",
              g.num_vertices(), g.num_edges());

  const truss::CoreDecomposition cores = truss::DecomposeCores(g);
  auto decomposed = truss::engine::Engine::Decompose(
      g, truss::engine::DecomposeOptions{});
  if (!decomposed.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 decomposed.status().ToString().c_str());
    return 1;
  }
  const truss::TrussDecompositionResult& truss_r = decomposed.value().result;

  std::printf("cmax = %u (no %u-core exists)\n", cores.cmax, cores.cmax + 1);
  std::printf("kmax = %u (no %u-truss exists)\n\n", truss_r.kmax,
              truss_r.kmax + 1);

  const truss::Subgraph core3 = truss::ExtractKCore(g, cores, 3);
  const truss::Subgraph truss4 = truss::ExtractKTruss(g, truss_r, 4);

  std::printf("%-18s %10s %8s %22s\n", "subgraph", "vertices", "edges",
              "clustering coefficient");
  std::printf("%-18s %10u %8u %22.2f\n", "G", g.num_vertices(), g.num_edges(),
              truss::AverageClusteringCoefficient(g));
  std::printf("%-18s %10u %8u %22.2f\n", "3-core", core3.graph.num_vertices(),
              core3.graph.num_edges(),
              truss::AverageClusteringCoefficient(core3.graph));
  std::printf("%-18s %10u %8u %22.2f\n", "4-truss",
              truss4.graph.num_vertices(), truss4.graph.num_edges(),
              truss::AverageClusteringCoefficient(truss4.graph));
  std::printf("(paper, original data:  G 0.51 / 3-core 0.65 / 4-truss 0.80)\n");

  std::printf("\n4-vertex cliques inside the 4-truss (managers 1-21):\n");
  for (const auto& clique : truss::gen::ManagerFourTrussCliques()) {
    std::printf("  {");
    for (size_t i = 0; i < clique.size(); ++i) {
      std::printf("%s%u", i > 0 ? "," : "", clique[i] + 1);
    }
    std::printf("}\n");
  }

  std::printf("\nmanagers in the 4-truss: ");
  for (const truss::VertexId v : truss4.vertex_to_parent) {
    std::printf("%u ", v + 1);
  }
  std::printf("\nmanagers dropped by the 3-core: ");
  for (truss::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cores.core[v] < 3) std::printf("%u ", v + 1);
  }
  std::printf("\n");
  return 0;
}
