// truss_server: the truss query daemon.
//
// Usage:
//   truss_server (--input FILE | --dataset NAME | --load-index FILE)
//                [--save-index FILE] [--algo NAME] [--threads N]
//                [--port P] [--workers W]
//
// Builds (or loads) a TrussIndex, publishes it as snapshot v1, and serves
// the line protocol documented in docs/SERVING.md on 127.0.0.1:PORT until
// SIGINT/SIGTERM. --port 0 (the default) binds an ephemeral port; the
// chosen port is announced on the "SERVING ..." stdout line so harnesses
// (tests/serve_smoke_test.py) can parse it. --load-index restores a
// --save-index file and skips the decomposition entirely; the REBUILD
// command still works, re-decomposing the embedded graph.
//
// On clean shutdown the server prints its counters as METRIC lines,
// matching the bench binaries' reporting convention.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "common/timer.h"
#include "datasets/datasets.h"
#include "engine/engine.h"
#include "serve/server.h"

namespace {

void Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s (--input FILE | --dataset NAME | --load-index FILE)"
               " [--save-index FILE] [--algo NAME] [--threads N] [--port P]"
               " [--workers W]\n\nalgorithms:\n",
               prog);
  for (const truss::engine::AlgorithmInfo& info :
       truss::engine::Engine::Algorithms()) {
    std::fprintf(stderr, "  %-9s %s\n", info.name, info.summary);
  }
}

// Signal handlers may only touch async-signal-safe state; RequestStop is a
// lock-free atomic store, which qualifies.
truss::serve::TrussServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, dataset, load_index, save_index, algo = "improved";
  truss::engine::DecomposeOptions options;
  truss::serve::ServerOptions server_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      input = next();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--load-index") {
      load_index = next();
    } else if (arg == "--save-index") {
      save_index = next();
    } else if (arg == "--algo") {
      algo = next();
    } else if (arg == "--threads") {
      options.threads = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--port") {
      server_options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      server_options.workers = static_cast<uint32_t>(std::atoi(next()));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  const int sources = (!input.empty() ? 1 : 0) + (!dataset.empty() ? 1 : 0) +
                      (!load_index.empty() ? 1 : 0);
  if (sources != 1) {
    std::fprintf(stderr, "error: exactly one of --input / --dataset / "
                         "--load-index is required\n");
    Usage(argv[0]);
    return 2;
  }
  if (server_options.workers < 1 || server_options.workers > 64) {
    std::fprintf(stderr, "error: --workers must be in [1, 64]\n");
    return 2;
  }

  const truss::engine::AlgorithmInfo* info =
      truss::engine::Engine::FindAlgorithm(algo);
  if (info == nullptr) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n", algo.c_str());
    return 2;
  }
  options.algorithm = info->id;
  const truss::Status valid = options.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 2;
  }

  // Obtain the initial snapshot: load a persisted index, or load/generate
  // the graph and decompose it once.
  truss::WallTimer build_timer;
  std::shared_ptr<const truss::serve::TrussIndex> index;
  std::string provenance;
  if (!load_index.empty()) {
    auto loaded = truss::serve::TrussIndex::Load(load_index);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    index = loaded.MoveValue();
    provenance = "loaded from " + load_index;
  } else {
    std::shared_ptr<const truss::Graph> graph;
    if (!input.empty()) {
      auto loaded =
          truss::engine::Engine::LoadGraphFile(input, options.threads);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      graph = std::make_shared<truss::Graph>(std::move(loaded.value().graph));
    } else {
      bool known = false;
      for (const auto& spec : truss::datasets::PaperDatasets()) {
        known = known || spec.name == dataset;
      }
      if (!known) {
        std::fprintf(stderr, "error: unknown dataset '%s'\n",
                     dataset.c_str());
        return 2;
      }
      graph = std::make_shared<truss::Graph>(
          truss::datasets::DatasetByName(dataset).generate());
    }
    auto built = truss::serve::TrussIndex::Build(
        graph, truss::serve::IndexBuildPlan::WithOptions(options));
    if (!built.ok()) {
      std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
      return 1;
    }
    index = std::move(built.value().index);
    provenance = "algo=" + std::string(info->name) +
                 " threads=" + std::to_string(options.threads);
  }
  const double build_seconds = build_timer.Seconds();

  if (!save_index.empty()) {
    const truss::Status saved = index->Save(save_index);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("index saved to %s (%llu bytes in memory)\n",
                save_index.c_str(),
                static_cast<unsigned long long>(index->SizeBytes()));
  }

  truss::serve::SnapshotRegistry registry;
  std::shared_ptr<const truss::Graph> graph = index->graph_ptr();
  const uint64_t version =
      registry.Publish(std::move(index), provenance, build_seconds);

  server_options.rebuild_options = options;
  truss::serve::TrussServer server(graph, &registry, server_options);
  const truss::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Harness-parseable startup announcement (keep the key=value layout
  // stable; tests/serve_smoke_test.py reads "port=").
  std::printf("SERVING port=%u version=%llu vertices=%u edges=%u "
              "workers=%u\n",
              server.port(), static_cast<unsigned long long>(version),
              graph->num_vertices(), graph->num_edges(),
              server_options.workers);
  std::fflush(stdout);

  server.Serve();
  g_server = nullptr;

  const truss::serve::ServerStats stats = server.stats();
  std::printf("METRIC serve_connections %llu\n",
              static_cast<unsigned long long>(stats.connections));
  std::printf("METRIC serve_queries %llu\n",
              static_cast<unsigned long long>(stats.queries));
  std::printf("METRIC serve_errors %llu\n",
              static_cast<unsigned long long>(stats.errors));
  std::printf("METRIC serve_rebuilds %llu\n",
              static_cast<unsigned long long>(stats.rebuilds));
  std::printf("METRIC serve_final_version %llu\n",
              static_cast<unsigned long long>(registry.current_version()));
  return 0;
}
