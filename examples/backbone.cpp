// Extracting the "heart of the network" with the top-down algorithm (§6).
//
// Many applications only need the top-t k-trusses — the most cohesive core
// of a network. This example builds a social-network-like graph whose dense
// heart is hidden in a power-law periphery, asks the top-down algorithm for
// the top-3 classes only, and shows that it never touches most of the graph
// (candidate subgraphs stay small), unlike a full bottom-up decomposition.

#include <cstdio>
#include <filesystem>
#include <map>

#include "common/timer.h"
#include "gen/generators.h"
#include "io/env.h"
#include "truss/bottom_up.h"
#include "truss/top_down.h"

int main() {
  // Power-law periphery + two planted communities: a 24-clique "board" and
  // an 18-clique "team".
  truss::Graph g = truss::gen::BarabasiAlbert(20000, 4, /*seed=*/41);
  g = truss::gen::PlantClique(g, 24, /*seed=*/42);
  g = truss::gen::PlantClique(g, 18, /*seed=*/43);
  std::printf("social network: %u vertices, %u edges\n\n", g.num_vertices(),
              g.num_edges());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "truss_example_bb").string();
  std::filesystem::remove_all(dir);

  truss::ExternalConfig cfg;
  cfg.memory_budget_bytes = 1 << 20;
  cfg.top_t = 3;

  truss::io::Env env(dir);
  truss::ExternalStats td_stats;
  truss::WallTimer timer;
  auto top = truss::TopDownTopClasses(env, g, cfg, &td_stats);
  if (!top.ok()) {
    std::fprintf(stderr, "top-down failed: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }
  const double td_seconds = timer.Seconds();

  std::map<uint32_t, uint64_t> class_sizes;
  for (const auto& rec : top.value()) {
    if (rec.truss >= 3) ++class_sizes[rec.truss];
  }
  std::printf("top-down (t = %d) found kmax = %u in %s\n", cfg.top_t,
              td_stats.kmax, truss::FormatDuration(td_seconds).c_str());
  for (auto it = class_sizes.rbegin(); it != class_sizes.rend(); ++it) {
    std::printf("  %3u-class: %llu edges\n", it->first,
                static_cast<unsigned long long>(it->second));
  }
  std::printf("  block I/O: %llu\n\n",
              static_cast<unsigned long long>(td_stats.io.total_blocks()));

  // Reference: the bottom-up algorithm must classify everything.
  truss::ExternalConfig full_cfg = cfg;
  full_cfg.top_t = -1;
  truss::ExternalStats bu_stats;
  timer.Reset();
  auto full = truss::BottomUpDecompose(env, g, full_cfg, &bu_stats);
  if (!full.ok()) {
    std::fprintf(stderr, "bottom-up failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }
  std::printf("bottom-up (all classes) took %s, block I/O %llu\n",
              truss::FormatDuration(timer.Seconds()).c_str(),
              static_cast<unsigned long long>(bu_stats.io.total_blocks()));
  std::printf("=> for top-t queries the top-down walk classified %llu edges "
              "instead of %u\n",
              static_cast<unsigned long long>(
                  td_stats.classified_edges - td_stats.phi2_edges),
              g.num_edges());
  return 0;
}
