// Extracting the "heart of the network" with the top-down algorithm (§6).
//
// Many applications only need the top-t k-trusses — the most cohesive core
// of a network. This example builds a social-network-like graph whose dense
// heart is hidden in a power-law periphery, asks the engine for the top-3
// classes only (top-down algorithm), and shows that it never touches most
// of the graph (candidate subgraphs stay small), unlike a full bottom-up
// decomposition.

#include <cstdio>
#include <map>

#include "common/timer.h"
#include "engine/engine.h"
#include "gen/generators.h"

int main() {
  // Power-law periphery + two planted communities: a 24-clique "board" and
  // an 18-clique "team".
  truss::Graph g = truss::gen::BarabasiAlbert(20000, 4, /*seed=*/41);
  g = truss::gen::PlantClique(g, 24, /*seed=*/42);
  g = truss::gen::PlantClique(g, 18, /*seed=*/43);
  std::printf("social network: %u vertices, %u edges\n\n", g.num_vertices(),
              g.num_edges());

  truss::engine::DecomposeOptions options;
  options.algorithm = truss::engine::Algorithm::kTopDown;
  options.memory_budget_bytes = 1 << 20;
  options.top_t = 3;

  auto top = truss::engine::Engine::Decompose(g, options);
  if (!top.ok()) {
    std::fprintf(stderr, "top-down failed: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }
  const truss::ExternalStats& td_stats = top.value().stats.external;

  std::map<uint32_t, uint64_t> class_sizes;
  for (const auto& rec : top.value().top_classes) {
    if (rec.truss >= 3) ++class_sizes[rec.truss];
  }
  std::printf("top-down (t = %d) found kmax = %u in %s\n", options.top_t,
              td_stats.kmax,
              truss::FormatDuration(top.value().stats.wall_seconds).c_str());
  for (auto it = class_sizes.rbegin(); it != class_sizes.rend(); ++it) {
    std::printf("  %3u-class: %llu edges\n", it->first,
                static_cast<unsigned long long>(it->second));
  }
  std::printf("  block I/O: %llu\n\n",
              static_cast<unsigned long long>(td_stats.io.total_blocks()));

  // Reference: the bottom-up algorithm must classify everything.
  truss::engine::DecomposeOptions full_options = options;
  full_options.algorithm = truss::engine::Algorithm::kBottomUp;
  full_options.top_t = -1;
  auto full = truss::engine::Engine::Decompose(g, full_options);
  if (!full.ok()) {
    std::fprintf(stderr, "bottom-up failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }
  const truss::ExternalStats& bu_stats = full.value().stats.external;
  std::printf("bottom-up (all classes) took %s, block I/O %llu\n",
              truss::FormatDuration(full.value().stats.wall_seconds).c_str(),
              static_cast<unsigned long long>(bu_stats.io.total_blocks()));
  std::printf("=> for top-t queries the top-down walk classified %llu edges "
              "instead of %u\n",
              static_cast<unsigned long long>(
                  td_stats.classified_edges - td_stats.phi2_edges),
              g.num_edges());
  return 0;
}
