// Quickstart: truss decomposition of the paper's running example
// (Figure 2 / Example 2).
//
// Builds the 12-vertex example graph, decomposes it through the unified
// engine facade (defaults to the improved in-memory algorithm,
// Algorithm 2), and prints every k-class and k-truss — reproducing the
// enumeration of Example 2 exactly.

#include <cstdio>

#include "engine/engine.h"
#include "gen/fixtures.h"
#include "truss/result.h"

int main() {
  using truss::gen::Figure2Fixture;

  const Figure2Fixture fx = truss::gen::Figure2Graph();
  const truss::Graph& g = fx.graph;
  std::printf("Figure 2 example graph: %u vertices, %u edges\n",
              g.num_vertices(), g.num_edges());

  auto out = truss::engine::Engine::Decompose(
      g, truss::engine::DecomposeOptions{});
  if (!out.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }
  const truss::TrussDecompositionResult& result = out.value().result;
  std::printf("kmax = %u\n\n", result.kmax);

  for (uint32_t k = 2; k <= result.kmax; ++k) {
    const auto edges = result.KClassEdges(k);
    if (edges.empty()) continue;
    std::printf("%u-class (%zu edges): ", k, edges.size());
    for (const truss::EdgeId id : edges) {
      const truss::Edge e = g.edge(id);
      std::printf("(%s,%s) ", Figure2Fixture::VertexName(e.u).c_str(),
                  Figure2Fixture::VertexName(e.v).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");

  for (uint32_t k = 3; k <= result.kmax; ++k) {
    const truss::Subgraph t = truss::ExtractKTruss(g, result, k);
    std::printf("%u-truss: %u vertices, %u edges\n", k,
                t.graph.num_vertices(), t.graph.num_edges());
  }

  const bool matches = result.truss_number == fx.expected_truss;
  std::printf("\nmatches Example 2 ground truth: %s\n",
              matches ? "yes" : "NO");
  return matches ? 0 : 1;
}
