// External-memory truss decomposition walkthrough (Figures 3-5 mechanics).
//
// Decomposes a graph far larger than the configured memory budget with the
// bottom-up algorithm, tracing what the paper's figures illustrate: how many
// lower-bounding iterations and partition parts were needed, how many
// candidate subgraphs NS(U_k) were extracted, how often one overflowed into
// Procedure 9, and the total block I/O — then cross-checks the result
// against the in-memory algorithm.

#include <cstdio>
#include <filesystem>

#include "common/timer.h"
#include "gen/generators.h"
#include "io/env.h"
#include "truss/bottom_up.h"
#include "truss/improved.h"
#include "truss/verify.h"

int main() {
  // A community-structured graph of ~60K edges...
  truss::Graph g = truss::gen::PlantedCommunities(
      /*communities=*/400, /*community_size=*/12, /*p_in=*/0.5,
      /*inter_edges=*/20000, /*seed=*/7);
  g = truss::gen::PlantClique(g, 20, /*seed=*/8);
  std::printf("input graph: %u vertices, %u edges (%.1f KB on disk)\n",
              g.num_vertices(), g.num_edges(),
              g.num_edges() * 16 / 1024.0);

  // ...decomposed under a 256 KB memory budget (a ~20x shortfall).
  truss::ExternalConfig cfg;
  cfg.memory_budget_bytes = 256 << 10;
  cfg.strategy = truss::partition::Strategy::kDominatingSet;
  std::printf("memory budget M = %llu KB, strategy = %s\n\n",
              static_cast<unsigned long long>(cfg.memory_budget_bytes >> 10),
              truss::partition::StrategyName(cfg.strategy));

  const std::string dir =
      (std::filesystem::temp_directory_path() / "truss_example_ext").string();
  std::filesystem::remove_all(dir);
  truss::io::Env env(dir, /*block_size=*/16 * 1024);

  truss::ExternalStats stats;
  truss::WallTimer timer;
  auto result = truss::BottomUpDecompose(env, g, cfg, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("bottom-up decomposition finished in %s\n",
              truss::FormatDuration(timer.Seconds()).c_str());
  std::printf("  lower-bounding iterations : %u\n",
              stats.lower_bound_iterations);
  std::printf("  partition parts processed : %llu\n",
              static_cast<unsigned long long>(stats.parts_processed));
  std::printf("  candidate subgraphs NS(Uk): %llu\n",
              static_cast<unsigned long long>(stats.candidate_subgraphs));
  std::printf("  overflows into Procedure 9: %llu\n",
              static_cast<unsigned long long>(stats.candidate_overflows));
  std::printf("  phi_2 edges pruned early  : %llu\n",
              static_cast<unsigned long long>(stats.phi2_edges));
  std::printf("  kmax                      : %u\n", stats.kmax);
  std::printf("  block I/O (B = %zu)       : %llu blocks (%s read, %s "
              "written)\n\n",
              env.block_size(),
              static_cast<unsigned long long>(stats.io.total_blocks()),
              truss::FormatBytes(stats.io.bytes_read).c_str(),
              truss::FormatBytes(stats.io.bytes_written).c_str());

  std::printf("k-class sizes: ");
  for (const auto& [k, count] : result.value().ClassSizes()) {
    std::printf("phi_%u=%llu ", k, static_cast<unsigned long long>(count));
  }
  std::printf("\n");

  const truss::TrussDecompositionResult oracle =
      truss::ImprovedTrussDecomposition(g);
  const bool match = truss::SameDecomposition(oracle, result.value());
  std::printf("matches the in-memory algorithm: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
