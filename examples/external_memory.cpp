// External-memory truss decomposition walkthrough (Figures 3-5 mechanics).
//
// Decomposes a graph far larger than the configured memory budget with the
// bottom-up algorithm, tracing what the paper's figures illustrate: how many
// lower-bounding iterations and partition parts were needed, how many
// candidate subgraphs NS(U_k) were extracted, how often one overflowed into
// Procedure 9, and the total block I/O — then cross-checks the result
// against the in-memory algorithm. Both runs go through the unified
// truss::engine::Engine facade; only the options differ.

#include <cstdio>
#include <filesystem>

#include "common/timer.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "truss/result.h"

int main() {
  // A community-structured graph of ~60K edges...
  truss::Graph g = truss::gen::PlantedCommunities(
      /*communities=*/400, /*community_size=*/12, /*p_in=*/0.5,
      /*inter_edges=*/20000, /*seed=*/7);
  g = truss::gen::PlantClique(g, 20, /*seed=*/8);
  std::printf("input graph: %u vertices, %u edges (%.1f KB on disk)\n",
              g.num_vertices(), g.num_edges(),
              g.num_edges() * 16 / 1024.0);

  // ...decomposed under a 256 KB memory budget (a ~20x shortfall).
  truss::engine::DecomposeOptions options;
  options.algorithm = truss::engine::Algorithm::kBottomUp;
  options.memory_budget_bytes = 256 << 10;
  options.strategy = truss::partition::Strategy::kDominatingSet;
  options.io_block_size_bytes = 16 * 1024;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "truss_example_ext").string();
  std::filesystem::remove_all(dir);
  options.scratch_dir = dir;
  std::printf("memory budget M = %llu KB, strategy = %s\n\n",
              static_cast<unsigned long long>(
                  options.memory_budget_bytes >> 10),
              truss::partition::StrategyName(options.strategy));

  auto out = truss::engine::Engine::Decompose(g, options);
  if (!out.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }
  const truss::ExternalStats& stats = out.value().stats.external;

  std::printf("bottom-up decomposition finished in %s\n",
              truss::FormatDuration(out.value().stats.wall_seconds).c_str());
  std::printf("  lower-bounding iterations : %u\n",
              stats.lower_bound_iterations);
  std::printf("  partition parts processed : %llu\n",
              static_cast<unsigned long long>(stats.parts_processed));
  std::printf("  candidate subgraphs NS(Uk): %llu\n",
              static_cast<unsigned long long>(stats.candidate_subgraphs));
  std::printf("  overflows into Procedure 9: %llu\n",
              static_cast<unsigned long long>(stats.candidate_overflows));
  std::printf("  phi_2 edges pruned early  : %llu\n",
              static_cast<unsigned long long>(stats.phi2_edges));
  std::printf("  kmax                      : %u\n", stats.kmax);
  std::printf("  block I/O (B = %zu)       : %llu blocks (%s read, %s "
              "written)\n\n",
              options.io_block_size_bytes,
              static_cast<unsigned long long>(stats.io.total_blocks()),
              truss::FormatBytes(stats.io.bytes_read).c_str(),
              truss::FormatBytes(stats.io.bytes_written).c_str());

  std::printf("k-class sizes: ");
  for (const auto& [k, count] : out.value().result.ClassSizes()) {
    std::printf("phi_%u=%llu ", k, static_cast<unsigned long long>(count));
  }
  std::printf("\n");

  auto oracle = truss::engine::Engine::Decompose(
      g, truss::engine::DecomposeOptions{});
  if (!oracle.ok()) {
    std::fprintf(stderr, "oracle failed: %s\n",
                 oracle.status().ToString().c_str());
    return 1;
  }
  const bool match =
      truss::SameDecomposition(oracle.value().result, out.value().result);
  std::printf("matches the in-memory algorithm: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
