// trussdec: a command-line truss-decomposition tool over the public API.
//
// Usage:
//   truss_cli --input FILE.txt [--algo NAME] [--budget-mb N] [--top-t T]
//             [--threads N] [--layout none|degree] [--truss K]
//             [--communities K]
//   truss_cli --dataset NAME [...]          (registry stand-in by name)
//
// Reads a SNAP-format edge list (or a registry dataset), runs the chosen
// algorithm through truss::engine::Engine, and prints the k-class profile;
// optionally extracts one k-truss or its communities. Algorithm names are
// resolved against the engine registry, and incoherent flag combinations
// (e.g. --top-t with an in-memory algorithm) are rejected by
// DecomposeOptions::Validate() instead of being silently ignored.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/timer.h"
#include "datasets/datasets.h"
#include "engine/engine.h"
#include "graph/stats.h"
#include "graph/text_io.h"
#include "truss/communities.h"

namespace {

void Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s (--input FILE | --dataset NAME) [--algo NAME] "
               "[--budget-mb N] [--top-t T] [--threads N] "
               "[--layout none|degree] [--truss K] "
               "[--communities K]\n\nalgorithms:\n",
               prog);
  for (const truss::engine::AlgorithmInfo& info :
       truss::engine::Engine::Algorithms()) {
    std::fprintf(stderr, "  %-9s %s\n", info.name, info.summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, dataset, algo = "improved";
  truss::engine::DecomposeOptions options;
  long truss_k = 0, communities_k = 0;
  bool truss_set = false, communities_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      input = next();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--algo") {
      algo = next();
    } else if (arg == "--budget-mb") {
      options.memory_budget_bytes = std::strtoull(next(), nullptr, 10) << 20;
    } else if (arg == "--top-t") {
      options.top_t = std::atoi(next());
    } else if (arg == "--threads") {
      options.threads = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--layout") {
      const char* name = next();
      if (!truss::layout::PolicyFromName(name, &options.layout)) {
        std::fprintf(stderr, "error: unknown layout '%s'\n", name);
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--truss") {
      truss_k = std::atol(next());
      truss_set = true;
    } else if (arg == "--communities") {
      communities_k = std::atol(next());
      communities_set = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (input.empty() == dataset.empty()) {  // exactly one source required
    Usage(argv[0]);
    return 2;
  }

  const truss::engine::AlgorithmInfo* info =
      truss::engine::Engine::FindAlgorithm(algo);
  if (info == nullptr) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n", algo.c_str());
    Usage(argv[0]);
    return 2;
  }
  options.algorithm = info->id;

  const truss::Status valid = options.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 2;
  }
  if (truss_set && truss_k < 2) {
    std::fprintf(stderr,
                 "error: --truss K requires K >= 2 (no %ld-truss exists)\n",
                 truss_k);
    return 2;
  }
  if (communities_set && communities_k < 2) {
    std::fprintf(stderr,
                 "error: --communities K requires K >= 2 (no %ld-truss "
                 "exists)\n",
                 communities_k);
    return 2;
  }

  // Load and decompose through the engine facade. --input goes through
  // LoadGraphFile, which sniffs the format: SNAP text edge lists parse
  // with the chunked parallel reader (--threads accelerates ingestion),
  // and TRSB binary snapshots (truss_server --save-index graphs,
  // bench cache files) load directly.
  truss::Graph g;
  truss::Result<truss::engine::DecomposeOutput> out =
      truss::Status::Internal("unset");
  if (!input.empty()) {
    truss::WallTimer load_timer;
    auto loaded = truss::engine::Engine::LoadGraphFile(input, options.threads);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    const double load_seconds = load_timer.Seconds();
    g = std::move(loaded.value().graph);
    out = truss::engine::Engine::Decompose(g, options);
    if (out.ok()) out.value().stats.ingest_seconds = load_seconds;
  } else {
    g = truss::datasets::DatasetByName(dataset).generate();
    out = truss::engine::Engine::Decompose(g, options);
  }
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
    return 1;
  }
  const truss::engine::DecomposeOutput& result = out.value();

  const truss::DegreeStats deg = truss::ComputeDegreeStats(g);
  std::printf("graph: %u vertices, %u edges, dmax %u, dmed %u", g.num_vertices(),
              g.num_edges(), deg.max, deg.median);
  if (result.stats.ingest_seconds > 0.0) {
    std::printf(" (loaded in %s)",
                truss::FormatDuration(result.stats.ingest_seconds).c_str());
  }
  std::printf("\n");

  if (options.top_t >= 1) {
    // Top-t query: print the class records and stop.
    std::printf("top-%d classes in %s (kmax %u, %llu blocks I/O):\n",
                options.top_t,
                truss::FormatDuration(result.stats.wall_seconds).c_str(),
                result.stats.external.kmax,
                static_cast<unsigned long long>(
                    result.stats.total_io_blocks()));
    std::map<uint32_t, uint64_t> sizes;
    for (const auto& rec : result.top_classes) ++sizes[rec.truss];
    for (auto it = sizes.rbegin(); it != sizes.rend(); ++it) {
      std::printf("  phi_%-4u %llu edges\n", it->first,
                  static_cast<unsigned long long>(it->second));
    }
    return 0;
  }

  if (info->external) {
    std::printf("external run: %llu blocks I/O, %u lower-bounding "
                "iterations\n",
                static_cast<unsigned long long>(
                    result.stats.total_io_blocks()),
                result.stats.external.lower_bound_iterations);
  }
  std::printf("decomposed with '%s' in %s; kmax = %u\n", info->name,
              truss::FormatDuration(result.stats.wall_seconds).c_str(),
              result.result.kmax);

  std::printf("\nk-class profile:\n");
  for (const auto& [k, count] : result.result.ClassSizes()) {
    std::printf("  phi_%-4u %llu edges\n", k,
                static_cast<unsigned long long>(count));
  }

  if (truss_set) {
    const auto k = static_cast<uint32_t>(truss_k);
    const truss::Subgraph t = truss::ExtractKTruss(g, result.result, k);
    std::printf("\n%u-truss: %u vertices, %u edges, CC %.3f\n", k,
                t.graph.num_vertices(), t.graph.num_edges(),
                truss::AverageClusteringCoefficient(t.graph));
  }
  if (communities_set) {
    const auto k = static_cast<uint32_t>(communities_k);
    const auto communities = truss::KTrussCommunities(g, result.result, k);
    std::printf("\n%u-truss communities: %zu\n", k, communities.size());
    for (size_t i = 0; i < communities.size() && i < 10; ++i) {
      std::printf("  #%zu: %zu vertices, %llu edges\n", i,
                  communities[i].vertices.size(),
                  static_cast<unsigned long long>(communities[i].edges));
    }
    if (communities.size() > 10) std::printf("  ...\n");
  }
  return 0;
}
