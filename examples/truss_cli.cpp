// trussdec: a command-line truss-decomposition tool over the public API.
//
// Usage:
//   truss_cli --input FILE.txt [--algo improved|cohen|bottomup|topdown]
//             [--budget-mb N] [--top-t T] [--truss K] [--communities K]
//   truss_cli --dataset NAME [...]          (registry stand-in by name)
//
// Reads a SNAP-format edge list (or a registry dataset), runs the chosen
// algorithm, and prints the k-class profile; optionally extracts one
// k-truss or its communities.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "common/timer.h"
#include "datasets/datasets.h"
#include "graph/stats.h"
#include "graph/text_io.h"
#include "io/env.h"
#include "truss/bottom_up.h"
#include "truss/cohen.h"
#include "truss/communities.h"
#include "truss/improved.h"
#include "truss/top_down.h"

namespace {

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s (--input FILE | --dataset NAME) [--algo improved|cohen|"
      "bottomup|topdown] [--budget-mb N] [--top-t T] [--truss K] "
      "[--communities K]\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, dataset, algo = "improved";
  uint64_t budget_mb = 256;
  int top_t = -1;
  uint32_t extract_truss = 0, communities_k = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      input = next();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--algo") {
      algo = next();
    } else if (arg == "--budget-mb") {
      budget_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--top-t") {
      top_t = std::atoi(next());
    } else if (arg == "--truss") {
      extract_truss = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--communities") {
      communities_k = static_cast<uint32_t>(std::atoi(next()));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (input.empty() == dataset.empty()) {  // exactly one source required
    Usage(argv[0]);
    return 2;
  }

  // Load the graph.
  truss::Graph g;
  if (!input.empty()) {
    auto loaded = truss::ReadSnapEdgeList(input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(loaded.value().graph);
  } else {
    g = truss::datasets::DatasetByName(dataset).generate();
  }
  const truss::DegreeStats deg = truss::ComputeDegreeStats(g);
  std::printf("graph: %u vertices, %u edges, dmax %u, dmed %u\n",
              g.num_vertices(), g.num_edges(), deg.max, deg.median);

  // Decompose.
  truss::WallTimer timer;
  truss::TrussDecompositionResult result;
  if (algo == "improved") {
    result = truss::ImprovedTrussDecomposition(g);
  } else if (algo == "cohen") {
    result = truss::CohenTrussDecomposition(g);
  } else if (algo == "bottomup" || algo == "topdown") {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "truss_cli").string();
    std::filesystem::remove_all(dir);
    truss::io::Env env(dir);
    truss::ExternalConfig cfg;
    cfg.memory_budget_bytes = budget_mb << 20;
    truss::ExternalStats stats;
    if (algo == "topdown" && top_t > 0) {
      cfg.top_t = top_t;
      auto records = truss::TopDownTopClasses(env, g, cfg, &stats);
      if (!records.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     records.status().ToString().c_str());
        return 1;
      }
      std::printf("top-%d classes in %s (kmax %u, %llu blocks I/O):\n", top_t,
                  truss::FormatDuration(timer.Seconds()).c_str(), stats.kmax,
                  static_cast<unsigned long long>(stats.io.total_blocks()));
      std::map<uint32_t, uint64_t> sizes;
      for (const auto& rec : records.value()) ++sizes[rec.truss];
      for (auto it = sizes.rbegin(); it != sizes.rend(); ++it) {
        std::printf("  phi_%-4u %llu edges\n", it->first,
                    static_cast<unsigned long long>(it->second));
      }
      return 0;
    }
    auto res = algo == "bottomup" ? truss::BottomUpDecompose(env, g, cfg, &stats)
                                  : truss::TopDownDecompose(env, g, cfg, &stats);
    if (!res.ok()) {
      std::fprintf(stderr, "error: %s\n", res.status().ToString().c_str());
      return 1;
    }
    result = std::move(res.value());
    std::printf("external run: %llu blocks I/O, %u lower-bounding iterations\n",
                static_cast<unsigned long long>(stats.io.total_blocks()),
                stats.lower_bound_iterations);
  } else {
    Usage(argv[0]);
    return 2;
  }
  std::printf("decomposed with '%s' in %s; kmax = %u\n", algo.c_str(),
              truss::FormatDuration(timer.Seconds()).c_str(), result.kmax);

  std::printf("\nk-class profile:\n");
  for (const auto& [k, count] : result.ClassSizes()) {
    std::printf("  phi_%-4u %llu edges\n", k,
                static_cast<unsigned long long>(count));
  }

  if (extract_truss >= 3) {
    const truss::Subgraph t = truss::ExtractKTruss(g, result, extract_truss);
    std::printf("\n%u-truss: %u vertices, %u edges, CC %.3f\n", extract_truss,
                t.graph.num_vertices(), t.graph.num_edges(),
                truss::AverageClusteringCoefficient(t.graph));
  }
  if (communities_k >= 3) {
    const auto communities =
        truss::KTrussCommunities(g, result, communities_k);
    std::printf("\n%u-truss communities: %zu\n", communities_k,
                communities.size());
    for (size_t i = 0; i < communities.size() && i < 10; ++i) {
      std::printf("  #%zu: %zu vertices, %llu edges\n", i,
                  communities[i].vertices.size(),
                  static_cast<unsigned long long>(communities[i].edges));
    }
    if (communities.size() > 10) std::printf("  ...\n");
  }
  return 0;
}
