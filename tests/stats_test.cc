// Unit tests for degree statistics, clustering coefficients, and components.

#include "graph/stats.h"

#include <gtest/gtest.h>

#include "gen/generators.h"

namespace truss {
namespace {

TEST(DegreeStatsTest, CompleteGraph) {
  const DegreeStats s = ComputeDegreeStats(gen::Complete(6));
  EXPECT_EQ(s.max, 5u);
  EXPECT_EQ(s.median, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(DegreeStatsTest, StarGraph) {
  const DegreeStats s = ComputeDegreeStats(gen::Star(10));
  EXPECT_EQ(s.max, 9u);
  EXPECT_EQ(s.median, 1u);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(gen::Complete(7)), 1.0);
}

TEST(ClusteringTest, TriangleFreeIsZero) {
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(gen::Cycle(8)), 0.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(gen::Star(8)), 0.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(gen::Grid(3, 4)), 0.0);
}

TEST(ClusteringTest, LocalCoefficientOfKnownVertex) {
  // Vertex 0 adjacent to 1,2,3; among them only edge (1,2): CC = 1/3.
  const Graph g =
      Graph::FromEdges({{0, 1}, {0, 2}, {0, 3}, {1, 2}}, 0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 3), 0.0);  // degree 1
}

TEST(ClusteringTest, LowDegreeConvention) {
  // Triangle plus a pendant vertex: included-as-zero vs excluded averages.
  const Graph g = Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}, {2, 3}}, 0);
  const double with_low = AverageClusteringCoefficient(g, true);
  const double without_low = AverageClusteringCoefficient(g, false);
  EXPECT_LT(with_low, without_low);
  EXPECT_GT(without_low, 0.0);
}

TEST(ClusteringTest, WattsStrogatzLatticeClustersHighly) {
  // Pure ring lattice (beta = 0) with k=3 has CC = 0.6 per vertex.
  const double cc = AverageClusteringCoefficient(
      gen::WattsStrogatz(60, 3, 0.0, 1));
  EXPECT_NEAR(cc, 0.6, 1e-9);
}

TEST(ComponentsTest, CountsIsolatedVertices) {
  const Graph g = Graph::FromEdges({{0, 1}}, 4);
  EXPECT_EQ(CountConnectedComponents(g), 3u);  // {0,1}, {2}, {3}
}

TEST(ComponentsTest, ConnectedShapes) {
  EXPECT_EQ(CountConnectedComponents(gen::Complete(5)), 1u);
  EXPECT_EQ(CountConnectedComponents(gen::Cycle(9)), 1u);
  EXPECT_EQ(CountConnectedComponents(gen::Grid(4, 4)), 1u);
}

TEST(ComponentsTest, DisjointTriangles) {
  const Graph g =
      Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}}, 0);
  EXPECT_EQ(CountConnectedComponents(g), 2u);
}

}  // namespace
}  // namespace truss
