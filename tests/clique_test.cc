// Tests for maximal-clique enumeration and truss/core-pruned maximum clique
// (the §7.4 application).

#include "clique/clique.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/generators.h"
#include "kcore/kcore.h"
#include "truss/improved.h"
#include "truss/result.h"

namespace truss {
namespace {

// Brute-force maximal clique enumeration for cross-checking (tiny graphs).
std::set<std::vector<VertexId>> BruteForceMaximalCliques(const Graph& g) {
  const VertexId n = g.num_vertices();
  TRUSS_CHECK_LE(n, 20u);
  std::vector<std::vector<VertexId>> cliques;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> verts;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) verts.push_back(v);
    }
    bool is_clique = true;
    for (size_t i = 0; i < verts.size() && is_clique; ++i) {
      for (size_t j = i + 1; j < verts.size() && is_clique; ++j) {
        if (!g.HasEdge(verts[i], verts[j])) is_clique = false;
      }
    }
    if (is_clique) cliques.push_back(verts);
  }
  // Keep the maximal ones.
  std::set<std::vector<VertexId>> maximal;
  for (const auto& c : cliques) {
    bool contained = false;
    for (const auto& d : cliques) {
      if (d.size() > c.size() &&
          std::includes(d.begin(), d.end(), c.begin(), c.end())) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.insert(c);
  }
  return maximal;
}

TEST(MaximalCliquesTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = gen::ErdosRenyiGnm(12, 30, seed);
    const auto expected = BruteForceMaximalCliques(g);
    const auto got_list = MaximalCliques(g);
    const std::set<std::vector<VertexId>> got(got_list.begin(),
                                              got_list.end());
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST(MaximalCliquesTest, CompleteGraphHasOne) {
  const auto cliques = MaximalCliques(gen::Complete(6));
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 6u);
}

TEST(MaximalCliquesTest, TriangleFreeGraphYieldsEdges) {
  const Graph g = gen::Cycle(8);
  const auto cliques = MaximalCliques(g);
  EXPECT_EQ(cliques.size(), 8u);  // every edge is maximal
  for (const auto& c : cliques) EXPECT_EQ(c.size(), 2u);
}

TEST(MaximalCliquesTest, RespectsLimit) {
  const Graph g = gen::ErdosRenyiGnm(30, 150, 3);
  const auto cliques = MaximalCliques(g, 5);
  EXPECT_EQ(cliques.size(), 5u);
}

class MaxCliqueModeTest : public ::testing::TestWithParam<CliquePruning> {};

TEST_P(MaxCliqueModeTest, FindsThePlantedClique) {
  const Graph g =
      gen::PlantClique(gen::ErdosRenyiGnm(60, 150, 17), 8, 18);
  const MaxCliqueResult r = MaximumClique(g, GetParam());
  EXPECT_GE(r.clique.size(), 8u);
  // Returned set must actually be a clique.
  for (size_t i = 0; i < r.clique.size(); ++i) {
    for (size_t j = i + 1; j < r.clique.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(r.clique[i], r.clique[j]));
    }
  }
}

TEST_P(MaxCliqueModeTest, AllModesAgreeOnSize) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = gen::ErdosRenyiGnm(25, 100, seed);
    const size_t baseline =
        MaximumClique(g, CliquePruning::kNone).clique.size();
    EXPECT_EQ(MaximumClique(g, GetParam()).clique.size(), baseline)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, MaxCliqueModeTest,
                         ::testing::Values(CliquePruning::kNone,
                                           CliquePruning::kCore,
                                           CliquePruning::kTruss),
                         [](const auto& info) {
                           switch (info.param) {
                             case CliquePruning::kNone:
                               return "None";
                             case CliquePruning::kCore:
                               return "Core";
                             case CliquePruning::kTruss:
                               return "Truss";
                           }
                           return "Unknown";
                         });

// §7.4: ω ≤ kmax and ω ≤ cmax + 1, with kmax the tighter bound.
TEST(CliqueBoundsTest, TrussBoundIsTighter) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g =
        gen::PlantClique(gen::ErdosRenyiGnm(50, 250, seed), 7, seed + 5);
    const size_t omega = MaximumClique(g, CliquePruning::kNone).clique.size();
    const TrussDecompositionResult truss = ImprovedTrussDecomposition(g);
    const CoreDecomposition cores = DecomposeCores(g);
    EXPECT_LE(omega, truss.kmax);
    EXPECT_LE(omega, cores.cmax + 1);
    EXPECT_LE(truss.kmax, cores.cmax + 1);  // paper: kmax is the lower bound
  }
}

TEST(CliqueBoundsTest, PruningSearchesFewerEdges) {
  const Graph g =
      gen::PlantClique(gen::ErdosRenyiGnm(150, 500, 23), 9, 24);
  const MaxCliqueResult none = MaximumClique(g, CliquePruning::kNone);
  const MaxCliqueResult core = MaximumClique(g, CliquePruning::kCore);
  const MaxCliqueResult truss = MaximumClique(g, CliquePruning::kTruss);
  EXPECT_EQ(none.clique.size(), core.clique.size());
  EXPECT_EQ(none.clique.size(), truss.clique.size());
  // The truss-pruned search space must not exceed the core-pruned one.
  EXPECT_LE(truss.searched_edges, core.searched_edges);
  EXPECT_LE(core.searched_edges, none.searched_edges);
}

TEST(MaxCliqueTest, EdgeCases) {
  EXPECT_TRUE(MaximumClique(Graph(), CliquePruning::kTruss).clique.empty());
  const Graph single = Graph::FromEdges({{0, 1}}, 0);
  EXPECT_EQ(MaximumClique(single, CliquePruning::kTruss).clique.size(), 2u);
  const Graph tri = gen::Complete(3);
  EXPECT_EQ(MaximumClique(tri, CliquePruning::kCore).clique.size(), 3u);
}

}  // namespace
}  // namespace truss
