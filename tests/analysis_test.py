#!/usr/bin/env python3
"""Self-test for the truss-tidy framework (scripts/analysis/).

Mirrors tests/lint_arch_test.py: builds throwaway fixture trees with one
planted violation per rule plus clean counterparts, and checks that each
pass reports exactly the planted set. Also covers the suppression
round-trip (suppressed violations vanish, stale entries are detected),
the layering manifest/DAG machinery, and the nodiscard --fix rewrite.

The arch pass keeps its dedicated coverage in tests/lint_arch_test.py
(via the back-compat shim); here it only gets a smoke test through the
shared runner.

Run directly or via CTest (registered as analysis.selftest). The
package is located through $TRUSS_ANALYSIS_SCRIPTS or, failing that,
relative to this file, so the test works from any build directory.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest


def scripts_dir():
    path = os.environ.get("TRUSS_ANALYSIS_SCRIPTS")
    if not path:
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "scripts")
    return os.path.abspath(path)


sys.path.insert(0, scripts_dir())

from analysis import framework  # noqa: E402
from analysis import model  # noqa: E402
from analysis.passes import layering  # noqa: E402
from analysis.passes import nodiscard  # noqa: E402


def load_runner():
    path = os.path.join(scripts_dir(), "analysis", "run.py")
    spec = importlib.util.spec_from_file_location("truss_tidy_run", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(root, relpath, content):
    full = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(full), exist_ok=True)
    with open(full, "w", encoding="utf-8") as f:
        f.write(content)


def write_manifest(root, modules):
    write(root, "scripts/analysis/layers.json",
          json.dumps({"modules": modules}))


def run_pass(root, name, suppressions=None):
    repo = model.RepoModel(root)
    result = framework.run_passes(repo, [name], suppressions)[0]
    return [str(v) for v in result.violations]


def rules_of(violations):
    return sorted(v.split("[", 1)[1].split("]", 1)[0] for v in violations)


class FixtureCase(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name

    def tearDown(self):
        self.tmp.cleanup()


class ModelTest(FixtureCase):
    def test_line_layers_and_includes(self):
        write(self.root, "src/common/x.h",
              '#include "common/y.h"  // pulls in Y\n'
              '/* block\n'
              '   comment */ int x = 0;  // trailing: note\n'
              'const char* s = "in a string // not a comment";\n')
        repo = model.RepoModel(self.root)
        f = repo.files["src/common/x.h"]
        self.assertEqual(f.includes, [(1, "common/y.h")])
        self.assertEqual(f.module, "common")
        self.assertTrue(f.is_header)
        self.assertIn("comment", f.lines[2].comment)
        self.assertIn("trailing: note", f.lines[2].comment)
        self.assertIn("int x = 0;", f.lines[2].code)
        self.assertEqual(f.lines[3].literals,
                         ["in a string // not a comment"])
        self.assertNotIn("not a comment", f.lines[3].code)

    def test_scope_is_first_party_tops_only(self):
        write(self.root, "src/common/a.h", "int a;\n")
        write(self.root, "third_party/skip.h", "int b;\n")
        write(self.root, "src/common/notes.txt", "not source\n")
        repo = model.RepoModel(self.root)
        self.assertEqual(sorted(repo.files), ["src/common/a.h"])


class SuppressionTest(FixtureCase):
    def test_round_trip_suppresses_and_tracks_stale(self):
        write(self.root, "src/truss/bad.cc", "std::thread t;\n")
        suppressions = {
            "raw-thread": {"src/truss/bad.cc": "fixture: planted"},
            "bare-assert": {"src/never/was.cc": "fixture: stale entry"},
        }
        repo = model.RepoModel(self.root)
        result = framework.run_passes(repo, ["arch"], suppressions)[0]
        self.assertEqual(result.violations, [])
        self.assertEqual(result.used_suppressions,
                         {("raw-thread", "src/truss/bad.cc")})
        reporter = framework.Reporter(suppressions)
        reporter.used_suppressions = result.used_suppressions
        self.assertEqual(reporter.unused_suppressions(),
                         [("bare-assert", "src/never/was.cc")])

    def test_loader_rejects_bad_shapes(self):
        path = os.path.join(self.root, "s.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"raw-thread": {"src/x.cc": ""}}, f)
        with self.assertRaises(ValueError):
            framework.load_suppressions(path)
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"raw-thread": ["src/x.cc"]}, f)
        with self.assertRaises(ValueError):
            framework.load_suppressions(path)


class NodiscardTest(FixtureCase):
    def test_missing_annotation_is_flagged(self):
        write(self.root, "src/io/env.h",
              "Status WriteFile(const std::string& path);\n"
              "Result<int> ReadCount();\n"
              "static Status Helper();\n")
        violations = run_pass(self.root, "nodiscard")
        self.assertEqual(rules_of(violations),
                         ["nodiscard", "nodiscard", "nodiscard"])
        self.assertIn("WriteFile", violations[0])

    def test_annotated_declarations_are_clean(self):
        write(self.root, "src/io/env.h",
              "TRUSS_NODISCARD Status WriteFile(const std::string& path);\n"
              "TRUSS_NODISCARD\n"
              "Result<int> ReadCount();\n"
              "template <typename T>\n"
              "TRUSS_NODISCARD Result<T> Parse(const char* s);\n")
        self.assertEqual(run_pass(self.root, "nodiscard"), [])

    def test_scope_is_src_headers_only(self):
        write(self.root, "src/io/env.cc", "Status WriteFile() { ... }\n")
        write(self.root, "tests/env_test.h", "Status Fixture();\n")
        write(self.root, "src/io/doc.h",
              "// returns Status::OK() on success\n"
              'const char* kMsg = "Status Save(x) failed";\n')
        self.assertEqual(run_pass(self.root, "nodiscard"), [])

    def test_fix_inserts_annotation_and_is_idempotent(self):
        write(self.root, "src/io/env.h",
              "class Env {\n"
              " public:\n"
              "  Status WriteFile(const std::string& path);\n"
              "};\n")
        repo = model.RepoModel(self.root)
        fixed = nodiscard.NodiscardPass().fix(repo)
        self.assertEqual(fixed, ["src/io/env.h"])
        with open(os.path.join(self.root, "src/io/env.h"),
                  encoding="utf-8") as f:
            content = f.read()
        self.assertIn("  TRUSS_NODISCARD Status WriteFile", content)
        self.assertEqual(run_pass(self.root, "nodiscard"), [])
        self.assertEqual(nodiscard.NodiscardPass().fix(
            model.RepoModel(self.root)), [])


class LayeringTest(FixtureCase):
    def _tree(self):
        write(self.root, "src/common/base.h", "int b;\n")
        write(self.root, "src/graph/graph.h", '#include "common/base.h"\n')
        write(self.root, "src/truss/peel.h", '#include "graph/graph.h"\n')

    def test_matching_manifest_is_clean(self):
        self._tree()
        write_manifest(self.root, {"common": [], "graph": ["common"],
                                   "truss": ["graph"]})
        self.assertEqual(run_pass(self.root, "layering"), [])

    def test_undeclared_edge_is_flagged(self):
        self._tree()
        write_manifest(self.root, {"common": [], "graph": ["common"],
                                   "truss": []})
        violations = run_pass(self.root, "layering")
        self.assertEqual(rules_of(violations), ["include-layering"])
        self.assertIn("truss -> graph", violations[0])

    def test_missing_and_stale_manifest_modules(self):
        self._tree()
        write_manifest(self.root, {"common": [], "graph": ["common"],
                                   "truss": ["graph"], "ghost": []})
        violations = run_pass(self.root, "layering")
        self.assertEqual(rules_of(violations), ["layering-manifest"])
        self.assertIn("ghost", violations[0])
        write_manifest(self.root, {"common": [], "graph": ["common"]})
        violations = run_pass(self.root, "layering")
        # The undeclared module is flagged, and its include edges (which
        # now have an empty allow set) fall out as layering violations too.
        self.assertEqual(rules_of(violations),
                         ["include-layering", "layering-manifest"])
        self.assertTrue(any("src/truss" in v for v in violations))

    def test_absent_manifest_is_flagged(self):
        self._tree()
        violations = run_pass(self.root, "layering")
        self.assertEqual(rules_of(violations), ["layering-manifest"])
        self.assertIn("cannot read manifest", violations[0])

    def test_declared_cycle_is_flagged(self):
        self._tree()
        write_manifest(self.root, {"common": ["truss"], "graph": ["common"],
                                   "truss": ["graph"]})
        violations = run_pass(self.root, "layering")
        self.assertEqual(rules_of(violations), ["layering-manifest"])
        self.assertIn("cycle", violations[0])

    def test_file_level_cycle_is_flagged(self):
        write(self.root, "src/common/a.h", '#include "common/b.h"\n')
        write(self.root, "src/common/b.h", '#include "common/a.h"\n')
        write_manifest(self.root, {"common": []})
        violations = run_pass(self.root, "layering")
        self.assertEqual(rules_of(violations), ["include-cycle"])
        self.assertIn("src/common/a.h -> src/common/b.h -> src/common/a.h",
                      violations[0])

    def test_cycle_finders_directly(self):
        self.assertIsNone(layering.find_declared_cycle(
            {"a": ["b"], "b": []}))
        cycle = layering.find_declared_cycle({"a": ["b"], "b": ["a"]})
        self.assertEqual(cycle, ["a", "b", "a"])
        self.assertIsNone(layering.find_file_cycle({"x": {"y"}, "y": set()}))
        self.assertEqual(layering.find_file_cycle({"x": {"x"}}),
                         ["x", "x"])


class AtomicsTest(FixtureCase):
    def test_untagged_use_is_flagged(self):
        write(self.root, "src/common/c.cc",
              "c.fetch_add(1, std::memory_order_relaxed);\n")
        violations = run_pass(self.root, "atomics")
        self.assertEqual(rules_of(violations), ["ordering-tag"])

    def test_tag_on_line_or_block_above_is_clean(self):
        write(self.root, "src/common/c.cc",
              "// ordering: relaxed — stat counter, read after join\n"
              "c.fetch_add(1, std::memory_order_relaxed);\n"
              "f.store(true, std::memory_order_release);"
              "  // ordering: release — publishes the buffer\n")
        self.assertEqual(run_pass(self.root, "atomics"), [])

    def test_stale_tag_is_flagged(self):
        write(self.root, "src/common/c.cc",
              "// ordering: relaxed — was relaxed before the fix\n"
              "f.store(true, std::memory_order_release);\n")
        violations = run_pass(self.root, "atomics")
        self.assertEqual(rules_of(violations), ["ordering-mismatch"])
        self.assertIn("stale", violations[0])

    def test_unknown_order_and_empty_justification_are_flagged(self):
        write(self.root, "src/common/c.cc",
              "// ordering: sloppy — not a real ordering\n"
              "c.load(std::memory_order_relaxed);\n")
        self.assertEqual(rules_of(run_pass(self.root, "atomics")),
                         ["ordering-mismatch"])
        write(self.root, "src/common/c.cc",
              "// ordering: relaxed\n"
              "c.load(std::memory_order_relaxed);\n")
        violations = run_pass(self.root, "atomics")
        self.assertEqual(rules_of(violations), ["ordering-mismatch"])
        self.assertIn("no justification", violations[0])

    def test_multi_order_line_needs_every_order_tagged(self):
        write(self.root, "src/common/c.cc",
              "// ordering: acq_rel — CAS success publishes, failure "
              "re-reads\n"
              "c.compare_exchange_weak(e, d, std::memory_order_acq_rel,\n"
              "                        std::memory_order_acquire);\n")
        violations = run_pass(self.root, "atomics")
        # The second line's acquire is a separate site with no tag of its
        # own and no covering block (the code line above breaks the block).
        self.assertEqual(rules_of(violations), ["ordering-tag"])
        write(self.root, "src/common/c.cc",
              "// ordering: acq_rel, acquire — success publishes, failure "
              "path only re-reads\n"
              "c.compare_exchange_weak(\n"
              "    e, d, std::memory_order_acq_rel, "
              "std::memory_order_acquire);  "
              "// ordering: acq_rel, acquire — see block above\n")
        self.assertEqual(run_pass(self.root, "atomics"), [])

    def test_scope_is_src_only_and_comments_never_fire(self):
        write(self.root, "tests/t.cc",
              "c.load(std::memory_order_seq_cst);\n")
        write(self.root, "src/common/doc.cc",
              "// prose mentioning memory_order_relaxed is fine untagged\n"
              "int x = 0;\n")
        self.assertEqual(run_pass(self.root, "atomics"), [])


class RunnerTest(FixtureCase):
    def test_exit_codes_and_metrics(self):
        runner = load_runner()
        write(self.root, "src/common/ok.cc", "int x = 0;\n")
        write_manifest(self.root, {"common": []})
        self.assertEqual(runner.main(["--root", self.root, "--all"]), 0)
        write(self.root, "src/common/bad.cc", "std::thread t;\n")
        self.assertEqual(runner.main(["--root", self.root, "--all"]), 1)
        self.assertEqual(runner.main(["--root", self.root]), 2)
        self.assertEqual(
            runner.main(["--root", self.root, "--pass", "nope"]), 2)
        self.assertEqual(
            runner.main(["--root", os.path.join(self.root, "gone"),
                         "--all"]), 2)

    def test_fix_flag_repairs_nodiscard(self):
        runner = load_runner()
        write(self.root, "src/io/env.h", "Status Save();\n")
        write_manifest(self.root, {"io": []})
        self.assertEqual(runner.main(["--root", self.root, "--pass",
                                      "nodiscard"]), 1)
        self.assertEqual(runner.main(["--root", self.root, "--pass",
                                      "nodiscard", "--fix"]), 0)
        with open(os.path.join(self.root, "src/io/env.h"),
                  encoding="utf-8") as f:
            self.assertIn("TRUSS_NODISCARD Status Save();", f.read())


if __name__ == "__main__":
    unittest.main()
