#!/usr/bin/env python3
"""End-to-end smoke test for the truss_server binary.

Runs as a CTest case (examples.truss_server.smoke): starts the server on an
ephemeral port against a bundled edge-list fixture, speaks the line
protocol over a real TCP socket — every query type plus a REBUILD swap —
then sends SIGTERM and asserts a clean shutdown with METRIC reporting.

Usage: serve_smoke_test.py <truss_server-binary> <edge-list-fixture>
"""

import re
import signal
import socket
import subprocess
import sys


def fail(msg, server=None):
    if server is not None:
        server.kill()
        out, _ = server.communicate(timeout=10)
        sys.stderr.write("--- server output ---\n" + out)
    sys.stderr.write("FAIL: %s\n" % msg)
    sys.exit(1)


def expect(line, pattern, server):
    if re.fullmatch(pattern, line) is None:
        fail("response %r does not match %r" % (line, pattern), server)


def main():
    if len(sys.argv) != 3:
        fail("usage: serve_smoke_test.py <truss_server> <fixture>")
    binary, fixture = sys.argv[1], sys.argv[2]

    server = subprocess.Popen(
        [binary, "--input", fixture, "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)

    # The SERVING line is printed (and flushed) once the socket is bound.
    serving = server.stdout.readline()
    match = re.search(r"\bport=(\d+)\b", serving)
    if match is None:
        fail("no SERVING port= line, got %r" % serving, server)
    port = int(match.group(1))

    conn = socket.create_connection(("127.0.0.1", port), timeout=10)
    reader = conn.makefile("r", encoding="ascii", newline="\n")

    def ask(query):
        conn.sendall((query + "\n").encode("ascii"))
        return reader.readline().rstrip("\n")

    # two_triangles.txt: triangles {0,1,2} and {1,2,3} sharing edge (1,2),
    # plus pendant vertex 4. The 3-truss is one community {0,1,2,3} with 5
    # edges; edge (3,4) stays in the 2-class.
    expect(ask("PING"), r"OK PONG", server)
    expect(ask("TRUSS 0 1"), r"OK TRUSS 3", server)
    expect(ask("TRUSS 3 4"), r"OK TRUSS 2", server)  # pendant edge
    expect(ask("TRUSS 0 3"), r"OK TRUSS 0", server)  # not an edge
    expect(ask("MAXK 2"), r"OK MAXK k=3 community=\d+ size=4", server)
    expect(ask("MAXK 4"), r"OK MAXK k=2 community=none", server)
    expect(ask("COMM 0 3"), r"OK COMM id=\d+ k=3 vertices=4 edges=5 .*",
           server)
    expect(ask("COMM 0 4"), r"ERR NOT_FOUND .*", server)
    expect(ask("TOP 5"), r"OK TOP 1 \d+:3:4:[0-9.]+", server)
    expect(ask("MEMBERS 0"), r"OK MEMBERS 4 0 1 2 3", server)
    expect(ask("VERSION"), r"OK VERSION 1", server)
    expect(ask("REBUILD parallel"),
           r"OK REBUILD version=2 seconds=[0-9.]+", server)
    expect(ask("VERSION"), r"OK VERSION 2", server)
    expect(ask("TRUSS 0 1"), r"OK TRUSS 3", server)  # same answer post-swap
    expect(ask("NONSENSE"), r"ERR BAD_REQUEST .*", server)
    expect(ask("STATS"), r"OK STATS version=2 .*kmax=3.*", server)
    expect(ask("QUIT"), r"OK BYE", server)
    if reader.readline() != "":
        fail("connection not closed after QUIT", server)
    conn.close()

    server.send_signal(signal.SIGTERM)
    try:
        out, _ = server.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        fail("server did not shut down on SIGTERM", server)
    if server.returncode != 0:
        fail("server exited %d\n%s" % (server.returncode, out))
    for metric in ("serve_connections", "serve_queries", "serve_rebuilds",
                   "serve_final_version"):
        if not re.search(r"^METRIC %s \d+$" % metric, out, re.MULTILINE):
            fail("missing METRIC %s in shutdown output:\n%s" % (metric, out))

    print("serve smoke test passed")
    sys.exit(0)


if __name__ == "__main__":
    main()
