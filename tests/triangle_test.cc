// Unit tests for triangle counting / listing and edge supports.

#include "triangle/triangle.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "gen/generators.h"
#include "graph/graph.h"

namespace truss {
namespace {

TEST(TriangleTest, KnownCounts) {
  EXPECT_EQ(CountTriangles(gen::Complete(3)), 1u);
  EXPECT_EQ(CountTriangles(gen::Complete(4)), 4u);
  EXPECT_EQ(CountTriangles(gen::Complete(6)), 20u);  // C(6,3)
  EXPECT_EQ(CountTriangles(gen::Cycle(10)), 0u);
  EXPECT_EQ(CountTriangles(gen::Star(10)), 0u);
  EXPECT_EQ(CountTriangles(gen::Grid(5, 5)), 0u);
}

TEST(TriangleTest, EachTriangleListedExactlyOnce) {
  const Graph g = gen::ErdosRenyiGnm(40, 300, 3);
  std::set<std::array<VertexId, 3>> seen;
  ForEachTriangle(g, [&](VertexId u, VertexId v, VertexId w, EdgeId, EdgeId,
                         EdgeId) {
    std::array<VertexId, 3> t = {u, v, w};
    std::sort(t.begin(), t.end());
    EXPECT_TRUE(seen.insert(t).second) << "duplicate triangle";
  });
  EXPECT_EQ(seen.size(), CountTriangles(g));
}

TEST(TriangleTest, ListedEdgesFormTheTriangle) {
  const Graph g = gen::ErdosRenyiGnm(30, 200, 5);
  ForEachTriangle(g, [&](VertexId u, VertexId v, VertexId w, EdgeId uv,
                         EdgeId uw, EdgeId vw) {
    EXPECT_EQ(g.edge(uv), MakeEdge(u, v));
    EXPECT_EQ(g.edge(uw), MakeEdge(u, w));
    EXPECT_EQ(g.edge(vw), MakeEdge(v, w));
  });
}

TEST(TriangleTest, SupportsMatchNaive) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = gen::ErdosRenyiGnm(50, 300 + seed * 50, seed);
    EXPECT_EQ(ComputeEdgeSupports(g), ComputeEdgeSupportsNaive(g))
        << "seed " << seed;
  }
}

TEST(TriangleTest, SupportSumIsThreeTimesTriangles) {
  const Graph g = gen::ErdosRenyiGnm(60, 500, 7);
  const auto sup = ComputeEdgeSupports(g);
  uint64_t total = 0;
  for (const uint32_t s : sup) total += s;
  EXPECT_EQ(total, 3 * CountTriangles(g));
}

TEST(TriangleTest, CompleteGraphSupports) {
  const VertexId n = 8;
  const auto sup = ComputeEdgeSupports(gen::Complete(n));
  for (const uint32_t s : sup) EXPECT_EQ(s, n - 2);
}

TEST(TriangleTest, EmptyAndTinyGraphs) {
  EXPECT_EQ(CountTriangles(Graph()), 0u);
  EXPECT_EQ(CountTriangles(Graph::FromEdges({{0, 1}}, 0)), 0u);
}

TEST(OrientedAdjacencyTest, OutDegreeBoundedBySqrtM) {
  // For any graph, |N+(v)| ≤ 2√m under degree ordering (paper Theorem 1's
  // nb≥ argument).
  const Graph g = gen::BarabasiAlbert(400, 5, 9);
  const OrientedAdjacency oriented(g);
  const double bound = 2.0 * std::sqrt(static_cast<double>(g.num_edges()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(static_cast<double>(oriented.out(v).size()), bound);
  }
}

TEST(OrientedAdjacencyTest, RanksAreAPermutation) {
  const Graph g = gen::ErdosRenyiGnm(50, 100, 21);
  const OrientedAdjacency oriented(g);
  std::vector<bool> seen(g.num_vertices(), false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(oriented.rank(v), g.num_vertices());
    EXPECT_FALSE(seen[oriented.rank(v)]);
    seen[oriented.rank(v)] = true;
  }
}

}  // namespace
}  // namespace truss
