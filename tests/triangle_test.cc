// Unit tests for triangle counting / listing and edge supports.

#include "triangle/triangle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <string>

#include "gen/generators.h"
#include "graph/graph.h"

namespace truss {
namespace {

TEST(TriangleTest, KnownCounts) {
  EXPECT_EQ(CountTriangles(gen::Complete(3)), 1u);
  EXPECT_EQ(CountTriangles(gen::Complete(4)), 4u);
  EXPECT_EQ(CountTriangles(gen::Complete(6)), 20u);  // C(6,3)
  EXPECT_EQ(CountTriangles(gen::Cycle(10)), 0u);
  EXPECT_EQ(CountTriangles(gen::Star(10)), 0u);
  EXPECT_EQ(CountTriangles(gen::Grid(5, 5)), 0u);
}

TEST(TriangleTest, EachTriangleListedExactlyOnce) {
  const Graph g = gen::ErdosRenyiGnm(40, 300, 3);
  std::set<std::array<VertexId, 3>> seen;
  ForEachTriangle(g, [&](VertexId u, VertexId v, VertexId w, EdgeId, EdgeId,
                         EdgeId) {
    std::array<VertexId, 3> t = {u, v, w};
    std::sort(t.begin(), t.end());
    EXPECT_TRUE(seen.insert(t).second) << "duplicate triangle";
  });
  EXPECT_EQ(seen.size(), CountTriangles(g));
}

TEST(TriangleTest, ListedEdgesFormTheTriangle) {
  const Graph g = gen::ErdosRenyiGnm(30, 200, 5);
  ForEachTriangle(g, [&](VertexId u, VertexId v, VertexId w, EdgeId uv,
                         EdgeId uw, EdgeId vw) {
    EXPECT_EQ(g.edge(uv), MakeEdge(u, v));
    EXPECT_EQ(g.edge(uw), MakeEdge(u, w));
    EXPECT_EQ(g.edge(vw), MakeEdge(v, w));
  });
}

TEST(TriangleTest, SupportsMatchNaive) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = gen::ErdosRenyiGnm(50, 300 + seed * 50, seed);
    EXPECT_EQ(ComputeEdgeSupports(g), ComputeEdgeSupportsNaive(g))
        << "seed " << seed;
  }
}

TEST(TriangleTest, SupportSumIsThreeTimesTriangles) {
  const Graph g = gen::ErdosRenyiGnm(60, 500, 7);
  const auto sup = ComputeEdgeSupports(g);
  uint64_t total = 0;
  for (const uint32_t s : sup) total += s;
  EXPECT_EQ(total, 3 * CountTriangles(g));
}

TEST(TriangleTest, CompleteGraphSupports) {
  const VertexId n = 8;
  const auto sup = ComputeEdgeSupports(gen::Complete(n));
  for (const uint32_t s : sup) EXPECT_EQ(s, n - 2);
}

TEST(TriangleTest, EmptyAndTinyGraphs) {
  EXPECT_EQ(CountTriangles(Graph()), 0u);
  EXPECT_EQ(CountTriangles(Graph::FromEdges({{0, 1}}, 0)), 0u);
}

// --- parallel support computation --------------------------------------

// Adversarial degree skew: a star hub plus a clique sharing the hub, so one
// vertex carries most of the oriented work and shard balancing matters.
Graph SkewedHubGraph() {
  std::vector<Edge> edges;
  const VertexId hub = 0;
  for (VertexId v = 1; v <= 300; ++v) edges.push_back(MakeEdge(hub, v));
  for (VertexId i = 1; i <= 12; ++i) {
    for (VertexId j = i + 1; j <= 12; ++j) edges.push_back(MakeEdge(i, j));
  }
  return Graph::FromEdges(std::move(edges), 0);
}

class ParallelSupportTest : public ::testing::TestWithParam<uint32_t> {};

// ComputeEdgeSupports(g, t) must be byte-identical to the naive oracle and
// to the sequential path for every thread count, on random and adversarial
// (star / skew-degree) graphs.
TEST_P(ParallelSupportTest, MatchesOracleAndSequentialOnEveryGraphShape) {
  const uint32_t threads = GetParam();
  const Graph graphs[] = {
      gen::ErdosRenyiGnm(80, 600, 13),      // random
      gen::BarabasiAlbert(300, 4, 23),      // power-law
      gen::Star(200),                       // pure star: zero triangles
      SkewedHubGraph(),                     // hub + clique skew
      gen::Complete(12),                    // max density
      Graph(),                              // empty
      Graph::FromEdges({{0, 1}}, 0),        // single edge
  };
  for (size_t i = 0; i < std::size(graphs); ++i) {
    const Graph& g = graphs[i];
    const std::vector<uint32_t> parallel = ComputeEdgeSupports(g, threads);
    EXPECT_EQ(parallel, ComputeEdgeSupportsNaive(g)) << "graph " << i;
    EXPECT_EQ(parallel, ComputeEdgeSupports(g)) << "graph " << i;
  }
}

TEST_P(ParallelSupportTest, OrientedAdjacencyIsThreadCountInvariant) {
  const uint32_t threads = GetParam();
  const Graph g = gen::BarabasiAlbert(200, 5, 31);
  const OrientedAdjacency sequential(g);
  const OrientedAdjacency parallel(g, threads);
  ASSERT_TRUE(std::ranges::equal(sequential.offsets(), parallel.offsets()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(sequential.rank(v), parallel.rank(v));
    const auto a = sequential.out(v);
    const auto b = parallel.out(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].rank, b[i].rank);
      EXPECT_EQ(a[i].vertex, b[i].vertex);
      EXPECT_EQ(a[i].edge, b[i].edge);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParallelSupportTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ParallelSupportTest, ThreadsBeyondVertexCountClamp) {
  const Graph g = gen::Complete(5);
  EXPECT_EQ(ComputeEdgeSupports(g, 64), ComputeEdgeSupports(g));
  EXPECT_EQ(ComputeEdgeSupports(Graph(), 64), std::vector<uint32_t>{});
}

TEST(OrientedAdjacencyTest, OutDegreeBoundedBySqrtM) {
  // For any graph, |N+(v)| ≤ 2√m under degree ordering (paper Theorem 1's
  // nb≥ argument).
  const Graph g = gen::BarabasiAlbert(400, 5, 9);
  const OrientedAdjacency oriented(g);
  const double bound = 2.0 * std::sqrt(static_cast<double>(g.num_edges()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(static_cast<double>(oriented.out(v).size()), bound);
  }
}

TEST(OrientedAdjacencyTest, RanksAreAPermutation) {
  const Graph g = gen::ErdosRenyiGnm(50, 100, 21);
  const OrientedAdjacency oriented(g);
  std::vector<bool> seen(g.num_vertices(), false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(oriented.rank(v), g.num_vertices());
    EXPECT_FALSE(seen[oriented.rank(v)]);
    seen[oriented.rank(v)] = true;
  }
}

}  // namespace
}  // namespace truss
