// Tests for the PKT-style level-synchronous parallel peel
// (src/truss/parallel_peel.h): cross-algorithm equivalence against the
// naive oracle and the sequential improved peel on every fixture shape ×
// thread count, determinism, phase timings, memory accounting, and
// cooperative cancellation. The whole suite also runs under the TSan CI
// preset (.github/workflows/ci.yml).

#include "truss/parallel_peel.h"

#include <gtest/gtest.h>

#include <vector>

#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "truss/improved.h"
#include "truss/result.h"
#include "truss/verify.h"

namespace truss {
namespace {

constexpr uint32_t kThreadSweep[] = {1, 2, 4, 8};

// Two triangles sharing edge (1,2) plus a pendant vertex — the bundled CLI
// smoke fixture (tests/data/two_triangles.txt).
Graph TwoTriangles() {
  return Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}},
                          0);
}

void ExpectMatchesSequential(const Graph& g, const char* what) {
  const TrussDecompositionResult oracle = NaiveTrussDecomposition(g);
  const TrussDecompositionResult improved = ImprovedTrussDecomposition(g);
  ASSERT_TRUE(SameDecomposition(oracle, improved)) << what;
  for (const uint32_t threads : kThreadSweep) {
    auto parallel = ParallelTrussDecomposition(g, nullptr, threads);
    ASSERT_TRUE(parallel.ok())
        << what << " t=" << threads << ": " << parallel.status().ToString();
    EXPECT_TRUE(SameDecomposition(oracle, parallel.value()))
        << what << " t=" << threads;
    EXPECT_EQ(parallel.value().kmax, oracle.kmax) << what << " t=" << threads;
    EXPECT_EQ(ValidateDecomposition(g, parallel.value()), "")
        << what << " t=" << threads;
  }
}

TEST(ParallelPeelTest, EmptyGraph) {
  for (const uint32_t threads : kThreadSweep) {
    auto r = ParallelTrussDecomposition(Graph{}, nullptr, threads);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().kmax, 0u);
    EXPECT_TRUE(r.value().truss_number.empty());
  }
}

TEST(ParallelPeelTest, TwoTrianglesFixture) {
  ExpectMatchesSequential(TwoTriangles(), "two_triangles");
}

TEST(ParallelPeelTest, StarHasOnlyZeroSupports) {
  // Degenerate all-isolated-edges shape: m > 0 but every support is 0, so
  // the whole graph peels in one level-0 frontier.
  ExpectMatchesSequential(gen::Star(16), "star");
  for (const uint32_t threads : kThreadSweep) {
    auto r = ParallelTrussDecomposition(gen::Star(16), nullptr, threads);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().kmax, 2u);
  }
}

TEST(ParallelPeelTest, RandomGraphsMatchOracle) {
  ExpectMatchesSequential(gen::ErdosRenyiGnm(40, 120, 3), "er_40_120");
  ExpectMatchesSequential(gen::ErdosRenyiGnm(80, 400, 17), "er_80_400");
  ExpectMatchesSequential(gen::ErdosRenyiGnm(120, 1200, 9), "er_120_1200");
}

TEST(ParallelPeelTest, SkewedDegreeGraphsMatchOracle) {
  // Hub-heavy shapes exercise the galloping branch of the intersection
  // and the degree-balanced frontier sharding.
  ExpectMatchesSequential(gen::BarabasiAlbert(150, 5, 7), "ba_150_5");
  ExpectMatchesSequential(gen::RMat(9, 1500, 0.6, 0.18, 0.12, 5), "rmat_9");
}

TEST(ParallelPeelTest, PlantedCliqueMatchesOracle) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(60, 200, 5), 8, 6);
  ExpectMatchesSequential(g, "planted");
}

TEST(ParallelPeelTest, Figure2Example) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  for (const uint32_t threads : kThreadSweep) {
    auto r = ParallelTrussDecomposition(fx.graph, nullptr, threads);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().kmax, fx.expected_kmax) << "t=" << threads;
    EXPECT_EQ(r.value().truss_number, fx.expected_truss) << "t=" << threads;
  }
}

TEST(ParallelPeelTest, CompleteGraphsJumpStraightToTheTopLevel) {
  // K_n has a single frontier at level n-2: exercises the empty-level
  // jump from level 0 to the first populated one.
  for (VertexId n = 3; n <= 10; ++n) {
    for (const uint32_t threads : {1u, 4u}) {
      auto r = ParallelTrussDecomposition(gen::Complete(n), nullptr, threads);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value().kmax, n) << "K_" << n << " t=" << threads;
      for (const uint32_t t : r.value().truss_number) EXPECT_EQ(t, n);
    }
  }
}

TEST(ParallelPeelTest, TriangleFreeGraphsAreAllPhi2) {
  for (const Graph& g : {gen::Cycle(10), gen::Grid(4, 5), gen::Path(6)}) {
    auto r = ParallelTrussDecomposition(g, nullptr, 4);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().kmax, 2u);
    for (const uint32_t t : r.value().truss_number) EXPECT_EQ(t, 2u);
  }
}

TEST(ParallelPeelTest, RepeatRunsAreIdentical) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(100, 600, 23), 8, 24);
  auto first = ParallelTrussDecomposition(g, nullptr, 4);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 3; ++run) {
    auto again = ParallelTrussDecomposition(g, nullptr, 4);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(first.value().truss_number, again.value().truss_number);
  }
}

TEST(ParallelPeelTest, MemoryTrackerReportsPeak) {
  const Graph g = gen::ErdosRenyiGnm(200, 1000, 3);
  MemoryTracker tracker;
  auto r = ParallelTrussDecomposition(g, &tracker, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(tracker.peak_bytes(), g.SizeBytes());
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(ParallelPeelTest, PhaseTimingsAreFilled) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(120, 800, 11), 9, 12);
  PhaseTimings timings;
  auto r = ParallelTrussDecomposition(g, nullptr, 2, nullptr, &timings);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(timings.support_seconds, 0.0);
  EXPECT_GT(timings.peel_seconds, 0.0);
}

TEST(ParallelPeelTest, CancelHookAbortsMidPeel) {
  // The hook is polled once per sub-level; a multi-level graph must be
  // abandoned partway with Status::Cancelled.
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(80, 400, 7), 9, 8);
  int polls = 0;
  ExecutionHooks hooks;
  hooks.cancel = [&polls] { return ++polls > 2; };
  auto r = ParallelTrussDecomposition(g, nullptr, 4, &hooks);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_GT(polls, 2);
}

TEST(ParallelPeelTest, ProgressReportsEveryPeeledSubLevel) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(80, 400, 13), 8, 14);
  std::vector<ProgressEvent> events;
  ExecutionHooks hooks;
  hooks.progress = [&events](const ProgressEvent& e) { events.push_back(e); };
  auto r = ParallelTrussDecomposition(g, nullptr, 2, &hooks);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(events.empty());
  uint64_t last_done = 0;
  for (const ProgressEvent& e : events) {
    EXPECT_STREQ(e.stage, "peel");
    EXPECT_GE(e.k, 2u);
    // Every reported sub-level peeled something.
    EXPECT_GT(e.done, last_done);
    last_done = e.done;
    EXPECT_EQ(e.total, g.num_edges());
  }
  EXPECT_EQ(events.back().done, g.num_edges());
  EXPECT_EQ(events.back().k, r.value().kmax);
}

}  // namespace
}  // namespace truss
