// Tests for SNAP-format edge-list ingestion and export.

#include "graph/text_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/generators.h"

namespace truss {
namespace {

std::string TempFile(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteText(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(TextIoTest, RoundTrip) {
  const Graph g = gen::ErdosRenyiGnm(50, 200, 7);
  const std::string path = TempFile("truss_roundtrip.txt");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Vertex labels are compacted in first-seen order, so compare as sets of
  // re-labeled edges via the original_id map.
  const Graph& h = loaded.value().graph;
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : h.edges()) {
    const auto u = static_cast<VertexId>(loaded.value().original_id[e.u]);
    const auto v = static_cast<VertexId>(loaded.value().original_id[e.v]);
    EXPECT_TRUE(g.HasEdge(u, v));
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, CommentsAndBlankLines) {
  const std::string path = TempFile("truss_comments.txt");
  WriteText(path,
            "# SNAP header\n"
            "# more comments\n"
            "\n"
            "1 2\n"
            "   \n"
            "2 3\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(TextIoTest, ArbitraryLabelsAreCompacted) {
  const std::string path = TempFile("truss_labels.txt");
  WriteText(path, "1000000 42\n42 77\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const LoadedGraph& lg = loaded.value();
  EXPECT_EQ(lg.graph.num_vertices(), 3u);
  EXPECT_EQ(lg.original_id.size(), 3u);
  EXPECT_EQ(lg.original_id[0], 1000000u);  // first seen
  EXPECT_EQ(lg.original_id[1], 42u);
  EXPECT_EQ(lg.original_id[2], 77u);
  std::remove(path.c_str());
}

TEST(TextIoTest, DirectedDuplicatesCollapse) {
  const std::string path = TempFile("truss_directed.txt");
  WriteText(path, "1 2\n2 1\n1 2\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(TextIoTest, SelfLoopsDropped) {
  const std::string path = TempFile("truss_loops.txt");
  WriteText(path, "5 5\n1 2\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(TextIoTest, LinesLongerThanAnyFixedBufferParse) {
  // Regression: the reader once used a fixed 512-byte fgets buffer, so a
  // longer line was silently split into two rows (mis-parsed ids or a bogus
  // "malformed row" error). Pad comments and an edge row well past that.
  const std::string path = TempFile("truss_long_lines.txt");
  WriteText(path, "# " + std::string(4096, 'x') + "\n" +
                      "1" + std::string(2000, ' ') + "2\n" +
                      std::string(1500, ' ') + "2 3\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
  EXPECT_EQ(loaded.value().original_id,
            (std::vector<uint64_t>{1u, 2u, 3u}));
  std::remove(path.c_str());
}

TEST(TextIoTest, NegativeVertexIdsAreCorruption) {
  // Regression: sscanf("%llu") accepted "-1" and wrapped it to 2^64-1,
  // interning a garbage vertex instead of failing.
  for (const char* row : {"-1 2\n", "1 -2\n", "+1 2\n"}) {
    const std::string path = TempFile("truss_negative.txt");
    WriteText(path, row);
    auto loaded = ReadSnapEdgeList(path);
    ASSERT_FALSE(loaded.ok()) << "accepted " << row;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << row;
    std::remove(path.c_str());
  }
}

TEST(TextIoTest, NonDecimalTokensAreCorruption) {
  for (const char* row : {"1 2x\n", "0x10 2\n", "1.5 2\n", "1\n"}) {
    const std::string path = TempFile("truss_nondecimal.txt");
    WriteText(path, row);
    auto loaded = ReadSnapEdgeList(path);
    ASSERT_FALSE(loaded.ok()) << "accepted " << row;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << row;
    std::remove(path.c_str());
  }
}

TEST(TextIoTest, OverflowingVertexIdIsCorruption) {
  const std::string path = TempFile("truss_overflow.txt");
  WriteText(path, "99999999999999999999999999999999 1\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TextIoTest, CarriageReturnLineEndingsParse) {
  const std::string path = TempFile("truss_crlf.txt");
  WriteText(path, "1 2\r\n2 3\r\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(TextIoTest, MalformedRowIsCorruption) {
  const std::string path = TempFile("truss_bad.txt");
  WriteText(path, "1 2\nnot numbers\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TextIoTest, MissingFileIsIOError) {
  auto loaded = ReadSnapEdgeList("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(TextIoTest, WriteToUnwritablePathFails) {
  const Graph g = gen::Complete(3);
  EXPECT_FALSE(WriteEdgeList(g, "/nonexistent/dir/out.txt").ok());
}

TEST(TextIoTest, ShortWriteIsIOError) {
  // Regression: fprintf return values were ignored, so writing to a full
  // disk still returned OK. /dev/full fails every flush; the graph is big
  // enough that stdio flushes mid-write, exercising the fprintf checks and
  // not just the final fclose.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  const Graph g = gen::ErdosRenyiGnm(2000, 30000, 11);
  const Status status = WriteEdgeList(g, "/dev/full");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace truss
