// Tests for SNAP-format edge-list ingestion and export.

#include "graph/text_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/generators.h"

namespace truss {
namespace {

std::string TempFile(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteText(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(TextIoTest, RoundTrip) {
  const Graph g = gen::ErdosRenyiGnm(50, 200, 7);
  const std::string path = TempFile("truss_roundtrip.txt");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Vertex labels are compacted in first-seen order, so compare as sets of
  // re-labeled edges via the original_id map.
  const Graph& h = loaded.value().graph;
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : h.edges()) {
    const auto u = static_cast<VertexId>(loaded.value().original_id[e.u]);
    const auto v = static_cast<VertexId>(loaded.value().original_id[e.v]);
    EXPECT_TRUE(g.HasEdge(u, v));
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, CommentsAndBlankLines) {
  const std::string path = TempFile("truss_comments.txt");
  WriteText(path,
            "# SNAP header\n"
            "# more comments\n"
            "\n"
            "1 2\n"
            "   \n"
            "2 3\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(TextIoTest, ArbitraryLabelsAreCompacted) {
  const std::string path = TempFile("truss_labels.txt");
  WriteText(path, "1000000 42\n42 77\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const LoadedGraph& lg = loaded.value();
  EXPECT_EQ(lg.graph.num_vertices(), 3u);
  EXPECT_EQ(lg.original_id.size(), 3u);
  EXPECT_EQ(lg.original_id[0], 1000000u);  // first seen
  EXPECT_EQ(lg.original_id[1], 42u);
  EXPECT_EQ(lg.original_id[2], 77u);
  std::remove(path.c_str());
}

TEST(TextIoTest, DirectedDuplicatesCollapse) {
  const std::string path = TempFile("truss_directed.txt");
  WriteText(path, "1 2\n2 1\n1 2\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(TextIoTest, SelfLoopsDropped) {
  const std::string path = TempFile("truss_loops.txt");
  WriteText(path, "5 5\n1 2\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(TextIoTest, MalformedRowIsCorruption) {
  const std::string path = TempFile("truss_bad.txt");
  WriteText(path, "1 2\nnot numbers\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TextIoTest, MissingFileIsIOError) {
  auto loaded = ReadSnapEdgeList("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(TextIoTest, WriteToUnwritablePathFails) {
  const Graph g = gen::Complete(3);
  EXPECT_FALSE(WriteEdgeList(g, "/nonexistent/dir/out.txt").ok());
}

}  // namespace
}  // namespace truss
