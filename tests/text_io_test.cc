// Tests for SNAP-format edge-list ingestion and export.

#include "graph/text_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/generators.h"

namespace truss {
namespace {

std::string TempFile(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteText(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

// The library's SameLoadedGraph is the contract check (labels + edge
// array); the adjacency walk on top re-verifies that CSR construction is
// indeed a pure function of those, with per-entry failure context.
void ExpectSameLoaded(const LoadedGraph& expected, const LoadedGraph& actual,
                      const std::string& context) {
  EXPECT_TRUE(SameLoadedGraph(expected, actual)) << context;
  ASSERT_EQ(expected.graph.num_vertices(), actual.graph.num_vertices())
      << context;
  ASSERT_EQ(expected.graph.num_edges(), actual.graph.num_edges()) << context;
  for (VertexId v = 0; v < expected.graph.num_vertices(); ++v) {
    ASSERT_EQ(expected.graph.degree(v), actual.graph.degree(v)) << context;
    const auto en = expected.graph.neighbors(v);
    const auto an = actual.graph.neighbors(v);
    for (size_t i = 0; i < en.size(); ++i) {
      ASSERT_EQ(en[i].neighbor, an[i].neighbor) << context;
      ASSERT_EQ(en[i].edge, an[i].edge) << context;
    }
  }
}

TEST(TextIoTest, RoundTrip) {
  const Graph g = gen::ErdosRenyiGnm(50, 200, 7);
  const std::string path = TempFile("truss_roundtrip.txt");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Vertex labels are compacted in first-seen order, so compare as sets of
  // re-labeled edges via the original_id map.
  const Graph& h = loaded.value().graph;
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : h.edges()) {
    const auto u = static_cast<VertexId>(loaded.value().original_id[e.u]);
    const auto v = static_cast<VertexId>(loaded.value().original_id[e.v]);
    EXPECT_TRUE(g.HasEdge(u, v));
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, CommentsAndBlankLines) {
  const std::string path = TempFile("truss_comments.txt");
  WriteText(path,
            "# SNAP header\n"
            "# more comments\n"
            "\n"
            "1 2\n"
            "   \n"
            "2 3\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(TextIoTest, ArbitraryLabelsAreCompacted) {
  const std::string path = TempFile("truss_labels.txt");
  WriteText(path, "1000000 42\n42 77\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const LoadedGraph& lg = loaded.value();
  EXPECT_EQ(lg.graph.num_vertices(), 3u);
  EXPECT_EQ(lg.original_id.size(), 3u);
  EXPECT_EQ(lg.original_id[0], 1000000u);  // first seen
  EXPECT_EQ(lg.original_id[1], 42u);
  EXPECT_EQ(lg.original_id[2], 77u);
  std::remove(path.c_str());
}

TEST(TextIoTest, DirectedDuplicatesCollapse) {
  const std::string path = TempFile("truss_directed.txt");
  WriteText(path, "1 2\n2 1\n1 2\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(TextIoTest, SelfLoopsDropped) {
  const std::string path = TempFile("truss_loops.txt");
  WriteText(path, "5 5\n1 2\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(TextIoTest, LinesLongerThanAnyFixedBufferParse) {
  // Regression: the reader once used a fixed 512-byte fgets buffer, so a
  // longer line was silently split into two rows (mis-parsed ids or a bogus
  // "malformed row" error). Pad comments and an edge row well past that.
  const std::string path = TempFile("truss_long_lines.txt");
  WriteText(path, "# " + std::string(4096, 'x') + "\n" +
                      "1" + std::string(2000, ' ') + "2\n" +
                      std::string(1500, ' ') + "2 3\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
  EXPECT_EQ(loaded.value().original_id,
            (std::vector<uint64_t>{1u, 2u, 3u}));
  std::remove(path.c_str());
}

TEST(TextIoTest, NegativeVertexIdsAreCorruption) {
  // Regression: sscanf("%llu") accepted "-1" and wrapped it to 2^64-1,
  // interning a garbage vertex instead of failing.
  for (const char* row : {"-1 2\n", "1 -2\n", "+1 2\n"}) {
    const std::string path = TempFile("truss_negative.txt");
    WriteText(path, row);
    auto loaded = ReadSnapEdgeList(path);
    ASSERT_FALSE(loaded.ok()) << "accepted " << row;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << row;
    std::remove(path.c_str());
  }
}

TEST(TextIoTest, NonDecimalTokensAreCorruption) {
  for (const char* row : {"1 2x\n", "0x10 2\n", "1.5 2\n", "1\n"}) {
    const std::string path = TempFile("truss_nondecimal.txt");
    WriteText(path, row);
    auto loaded = ReadSnapEdgeList(path);
    ASSERT_FALSE(loaded.ok()) << "accepted " << row;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << row;
    std::remove(path.c_str());
  }
}

TEST(TextIoTest, OverflowingVertexIdIsCorruption) {
  const std::string path = TempFile("truss_overflow.txt");
  WriteText(path, "99999999999999999999999999999999 1\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TextIoTest, CarriageReturnLineEndingsParse) {
  const std::string path = TempFile("truss_crlf.txt");
  WriteText(path, "1 2\r\n2 3\r\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(TextIoTest, MalformedRowIsCorruption) {
  const std::string path = TempFile("truss_bad.txt");
  WriteText(path, "1 2\nnot numbers\n");
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TextIoTest, MissingFileIsIOError) {
  auto loaded = ReadSnapEdgeList("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(TextIoTest, WriteToUnwritablePathFails) {
  const Graph g = gen::Complete(3);
  EXPECT_FALSE(WriteEdgeList(g, "/nonexistent/dir/out.txt").ok());
}

TEST(TextIoTest, ShortWriteIsIOError) {
  // Regression: fprintf return values were ignored, so writing to a full
  // disk still returned OK. /dev/full fails every flush; the graph is big
  // enough that stdio flushes mid-write, exercising the fprintf checks and
  // not just the final fclose.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  const Graph g = gen::ErdosRenyiGnm(2000, 30000, 11);
  const Status status = WriteEdgeList(g, "/dev/full");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// --- real-world SNAP quirks: UTF-8 BOM, CRLF -----------------------------

TEST(TextIoTest, LeadingUtf8BomIsSkipped) {
  // Regression: the BOM bytes made row 1 "malformed" (they are neither
  // whitespace nor digits). It must be transparent whether row 1 is a
  // comment or an edge, in both readers.
  for (const char* body : {"# comment\n1 2\n2 3\n", "1 2\n2 3\n"}) {
    const std::string path = TempFile("truss_bom.txt");
    WriteText(path, "\xEF\xBB\xBF" + std::string(body));
    for (const bool sequential : {false, true}) {
      auto loaded = sequential ? ReadSnapEdgeListSequential(path)
                               : ReadSnapEdgeList(path);
      ASSERT_TRUE(loaded.ok())
          << loaded.status().ToString() << " (sequential=" << sequential
          << ", body=" << body << ")";
      EXPECT_EQ(loaded.value().graph.num_edges(), 2u);
      EXPECT_EQ(loaded.value().original_id,
                (std::vector<uint64_t>{1u, 2u, 3u}));
    }
    std::remove(path.c_str());
  }
}

TEST(TextIoTest, CrlfMatchesLfFixture) {
  const std::string lf_path = TempFile("truss_lf.txt");
  const std::string crlf_path = TempFile("truss_crlf_eq.txt");
  WriteText(lf_path, "# header\n10 20\n\n20 30\n30 10\n");
  WriteText(crlf_path, "# header\r\n10 20\r\n\r\n20 30\r\n30 10\r\n");
  for (const bool sequential : {false, true}) {
    auto lf = sequential ? ReadSnapEdgeListSequential(lf_path)
                         : ReadSnapEdgeList(lf_path);
    auto crlf = sequential ? ReadSnapEdgeListSequential(crlf_path)
                           : ReadSnapEdgeList(crlf_path);
    ASSERT_TRUE(lf.ok() && crlf.ok());
    ExpectSameLoaded(lf.value(), crlf.value(),
                     sequential ? "sequential" : "chunked");
  }
  std::remove(lf_path.c_str());
  std::remove(crlf_path.c_str());
}

// --- the 32-bit distinct-id guard ----------------------------------------

TEST(TextIoTest, TooManyDistinctIdsIsCorruption) {
  // Regression: interning cast original_id.size() to uint32 unchecked, so
  // a file with >= 2^32 distinct labels silently aliased vertices. The cap
  // is lowered via options so the guard path runs without a 17 GB fixture.
  const std::string path = TempFile("truss_too_many_ids.txt");
  WriteText(path, "1 2\n3 4\n");
  SnapReadOptions options;
  options.max_distinct_ids = 2;
  auto chunked = ReadSnapEdgeList(path, options);
  auto sequential = ReadSnapEdgeListSequential(path, 2);
  for (const auto* loaded : {&chunked, &sequential}) {
    ASSERT_FALSE(loaded->ok());
    EXPECT_EQ(loaded->status().code(), StatusCode::kCorruption);
    EXPECT_NE(loaded->status().message().find("too many distinct vertex ids"),
              std::string::npos)
        << loaded->status().ToString();
  }
  EXPECT_EQ(chunked.status().message(), sequential.status().message());
  std::remove(path.c_str());
}

TEST(TextIoTest, DistinctIdsExactlyAtCapParse) {
  // Self-loop labels are dropped before interning, so "9 9" must not
  // count against the cap (it does not in the sequential reader).
  const std::string path = TempFile("truss_at_cap.txt");
  WriteText(path, "9 9\n1 2\n2 1\n");
  SnapReadOptions options;
  options.max_distinct_ids = 2;
  auto chunked = ReadSnapEdgeList(path, options);
  auto sequential = ReadSnapEdgeListSequential(path, 2);
  ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  ExpectSameLoaded(sequential.value(), chunked.value(), "at-cap");
  EXPECT_EQ(chunked.value().graph.num_edges(), 1u);
  std::remove(path.c_str());
}

TEST(TextIoTest, GuardAndMalformedRowReportInFileOrder) {
  // Whichever failure a sequential scan hits first must be the one
  // reported, for every chunking — errors are part of the determinism
  // contract.
  struct Case {
    const char* body;
    const char* expect_substring;
  };
  const Case cases[] = {
      // Row 2 overflows the id table before row 3's garbage is reached.
      {"1 2\n3 4\nzzz\n", "too many distinct vertex ids"},
      // Row 2's garbage comes before row 3 could overflow the table.
      {"1 2\nzzz\n3 4\n", "malformed row 2"},
      // Valid rows continue after the overflow point: a chunk may stop
      // collecting once its local table passes the cap, but the guard
      // error must still surface (not a silently truncated parse).
      {"1 2\n3 4\n1 2\n5 6\n", "too many distinct vertex ids"},
  };
  for (const Case& c : cases) {
    const std::string path = TempFile("truss_error_order.txt");
    WriteText(path, c.body);
    auto sequential = ReadSnapEdgeListSequential(path, 2);
    ASSERT_FALSE(sequential.ok());
    EXPECT_NE(sequential.status().message().find(c.expect_substring),
              std::string::npos)
        << sequential.status().ToString();
    for (const uint64_t chunk_bytes : {1ull, 2ull, 7ull, 4096ull}) {
      for (const uint32_t threads : {1u, 4u}) {
        SnapReadOptions options;
        options.max_distinct_ids = 2;
        options.chunk_bytes = chunk_bytes;
        options.threads = threads;
        auto chunked = ReadSnapEdgeList(path, options);
        ASSERT_FALSE(chunked.ok());
        EXPECT_EQ(chunked.status().message(), sequential.status().message())
            << "chunk_bytes=" << chunk_bytes << " threads=" << threads;
      }
    }
    std::remove(path.c_str());
  }
}

// --- chunked parallel reader vs the sequential reference -----------------

// A fixture exercising every grammar corner at once: BOM, comments (LF and
// CRLF), blank and whitespace-only rows, leading/trailing spaces and tabs,
// multi-digit labels (so small chunk sizes split rows mid-token), extra
// trailing columns, duplicate rows in both directions, self-loops, a
// comment longer than any chunk, and no final newline.
std::string TortureFixture() {
  std::string body = "\xEF\xBB\xBF# torture fixture\r\n";
  body += "# " + std::string(300, 'c') + "\n";
  body += "\n   \n\t\n";
  body += "1000001 42\r\n";
  body += "  42\t77 # inline trailing column\n";
  body += "77 1000001 999\n";
  body += "5 5\n";          // self-loop
  body += "42 1000001\n";   // duplicate, reversed
  body += std::string(50, ' ') + "314159 271828\n";
  body += "99 100";  // no trailing newline
  return body;
}

TEST(TextIoTest, ChunkBoundarySweepMatchesSequential) {
  const std::string path = TempFile("truss_chunk_sweep.txt");
  WriteText(path, TortureFixture());
  auto reference = ReadSnapEdgeListSequential(path);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  // Distinct undirected edges: {1000001,42}, {42,77}, {77,1000001},
  // {314159,271828}, {99,100}; the self-loop and the reversed duplicate
  // collapse away.
  EXPECT_EQ(reference.value().graph.num_edges(), 5u);
  EXPECT_EQ(reference.value().original_id,
            (std::vector<uint64_t>{1000001u, 42u, 77u, 314159u, 271828u, 99u,
                                   100u}));

  for (const uint64_t chunk_bytes : {1ull, 2ull, 7ull, 64ull, 4096ull}) {
    for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
      for (const io::FileBuffer::Mode mode :
           {io::FileBuffer::Mode::kAuto, io::FileBuffer::Mode::kRead}) {
        SnapReadOptions options;
        options.chunk_bytes = chunk_bytes;
        options.threads = threads;
        options.buffer_mode = mode;
        auto loaded = ReadSnapEdgeList(path, options);
        ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
        ExpectSameLoaded(
            reference.value(), loaded.value(),
            "chunk_bytes=" + std::to_string(chunk_bytes) +
                " threads=" + std::to_string(threads) +
                " mode=" + std::to_string(static_cast<int>(mode)));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, ChunkSweepMatchesOnGeneratedGraph) {
  // A graph-shaped fixture (many rows, dense label reuse) so the local
  // interning + merge path sees real sharing across chunks.
  const Graph g = gen::ErdosRenyiGnm(300, 2500, 21);
  const std::string path = TempFile("truss_chunk_gen.txt");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto reference = ReadSnapEdgeListSequential(path);
  ASSERT_TRUE(reference.ok());
  for (const uint64_t chunk_bytes : {64ull, 4096ull, 0ull}) {
    for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
      SnapReadOptions options;
      options.chunk_bytes = chunk_bytes;
      options.threads = threads;
      auto loaded = ReadSnapEdgeList(path, options);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ExpectSameLoaded(reference.value(), loaded.value(),
                       "chunk_bytes=" + std::to_string(chunk_bytes) +
                           " threads=" + std::to_string(threads));
    }
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, MalformedRowLineNumberIdenticalAcrossChunkings) {
  // The reported line number counts every physical row (comments, blanks)
  // and must not depend on how rows land in chunks — including when the
  // malformed row does not end with a newline.
  for (const char* tail : {"\n", ""}) {
    const std::string path = TempFile("truss_badline.txt");
    WriteText(path,
              "# header\n1 2\n\n2 3\n   \n3 4\n12 9x7" + std::string(tail));
    auto sequential = ReadSnapEdgeListSequential(path);
    ASSERT_FALSE(sequential.ok());
    EXPECT_NE(sequential.status().message().find("malformed row 7"),
              std::string::npos)
        << sequential.status().ToString();
    for (const uint64_t chunk_bytes : {1ull, 2ull, 7ull, 64ull, 4096ull}) {
      for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
        SnapReadOptions options;
        options.chunk_bytes = chunk_bytes;
        options.threads = threads;
        auto chunked = ReadSnapEdgeList(path, options);
        ASSERT_FALSE(chunked.ok());
        EXPECT_EQ(chunked.status().code(), StatusCode::kCorruption);
        EXPECT_EQ(chunked.status().message(), sequential.status().message())
            << "chunk_bytes=" << chunk_bytes << " threads=" << threads;
      }
    }
    std::remove(path.c_str());
  }
}

TEST(TextIoTest, EmptyAndCommentOnlyFilesParse) {
  for (const char* body : {"", "# nothing but comments\n# more\n", "\n\n"}) {
    const std::string path = TempFile("truss_empty.txt");
    WriteText(path, body);
    for (const uint32_t threads : {1u, 4u}) {
      auto loaded = ReadSnapEdgeList(path, threads);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      EXPECT_EQ(loaded.value().graph.num_vertices(), 0u);
      EXPECT_EQ(loaded.value().graph.num_edges(), 0u);
      EXPECT_TRUE(loaded.value().original_id.empty());
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace truss
