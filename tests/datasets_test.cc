// Tests for the dataset registry (Table 2 stand-ins). Only the small
// datasets are generated here; the large ones are exercised by the benches.

#include "datasets/datasets.h"

#include <gtest/gtest.h>

#include "graph/stats.h"
#include "truss/improved.h"
#include "truss/result.h"

namespace truss::datasets {
namespace {

TEST(DatasetsTest, RegistryHasNineInPaperOrder) {
  const auto& specs = PaperDatasets();
  ASSERT_EQ(specs.size(), 9u);
  const char* expected[] = {"P2P", "HEP",  "Amazon", "Wiki", "Skitter",
                            "Blog", "LJ",  "BTC",    "Web"};
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].name, expected[i]);
    EXPECT_GT(specs[i].paper_edges, specs[i].paper_vertices / 2);
    EXPECT_TRUE(static_cast<bool>(specs[i].generate));
  }
}

TEST(DatasetsTest, LargeFlagsMatchPaper) {
  EXPECT_FALSE(DatasetByName("P2P").large);
  EXPECT_FALSE(DatasetByName("Blog").large);
  EXPECT_TRUE(DatasetByName("LJ").large);
  EXPECT_TRUE(DatasetByName("BTC").large);
  EXPECT_TRUE(DatasetByName("Web").large);
}

TEST(DatasetsTest, P2PHasPaperScaleAndKmax) {
  const DatasetSpec& spec = DatasetByName("P2P");
  const Graph g = spec.generate();
  // P2P is small enough to keep at the paper's true size.
  EXPECT_NEAR(static_cast<double>(g.num_vertices()),
              static_cast<double>(spec.paper_vertices), 100.0);
  EXPECT_NEAR(static_cast<double>(g.num_edges()),
              static_cast<double>(spec.paper_edges), 200.0);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_EQ(r.kmax, spec.paper_kmax);  // 5, forced by the planted clique
}

TEST(DatasetsTest, HEPMatchesPaperShape) {
  const DatasetSpec& spec = DatasetByName("HEP");
  const Graph g = spec.generate();
  EXPECT_NEAR(static_cast<double>(g.num_vertices()),
              static_cast<double>(spec.paper_vertices), 500.0);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_GE(r.kmax, spec.paper_kmax);  // planted 32-clique
  // Power-law-ish: max degree far above median.
  const DegreeStats s = ComputeDegreeStats(g);
  EXPECT_GT(s.max, 10 * std::max(1u, s.median));
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  const DatasetSpec& spec = DatasetByName("P2P");
  const Graph a = spec.generate();
  const Graph b = spec.generate();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.edges().begin(), a.edges().end(),
                         b.edges().begin(), b.edges().end()));
}

}  // namespace
}  // namespace truss::datasets
