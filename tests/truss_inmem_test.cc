// Tests for the in-memory truss decompositions (Algorithms 1 and 2) against
// the paper's running example and the definition-level oracle.

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "truss/cohen.h"
#include "truss/improved.h"
#include "truss/result.h"
#include "truss/verify.h"

namespace truss {
namespace {

TEST(TrussInmemTest, Figure2ExampleImproved) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(fx.graph);
  EXPECT_EQ(r.kmax, fx.expected_kmax);
  EXPECT_EQ(r.truss_number, fx.expected_truss);
}

TEST(TrussInmemTest, Figure2ExampleCohen) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  const TrussDecompositionResult r = CohenTrussDecomposition(fx.graph);
  EXPECT_EQ(r.kmax, fx.expected_kmax);
  EXPECT_EQ(r.truss_number, fx.expected_truss);
}

TEST(TrussInmemTest, Figure2ClassSizes) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(fx.graph);
  const auto sizes = r.ClassSizes();
  EXPECT_EQ(sizes.at(2), 1u);   // Φ2 = {(i,k)}
  EXPECT_EQ(sizes.at(3), 9u);   // Φ3: 9 edges
  EXPECT_EQ(sizes.at(4), 6u);   // Φ4: clique {f,h,i,j}
  EXPECT_EQ(sizes.at(5), 10u);  // Φ5: clique {a,b,c,d,e}
}

TEST(TrussInmemTest, EmptyGraph) {
  const Graph g;
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_EQ(r.kmax, 0u);
  EXPECT_TRUE(r.truss_number.empty());
}

TEST(TrussInmemTest, TriangleFreeGraphsAreAllPhi2) {
  for (const Graph& g : {gen::Cycle(10), gen::Star(8), gen::Grid(4, 5),
                         gen::Path(6)}) {
    const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
    EXPECT_EQ(r.kmax, 2u);
    for (const uint32_t t : r.truss_number) EXPECT_EQ(t, 2u);
  }
}

TEST(TrussInmemTest, CompleteGraphTrussIsN) {
  for (VertexId n = 3; n <= 12; ++n) {
    const Graph g = gen::Complete(n);
    const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
    EXPECT_EQ(r.kmax, n) << "K_" << n;
    for (const uint32_t t : r.truss_number) EXPECT_EQ(t, n);
  }
}

TEST(TrussInmemTest, SingleTriangleIsThreeTruss) {
  const Graph g = gen::Complete(3);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_EQ(r.kmax, 3u);
}

TEST(TrussInmemTest, TrianglePlusPendantEdge) {
  const Graph g = Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}, {2, 3}}, 0);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_EQ(r.kmax, 3u);
  EXPECT_EQ(r.truss_number[g.FindEdge(2, 3)], 2u);
  EXPECT_EQ(r.truss_number[g.FindEdge(0, 1)], 3u);
}

TEST(TrussInmemTest, PlantedCliqueSetsKmax) {
  const Graph base = gen::ErdosRenyiGnm(200, 400, 31);
  const Graph g = gen::PlantClique(base, 9, 32);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_GE(r.kmax, 9u);
}

TEST(TrussInmemTest, KClassPartitionIsComplete) {
  const Graph g = gen::ErdosRenyiGnm(80, 400, 17);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  uint64_t total = 0;
  for (const auto& [k, count] : r.ClassSizes()) {
    EXPECT_GE(k, 2u);
    total += count;
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(TrussInmemTest, TrussEdgesAreNested) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(100, 600, 23), 8, 24);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  for (uint32_t k = 3; k <= r.kmax; ++k) {
    const auto outer = r.TrussEdges(k);
    const auto inner = r.TrussEdges(k + 1);
    EXPECT_TRUE(std::includes(outer.begin(), outer.end(), inner.begin(),
                              inner.end()));
  }
}

// Regression: the degenerate all-isolated-edges shape — m > 0 but every
// support 0, so SupportBins builds from max_sup = 0 and must still lay out
// its two bins correctly (the constructor sizes bin_start_ as
// max_sup + 2 in 64-bit arithmetic).
TEST(TrussInmemTest, PeelWithAllZeroSupportsOnStar) {
  const Graph g = gen::Star(16);  // 15 edges, no triangles
  ASSERT_GT(g.num_edges(), 0u);
  const TrussDecompositionResult r =
      PeelWithSupports(g, std::vector<uint32_t>(g.num_edges(), 0));
  EXPECT_EQ(r.kmax, 2u);
  for (const uint32_t t : r.truss_number) EXPECT_EQ(t, 2u);
}

TEST(TrussInmemTest, PhaseTimingsSplitSupportFromPeel) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(100, 600, 3), 8, 4);
  PhaseTimings improved_t, cohen_t;
  ImprovedTrussDecomposition(g, nullptr, 1, &improved_t);
  CohenTrussDecomposition(g, nullptr, 1, &cohen_t);
  EXPECT_GT(improved_t.support_seconds, 0.0);
  EXPECT_GT(improved_t.peel_seconds, 0.0);
  EXPECT_GT(cohen_t.support_seconds, 0.0);
  EXPECT_GT(cohen_t.peel_seconds, 0.0);
}

TEST(TrussInmemTest, MemoryTrackerReportsPeak) {
  const Graph g = gen::ErdosRenyiGnm(200, 1000, 3);
  MemoryTracker cohen_mem, improved_mem;
  CohenTrussDecomposition(g, &cohen_mem);
  ImprovedTrussDecomposition(g, &improved_mem);
  EXPECT_GT(cohen_mem.peak_bytes(), g.SizeBytes());
  EXPECT_GT(improved_mem.peak_bytes(), g.SizeBytes());
  EXPECT_EQ(cohen_mem.current_bytes(), 0u);
  EXPECT_EQ(improved_mem.current_bytes(), 0u);
}

// --- property sweep: both algorithms match the naive oracle ------------

struct RandomGraphParam {
  VertexId n;
  uint64_t m;
  uint64_t seed;
};

class TrussAgreementTest : public ::testing::TestWithParam<RandomGraphParam> {
};

TEST_P(TrussAgreementTest, AlgorithmsAgreeWithOracle) {
  const RandomGraphParam p = GetParam();
  const Graph g = gen::ErdosRenyiGnm(p.n, p.m, p.seed);

  const TrussDecompositionResult expected = NaiveTrussDecomposition(g);
  const TrussDecompositionResult improved = ImprovedTrussDecomposition(g);
  const TrussDecompositionResult cohen = CohenTrussDecomposition(g);

  EXPECT_TRUE(SameDecomposition(expected, improved));
  EXPECT_TRUE(SameDecomposition(expected, cohen));
  EXPECT_EQ(ValidateDecomposition(g, improved), "");
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, TrussAgreementTest,
    ::testing::Values(RandomGraphParam{10, 15, 1}, RandomGraphParam{10, 30, 2},
                      RandomGraphParam{20, 40, 3}, RandomGraphParam{20, 90, 4},
                      RandomGraphParam{30, 60, 5},
                      RandomGraphParam{30, 200, 6},
                      RandomGraphParam{50, 120, 7},
                      RandomGraphParam{50, 400, 8},
                      RandomGraphParam{80, 300, 9},
                      RandomGraphParam{80, 1000, 10},
                      RandomGraphParam{120, 500, 11},
                      RandomGraphParam{120, 2000, 12}));

// Dense-ish graphs with planted cliques: the decompositions must agree and
// kmax must reach the planted size.
class PlantedCliqueTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(PlantedCliqueTest, CliqueEdgesReachCliqueTruss) {
  const auto [clique, seed] = GetParam();
  const Graph base = gen::ErdosRenyiGnm(60, 200, seed);
  const Graph g = gen::PlantClique(base, clique, seed + 1);
  const TrussDecompositionResult improved = ImprovedTrussDecomposition(g);
  const TrussDecompositionResult naive = NaiveTrussDecomposition(g);
  EXPECT_TRUE(SameDecomposition(naive, improved));
  EXPECT_GE(improved.kmax, clique);
}

INSTANTIATE_TEST_SUITE_P(CliqueSweep, PlantedCliqueTest,
                         ::testing::Combine(::testing::Values(4u, 6u, 8u,
                                                              10u),
                                            ::testing::Values(100u, 200u)));

}  // namespace
}  // namespace truss
