// Unit tests for the counting Env, block streams, external sort, and the
// whole-file FileBuffer loader.

#include "io/env.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <system_error>

#include "common/rng.h"
#include "graph/graph.h"
#include "io/edge_records.h"
#include "io/external_sort.h"
#include "io/file_buffer.h"

namespace truss::io {
namespace {

std::string TestDir(const char* name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "truss_io_test" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(EnvTest, WriteThenReadRecords) {
  Env env(TestDir("rw"), 256);
  {
    auto w = env.OpenWriter("file");
    ASSERT_TRUE(w.ok());
    for (uint32_t i = 0; i < 100; ++i) {
      w.value()->WriteRecord(GEdgeRecord{i, i + 1, i * 2, 2});
    }
    ASSERT_TRUE(w.value()->Close().ok());
  }
  auto r = env.OpenReader("file");
  ASSERT_TRUE(r.ok());
  GEdgeRecord rec;
  uint32_t count = 0;
  while (r.value()->ReadRecord(&rec)) {
    EXPECT_EQ(rec.u, count);
    EXPECT_EQ(rec.v, count + 1);
    EXPECT_EQ(rec.sup_acc, count * 2);
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

TEST(EnvTest, BlockAccountingMatchesModel) {
  const size_t kBlock = 128;
  Env env(TestDir("blocks"), kBlock);
  const size_t kBytes = 1000;  // ⌈1000/128⌉ = 8 blocks
  {
    auto w = env.OpenWriter("f");
    ASSERT_TRUE(w.ok());
    std::vector<char> buf(kBytes, 'x');
    w.value()->Write(buf.data(), buf.size());
    ASSERT_TRUE(w.value()->Close().ok());
  }
  EXPECT_EQ(env.stats().bytes_written, kBytes);
  EXPECT_EQ(env.stats().block_writes, (kBytes + kBlock - 1) / kBlock);

  auto r = env.OpenReader("f");
  ASSERT_TRUE(r.ok());
  std::vector<char> buf(kBytes);
  EXPECT_EQ(r.value()->Read(buf.data(), kBytes), kBytes);
  EXPECT_EQ(env.stats().bytes_read, kBytes);
  EXPECT_EQ(env.stats().block_reads, (kBytes + kBlock - 1) / kBlock);
}

TEST(EnvTest, FileLifecycle) {
  Env env(TestDir("lifecycle"));
  EXPECT_FALSE(env.FileExists("f"));
  {
    auto w = env.OpenWriter("f");
    ASSERT_TRUE(w.ok());
    w.value()->WriteRecord(uint64_t{42});
    ASSERT_TRUE(w.value()->Close().ok());
  }
  EXPECT_TRUE(env.FileExists("f"));
  auto size = env.FileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), sizeof(uint64_t));
  EXPECT_TRUE(env.RenameFile("f", "g").ok());
  EXPECT_FALSE(env.FileExists("f"));
  EXPECT_TRUE(env.DeleteFile("g").ok());
  EXPECT_FALSE(env.FileExists("g"));
  EXPECT_FALSE(env.DeleteFile("g").ok());  // already gone
}

TEST(EnvTest, TempNamesAreUnique) {
  Env env(TestDir("tmp"));
  EXPECT_NE(env.TempName("a"), env.TempName("a"));
}

TEST(EnvTest, OpenMissingFileFails) {
  Env env(TestDir("missing"));
  EXPECT_FALSE(env.OpenReader("nope").ok());
}

TEST(ExternalSortTest, SortsAcrossManyRuns) {
  Env env(TestDir("sort"), 256);
  const uint32_t kRecords = 5000;
  Rng rng(99);
  {
    auto w = env.OpenWriter("in");
    ASSERT_TRUE(w.ok());
    for (uint32_t i = 0; i < kRecords; ++i) {
      const VertexId u = static_cast<VertexId>(rng.Uniform(1000));
      const VertexId v = static_cast<VertexId>(rng.Uniform(1000));
      w.value()->WriteRecord(GEdgeRecord{u, v, i, 2});
    }
    ASSERT_TRUE(w.value()->Close().ok());
  }
  // Tiny budget: forces many runs + a wide merge.
  ASSERT_TRUE((ExternalSort<GEdgeRecord, ByEdgeLess>(env, "in", "out",
                                                     ByEdgeLess{}, 1024))
                  .ok());
  auto r = env.OpenReader("out");
  ASSERT_TRUE(r.ok());
  GEdgeRecord prev{}, rec{};
  uint32_t count = 0;
  bool first = true;
  while (r.value()->ReadRecord(&rec)) {
    if (!first) {
      EXPECT_FALSE(ByEdgeLess{}(rec, prev));
    }
    prev = rec;
    first = false;
    ++count;
  }
  EXPECT_EQ(count, kRecords);
}

TEST(ExternalSortTest, EmptyInput) {
  Env env(TestDir("sort_empty"));
  {
    auto w = env.OpenWriter("in");
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value()->Close().ok());
  }
  ASSERT_TRUE((ExternalSort<GEdgeRecord, ByEdgeLess>(env, "in", "out",
                                                     ByEdgeLess{}, 1024))
                  .ok());
  auto r = env.OpenReader("out");
  ASSERT_TRUE(r.ok());
  GEdgeRecord rec;
  EXPECT_FALSE(r.value()->ReadRecord(&rec));
}

TEST(ExternalSortTest, PreservesMultiplicity) {
  Env env(TestDir("sort_dup"), 128);
  {
    auto w = env.OpenWriter("in");
    ASSERT_TRUE(w.ok());
    for (int i = 0; i < 50; ++i) w.value()->WriteRecord(GEdgeRecord{1, 2, 0, 2});
    ASSERT_TRUE(w.value()->Close().ok());
  }
  ASSERT_TRUE((ExternalSort<GEdgeRecord, ByEdgeLess>(env, "in", "out",
                                                     ByEdgeLess{}, 64))
                  .ok());
  auto r = env.OpenReader("out");
  GEdgeRecord rec;
  int count = 0;
  while (r.value()->ReadRecord(&rec)) ++count;
  EXPECT_EQ(count, 50);
}

TEST(IoStatsTest, DiffAndAccumulate) {
  IoStats a;
  a.bytes_read = 100;
  a.block_reads = 2;
  IoStats b = a;
  b.bytes_read = 300;
  b.block_reads = 5;
  const IoStats d = DiffStats(b, a);
  EXPECT_EQ(d.bytes_read, 200u);
  EXPECT_EQ(d.block_reads, 3u);
  IoStats sum;
  sum += a;
  sum += d;
  EXPECT_EQ(sum.bytes_read, b.bytes_read);
  EXPECT_EQ(sum.total_blocks(), b.total_blocks());
}

// --- FileBuffer ----------------------------------------------------------

class FileBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case and process: gtest_discover_tests runs each
    // TEST_F as its own ctest entry, and `ctest -j` runs them concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("truss_file_buffer_test_") + info->name() + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Write(const char* name, const std::string& content) {
    const auto path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path.string();
  }

  std::filesystem::path dir_;
};

TEST_F(FileBufferTest, AllModesReturnIdenticalBytes) {
  std::string content = "line one\nline two\n";
  content.push_back('\0');  // binary-safe: embedded NUL must survive
  content += "tail";
  const std::string path = Write("f.txt", content);
  for (const auto mode : {FileBuffer::Mode::kAuto, FileBuffer::Mode::kMmap,
                          FileBuffer::Mode::kRead}) {
    auto buffer = FileBuffer::Load(path, mode);
    ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
    EXPECT_EQ(buffer.value().view(), std::string_view(content));
  }
}

TEST_F(FileBufferTest, ModeSelectsBackingStore) {
  const std::string path = Write("m.txt", "payload");
  auto mapped = FileBuffer::Load(path, FileBuffer::Mode::kMmap);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().is_mapped());
  auto read = FileBuffer::Load(path, FileBuffer::Mode::kRead);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.value().is_mapped());
}

TEST_F(FileBufferTest, EmptyFileYieldsEmptyView) {
  const std::string path = Write("empty.txt", "");
  for (const auto mode : {FileBuffer::Mode::kAuto, FileBuffer::Mode::kRead}) {
    auto buffer = FileBuffer::Load(path, mode);
    ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
    EXPECT_EQ(buffer.value().size(), 0u);
    EXPECT_TRUE(buffer.value().view().empty());
  }
}

TEST_F(FileBufferTest, MissingFileIsIOError) {
  auto buffer = FileBuffer::Load((dir_ / "nope.txt").string());
  ASSERT_FALSE(buffer.ok());
  EXPECT_EQ(buffer.status().code(), truss::StatusCode::kIOError);
}

TEST_F(FileBufferTest, DirectoryIsRejected) {
  auto buffer = FileBuffer::Load(dir_.string());
  ASSERT_FALSE(buffer.ok());
  EXPECT_EQ(buffer.status().code(), truss::StatusCode::kIOError);
}

TEST_F(FileBufferTest, MoveTransfersOwnership) {
  const std::string path = Write("mv.txt", "moved bytes");
  auto buffer = FileBuffer::Load(path, FileBuffer::Mode::kMmap);
  ASSERT_TRUE(buffer.ok());
  FileBuffer stolen = buffer.MoveValue();
  EXPECT_EQ(stolen.view(), "moved bytes");
  FileBuffer assigned;
  assigned = std::move(stolen);
  EXPECT_EQ(assigned.view(), "moved bytes");
  EXPECT_EQ(stolen.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

// ---------------------------------------------------------------------------
// TRSB graph snapshots: table-driven corruption sweep. Every truncation and
// single bit flip must load as kCorruption — never a wrong graph or a crash.
// ---------------------------------------------------------------------------

TEST(BinarySnapshotCorruptionTest, TruncationAndBitFlipTableIsCorruption) {
  const truss::Graph g = truss::Graph::FromEdges(
      {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}, 0);
  const std::string dir = TestDir("trsb_corruption");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/graph.trsb";
  ASSERT_TRUE(g.SaveBinary(path).ok());
  std::error_code ec;
  const long size = static_cast<long>(std::filesystem::file_size(path, ec));
  ASSERT_FALSE(ec);
  ASSERT_GT(size, 32);

  struct Case {
    const char* kind;
    long offset;  // truncate: new length; bitflip: byte position
  };
  const Case cases[] = {
      {"truncate", 1},        {"truncate", size / 4},
      {"truncate", size / 2}, {"truncate", size - 1},
      {"bitflip", 0},         {"bitflip", 8},
      {"bitflip", size / 3},  {"bitflip", size / 2},
      {"bitflip", size - 1},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(g.SaveBinary(path).ok());
    if (std::string_view(c.kind) == "truncate") {
      ASSERT_EQ(::truncate(path.c_str(), c.offset), 0);
    } else {
      std::FILE* f = std::fopen(path.c_str(), "r+b");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fseek(f, c.offset, SEEK_SET), 0);
      const int byte = std::fgetc(f);
      ASSERT_NE(byte, EOF);
      ASSERT_EQ(std::fseek(f, c.offset, SEEK_SET), 0);
      ASSERT_NE(std::fputc(byte ^ 0x40, f), EOF);
      ASSERT_EQ(std::fclose(f), 0);
    }
    const truss::Status status = truss::Graph::LoadBinary(path).status();
    EXPECT_EQ(status.code(), truss::StatusCode::kCorruption)
        << c.kind << " at " << c.offset << ": " << status.ToString();
  }
}

}  // namespace
}  // namespace truss::io
