// Tests for the common substrate: Status/Result, RNG, formatting, tables,
// memory tracking, ByteFlags, and the EdgeMap hash table.

#include <gtest/gtest.h>

#include <set>
#include <vector>

// GCC 12 at -O2 reports a spurious maybe-uninitialized on the std::variant
// inside Result<int> when both alternatives are constructed in one function.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#include "common/flags.h"
#include "common/memory_tracker.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "truss/edge_map.h"

namespace truss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  const Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  const std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversSmallRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(FormatTest, Durations) {
  EXPECT_EQ(FormatDuration(0.0000005), "0.5 us");
  EXPECT_EQ(FormatDuration(0.0123), "12.3 ms");
  EXPECT_EQ(FormatDuration(1.5), "1.50 s");
  EXPECT_EQ(FormatDuration(300.0), "5.0 min");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
  EXPECT_EQ(FormatBytes(5ull << 30), "5.0 GB");
}

TEST(FormatTest, Counts) {
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(41600), "41.6K");
  EXPECT_EQ(FormatCount(3400000), "3.4M");
  EXPECT_EQ(FormatCount(1092000000), "1.1G");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "12345"});
  const std::string out = t.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer  12345"), std::string::npos);
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker t;
  t.Add(100);
  t.Add(50);
  EXPECT_EQ(t.current_bytes(), 150u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Release(120);
  t.Add(10);
  EXPECT_EQ(t.current_bytes(), 40u);
  EXPECT_EQ(t.peak_bytes(), 150u);
}

TEST(MemoryTrackerTest, ScopedMemoryReleases) {
  MemoryTracker t;
  {
    ScopedMemory scope(&t, 1000);
    EXPECT_EQ(t.current_bytes(), 1000u);
  }
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 1000u);
  // Null tracker is a no-op.
  ScopedMemory noop(nullptr, 5);
}

TEST(ByteFlagsTest, StartsClearAndRoundTrips) {
  ByteFlags flags(64);
  EXPECT_EQ(flags.size(), 64u);
  EXPECT_EQ(flags.SizeBytes(), 64u);
  for (size_t i = 0; i < flags.size(); ++i) EXPECT_FALSE(flags.Test(i));
  flags.Set(0);
  flags.Set(63);
  EXPECT_TRUE(flags.Test(0));
  EXPECT_TRUE(flags.Test(63));
  EXPECT_FALSE(flags.Test(1));
  flags.Clear(0);
  EXPECT_FALSE(flags.Test(0));
  EXPECT_TRUE(flags.Test(63));
}

TEST(ByteFlagsTest, ZeroSize) {
  const ByteFlags flags(0);
  EXPECT_EQ(flags.size(), 0u);
  EXPECT_EQ(flags.SizeBytes(), 0u);
}

// Concurrent writers to adjacent indices are the case vector<bool> cannot
// support (word-level RMW); ByteFlags must handle it race-free. Runs under
// the TSan CI preset.
TEST(ByteFlagsTest, ConcurrentNeighboringWritesAreRaceFree) {
  constexpr size_t kFlags = 1 << 12;
  ByteFlags flags(kFlags);
  ParallelFor(8, kFlags, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t i = begin; i < end; ++i) {
      if (i % 2 == 0) flags.Set(i);
    }
  });
  for (size_t i = 0; i < kFlags; ++i) {
    EXPECT_EQ(flags.Test(i), i % 2 == 0) << i;
  }
}

TEST(EdgeMapTest, FindsEveryEdgeAndNoOthers) {
  const Graph g = gen::ErdosRenyiGnm(80, 400, 13);
  const EdgeMap map(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge edge = g.edge(e);
    EXPECT_EQ(map.Find(edge.u, edge.v), e);
    EXPECT_EQ(map.Find(edge.v, edge.u), e);  // orientation-insensitive
  }
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const VertexId a = static_cast<VertexId>(rng.Uniform(80));
    const VertexId b = static_cast<VertexId>(rng.Uniform(80));
    if (a == b) {
      EXPECT_EQ(map.Find(a, b), kInvalidEdge);
    } else {
      EXPECT_EQ(map.Find(a, b), g.FindEdge(a, b));
    }
  }
}

TEST(EdgeMapTest, EmptyGraph) {
  const EdgeMap map((Graph()));
  EXPECT_EQ(map.Find(0, 1), kInvalidEdge);
}

TEST(WallTimerTest, MonotoneAndResettable) {
  WallTimer t;
  const double a = t.Seconds();
  const double b = t.Seconds();
  EXPECT_GE(b, a);
  t.Reset();
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), 0.0);
}

}  // namespace
}  // namespace truss
