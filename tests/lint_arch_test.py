#!/usr/bin/env python3
"""Self-test for scripts/lint_arch.py.

Builds a throwaway fixture tree with one planted violation per rule,
plus clean counterparts, and checks that the linter reports exactly the
planted set — no more, no less — and that the allowlist suppresses.

Run directly or via CTest (registered as lint_arch.selftest). The linter
is located through $TRUSS_LINT_ARCH or, failing that, relative to this
file, so the test works from any build directory.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest


def load_linter():
    path = os.environ.get("TRUSS_LINT_ARCH")
    if not path:
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "scripts", "lint_arch.py")
    spec = importlib.util.spec_from_file_location("lint_arch", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint_arch = load_linter()


def write(root, relpath, content):
    full = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(full), exist_ok=True)
    with open(full, "w", encoding="utf-8") as f:
        f.write(content)


def run_linter(root, allowlist=None):
    linter = lint_arch.Linter(root, allowlist or {})
    return linter.run()


def rules_of(violations):
    return sorted(v.split("[", 1)[1].split("]", 1)[0] for v in violations)


class FixtureTreeTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name

    def tearDown(self):
        self.tmp.cleanup()

    def test_clean_tree_has_no_violations(self):
        write(self.root, "src/common/parallel.cc",
              "#include <thread>\n"
              "void RunShards() { std::thread t; (void)t; }\n")
        write(self.root, "src/truss/improved.cc",
              "// time( and rand( in a comment are fine\n"
              "static_assert(sizeof(int) == 4);\n"
              "const char* s = \"calls time( nothing\";\n")
        write(self.root, "bench/bench_ok.cc",
              "#include \"truss/registry.h\"\n"
              "void f() { printf(\"METRIC peel_seconds %.6f\\n\", 0.0); }\n")
        write(self.root, "examples/ok.cpp",
              "#include \"truss/result.h\"\n")
        self.assertEqual(run_linter(self.root), [])

    def test_each_rule_fires_once(self):
        planted = {
            "registry-dispatch": (
                "bench/bench_bad_include.cc",
                '#include "truss/improved.h"\n'),
            "raw-thread": (
                "src/truss/bad_thread.cc",
                "#include <thread>\nstd::thread worker;\n"),
            "libc-rand-time": (
                "src/common/bad_rand.cc",
                "int f() { return rand(); }\n"),
            "metric-format": (
                "bench/bench_bad_metric.cc",
                'void f() { printf("METRIC too many fields %d\\n", 1); }\n'),
            "bare-assert": (
                "src/graph/bad_assert.cc",
                "#include <cassert>\n"),
            "annotated-mutex": (
                "src/serve/bad_mutex.cc",
                "#include <mutex>\nstd::mutex registry_mu;\n"),
        }
        for relpath, content in planted.values():
            write(self.root, relpath, content)
        violations = run_linter(self.root)
        self.assertEqual(rules_of(violations), sorted(planted))
        for rule, (relpath, _) in planted.items():
            matching = [v for v in violations if "[%s]" % rule in v]
            self.assertEqual(len(matching), 1, violations)
            self.assertIn(relpath, matching[0])

    def test_algorithm_headers_allowed_outside_bench_and_examples(self):
        write(self.root, "src/engine/engine.cc",
              '#include "truss/improved.h"\n')
        write(self.root, "tests/improved_test.cc",
              '#include "truss/improved.h"\n')
        self.assertEqual(run_linter(self.root), [])

    def test_serve_layer_must_dispatch_through_registry(self):
        write(self.root, "src/serve/bad_rebuild.cc",
              '#include "truss/parallel_peel.h"\n')
        violations = run_linter(self.root)
        self.assertEqual(rules_of(violations), ["registry-dispatch"])
        self.assertIn("src/serve/bad_rebuild.cc", violations[0])

    def test_annotated_mutex_rule_scope(self):
        # The annotated shim itself wraps std::mutex; everywhere else in
        # src/ must use it. Tests and benches are out of scope.
        write(self.root, "src/common/mutex.h",
              "#include <mutex>\nclass Mutex { std::mutex mu_; };\n")
        write(self.root, "tests/some_test.cc",
              "#include <mutex>\nstd::mutex test_mu;\n")
        self.assertEqual(run_linter(self.root), [])
        write(self.root, "src/serve/bad_condvar.cc",
              "#include <condition_variable>\n"
              "std::condition_variable cv;\n")
        violations = run_linter(self.root)
        self.assertEqual(rules_of(violations), ["annotated-mutex"])
        self.assertIn("src/serve/bad_condvar.cc", violations[0])

    def test_rand_time_allowed_outside_src(self):
        write(self.root, "bench/bench_uses_time.cc",
              "long f() { return time(nullptr); }\n")
        self.assertEqual(run_linter(self.root), [])

    def test_wall_time_identifier_is_not_flagged(self):
        write(self.root, "src/common/timer.cc",
              "double wall_time();\n"
              "double f() { return wall_time(); }\n")
        self.assertEqual(run_linter(self.root), [])

    def test_metric_missing_newline_is_flagged(self):
        write(self.root, "bench/bench_no_newline.cc",
              'void f() { printf("METRIC key %d", 1); }\n')
        self.assertEqual(rules_of(run_linter(self.root)), ["metric-format"])

    def test_block_comment_spanning_lines_is_ignored(self):
        write(self.root, "src/common/doc.cc",
              "/* discussion of std::thread usage\n"
              "   and of rand() pitfalls */\n"
              "int x = 0;\n")
        self.assertEqual(run_linter(self.root), [])

    def test_allowlist_suppresses_only_listed_path(self):
        write(self.root, "bench/bench_micro.cc",
              '#include "truss/improved.h"\n')
        write(self.root, "bench/bench_other.cc",
              '#include "truss/improved.h"\n')
        allowlist = {"registry-dispatch": {
            "bench/bench_micro.cc": "times internal kernels directly"}}
        violations = run_linter(self.root, allowlist)
        self.assertEqual(len(violations), 1, violations)
        self.assertIn("bench/bench_other.cc", violations[0])

    def test_allowlist_validation_rejects_empty_reason(self):
        path = os.path.join(self.root, "allow.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"raw-thread": {"src/x.cc": ""}}, f)
        with self.assertRaises(ValueError):
            lint_arch.load_allowlist(path)

    def test_main_exit_codes(self):
        write(self.root, "src/common/ok.cc", "int x = 0;\n")
        self.assertEqual(lint_arch.main(["--root", self.root]), 0)
        write(self.root, "src/common/bad.cc", "std::thread t;\n")
        self.assertEqual(lint_arch.main(["--root", self.root]), 1)
        self.assertEqual(
            lint_arch.main(["--root", os.path.join(self.root, "nope")]), 2)


if __name__ == "__main__":
    unittest.main()
