// End-to-end integration tests: all five algorithm families on a registry
// dataset, SNAP-file round trips, and failure injection on the on-disk
// formats.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "datasets/datasets.h"
#include "graph/text_io.h"
#include "io/env.h"
#include "mapreduce/mr_truss.h"
#include "truss/bottom_up.h"
#include "truss/cohen.h"
#include "truss/external_util.h"
#include "truss/improved.h"
#include "truss/top_down.h"
#include "truss/verify.h"

namespace truss {
namespace {

std::string TestDir(const char* name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "truss_integ_test" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

// The P2P dataset (paper-scale, 41.6K edges) through every family.
TEST(IntegrationTest, AllFiveFamiliesAgreeOnP2P) {
  const Graph g = datasets::DatasetByName("P2P").generate();

  const TrussDecompositionResult improved = ImprovedTrussDecomposition(g);
  EXPECT_EQ(improved.kmax, 5u);

  const TrussDecompositionResult cohen = CohenTrussDecomposition(g);
  EXPECT_TRUE(SameDecomposition(improved, cohen));

  io::Env env(TestDir("p2p"));
  ExternalConfig cfg;
  cfg.memory_budget_bytes = 300 * 1024;  // well below the ~2 MB footprint
  auto bu = BottomUpDecompose(env, g, cfg);
  ASSERT_TRUE(bu.ok()) << bu.status().ToString();
  EXPECT_TRUE(SameDecomposition(improved, bu.value()));

  auto td = TopDownDecompose(env, g, cfg);
  ASSERT_TRUE(td.ok()) << td.status().ToString();
  EXPECT_TRUE(SameDecomposition(improved, td.value()));

  auto mr = mr::MapReduceTrussDecomposition(env, g, mr::MrTrussOptions{});
  ASSERT_TRUE(mr.ok()) << mr.status().ToString();
  EXPECT_TRUE(SameDecomposition(improved, mr.value()));
}

// Export to SNAP text, re-import, decompose: truss numbers must transport
// through the vertex relabeling.
TEST(IntegrationTest, SnapRoundTripPreservesDecomposition) {
  const Graph g = datasets::DatasetByName("HEP").generate();
  const TrussDecompositionResult original = ImprovedTrussDecomposition(g);

  const std::string path =
      (std::filesystem::temp_directory_path() / "truss_integ_hep.txt")
          .string();
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  const Graph& h = loaded.value().graph;
  ASSERT_EQ(h.num_edges(), g.num_edges());
  const TrussDecompositionResult reloaded = ImprovedTrussDecomposition(h);
  EXPECT_EQ(reloaded.kmax, original.kmax);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const Edge local = h.edge(e);
    const EdgeId orig_id = g.FindEdge(
        static_cast<VertexId>(loaded.value().original_id[local.u]),
        static_cast<VertexId>(loaded.value().original_id[local.v]));
    ASSERT_NE(orig_id, kInvalidEdge);
    EXPECT_EQ(reloaded.truss_number[e], original.truss_number[orig_id]);
  }
}

// --- failure injection on the on-disk formats ---------------------------

TEST(FailureInjectionTest, IncompleteClassFileIsCorruption) {
  const Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {0, 2}}, 0);
  io::Env env(TestDir("incomplete"));
  {
    auto w = env.OpenWriter("classes");
    ASSERT_TRUE(w.ok());
    w.value()->WriteRecord(io::ClassRecord{0, 1, 3});  // 1 of 3 edges only
    ASSERT_TRUE(w.value()->Close().ok());
  }
  auto r = LoadClassesAsDecomposition(env, "classes", g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(FailureInjectionTest, DuplicateClassRecordIsCorruption) {
  const Graph g = Graph::FromEdges({{0, 1}}, 0);
  io::Env env(TestDir("dup"));
  {
    auto w = env.OpenWriter("classes");
    ASSERT_TRUE(w.ok());
    w.value()->WriteRecord(io::ClassRecord{0, 1, 2});
    w.value()->WriteRecord(io::ClassRecord{0, 1, 3});
    ASSERT_TRUE(w.value()->Close().ok());
  }
  auto r = LoadClassesAsDecomposition(env, "classes", g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(FailureInjectionTest, UnknownEdgeInClassFileIsCorruption) {
  const Graph g = Graph::FromEdges({{0, 1}}, 0);
  io::Env env(TestDir("unknown"));
  {
    auto w = env.OpenWriter("classes");
    ASSERT_TRUE(w.ok());
    w.value()->WriteRecord(io::ClassRecord{5, 9, 2});
    ASSERT_TRUE(w.value()->Close().ok());
  }
  auto r = LoadClassesAsDecomposition(env, "classes", g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(FailureInjectionTest, TornRecordIsTypedCorruption) {
  io::Env env(TestDir("torn"));
  {
    auto w = env.OpenWriter("file");
    ASSERT_TRUE(w.ok());
    const char half[6] = {1, 2, 3, 4, 5, 6};  // not a whole 16-byte record
    w.value()->Write(half, sizeof(half));
    ASSERT_TRUE(w.value()->Close().ok());
  }
  auto r = env.OpenReader("file");
  ASSERT_TRUE(r.ok());
  io::GEdgeRecord rec;
  // A torn record is a data fault, not a programming error: the read fails,
  // the stream reports Corruption, and the env health reflects it so stage
  // gates catch scans that ignore per-record return values.
  EXPECT_FALSE(r.value()->ReadRecord(&rec));
  EXPECT_EQ(r.value()->status().code(), StatusCode::kCorruption);
  EXPECT_EQ(env.health().code(), StatusCode::kCorruption);
}

TEST(FailureInjectionTest, UnclosedWriterStillFlushes) {
  io::Env env(TestDir("unclosed"));
  {
    auto w = env.OpenWriter("file");
    ASSERT_TRUE(w.ok());
    w.value()->WriteRecord(uint64_t{42});
    // Destroyed without Close(): the destructor must flush, not lose data.
  }
  auto r = env.OpenReader("file");
  ASSERT_TRUE(r.ok());
  uint64_t value = 0;
  ASSERT_TRUE(r.value()->ReadRecord(&value));
  EXPECT_EQ(value, 42u);
}

TEST(FailureInjectionTest, ExternalRunOnMissingGraphFileFails) {
  io::Env env(TestDir("missing_graph"));
  ExternalConfig cfg;
  auto stats = BottomUpDecomposeFile(env, "no_such_file", 10, cfg, "out");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace truss
