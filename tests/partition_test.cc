// Unit tests for the three NS(P_i) vertex partitioners.

#include "partition/partition.h"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/generators.h"
#include "graph/graph.h"

namespace truss::partition {
namespace {

// In-memory edge scan for tests.
EdgeScanFn ScanOf(const Graph& g) {
  return [&g](const std::function<void(VertexId, VertexId)>& fn) {
    for (const Edge& e : g.edges()) fn(e.u, e.v);
  };
}

std::vector<uint32_t> DegreesOf(const Graph& g) {
  std::vector<uint32_t> deg(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) deg[v] = g.degree(v);
  return deg;
}

void CheckValidPartition(const Graph& g, const PartitionResult& r,
                         uint64_t max_weight) {
  const std::vector<uint32_t> deg = DegreesOf(g);
  // Every active vertex in exactly one part; inactive in none.
  std::vector<uint32_t> seen(g.num_vertices(), 0);
  for (size_t p = 0; p < r.parts.size(); ++p) {
    EXPECT_FALSE(r.parts[p].empty());
    uint64_t weight = 0;
    for (const VertexId v : r.parts[p]) {
      EXPECT_EQ(r.part_of[v], p);
      ++seen[v];
      weight += deg[v] + 1;
    }
    // Single-vertex parts may exceed the cap (hub fallback).
    if (r.parts[p].size() > 1) {
      EXPECT_LE(weight, max_weight);
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (deg[v] > 0) {
      EXPECT_EQ(seen[v], 1u) << "vertex " << v;
    } else {
      EXPECT_EQ(r.part_of[v], PartitionResult::kNoPart);
    }
  }
}

class PartitionStrategyTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(PartitionStrategyTest, ValidOnRandomGraph) {
  const Graph g = gen::ErdosRenyiGnm(200, 800, 5);
  Options opts;
  opts.strategy = GetParam();
  opts.max_part_weight = 200;
  const PartitionResult r =
      PartitionVertices(DegreesOf(g), ScanOf(g), opts);
  EXPECT_GE(r.parts.size(), 2u);
  CheckValidPartition(g, r, opts.max_part_weight);
}

TEST_P(PartitionStrategyTest, SinglePartWhenBudgetIsLarge) {
  const Graph g = gen::ErdosRenyiGnm(50, 100, 7);
  Options opts;
  opts.strategy = GetParam();
  opts.max_part_weight = 1u << 20;
  const PartitionResult r =
      PartitionVertices(DegreesOf(g), ScanOf(g), opts);
  EXPECT_EQ(r.parts.size(), 1u);
  CheckValidPartition(g, r, opts.max_part_weight);
}

TEST_P(PartitionStrategyTest, HubHeavierThanBudgetGetsOwnPart) {
  const Graph g = gen::Star(100);  // hub weight 100, cap 50
  Options opts;
  opts.strategy = GetParam();
  opts.max_part_weight = 50;
  const PartitionResult r =
      PartitionVertices(DegreesOf(g), ScanOf(g), opts);
  CheckValidPartition(g, r, opts.max_part_weight);
}

TEST_P(PartitionStrategyTest, SkipsIsolatedVertices) {
  const Graph g = Graph::FromEdges({{0, 1}, {2, 3}}, 8);
  Options opts;
  opts.strategy = GetParam();
  opts.max_part_weight = 100;
  const PartitionResult r =
      PartitionVertices(DegreesOf(g), ScanOf(g), opts);
  CheckValidPartition(g, r, opts.max_part_weight);
  size_t total = 0;
  for (const auto& p : r.parts) total += p.size();
  EXPECT_EQ(total, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PartitionStrategyTest,
                         ::testing::Values(Strategy::kSequential,
                                           Strategy::kDominatingSet,
                                           Strategy::kRandomized),
                         [](const auto& info) {
                           return std::string(StrategyName(info.param) ==
                                                      std::string(
                                                          "dominating-set")
                                                  ? "DominatingSet"
                                                  : StrategyName(info.param));
                         });

TEST(RandomizedPartitionTest, SeedChangesLayout) {
  const Graph g = gen::ErdosRenyiGnm(300, 900, 13);
  Options a;
  a.strategy = Strategy::kRandomized;
  a.max_part_weight = 150;
  a.seed = 1;
  Options b = a;
  b.seed = 2;
  const auto ra = PartitionVertices(DegreesOf(g), ScanOf(g), a);
  const auto rb = PartitionVertices(DegreesOf(g), ScanOf(g), b);
  EXPECT_NE(ra.part_of, rb.part_of);
  // Same seed reproduces exactly.
  const auto ra2 = PartitionVertices(DegreesOf(g), ScanOf(g), a);
  EXPECT_EQ(ra.part_of, ra2.part_of);
}

TEST(SequentialPartitionTest, PreservesIdOrder) {
  const Graph g = gen::Cycle(30);
  Options opts;
  opts.strategy = Strategy::kSequential;
  opts.max_part_weight = 9;  // 3 vertices of weight 3 per part
  const auto r = PartitionVertices(DegreesOf(g), ScanOf(g), opts);
  EXPECT_EQ(r.parts.size(), 10u);
  VertexId expected = 0;
  for (const auto& part : r.parts) {
    for (const VertexId v : part) EXPECT_EQ(v, expected++);
  }
}

TEST(PartitionTest, StrategyNamesAreDistinct) {
  EXPECT_STRNE(StrategyName(Strategy::kSequential),
               StrategyName(Strategy::kRandomized));
  EXPECT_STRNE(StrategyName(Strategy::kSequential),
               StrategyName(Strategy::kDominatingSet));
}

}  // namespace
}  // namespace truss::partition
