// Tests that the verification oracles actually detect corruption — the
// property suites lean on them, so they must not be vacuously green.

#include "truss/verify.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "truss/improved.h"

namespace truss {
namespace {

Graph TestGraph() {
  return gen::PlantClique(gen::ErdosRenyiGnm(40, 160, 3), 6, 4);
}

TEST(VerifyTest, AcceptsCorrectDecomposition) {
  const Graph g = TestGraph();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_EQ(ValidateDecomposition(g, r), "");
}

TEST(VerifyTest, DetectsWrongTrussNumber) {
  const Graph g = TestGraph();
  TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  r.truss_number[0] += 1;
  EXPECT_NE(ValidateDecomposition(g, r), "");
}

TEST(VerifyTest, DetectsWrongKmax) {
  const Graph g = TestGraph();
  TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  r.kmax += 1;
  EXPECT_NE(ValidateDecomposition(g, r), "");
}

TEST(VerifyTest, DetectsSizeMismatch) {
  const Graph g = TestGraph();
  TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  r.truss_number.pop_back();
  EXPECT_NE(ValidateDecomposition(g, r), "");
}

TEST(VerifyTest, IsTrussSubgraphAcceptsRealTruss) {
  const Graph g = TestGraph();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  for (uint32_t k = 3; k <= r.kmax; ++k) {
    EXPECT_TRUE(IsTrussSubgraph(g, r.TrussEdges(k), k)) << "k=" << k;
  }
}

TEST(VerifyTest, IsTrussSubgraphRejectsPaddedEdgeSet) {
  const Graph g = TestGraph();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  ASSERT_GE(r.kmax, 4u);
  // T_kmax plus one edge outside it is no longer a valid kmax-truss.
  std::vector<EdgeId> padded = r.TrussEdges(r.kmax);
  const std::vector<EdgeId> lower = r.KClassEdges(2);
  ASSERT_FALSE(lower.empty());
  padded.push_back(lower.front());
  EXPECT_FALSE(IsTrussSubgraph(g, padded, r.kmax));
}

TEST(VerifyTest, TrivialLevelsAlwaysPass) {
  const Graph g = gen::Cycle(5);
  EXPECT_TRUE(IsTrussSubgraph(g, {0, 1, 2, 3, 4}, 2));
}

TEST(NaiveTrussTest, HandlesDegenerateInputs) {
  EXPECT_EQ(NaiveTrussDecomposition(Graph()).kmax, 0u);
  const auto star = NaiveTrussDecomposition(gen::Star(5));
  EXPECT_EQ(star.kmax, 2u);
  const auto k4 = NaiveTrussDecomposition(gen::Complete(4));
  EXPECT_EQ(k4.kmax, 4u);
}

}  // namespace
}  // namespace truss
