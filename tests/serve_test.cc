// Tests for the serving layer: TrussIndex point queries and persistence,
// SnapshotRegistry atomic swaps under concurrent readers (the TSan
// target), SnapshotRebuilder's single-flight guard, and TrussServer's
// protocol — both HandleLine in-process and a real socket round trip.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sched.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <system_error>
#include <vector>

#include "common/parallel.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "truss/communities.h"
#include "truss/improved.h"

namespace truss::serve {
namespace {

std::shared_ptr<const Graph> Figure2() {
  return std::make_shared<Graph>(gen::Figure2Graph().graph);
}

std::shared_ptr<const TrussIndex> BuildIndex(
    std::shared_ptr<const Graph> graph) {
  const TrussDecompositionResult r = ImprovedTrussDecomposition(*graph);
  return TrussIndex::Build(std::move(graph), r);
}

// ---------------------------------------------------------------------------
// TrussIndex queries
// ---------------------------------------------------------------------------

TEST(TrussIndexTest, EdgeTrussNumbersMatchDecomposition) {
  auto graph = Figure2();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(*graph);
  auto index = TrussIndex::Build(graph, r);

  ASSERT_EQ(index->kmax(), r.kmax);
  for (EdgeId e = 0; e < graph->num_edges(); ++e) {
    const Edge edge = graph->edges()[e];
    EXPECT_EQ(index->EdgeTrussNumber(edge.u, edge.v), r.truss_number[e]);
    EXPECT_EQ(index->EdgeTrussNumber(edge.v, edge.u), r.truss_number[e]);
  }
  // Non-edges and out-of-range ids answer 0, never crash.
  EXPECT_EQ(index->EdgeTrussNumber(0, 0), 0u);
  EXPECT_EQ(index->EdgeTrussNumber(0, 10'000), 0u);
  EXPECT_EQ(index->EdgeTrussNumber(10'000, 10'001), 0u);
}

TEST(TrussIndexTest, VertexMaxKMatchesIncidentEdges) {
  auto graph = Figure2();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(*graph);
  auto index = TrussIndex::Build(graph, r);

  std::vector<uint32_t> expected(graph->num_vertices(), 0);
  for (EdgeId e = 0; e < graph->num_edges(); ++e) {
    const Edge edge = graph->edges()[e];
    expected[edge.u] = std::max(expected[edge.u], r.truss_number[e]);
    expected[edge.v] = std::max(expected[edge.v], r.truss_number[e]);
  }
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    EXPECT_EQ(index->VertexMaxK(v), expected[v]) << "vertex " << v;
  }
  EXPECT_EQ(index->VertexMaxK(10'000), 0u);
}

TEST(TrussIndexTest, CommunityChainsMatchHierarchy) {
  auto graph = Figure2();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(*graph);
  const TrussHierarchy h = BuildTrussHierarchy(*graph, r);
  auto index = TrussIndex::Build(graph, r);

  ASSERT_EQ(index->num_communities(), h.communities.size());
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    const uint32_t vmax = index->VertexMaxK(v);
    const auto chain = index->MembershipChain(v);
    ASSERT_EQ(chain.size(), vmax >= 3 ? vmax - 2 : 0) << "vertex " << v;
    for (uint32_t k = 3; k <= vmax; ++k) {
      const CommunityId c = index->CommunityAt(v, k);
      ASSERT_NE(c, kInvalidCommunity) << "v=" << v << " k=" << k;
      EXPECT_EQ(chain[k - 3], c);
      const CommunityInfo& info = index->Community(c);
      EXPECT_EQ(info.k, k);
      // The community's member list must contain v (members are sorted).
      const auto members = index->CommunityVertices(c);
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), v));
    }
    // Above the vertex's max level there is no community.
    EXPECT_EQ(index->CommunityAt(v, vmax + 1), kInvalidCommunity);
    EXPECT_EQ(index->CommunityAt(v, 2), kInvalidCommunity);
    // DeepestCommunity agrees with the chain's last element.
    if (vmax >= 3) {
      EXPECT_EQ(index->DeepestCommunity(v), chain.back());
    } else {
      EXPECT_EQ(index->DeepestCommunity(v), kInvalidCommunity);
    }
  }
  EXPECT_EQ(index->CommunityAt(10'000, 3), kInvalidCommunity);
  EXPECT_TRUE(index->MembershipChain(10'000).empty());
}

TEST(TrussIndexTest, CommunitySummariesMatchHierarchy) {
  auto graph = std::make_shared<Graph>(
      gen::PlantClique(gen::PlantedCommunities(8, 8, 0.8, 77, 3), 9, 4));
  const TrussDecompositionResult r = ImprovedTrussDecomposition(*graph);
  const TrussHierarchy h = BuildTrussHierarchy(*graph, r);
  auto index = TrussIndex::Build(graph, r);

  ASSERT_EQ(index->num_communities(), h.communities.size());
  // Each hierarchy community must appear in the index at the same level
  // with the same vertex set and edge count (ids may be permuted).
  for (const auto& hc : h.communities) {
    ASSERT_FALSE(hc.vertices.empty());
    const CommunityId c = index->CommunityAt(hc.vertices[0], hc.k);
    ASSERT_NE(c, kInvalidCommunity);
    const CommunityInfo& info = index->Community(c);
    EXPECT_EQ(info.k, hc.k);
    EXPECT_EQ(info.num_edges, hc.edges);
    const auto members = index->CommunityVertices(c);
    ASSERT_EQ(members.size(), hc.vertices.size());
    EXPECT_TRUE(std::equal(members.begin(), members.end(),
                           hc.vertices.begin()));
    EXPECT_EQ(info.num_vertices, hc.vertices.size());
  }
}

TEST(TrussIndexTest, DensestCommunitiesAreSortedAndDeterministic) {
  auto graph = std::make_shared<Graph>(gen::ErdosRenyiGnm(80, 400, 11));
  auto index = BuildIndex(graph);

  const auto all = index->DensestCommunities(
      static_cast<uint32_t>(index->num_communities()) + 10);
  EXPECT_EQ(all.size(), index->num_communities());
  for (size_t i = 1; i < all.size(); ++i) {
    const double prev = index->Community(all[i - 1]).density;
    const double cur = index->Community(all[i]).density;
    EXPECT_TRUE(prev > cur || (prev == cur && all[i - 1] < all[i]))
        << "order violated at " << i;
  }
  // A prefix query returns exactly the head of the full order.
  const auto top2 = index->DensestCommunities(2);
  ASSERT_LE(top2.size(), 2u);
  for (size_t i = 0; i < top2.size(); ++i) EXPECT_EQ(top2[i], all[i]);
}

TEST(TrussIndexTest, PlanBuildMatchesResultBuildAcrossAlgorithms) {
  auto graph = std::make_shared<Graph>(
      gen::PlantClique(gen::ErdosRenyiGnm(60, 240, 5), 7, 6));
  auto baseline = BuildIndex(graph);

  for (const engine::AlgorithmInfo& info : engine::Engine::Algorithms()) {
    engine::DecomposeOptions options;
    options.algorithm = info.id;
    options.threads = info.id == engine::Algorithm::kParallel ? 4 : 1;
    auto built =
        TrussIndex::Build(graph, IndexBuildPlan::WithOptions(options));
    ASSERT_TRUE(built.ok()) << info.name << ": "
                            << built.status().ToString();
    const TrussIndex& index = *built.value().index;
    ASSERT_EQ(index.kmax(), baseline->kmax()) << info.name;
    ASSERT_EQ(index.num_communities(), baseline->num_communities())
        << info.name;
    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      const Edge edge = graph->edges()[e];
      ASSERT_EQ(index.EdgeTrussNumber(edge.u, edge.v),
                baseline->EdgeTrussNumber(edge.u, edge.v))
          << info.name << " edge " << e;
    }
    for (VertexId v = 0; v < graph->num_vertices(); ++v) {
      ASSERT_EQ(index.VertexMaxK(v), baseline->VertexMaxK(v))
          << info.name << " vertex " << v;
    }
  }
}

TEST(TrussIndexTest, PlanBuildRejectsTopT) {
  auto graph = Figure2();
  engine::DecomposeOptions options;
  options.algorithm = engine::Algorithm::kTopDown;
  options.top_t = 2;
  auto built = TrussIndex::Build(graph, IndexBuildPlan::WithOptions(options));
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// TrussIndex persistence
// ---------------------------------------------------------------------------

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TrussIndexPersistenceTest, SaveLoadRoundTrip) {
  auto graph = std::make_shared<Graph>(
      gen::PlantClique(gen::PlantedCommunities(6, 7, 0.7, 31, 2), 8, 9));
  auto index = BuildIndex(graph);
  const std::string path = TempPath("roundtrip.trsi");
  ASSERT_TRUE(index->Save(path).ok());

  auto loaded = TrussIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TrussIndex& a = *index;
  const TrussIndex& b = *loaded.value();

  ASSERT_EQ(b.kmax(), a.kmax());
  ASSERT_EQ(b.num_communities(), a.num_communities());
  ASSERT_EQ(b.graph().num_vertices(), a.graph().num_vertices());
  ASSERT_EQ(b.graph().num_edges(), a.graph().num_edges());
  for (EdgeId e = 0; e < a.graph().num_edges(); ++e) {
    const Edge edge = a.graph().edges()[e];
    ASSERT_EQ(b.EdgeTrussNumber(edge.u, edge.v),
              a.EdgeTrussNumber(edge.u, edge.v));
  }
  for (VertexId v = 0; v < a.graph().num_vertices(); ++v) {
    ASSERT_EQ(b.VertexMaxK(v), a.VertexMaxK(v));
    const auto ca = a.MembershipChain(v);
    const auto cb = b.MembershipChain(v);
    ASSERT_EQ(cb.size(), ca.size());
    for (size_t i = 0; i < ca.size(); ++i) ASSERT_EQ(cb[i], ca[i]);
  }
  for (CommunityId c = 0; c < a.num_communities(); ++c) {
    ASSERT_EQ(b.Community(c).k, a.Community(c).k);
    ASSERT_EQ(b.Community(c).num_vertices, a.Community(c).num_vertices);
    ASSERT_EQ(b.Community(c).num_edges, a.Community(c).num_edges);
  }
  const auto ta = a.DensestCommunities(16);
  const auto tb = b.DensestCommunities(16);
  ASSERT_EQ(tb.size(), ta.size());
  for (size_t i = 0; i < ta.size(); ++i) ASSERT_EQ(tb[i], ta[i]);
}

TEST(TrussIndexPersistenceTest, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_EQ(TrussIndex::Load(TempPath("nope.trsi")).status().code(),
            StatusCode::kIOError);

  auto index = BuildIndex(Figure2());
  const std::string path = TempPath("corrupt.trsi");
  ASSERT_TRUE(index->Save(path).ok());

  {  // Bad magic.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const uint32_t bad = 0xdeadbeef;
    ASSERT_EQ(std::fwrite(&bad, sizeof(bad), 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(TrussIndex::Load(path).status().code(),
              StatusCode::kCorruption);
  }

  ASSERT_TRUE(index->Save(path).ok());
  {  // Truncation.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
    EXPECT_EQ(TrussIndex::Load(path).status().code(),
              StatusCode::kCorruption);
  }
}

// Table-driven corruption sweep over the TRSI format: truncations at every
// region boundary and single bit flips anywhere must load as kCorruption —
// never a wrong index, never a crash.
TEST(TrussIndexPersistenceTest, TruncationAndBitFlipTableIsCorruption) {
  auto index = BuildIndex(Figure2());
  const std::string path = TempPath("corruption_table.trsi");
  ASSERT_TRUE(index->Save(path).ok());
  std::error_code ec;
  const long size =
      static_cast<long>(std::filesystem::file_size(path, ec));
  ASSERT_FALSE(ec);
  ASSERT_GT(size, 32);

  struct Case {
    const char* kind;
    long offset;  // truncate: new length; bitflip: byte position
  };
  const Case cases[] = {
      {"truncate", 1},        {"truncate", size / 4},
      {"truncate", size / 2}, {"truncate", size - 1},
      {"bitflip", 0},         {"bitflip", 8},
      {"bitflip", size / 3},  {"bitflip", size / 2},
      {"bitflip", size - 1},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(index->Save(path).ok());
    if (std::string_view(c.kind) == "truncate") {
      ASSERT_EQ(::truncate(path.c_str(), c.offset), 0);
    } else {
      std::FILE* f = std::fopen(path.c_str(), "r+b");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fseek(f, c.offset, SEEK_SET), 0);
      const int byte = std::fgetc(f);
      ASSERT_NE(byte, EOF);
      ASSERT_EQ(std::fseek(f, c.offset, SEEK_SET), 0);
      ASSERT_NE(std::fputc(byte ^ 0x40, f), EOF);
      ASSERT_EQ(std::fclose(f), 0);
    }
    const Status status = TrussIndex::Load(path).status();
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << c.kind << " at " << c.offset << ": " << status.ToString();
  }
}

// ---------------------------------------------------------------------------
// SnapshotRegistry + SnapshotRebuilder
// ---------------------------------------------------------------------------

TEST(SnapshotRegistryTest, EmptySentinelThenMonotonicVersions) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.current_version(), 0u);
  EXPECT_EQ(registry.Current().index, nullptr);

  auto index = BuildIndex(Figure2());
  EXPECT_EQ(registry.Publish(index, "first", 0.5), 1u);
  EXPECT_EQ(registry.Publish(index, "second", 0.25), 2u);
  const ServingSnapshot snap = registry.Current();
  EXPECT_EQ(snap.version, 2u);
  EXPECT_EQ(snap.description, "second");
  EXPECT_EQ(snap.index, index);
}

// The TSan target: readers hammer Current() and query the index while a
// publisher swaps fresh snapshots in. Asserts per-reader version
// monotonicity and that every observed snapshot answers queries
// consistently (an in-flight swap must never expose a torn index).
TEST(SnapshotRegistryTest, ConcurrentReadersDuringSwap) {
  auto graph = Figure2();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(*graph);
  auto index = TrussIndex::Build(graph, r);
  const uint32_t expected_kmax = index->kmax();

  SnapshotRegistry registry;
  registry.Publish(index, "seed", 0.0);

  constexpr uint32_t kReaders = 3;
  constexpr uint32_t kPublishes = 50;
  constexpr uint32_t kReadsPerReader = 2000;
  std::atomic<uint32_t> torn{0};

  RunShards(kReaders + 1, [&](uint32_t shard) {
    if (shard == 0) {
      for (uint32_t i = 0; i < kPublishes; ++i) {
        // Each publish builds a brand-new index object so old snapshots
        // really are freed under the readers' feet when refcounts drop.
        registry.Publish(TrussIndex::Build(graph, r), std::to_string(i),
                         0.0);
        sched_yield();
      }
      return;
    }
    uint64_t last_version = 0;
    for (uint32_t i = 0; i < kReadsPerReader; ++i) {
      const ServingSnapshot snap = registry.Current();
      if (snap.index == nullptr || snap.version < last_version ||
          snap.index->kmax() != expected_kmax ||
          snap.index->VertexMaxK(0) != 5 ||
          snap.index->CommunityAt(0, 3) == kInvalidCommunity) {
        torn.fetch_add(1);
      }
      last_version = snap.version;
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(registry.current_version(), kPublishes + 1);
}

TEST(SnapshotRebuilderTest, RebuildPublishesNextVersion) {
  auto graph = Figure2();
  SnapshotRegistry registry;
  registry.Publish(BuildIndex(graph), "seed", 0.0);

  SnapshotRebuilder rebuilder(graph, &registry);
  EXPECT_FALSE(rebuilder.InFlight());
  engine::DecomposeOptions options;
  options.algorithm = engine::Algorithm::kParallel;
  options.threads = 2;
  auto outcome = rebuilder.RebuildAndPublish(options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().version, 2u);
  EXPECT_FALSE(rebuilder.InFlight());
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_EQ(registry.Current().description, "algo=parallel threads=2");
}

TEST(SnapshotRebuilderTest, ConcurrentRebuildReturnsBusy) {
  auto graph = Figure2();
  SnapshotRegistry registry;
  SnapshotRebuilder rebuilder(graph, &registry);

  // The progress hook fires on the rebuild thread at the start of the
  // decomposition; parking there holds in_flight long enough for the
  // second shard to observe it deterministically.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  engine::DecomposeOptions slow;
  slow.hooks.progress = [&](const ProgressEvent&) {
    started.store(true);
    while (!release.load()) sched_yield();
  };

  Result<RebuildOutcome> first = Status::Internal("unset");
  Result<RebuildOutcome> second = Status::Internal("unset");
  RunShards(2, [&](uint32_t shard) {
    if (shard == 0) {
      first = rebuilder.RebuildAndPublish(slow);
    } else {
      while (!started.load()) sched_yield();
      EXPECT_TRUE(rebuilder.InFlight());
      second = rebuilder.RebuildAndPublish(engine::DecomposeOptions{});
      release.store(true);
    }
  });
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().version, 1u);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(rebuilder.InFlight());
}

// ---------------------------------------------------------------------------
// TrussServer: protocol unit tests through HandleLine (no sockets)
// ---------------------------------------------------------------------------

class ServerProtocolTest : public ::testing::Test {
 protected:
  ServerProtocolTest()
      : graph_(Figure2()), server_(graph_, &registry_, ServerOptions{}) {}

  void PublishSeed() { registry_.Publish(BuildIndex(graph_), "seed", 0.0); }

  std::shared_ptr<const Graph> graph_;
  SnapshotRegistry registry_;
  TrussServer server_;
};

TEST_F(ServerProtocolTest, UnavailableBeforeFirstPublish) {
  EXPECT_EQ(server_.HandleLine("TRUSS 0 1"),
            "ERR UNAVAILABLE no snapshot published");
  EXPECT_EQ(server_.HandleLine("VERSION"), "OK VERSION 0");
  EXPECT_EQ(server_.HandleLine("PING"), "OK PONG");
}

TEST_F(ServerProtocolTest, AnswersEveryQueryType) {
  PublishSeed();
  // Figure 2: vertices a..e (0..4) form a 5-truss clique; edge {a,b} has
  // truss number 5; vertex k (10) only reaches the 3-truss.
  EXPECT_EQ(server_.HandleLine("TRUSS 0 1"), "OK TRUSS 5");
  EXPECT_EQ(server_.HandleLine("TRUSS 0 999"), "OK TRUSS 0");
  EXPECT_EQ(server_.HandleLine("MAXK 10"),
            "OK MAXK k=3 community=0 size=12");
  EXPECT_EQ(server_.HandleLine("VERSION"), "OK VERSION 1");
  EXPECT_EQ(server_.HandleLine("QUIT"), "OK BYE");

  const std::string comm = server_.HandleLine("COMM 0 5");
  EXPECT_TRUE(comm.rfind("OK COMM id=", 0) == 0) << comm;
  EXPECT_NE(comm.find(" k=5 vertices=5 "), std::string::npos) << comm;

  const std::string top = server_.HandleLine("TOP 3");
  EXPECT_TRUE(top.rfind("OK TOP 3 ", 0) == 0) << top;

  const std::string members = server_.HandleLine("MEMBERS 0");
  EXPECT_TRUE(members.rfind("OK MEMBERS 12 ", 0) == 0) << members;

  const std::string stats = server_.HandleLine("STATS");
  EXPECT_TRUE(stats.rfind("OK STATS version=1 ", 0) == 0) << stats;
  EXPECT_NE(stats.find("kmax=5"), std::string::npos) << stats;
}

TEST_F(ServerProtocolTest, RejectsMalformedRequests) {
  PublishSeed();
  EXPECT_EQ(server_.HandleLine("TRUSS 0"),
            "ERR BAD_REQUEST usage: TRUSS <u> <v>");
  EXPECT_EQ(server_.HandleLine("TRUSS a b"),
            "ERR BAD_REQUEST usage: TRUSS <u> <v>");
  EXPECT_EQ(server_.HandleLine("MAXK -3"),
            "ERR BAD_REQUEST usage: MAXK <v>");
  EXPECT_EQ(server_.HandleLine("TOP 0"),
            "ERR BAD_REQUEST usage: TOP <t>  (t >= 1)");
  EXPECT_EQ(server_.HandleLine("COMM 10 5"),
            "ERR NOT_FOUND vertex 10 is in no 5-truss");
  EXPECT_EQ(server_.HandleLine("MEMBERS 999"),
            "ERR NOT_FOUND no community 999");
  EXPECT_EQ(server_.HandleLine("FROB"),
            "ERR BAD_REQUEST unknown command 'FROB'");
  EXPECT_EQ(server_.HandleLine("REBUILD nope"),
            "ERR BAD_REQUEST unknown algorithm 'nope'");
  EXPECT_EQ(server_.HandleLine(""), "");

  const ServerStats stats = server_.stats();
  EXPECT_EQ(stats.errors, 8u);
  EXPECT_EQ(stats.queries, 8u);  // blank line is not a query
}

TEST_F(ServerProtocolTest, RebuildSwapsVersionForLiveSnapshots) {
  PublishSeed();
  const std::string rebuilt = server_.HandleLine("REBUILD parallel");
  EXPECT_TRUE(rebuilt.rfind("OK REBUILD version=2 ", 0) == 0) << rebuilt;
  EXPECT_EQ(server_.HandleLine("VERSION"), "OK VERSION 2");
  // The answers survive the swap byte-for-byte.
  EXPECT_EQ(server_.HandleLine("TRUSS 0 1"), "OK TRUSS 5");
  EXPECT_EQ(server_.stats().rebuilds, 1u);
}

// ---------------------------------------------------------------------------
// TrussServer: socket round trip
// ---------------------------------------------------------------------------

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAllFd(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool RecvLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer->data(), newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[1024];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

TEST(ServerSocketTest, AnswersQueriesOverTcp) {
  auto graph = Figure2();
  SnapshotRegistry registry;
  registry.Publish(BuildIndex(graph), "seed", 0.0);

  ServerOptions options;
  options.workers = 2;
  options.poll_interval_ms = 20;
  TrussServer server(graph, &registry, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  RunShards(2, [&](uint32_t shard) {
    if (shard == 0) {
      server.Serve();
      return;
    }
    const int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    std::string buffer, line;
    // Pipelined batch in one write, plus split writes across a line
    // boundary, exercise the server's line reassembly.
    EXPECT_TRUE(SendAllFd(fd, "PING\nTRUSS 0 1\nMA"));
    EXPECT_TRUE(SendAllFd(fd, "XK 0\nTOP 1\n"));
    EXPECT_TRUE(RecvLine(fd, &buffer, &line));
    EXPECT_EQ(line, "OK PONG");
    EXPECT_TRUE(RecvLine(fd, &buffer, &line));
    EXPECT_EQ(line, "OK TRUSS 5");
    EXPECT_TRUE(RecvLine(fd, &buffer, &line));
    EXPECT_TRUE(line.rfind("OK MAXK k=5 ", 0) == 0) << line;
    EXPECT_TRUE(RecvLine(fd, &buffer, &line));
    EXPECT_TRUE(line.rfind("OK TOP 1 ", 0) == 0) << line;
    EXPECT_TRUE(SendAllFd(fd, "QUIT\n"));
    EXPECT_TRUE(RecvLine(fd, &buffer, &line));
    EXPECT_EQ(line, "OK BYE");
    ::close(fd);

    // A second connection still works (workers loop back to accept).
    const int fd2 = ConnectLoopback(server.port());
    ASSERT_GE(fd2, 0);
    buffer.clear();
    EXPECT_TRUE(SendAllFd(fd2, "VERSION\n"));
    EXPECT_TRUE(RecvLine(fd2, &buffer, &line));
    EXPECT_EQ(line, "OK VERSION 1");
    ::close(fd2);

    server.Stop();
  });

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections, 2u);
  EXPECT_GE(stats.queries, 6u);
}

}  // namespace
}  // namespace truss::serve
