// Unit tests for the cache-aware layout module (src/layout) and the DODG
// triangle enumeration it feeds: permutation properties, the degree-layout
// invariance of every registry algorithm's truss numbers, and the DODG's
// exactly-once triangle contract.

#include "layout/layout.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "triangle/triangle.h"

namespace truss {
namespace {

using engine::Algorithm;
using engine::DecomposeOptions;
using engine::Engine;

// Degree skew fixture shared with the parallel-support tests: a star hub
// plus a small clique, so the degree counting sort sees heavy ties.
Graph SkewedHubGraph() {
  std::vector<Edge> edges;
  const VertexId hub = 0;
  for (VertexId v = 1; v <= 300; ++v) edges.push_back(MakeEdge(hub, v));
  for (VertexId i = 1; i <= 12; ++i) {
    for (VertexId j = i + 1; j <= 12; ++j) edges.push_back(MakeEdge(i, j));
  }
  return Graph::FromEdges(std::move(edges), 0);
}

bool IsBijection(const layout::VertexPermutation& perm, VertexId n) {
  if (perm.new_id.size() != n || perm.old_id.size() != n) return false;
  for (VertexId v = 0; v < n; ++v) {
    if (perm.new_id[v] >= n || perm.old_id[perm.new_id[v]] != v) return false;
  }
  return true;
}

// --- policy names -------------------------------------------------------

TEST(LayoutTest, PolicyNamesRoundTrip) {
  for (const layout::Policy policy :
       {layout::Policy::kNone, layout::Policy::kDegree}) {
    layout::Policy parsed = layout::Policy::kNone;
    EXPECT_TRUE(layout::PolicyFromName(layout::PolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
}

TEST(LayoutTest, PolicyFromNameRejectsUnknown) {
  layout::Policy parsed = layout::Policy::kDegree;
  EXPECT_FALSE(layout::PolicyFromName("zigzag", &parsed));
  EXPECT_EQ(parsed, layout::Policy::kDegree) << "must leave *policy untouched";
  EXPECT_FALSE(layout::PolicyFromName("", &parsed));
}

// --- ComputeOrder -------------------------------------------------------

TEST(LayoutTest, NonePolicyIsIdentity) {
  const Graph g = gen::ErdosRenyiGnm(40, 200, 3);
  const auto perm = layout::ComputeOrder(g, layout::Policy::kNone);
  ASSERT_TRUE(IsBijection(perm, g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(perm.new_id[v], v);
    EXPECT_EQ(perm.old_id[v], v);
  }
}

TEST(LayoutTest, DegreeOrderIsDegreeDescendingWithStableTies) {
  const Graph graphs[] = {
      gen::ErdosRenyiGnm(60, 400, 7), gen::BarabasiAlbert(200, 4, 11),
      gen::Star(80),                  SkewedHubGraph(),
      Graph(),                        gen::Figure2Graph().graph,
  };
  for (size_t i = 0; i < std::size(graphs); ++i) {
    const Graph& g = graphs[i];
    const auto perm = layout::ComputeOrder(g, layout::Policy::kDegree);
    ASSERT_TRUE(IsBijection(perm, g.num_vertices())) << "graph " << i;
    for (VertexId r = 1; r < g.num_vertices(); ++r) {
      const VertexId prev = perm.old_id[r - 1], cur = perm.old_id[r];
      // Degree non-increasing along new ids; equal degrees keep old-id order.
      EXPECT_GE(g.degree(prev), g.degree(cur)) << "graph " << i;
      if (g.degree(prev) == g.degree(cur)) {
        EXPECT_LT(prev, cur) << "graph " << i << " rank " << r;
      }
    }
  }
}

TEST(LayoutTest, ComputeOrderIsThreadCountInvariant) {
  const Graph g = gen::BarabasiAlbert(300, 5, 17);
  const auto sequential = layout::ComputeOrder(g, layout::Policy::kDegree, 1);
  for (const uint32_t threads : {2u, 4u, 8u, 64u}) {
    const auto parallel =
        layout::ComputeOrder(g, layout::Policy::kDegree, threads);
    EXPECT_EQ(parallel.new_id, sequential.new_id) << "threads " << threads;
    EXPECT_EQ(parallel.old_id, sequential.old_id) << "threads " << threads;
  }
}

// --- ApplyPermutation ---------------------------------------------------

TEST(LayoutTest, ApplyPermutationPreservesStructure) {
  const Graph g = gen::ErdosRenyiGnm(50, 300, 5);
  const auto perm = layout::ComputeOrder(g, layout::Policy::kDegree);
  const layout::PermutedGraph permuted = layout::ApplyPermutation(g, perm);

  ASSERT_EQ(permuted.graph.num_vertices(), g.num_vertices());
  ASSERT_EQ(permuted.graph.num_edges(), g.num_edges());
  ASSERT_EQ(permuted.original_edge.size(), g.num_edges());

  // original_edge is a bijection on edge ids, and translating each permuted
  // edge's endpoints back through the inverse map recovers the source edge.
  std::vector<bool> seen(g.num_edges(), false);
  for (EdgeId e = 0; e < permuted.graph.num_edges(); ++e) {
    const EdgeId original = permuted.original_edge[e];
    ASSERT_LT(original, g.num_edges());
    EXPECT_FALSE(seen[original]) << "edge mapped twice";
    seen[original] = true;
    const Edge& pe = permuted.graph.edge(e);
    EXPECT_EQ(MakeEdge(perm.old_id[pe.u], perm.old_id[pe.v]),
              g.edge(original));
  }
}

TEST(LayoutTest, DegreeLayoutYieldsDegreeMonotoneGraph) {
  const Graph g = gen::BarabasiAlbert(150, 4, 23);
  const auto perm = layout::ComputeOrder(g, layout::Policy::kDegree);
  const layout::PermutedGraph permuted = layout::ApplyPermutation(g, perm);
  for (VertexId v = 1; v < permuted.graph.num_vertices(); ++v) {
    EXPECT_LE(permuted.graph.degree(v), permuted.graph.degree(v - 1));
  }
  // A degree-monotone id space is exactly the Dodg fast path.
  EXPECT_TRUE(Dodg(permuted.graph).id_ordered());
}

TEST(LayoutTest, ApplyPermutationIsThreadCountInvariant) {
  const Graph g = gen::ErdosRenyiGnm(80, 500, 29);
  const auto perm = layout::ComputeOrder(g, layout::Policy::kDegree);
  const layout::PermutedGraph sequential = layout::ApplyPermutation(g, perm, 1);
  for (const uint32_t threads : {2u, 4u, 8u}) {
    const layout::PermutedGraph parallel =
        layout::ApplyPermutation(g, perm, threads);
    EXPECT_EQ(parallel.original_edge, sequential.original_edge);
    ASSERT_EQ(parallel.graph.num_edges(), sequential.graph.num_edges());
    for (EdgeId e = 0; e < parallel.graph.num_edges(); ++e) {
      EXPECT_EQ(parallel.graph.edge(e), sequential.graph.edge(e));
    }
  }
}

TEST(LayoutTest, MapEdgeValuesRoundTripsSupports) {
  // Edge supports are an isomorphism invariant: computing them on the
  // permuted graph and mapping back must reproduce the direct computation.
  const Graph g = gen::ErdosRenyiGnm(60, 450, 31);
  const auto perm = layout::ComputeOrder(g, layout::Policy::kDegree);
  const layout::PermutedGraph permuted = layout::ApplyPermutation(g, perm);
  const std::vector<uint32_t> mapped = layout::MapEdgeValuesToOriginal(
      permuted.original_edge, ComputeEdgeSupports(permuted.graph));
  EXPECT_EQ(mapped, ComputeEdgeSupports(g));
}

TEST(LayoutTest, EmptyGraph) {
  const Graph g;
  const auto perm = layout::ComputeOrder(g, layout::Policy::kDegree);
  EXPECT_EQ(perm.size(), 0u);
  const layout::PermutedGraph permuted = layout::ApplyPermutation(g, perm);
  EXPECT_EQ(permuted.graph.num_vertices(), 0u);
  EXPECT_EQ(permuted.graph.num_edges(), 0u);
  EXPECT_TRUE(permuted.original_edge.empty());
}

// --- Dodg ---------------------------------------------------------------

TEST(DodgTest, OutDegreeBoundedBySqrt2M) {
  // Orienting each edge toward its (degree desc, id asc)-earlier endpoint
  // bounds every out-degree by √(2m): a vertex of degree ≤ √(2m) has at
  // most that many neighbors at all, and fewer than √(2m) vertices can
  // have degree above it.
  const Graph g = gen::BarabasiAlbert(400, 5, 9);
  const Dodg dodg(g);
  const double bound = std::sqrt(2.0 * static_cast<double>(g.num_edges()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(static_cast<double>(dodg.out(v).size()), bound);
  }
}

TEST(DodgTest, EachTriangleListedExactlyOnce) {
  const Graph graphs[] = {
      gen::ErdosRenyiGnm(40, 300, 3), gen::Complete(10),
      gen::Star(50),                  SkewedHubGraph(),
      gen::Figure2Graph().graph,
  };
  for (size_t i = 0; i < std::size(graphs); ++i) {
    const Graph& g = graphs[i];
    const Dodg dodg(g);
    std::set<std::array<EdgeId, 3>> seen;
    uint64_t listed = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ForEachTriangleEdgesAt(dodg, v, [&](EdgeId e1, EdgeId e2, EdgeId e3) {
        std::array<EdgeId, 3> t = {e1, e2, e3};
        std::sort(t.begin(), t.end());
        EXPECT_TRUE(seen.insert(t).second) << "duplicate triangle, graph " << i;
        ++listed;
      });
    }
    EXPECT_EQ(listed, CountTriangles(g)) << "graph " << i;
  }
}

TEST(DodgTest, ListedEdgesFormTheTriangle) {
  const Graph g = gen::ErdosRenyiGnm(30, 200, 5);
  const Dodg dodg(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ForEachTriangleEdgesAt(dodg, v, [&](EdgeId uv, EdgeId uw, EdgeId vw) {
      // The three edges must pairwise share exactly the triangle's corners.
      const Edge a = g.edge(uv), b = g.edge(uw), c = g.edge(vw);
      std::set<VertexId> corners = {a.u, a.v, b.u, b.v, c.u, c.v};
      EXPECT_EQ(corners.size(), 3u);
    });
  }
}

TEST(DodgTest, FastPathDetection) {
  // gen::Star numbers the hub 0, so ids are already degree-descending.
  EXPECT_TRUE(Dodg(gen::Star(20)).id_ordered());
  EXPECT_TRUE(Dodg(gen::Complete(6)).id_ordered());  // all degrees equal
  EXPECT_TRUE(Dodg(Graph()).id_ordered());
  // A path's endpoints have degree 1 and its middle degree 2, so ids are
  // not degree-monotone and the general position path must engage.
  const Graph path = gen::Path(10);
  const Dodg dodg(path);
  EXPECT_FALSE(dodg.id_ordered());
  // Both paths agree on supports regardless.
  EXPECT_EQ(ComputeEdgeSupports(path), ComputeEdgeSupportsNaive(path));
}

TEST(DodgTest, ThreadCountInvariantConstruction) {
  const Graph g = gen::BarabasiAlbert(200, 5, 31);
  const Dodg sequential(g);
  for (const uint32_t threads : {2u, 4u, 8u}) {
    const Dodg parallel(g, threads);
    ASSERT_TRUE(std::ranges::equal(sequential.offsets(), parallel.offsets()));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto a = sequential.out(v);
      const auto b = parallel.out(v);
      ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].neighbor, b[i].neighbor);
        EXPECT_EQ(a[i].edge, b[i].edge);
      }
    }
  }
}

// --- options validation -------------------------------------------------

TEST(DecomposeOptionsLayoutTest, LayoutRejectsTopT) {
  DecomposeOptions options;
  options.algorithm = Algorithm::kTopDown;
  options.top_t = 2;
  options.layout = layout::Policy::kDegree;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.layout = layout::Policy::kNone;
  EXPECT_TRUE(options.Validate().ok());
  options.layout = layout::Policy::kDegree;
  options.top_t = -1;  // full decomposition reorders fine
  EXPECT_TRUE(options.Validate().ok());
}

// --- end-to-end invariance ----------------------------------------------

class LayoutInvarianceTest : public ::testing::TestWithParam<uint32_t> {};

// The acceptance bar of the layout feature: with layout=degree every
// registry algorithm must return truss numbers byte-identical (in the
// original edge-id space) to a layout=none run, for every thread count and
// graph shape.
TEST_P(LayoutInvarianceTest, TrussNumbersInvariantUnderDegreeLayout) {
  const uint32_t threads = GetParam();
  const Graph graphs[] = {
      gen::ErdosRenyiGnm(60, 400, 13),  // random
      gen::Star(60),                    // triangle-free
      gen::BarabasiAlbert(120, 4, 23),  // power-law skew
      Graph(),                          // empty
      gen::Figure2Graph().graph,        // the paper's running example
  };
  for (size_t i = 0; i < std::size(graphs); ++i) {
    const Graph& g = graphs[i];
    for (const engine::AlgorithmInfo& info : Engine::Algorithms()) {
      DecomposeOptions options;
      options.algorithm = info.id;
      options.threads = threads;
      options.memory_budget_bytes = 1 << 20;  // exercise external staging

      options.layout = layout::Policy::kNone;
      auto plain = Engine::Decompose(g, options);
      ASSERT_TRUE(plain.ok())
          << info.name << " graph " << i << ": " << plain.status().ToString();

      options.layout = layout::Policy::kDegree;
      auto reordered = Engine::Decompose(g, options);
      ASSERT_TRUE(reordered.ok()) << info.name << " graph " << i << ": "
                                  << reordered.status().ToString();

      EXPECT_EQ(reordered.value().result.truss_number,
                plain.value().result.truss_number)
          << info.name << " graph " << i << " threads " << threads;
      EXPECT_EQ(reordered.value().result.kmax, plain.value().result.kmax)
          << info.name << " graph " << i;
      EXPECT_EQ(plain.value().stats.reorder_seconds, 0.0);
      EXPECT_GE(reordered.value().stats.reorder_seconds, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, LayoutInvarianceTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(LayoutInvarianceTest, Figure2GroundTruthWithLayout) {
  const gen::Figure2Fixture fig = gen::Figure2Graph();
  DecomposeOptions options;
  options.layout = layout::Policy::kDegree;
  auto out = Engine::Decompose(fig.graph, options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().result.truss_number, fig.expected_truss);
  EXPECT_EQ(out.value().result.kmax, fig.expected_kmax);
}

}  // namespace
}  // namespace truss
