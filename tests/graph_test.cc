// Unit tests for the CSR Graph and GraphBuilder.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/generators.h"

namespace truss {
namespace {

TEST(EdgeTest, MakeEdgeNormalizes) {
  const Edge e1 = MakeEdge(5, 3);
  EXPECT_EQ(e1.u, 3u);
  EXPECT_EQ(e1.v, 5u);
  const Edge e2 = MakeEdge(3, 5);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(EdgeHash{}(e1), EdgeHash{}(e2));
}

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.PaperSize(), 0u);
}

#if !defined(NDEBUG) && GTEST_HAS_DEATH_TEST
// degree()/neighbors() on a default-constructed graph used to index the
// empty offsets_ vector; Debug builds must now fail the bounds DCHECK.
TEST(GraphDeathTest, DegreeOnEmptyGraphFailsBoundsCheck) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g;
  EXPECT_DEATH(g.degree(0), "TRUSS_CHECK failed");
  EXPECT_DEATH(g.neighbors(0), "TRUSS_CHECK failed");
}

TEST(GraphDeathTest, OutOfRangeVertexFailsBoundsCheck) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g = Graph::FromEdges({MakeEdge(0, 1)});
  EXPECT_DEATH(g.degree(2), "TRUSS_CHECK failed");
}
#endif  // !defined(NDEBUG) && GTEST_HAS_DEATH_TEST

TEST(GraphTest, FromEdgesBasic) {
  const Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {0, 2}}, 0);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.PaperSize(), 6u);
}

TEST(GraphTest, DeduplicatesParallelEdges) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, IgnoresSelfLoops) {
  GraphBuilder builder;
  builder.AddEdge(2, 2);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  // A self-loop is dropped entirely; it does not even create its vertex.
  EXPECT_EQ(g.num_vertices(), 2u);
}

TEST(GraphTest, IsolatedVerticesViaExplicitCount) {
  const Graph g = Graph::FromEdges({{0, 1}}, 5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(GraphTest, AdjacencySortedByNeighborId) {
  const Graph g = Graph::FromEdges({{2, 7}, {2, 3}, {1, 2}, {2, 9}}, 0);
  const auto adj = g.neighbors(2);
  ASSERT_EQ(adj.size(), 4u);
  for (size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LT(adj[i - 1].neighbor, adj[i].neighbor);
  }
}

TEST(GraphTest, EdgeIdsAreLexicographic) {
  const Graph g = Graph::FromEdges({{3, 4}, {0, 9}, {0, 2}, {1, 5}}, 0);
  for (EdgeId e = 1; e < g.num_edges(); ++e) {
    EXPECT_LT(g.edge(e - 1), g.edge(e));
  }
}

TEST(GraphTest, FindEdgePresentAndAbsent) {
  const Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {2, 3}}, 0);
  EXPECT_NE(g.FindEdge(1, 2), kInvalidEdge);
  EXPECT_NE(g.FindEdge(2, 1), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 3), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 0), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(1, 2), g.FindEdge(2, 1));
}

TEST(GraphTest, EdgeIdRoundTripThroughAdjacency) {
  const Graph g = gen::ErdosRenyiGnm(50, 200, 7);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const AdjEntry& a : g.neighbors(v)) {
      const Edge e = g.edge(a.edge);
      EXPECT_TRUE((e.u == v && e.v == a.neighbor) ||
                  (e.v == v && e.u == a.neighbor));
    }
  }
}

TEST(GraphTest, DegreeSumEqualsTwiceEdges) {
  const Graph g = gen::ErdosRenyiGnm(100, 500, 11);
  uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
  EXPECT_EQ(total, 2ull * g.num_edges());
  EXPECT_EQ(g.adjacency_size(), 2ull * g.num_edges());
}

TEST(GraphTest, BuilderReusableAfterBuild) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g1 = builder.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const Graph g2 = builder.Build();
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(GraphTest, SizeBytesPositiveAndMonotone) {
  const Graph small = gen::Complete(5);
  const Graph big = gen::Complete(20);
  EXPECT_GT(small.SizeBytes(), 0u);
  EXPECT_GT(big.SizeBytes(), small.SizeBytes());
}

}  // namespace
}  // namespace truss
