// Unit tests for the CSR Graph and GraphBuilder.

#include "graph/graph.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "gen/generators.h"

namespace truss {
namespace {

TEST(EdgeTest, MakeEdgeNormalizes) {
  const Edge e1 = MakeEdge(5, 3);
  EXPECT_EQ(e1.u, 3u);
  EXPECT_EQ(e1.v, 5u);
  const Edge e2 = MakeEdge(3, 5);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(EdgeHash{}(e1), EdgeHash{}(e2));
}

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.PaperSize(), 0u);
}

#if !defined(NDEBUG) && GTEST_HAS_DEATH_TEST
// degree()/neighbors() on a default-constructed graph used to index the
// empty offsets_ vector; Debug builds must now fail the bounds DCHECK.
TEST(GraphDeathTest, DegreeOnEmptyGraphFailsBoundsCheck) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g;
  EXPECT_DEATH(g.degree(0), "TRUSS_CHECK failed");
  EXPECT_DEATH(g.neighbors(0), "TRUSS_CHECK failed");
}

TEST(GraphDeathTest, OutOfRangeVertexFailsBoundsCheck) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g = Graph::FromEdges({MakeEdge(0, 1)});
  EXPECT_DEATH(g.degree(2), "TRUSS_CHECK failed");
}
#endif  // !defined(NDEBUG) && GTEST_HAS_DEATH_TEST

TEST(GraphTest, FromEdgesBasic) {
  const Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {0, 2}}, 0);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.PaperSize(), 6u);
}

TEST(GraphTest, DeduplicatesParallelEdges) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, IgnoresSelfLoops) {
  GraphBuilder builder;
  builder.AddEdge(2, 2);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  // A self-loop is dropped entirely; it does not even create its vertex.
  EXPECT_EQ(g.num_vertices(), 2u);
}

TEST(GraphTest, IsolatedVerticesViaExplicitCount) {
  const Graph g = Graph::FromEdges({{0, 1}}, 5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(GraphTest, AdjacencySortedByNeighborId) {
  const Graph g = Graph::FromEdges({{2, 7}, {2, 3}, {1, 2}, {2, 9}}, 0);
  const auto adj = g.neighbors(2);
  ASSERT_EQ(adj.size(), 4u);
  for (size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LT(adj[i - 1].neighbor, adj[i].neighbor);
  }
}

TEST(GraphTest, EdgeIdsAreLexicographic) {
  const Graph g = Graph::FromEdges({{3, 4}, {0, 9}, {0, 2}, {1, 5}}, 0);
  for (EdgeId e = 1; e < g.num_edges(); ++e) {
    EXPECT_LT(g.edge(e - 1), g.edge(e));
  }
}

TEST(GraphTest, FindEdgePresentAndAbsent) {
  const Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {2, 3}}, 0);
  EXPECT_NE(g.FindEdge(1, 2), kInvalidEdge);
  EXPECT_NE(g.FindEdge(2, 1), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 3), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 0), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(1, 2), g.FindEdge(2, 1));
}

TEST(GraphTest, EdgeIdRoundTripThroughAdjacency) {
  const Graph g = gen::ErdosRenyiGnm(50, 200, 7);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const AdjEntry& a : g.neighbors(v)) {
      const Edge e = g.edge(a.edge);
      EXPECT_TRUE((e.u == v && e.v == a.neighbor) ||
                  (e.v == v && e.u == a.neighbor));
    }
  }
}

TEST(GraphTest, DegreeSumEqualsTwiceEdges) {
  const Graph g = gen::ErdosRenyiGnm(100, 500, 11);
  uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
  EXPECT_EQ(total, 2ull * g.num_edges());
  EXPECT_EQ(g.adjacency_size(), 2ull * g.num_edges());
}

TEST(GraphTest, BuilderReusableAfterBuild) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g1 = builder.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const Graph g2 = builder.Build();
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(GraphBuilderTest, CompactDedupsPendingInPlace) {
  // Regression: Build() used to carry the raw pending list (every edge of a
  // both-directions SNAP listing, twice) through CSR construction alongside
  // the deduplicated copy, roughly doubling peak RSS. Compact() now dedups
  // and releases the excess *before* the CSR arrays exist; pending_edges()
  // observes the collapse.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 0);  // self-loop, dropped on insert
  EXPECT_EQ(builder.pending_edges(), 5u);
  builder.Compact();
  EXPECT_EQ(builder.pending_edges(), 2u);

  const Graph g = builder.Build();
  EXPECT_EQ(builder.pending_edges(), 0u);  // Build() moves pending_ out
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphBuilderTest, CompactIsIdempotentAndBuildStaysCorrect) {
  GraphBuilder builder;
  for (VertexId v = 0; v < 20; ++v) {
    builder.AddEdge(v, (v + 1) % 20);
    builder.AddEdge((v + 1) % 20, v);
  }
  builder.Compact();
  builder.Compact();
  EXPECT_EQ(builder.pending_edges(), 20u);
  builder.AddEdge(0, 10);  // still usable after Compact
  const Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 21u);
}

TEST(GraphTest, SizeBytesPositiveAndMonotone) {
  const Graph small = gen::Complete(5);
  const Graph big = gen::Complete(20);
  EXPECT_GT(small.SizeBytes(), 0u);
  EXPECT_GT(big.SizeBytes(), small.SizeBytes());
}

// --- binary CSR snapshots (SaveBinary / LoadBinary) --------------------

class BinarySnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case and process: gtest_discover_tests runs each
    // TEST_F as its own ctest entry, and `ctest -j` runs them concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("truss_graph_test_") + info->name() + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e));
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
    const auto an = a.neighbors(v);
    const auto bn = b.neighbors(v);
    for (size_t i = 0; i < an.size(); ++i) {
      EXPECT_EQ(an[i].neighbor, bn[i].neighbor);
      EXPECT_EQ(an[i].edge, bn[i].edge);
    }
  }
}

TEST_F(BinarySnapshotTest, RoundTrip) {
  const Graph g = gen::ErdosRenyiGnm(200, 800, 99);
  ASSERT_TRUE(g.SaveBinary(Path("g.trsb")).ok());
  auto loaded = Graph::LoadBinary(Path("g.trsb"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(g, loaded.value());
}

TEST_F(BinarySnapshotTest, RoundTripEmptyGraph) {
  const Graph g;
  ASSERT_TRUE(g.SaveBinary(Path("empty.trsb")).ok());
  auto loaded = Graph::LoadBinary(Path("empty.trsb"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_vertices(), 0u);
  EXPECT_EQ(loaded.value().num_edges(), 0u);
}

TEST_F(BinarySnapshotTest, RoundTripIsolatedVertices) {
  const Graph g = Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}}, 10);
  ASSERT_TRUE(g.SaveBinary(Path("iso.trsb")).ok());
  auto loaded = Graph::LoadBinary(Path("iso.trsb"));
  ASSERT_TRUE(loaded.ok());
  ExpectSameGraph(g, loaded.value());
}

TEST_F(BinarySnapshotTest, MissingFileIsIOError) {
  auto loaded = Graph::LoadBinary(Path("nope.trsb"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(BinarySnapshotTest, BadMagicIsCorruption) {
  {
    std::ofstream out(Path("bad.trsb"), std::ios::binary);
    out << "this is not a TRSB snapshot at all, padded to header size....";
  }
  auto loaded = Graph::LoadBinary(Path("bad.trsb"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(BinarySnapshotTest, TruncationIsCorruption) {
  const Graph g = gen::ErdosRenyiGnm(50, 200, 7);
  ASSERT_TRUE(g.SaveBinary(Path("full.trsb")).ok());
  const auto full_size = std::filesystem::file_size(Path("full.trsb"));
  std::filesystem::copy_file(Path("full.trsb"), Path("cut.trsb"));
  std::filesystem::resize_file(Path("cut.trsb"), full_size / 2);
  auto loaded = Graph::LoadBinary(Path("cut.trsb"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(BinarySnapshotTest, TruncatedHeaderIsCorruption) {
  // A file shorter than the fixed header (e.g. an interrupted download)
  // must be Corruption, not a partial-read struct full of garbage counts.
  {
    std::ofstream out(Path("stub.trsb"), std::ios::binary);
    out << "TRSB";  // valid magic, then EOF
  }
  auto loaded = Graph::LoadBinary(Path("stub.trsb"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(BinarySnapshotTest, TruncationAtEveryPrefixIsCorruption) {
  // Sweep truncation points across the whole layout — header, offsets,
  // adjacency, edge array — so no prefix of a valid snapshot loads.
  const Graph g = gen::ErdosRenyiGnm(30, 80, 5);
  ASSERT_TRUE(g.SaveBinary(Path("whole.trsb")).ok());
  const auto full_size =
      static_cast<uint64_t>(std::filesystem::file_size(Path("whole.trsb")));
  for (uint64_t keep = 1; keep < full_size; keep += full_size / 13 + 1) {
    std::filesystem::copy_file(
        Path("whole.trsb"), Path("prefix.trsb"),
        std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(Path("prefix.trsb"), keep);
    auto loaded = Graph::LoadBinary(Path("prefix.trsb"));
    ASSERT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes loaded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST_F(BinarySnapshotTest, GarbageCountsAreCorruptionNotAllocation) {
  // A bit-flipped edges_count must be caught by the file-size check before
  // any resize() tries to allocate it.
  const Graph g = gen::ErdosRenyiGnm(20, 40, 3);
  ASSERT_TRUE(g.SaveBinary(Path("counts.trsb")).ok());
  {
    std::fstream f(Path("counts.trsb"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(24);  // SnapshotHeader::edges_count
    const uint64_t absurd = 1ull << 60;
    f.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  }
  auto loaded = Graph::LoadBinary(Path("counts.trsb"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(BinarySnapshotTest, TrailingBytesAreCorruption) {
  const Graph g = gen::ErdosRenyiGnm(20, 40, 3);
  ASSERT_TRUE(g.SaveBinary(Path("pad.trsb")).ok());
  {
    std::ofstream out(Path("pad.trsb"), std::ios::binary | std::ios::app);
    out << "junk";
  }
  auto loaded = Graph::LoadBinary(Path("pad.trsb"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace truss
