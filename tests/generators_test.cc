// Unit tests for the synthetic graph generators.

#include "gen/generators.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace truss {
namespace {

TEST(GeneratorsTest, GnmExactEdgeCount) {
  const Graph g = gen::ErdosRenyiGnm(100, 500, 42);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(GeneratorsTest, GnmDeterministicPerSeed) {
  const Graph a = gen::ErdosRenyiGnm(50, 100, 7);
  const Graph b = gen::ErdosRenyiGnm(50, 100, 7);
  const Graph c = gen::ErdosRenyiGnm(50, 100, 8);
  EXPECT_TRUE(std::equal(a.edges().begin(), a.edges().end(),
                         b.edges().begin(), b.edges().end()));
  EXPECT_FALSE(std::equal(a.edges().begin(), a.edges().end(),
                          c.edges().begin(), c.edges().end()));
}

TEST(GeneratorsTest, GnpEdgeCountNearExpectation) {
  const VertexId n = 200;
  const double p = 0.1;
  const Graph g = gen::ErdosRenyiGnp(n, p, 9);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(g.num_edges(), expected * 0.8);
  EXPECT_LT(g.num_edges(), expected * 1.2);
}

TEST(GeneratorsTest, GnpExtremes) {
  EXPECT_EQ(gen::ErdosRenyiGnp(30, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(gen::ErdosRenyiGnp(30, 1.0, 1).num_edges(), 30u * 29 / 2);
}

TEST(GeneratorsTest, BarabasiAlbertSizeAndSkew) {
  const uint32_t k = 3;
  const VertexId n = 500;
  const Graph g = gen::BarabasiAlbert(n, k, 11);
  // (k+1)-clique seed + k edges per later vertex.
  EXPECT_EQ(g.num_edges(), k * (k + 1) / 2 + (n - (k + 1)) * k);
  const DegreeStats s = ComputeDegreeStats(g);
  EXPECT_GT(s.max, 4 * s.median);  // heavy tail
}

TEST(GeneratorsTest, RMatProducesRequestedEdges) {
  const Graph g = gen::RMat(10, 4000, 0.57, 0.19, 0.19, 13);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 4000u);
}

TEST(GeneratorsTest, RMatSkewGrowsWithA) {
  const Graph uniform = gen::RMat(12, 8000, 0.25, 0.25, 0.25, 17);
  const Graph skewed = gen::RMat(12, 8000, 0.7, 0.1, 0.1, 17);
  EXPECT_GT(ComputeDegreeStats(skewed).max,
            ComputeDegreeStats(uniform).max);
}

TEST(GeneratorsTest, WattsStrogatzDegreeAndRewiring) {
  const Graph lattice = gen::WattsStrogatz(100, 2, 0.0, 3);
  EXPECT_EQ(lattice.num_edges(), 200u);
  for (VertexId v = 0; v < lattice.num_vertices(); ++v) {
    EXPECT_EQ(lattice.degree(v), 4u);
  }
  const Graph rewired = gen::WattsStrogatz(100, 2, 0.5, 3);
  EXPECT_EQ(rewired.num_edges(), 200u);  // rewiring preserves edge count
  EXPECT_LT(AverageClusteringCoefficient(rewired),
            AverageClusteringCoefficient(lattice));
}

TEST(GeneratorsTest, PlantedCommunitiesClusterInternally) {
  const Graph g = gen::PlantedCommunities(10, 12, 0.8, 60, 19);
  EXPECT_EQ(g.num_vertices(), 120u);
  EXPECT_GT(AverageClusteringCoefficient(g), 0.3);
}

TEST(GeneratorsTest, PlantCliqueAddsCompleteSubgraph) {
  const Graph base = gen::ErdosRenyiGnm(50, 60, 23);
  const Graph g = gen::PlantClique(base, 8, 29);
  EXPECT_GE(g.num_edges(), base.num_edges());
  // Locate the clique: vertices whose mutual adjacency is complete.
  // The planted 8 vertices are unknown, but a K8 forces ≥ C(8,2) new or
  // existing edges among some 8 vertices; verify via triangle-rich degree.
  uint64_t added = g.num_edges() - base.num_edges();
  EXPECT_LE(added, 28u);
  EXPECT_GT(added, 0u);
}

TEST(GeneratorsTest, SmallShapes) {
  EXPECT_EQ(gen::Complete(6).num_edges(), 15u);
  EXPECT_EQ(gen::Cycle(7).num_edges(), 7u);
  EXPECT_EQ(gen::Path(7).num_edges(), 6u);
  EXPECT_EQ(gen::Star(7).num_edges(), 6u);
  EXPECT_EQ(gen::Grid(3, 4).num_edges(), 17u);
}

TEST(GeneratorsTest, AddEdgesGrowsGraph) {
  const Graph g = gen::AddEdges(gen::Path(3), {{0, 5}});
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 3u);
}

}  // namespace
}  // namespace truss
