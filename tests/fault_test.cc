// Chaos suite: deterministic fault injection against the external
// algorithms, crash-safety of the TRSB/TRSI snapshot formats, and the
// serving tier's degradation protocol.
//
// The battery asserts three invariants end to end:
//   1. Every injected fault surfaces as a typed Status (kIOError or
//      kCorruption) — never an abort, never a silently wrong answer.
//   2. No torn snapshot is ever loadable: any strict prefix of a saved
//      file fails Load with kCorruption, and a save interrupted before its
//      atomic rename leaves the destination untouched.
//   3. The server never stops serving: while rebuilds fail it answers
//      every query from the last published snapshot and reports DEGRADED.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sched.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/parallel.h"
#include "gen/fixtures.h"
#include "graph/graph.h"
#include "io/checksum_file.h"
#include "io/fault_env.h"
#include "serve/rebuild_supervisor.h"
#include "serve/server.h"
#include "serve/truss_index.h"
#include "truss/bottom_up.h"
#include "truss/improved.h"
#include "truss/top_down.h"
#include "truss/verify.h"

namespace truss {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const char* name) {
  const auto dir = fs::temp_directory_path() / "truss_fault_test" / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string TestFile(const std::string& name) {
  const auto dir = fs::temp_directory_path() / "truss_fault_test" / "files";
  fs::create_directories(dir);
  return (dir / name).string();
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<char> bytes;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return bytes;
}

void WriteAllBytes(const std::string& path, const char* data, size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(data, 1, n, f), n);
  ASSERT_EQ(std::fclose(f), 0);
}

// ---------------------------------------------------------------------------
// Checksum64
// ---------------------------------------------------------------------------

TEST(Checksum64Test, StreamingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint64_t oneshot = Checksum64Of(data.data(), data.size());
  // Feed the same bytes in awkward chunk sizes; the digest must not depend
  // on chunking.
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, size_t{8},
                       size_t{13}}) {
    Checksum64 sum;
    for (size_t i = 0; i < data.size(); i += chunk) {
      sum.Update(data.data() + i, std::min(chunk, data.size() - i));
    }
    EXPECT_EQ(sum.Digest(), oneshot) << "chunk=" << chunk;
  }
}

TEST(Checksum64Test, DetectsSingleBitFlips) {
  std::vector<char> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const uint64_t base = Checksum64Of(data.data(), data.size());
  for (size_t byte : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{500},
                      size_t{999}}) {
    std::vector<char> flipped = data;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 1);
    EXPECT_NE(Checksum64Of(flipped.data(), flipped.size()), base)
        << "flip at " << byte;
  }
  // Length extension: same prefix, one extra zero byte, different digest.
  std::vector<char> extended = data;
  extended.push_back(0);
  EXPECT_NE(Checksum64Of(extended.data(), extended.size()), base);
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------------

TEST(FaultEnvTest, NoFaultsBehavesLikePlainEnv) {
  io::FaultInjectionEnv env(TestDir("plain"), {}, 1024);
  {
    auto w = env.OpenWriter("data");
    ASSERT_TRUE(w.ok());
    for (uint64_t i = 0; i < 1000; ++i) w.value()->WriteRecord(i);
    ASSERT_TRUE(w.value()->Close().ok());
  }
  auto r = env.OpenReader("data");
  ASSERT_TRUE(r.ok());
  uint64_t v = 0, count = 0;
  while (r.value()->ReadRecord(&v)) {
    EXPECT_EQ(v, count);
    ++count;
  }
  EXPECT_TRUE(r.value()->status().ok());
  EXPECT_EQ(count, 1000u);
  EXPECT_TRUE(env.health().ok());
  EXPECT_EQ(env.fault_stats().injected_write_errors, 0u);
  EXPECT_EQ(env.fault_stats().injected_read_errors, 0u);
}

TEST(FaultEnvTest, FailAfterNWritesIsTypedAndSticky) {
  io::FaultInjectionOptions opts;
  opts.fail_after_block_writes = 2;
  io::FaultInjectionEnv env(TestDir("failw"), opts, 1024);
  auto w = env.OpenWriter("data");
  ASSERT_TRUE(w.ok());
  // 1024-byte blocks of 8-byte records: the third block write fails.
  for (uint64_t i = 0; i < 4 * 128; ++i) w.value()->WriteRecord(i);
  const Status st = w.value()->Close();
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
  EXPECT_EQ(env.health().code(), StatusCode::kIOError);
  EXPECT_EQ(env.fault_stats().injected_write_errors, 1u);
}

TEST(FaultEnvTest, FailAfterNReadsIsTypedAndSticky) {
  io::FaultInjectionOptions opts;
  opts.fail_after_block_reads = 1;
  io::FaultInjectionEnv env(TestDir("failr"), opts, 1024);
  {
    auto w = env.OpenWriter("data");
    ASSERT_TRUE(w.ok());
    for (uint64_t i = 0; i < 4 * 128; ++i) w.value()->WriteRecord(i);
    ASSERT_TRUE(w.value()->Close().ok());
  }
  auto r = env.OpenReader("data");
  ASSERT_TRUE(r.ok());
  uint64_t v = 0, count = 0;
  while (r.value()->ReadRecord(&v)) ++count;
  EXPECT_EQ(count, 128u);  // exactly the one block that succeeded
  EXPECT_EQ(r.value()->status().code(), StatusCode::kIOError);
  EXPECT_EQ(env.health().code(), StatusCode::kIOError);
  // Sticky: further reads keep failing without consuming more schedule.
  EXPECT_FALSE(r.value()->ReadRecord(&v));
  EXPECT_EQ(env.fault_stats().injected_read_errors, 1u);
}

TEST(FaultEnvTest, TransientErrorsAreRetriedInvisibly) {
  io::FaultInjectionOptions opts;
  opts.transient_p = 0.3;
  opts.seed = 7;
  io::FaultInjectionEnv env(TestDir("transient"), opts, 1024);
  {
    auto w = env.OpenWriter("data");
    ASSERT_TRUE(w.ok());
    for (uint64_t i = 0; i < 16 * 128; ++i) w.value()->WriteRecord(i);
    ASSERT_TRUE(w.value()->Close().ok()) << env.health().ToString();
  }
  auto r = env.OpenReader("data");
  ASSERT_TRUE(r.ok());
  uint64_t v = 0, count = 0;
  while (r.value()->ReadRecord(&v)) {
    EXPECT_EQ(v, count);
    ++count;
  }
  EXPECT_TRUE(r.value()->status().ok()) << r.value()->status().ToString();
  EXPECT_EQ(count, 16u * 128u);
  EXPECT_TRUE(env.health().ok());
  EXPECT_GT(env.fault_stats().injected_transients, 0u);
}

TEST(FaultEnvTest, ShortWriteTearsBlockAndFailsStream) {
  io::FaultInjectionOptions opts;
  opts.short_write_p = 1.0;  // first block write is torn
  io::FaultInjectionEnv env(TestDir("shortw"), opts, 1024);
  auto w = env.OpenWriter("data");
  ASSERT_TRUE(w.ok());
  for (uint64_t i = 0; i < 2 * 128; ++i) w.value()->WriteRecord(i);
  EXPECT_EQ(w.value()->Close().code(), StatusCode::kIOError);
  EXPECT_EQ(env.fault_stats().injected_short_writes, 1u);
  // The torn file is strictly shorter than one block.
  std::error_code ec;
  const auto size = fs::file_size(env.FullPath("data"), ec);
  ASSERT_FALSE(ec);
  EXPECT_LT(size, 1024u);
}

TEST(FaultEnvTest, CrashPointTakesEnvDown) {
  io::FaultInjectionOptions opts;
  opts.crash_after_bytes = 3000;
  io::FaultInjectionEnv env(TestDir("crash"), opts, 1024);
  auto w = env.OpenWriter("data");
  ASSERT_TRUE(w.ok());
  for (uint64_t i = 0; i < 8 * 128; ++i) w.value()->WriteRecord(i);
  EXPECT_EQ(w.value()->Close().code(), StatusCode::kIOError);
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(env.fault_stats().crashes, 1u);
  // The file is torn exactly at the crash point: <= 3000 bytes reached it.
  std::error_code ec;
  const auto size = fs::file_size(env.FullPath("data"), ec);
  ASSERT_FALSE(ec);
  EXPECT_LE(size, 3000u);
  // Everything after the crash fails: open, read, delete, rename.
  EXPECT_FALSE(env.OpenWriter("other").ok());
  EXPECT_FALSE(env.OpenReader("data").ok());
  EXPECT_EQ(env.DeleteFile("data").code(), StatusCode::kIOError);
  EXPECT_EQ(env.RenameFile("data", "elsewhere").code(), StatusCode::kIOError);
}

TEST(FaultEnvTest, SameSeedSameSchedule) {
  auto run = [](const char* dir) {
    io::FaultInjectionOptions opts;
    opts.seed = 99;
    opts.transient_p = 0.2;
    opts.short_write_p = 0.05;
    io::FaultInjectionEnv env(TestDir(dir), opts, 1024);
    auto w = env.OpenWriter("data");
    EXPECT_TRUE(w.ok());
    for (uint64_t i = 0; i < 32 * 128; ++i) w.value()->WriteRecord(i);
    (void)w.value()->Close();
    return env.fault_stats();
  };
  const io::FaultInjectionStats a = run("seed_a");
  const io::FaultInjectionStats b = run("seed_b");
  EXPECT_EQ(a.write_blocks_seen, b.write_blocks_seen);
  EXPECT_EQ(a.injected_short_writes, b.injected_short_writes);
  EXPECT_EQ(a.injected_transients, b.injected_transients);
  EXPECT_EQ(a.injected_write_errors, b.injected_write_errors);
}

// ---------------------------------------------------------------------------
// Fault sweeps over the external algorithms: a hard failure at every Nth
// block must surface as a typed error, never an abort or a wrong answer.
// ---------------------------------------------------------------------------

class ExternalFaultSweep : public ::testing::Test {
 protected:
  ExternalFaultSweep() : graph_(gen::Figure2Graph().graph) {
    expected_ = ImprovedTrussDecomposition(graph_);
  }

  // Runs `algo` under fail-after-N schedules chosen to straddle the run's
  // actual block volume (learned from a fault-free probe). Asserts the
  // dichotomy: either the run succeeded with the exact in-memory answer, or
  // it failed with a typed Status AND an injected fault explains it.
  template <typename AlgoFn>
  void Sweep(AlgoFn algo, bool sweep_reads, const char* tag) {
    // Calibrate: learn how many blocks a clean run moves, so the sweep
    // covers early, middle, and past-the-end faults regardless of the
    // algorithm's I/O volume.
    uint64_t total_blocks = 0;
    {
      const std::string dir = TestDir(tag) + "_probe";
      io::FaultInjectionEnv env(dir, io::FaultInjectionOptions{}, 1024);
      ExternalConfig cfg;
      cfg.memory_budget_bytes = 64 * 1024;
      auto result = algo(env, graph_, cfg);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      total_blocks = sweep_reads ? env.fault_stats().read_blocks_seen
                                 : env.fault_stats().write_blocks_seen;
      ASSERT_GT(total_blocks, 0u) << tag;
    }
    std::vector<uint64_t> points;
    for (uint64_t n = 1; n <= 24 && n <= total_blocks; ++n) {
      points.push_back(n);
    }
    for (uint64_t i = 1; i <= 8; ++i) {
      points.push_back(std::max<uint64_t>(1, total_blocks * i / 8));
    }
    points.push_back(total_blocks + 1);  // outlives the run: must succeed

    uint64_t ok_runs = 0, failed_runs = 0;
    for (const uint64_t n : points) {
      io::FaultInjectionOptions opts;
      if (sweep_reads) {
        opts.fail_after_block_reads = n;
      } else {
        opts.fail_after_block_writes = n;
      }
      const std::string dir = TestDir(tag) + "_" + std::to_string(n);
      io::FaultInjectionEnv env(dir, opts, 1024);
      ExternalConfig cfg;
      cfg.memory_budget_bytes = 64 * 1024;
      auto result = algo(env, graph_, cfg);
      const uint64_t injected = env.fault_stats().injected_write_errors +
                                env.fault_stats().injected_read_errors;
      if (result.ok()) {
        ++ok_runs;
        // A hard injected fault can never produce a "successful" run.
        EXPECT_EQ(injected, 0u) << tag << " n=" << n;
        EXPECT_TRUE(SameDecomposition(expected_, result.value()))
            << tag << " n=" << n;
      } else {
        ++failed_runs;
        EXPECT_GT(injected, 0u) << tag << " n=" << n;
        EXPECT_TRUE(result.status().code() == StatusCode::kIOError ||
                    result.status().code() == StatusCode::kCorruption)
            << tag << " n=" << n << ": " << result.status().ToString();
      }
    }
    // The sweep must actually exercise both outcomes: small N hits early
    // transfers (failure), large N outlives the run (success).
    EXPECT_GT(failed_runs, 0u) << tag;
    EXPECT_GT(ok_runs, 0u) << tag;
  }

  Graph graph_;
  TrussDecompositionResult expected_;
};

TEST_F(ExternalFaultSweep, BottomUpSurvivesWriteFaults) {
  Sweep(
      [](io::Env& env, const Graph& g, const ExternalConfig& cfg) {
        return BottomUpDecompose(env, g, cfg);
      },
      /*sweep_reads=*/false, "bu_w");
}

TEST_F(ExternalFaultSweep, BottomUpSurvivesReadFaults) {
  Sweep(
      [](io::Env& env, const Graph& g, const ExternalConfig& cfg) {
        return BottomUpDecompose(env, g, cfg);
      },
      /*sweep_reads=*/true, "bu_r");
}

TEST_F(ExternalFaultSweep, TopDownSurvivesWriteFaults) {
  Sweep(
      [](io::Env& env, const Graph& g, const ExternalConfig& cfg) {
        return TopDownDecompose(env, g, cfg);
      },
      /*sweep_reads=*/false, "td_w");
}

TEST_F(ExternalFaultSweep, TopDownSurvivesReadFaults) {
  Sweep(
      [](io::Env& env, const Graph& g, const ExternalConfig& cfg) {
        return TopDownDecompose(env, g, cfg);
      },
      /*sweep_reads=*/true, "td_r");
}

TEST_F(ExternalFaultSweep, CrashMidRunIsTypedError) {
  for (uint64_t crash_at : {uint64_t{500}, uint64_t{5'000}, uint64_t{20'000},
                            uint64_t{100'000}}) {
    io::FaultInjectionOptions opts;
    opts.crash_after_bytes = crash_at;
    const std::string dir =
        TestDir("crash_mid") + "_" + std::to_string(crash_at);
    io::FaultInjectionEnv env(dir, opts, 1024);
    ExternalConfig cfg;
    cfg.memory_budget_bytes = 64 * 1024;
    auto result = BottomUpDecompose(env, graph_, cfg);
    if (env.crashed()) {
      ASSERT_FALSE(result.ok()) << "crash_at=" << crash_at;
      EXPECT_EQ(result.status().code(), StatusCode::kIOError)
          << result.status().ToString();
    } else {
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(SameDecomposition(expected_, result.value()));
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-safe snapshots: kill-mid-save atomicity and corruption rejection
// for both on-disk formats (TRSB graph snapshots, TRSI truss indexes).
// ---------------------------------------------------------------------------

struct SnapshotFormat {
  const char* name;
  std::function<Status(const std::string& path)> save;
  std::function<Status(const std::string& path)> load;
};

std::vector<SnapshotFormat> Formats() {
  static const auto graph =
      std::make_shared<const Graph>(gen::Figure2Graph().graph);
  static const auto index =
      serve::TrussIndex::Build(graph, ImprovedTrussDecomposition(*graph));
  return {
      {"trsb",
       [](const std::string& p) { return graph->SaveBinary(p); },
       [](const std::string& p) { return Graph::LoadBinary(p).status(); }},
      {"trsi",
       [](const std::string& p) { return index->Save(p); },
       [](const std::string& p) {
         return serve::TrussIndex::Load(p).status();
       }},
  };
}

TEST(CrashSafeSnapshotTest, NoPrefixOfASnapshotIsLoadable) {
  for (const SnapshotFormat& format : Formats()) {
    const std::string path = TestFile(std::string("prefix_") + format.name);
    ASSERT_TRUE(format.save(path).ok()) << format.name;
    const std::vector<char> bytes = ReadAllBytes(path);
    ASSERT_GT(bytes.size(), 64u);
    // A save killed at any byte leaves a strict prefix; none may load.
    // Every boundary in the first/last 100 bytes plus a stride through the
    // middle covers header, payload, and footer tears.
    std::vector<size_t> cuts;
    for (size_t i = 0; i < std::min<size_t>(100, bytes.size()); ++i) {
      cuts.push_back(i);
    }
    for (size_t i = 100; i + 100 < bytes.size(); i += 97) cuts.push_back(i);
    for (size_t i = bytes.size() - std::min<size_t>(100, bytes.size());
         i < bytes.size(); ++i) {
      cuts.push_back(i);
    }
    for (size_t cut : cuts) {
      WriteAllBytes(path, bytes.data(), cut);
      const Status st = format.load(path);
      ASSERT_FALSE(st.ok()) << format.name << " cut=" << cut;
      EXPECT_TRUE(st.code() == StatusCode::kCorruption ||
                  st.code() == StatusCode::kIOError)
          << format.name << " cut=" << cut << ": " << st.ToString();
    }
    // The untruncated file still loads.
    WriteAllBytes(path, bytes.data(), bytes.size());
    EXPECT_TRUE(format.load(path).ok()) << format.name;
    fs::remove(path);
  }
}

TEST(CrashSafeSnapshotTest, BitFlipsAreCorruption) {
  for (const SnapshotFormat& format : Formats()) {
    const std::string path = TestFile(std::string("flip_") + format.name);
    ASSERT_TRUE(format.save(path).ok()) << format.name;
    const std::vector<char> bytes = ReadAllBytes(path);
    for (size_t pos :
         {size_t{0}, size_t{8}, bytes.size() / 2, bytes.size() - 1}) {
      std::vector<char> flipped = bytes;
      flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
      WriteAllBytes(path, flipped.data(), flipped.size());
      const Status st = format.load(path);
      ASSERT_FALSE(st.ok()) << format.name << " pos=" << pos;
      EXPECT_EQ(st.code(), StatusCode::kCorruption)
          << format.name << " pos=" << pos << ": " << st.ToString();
    }
    fs::remove(path);
  }
}

TEST(CrashSafeSnapshotTest, SaveLeavesNoTempDroppings) {
  for (const SnapshotFormat& format : Formats()) {
    const std::string path = TestFile(std::string("atomic_") + format.name);
    ASSERT_TRUE(format.save(path).ok());
    // Re-save over the existing file; the destination must stay loadable
    // and no temp files may remain.
    ASSERT_TRUE(format.save(path).ok());
    EXPECT_TRUE(format.load(path).ok());
    uint64_t temps = 0;
    for (const auto& entry :
         fs::directory_iterator(fs::path(path).parent_path())) {
      if (entry.path().filename().string().find(".tmp.") !=
          std::string::npos) {
        ++temps;
      }
    }
    EXPECT_EQ(temps, 0u) << format.name;
    fs::remove(path);
  }
}

TEST(CrashSafeSnapshotTest, SaveToUnwritableDirFailsCleanly) {
  for (const SnapshotFormat& format : Formats()) {
    const Status st = format.save("/nonexistent_dir_truss/file.bin");
    EXPECT_EQ(st.code(), StatusCode::kIOError) << format.name;
  }
}

// ---------------------------------------------------------------------------
// RebuildSupervisor
// ---------------------------------------------------------------------------

serve::RetryPolicy FastRetries(uint32_t max_attempts) {
  serve::RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 4;
  policy.jitter_fraction = 0.2;
  return policy;
}

engine::DecomposeOptions FailingOptions(std::atomic<bool>* fail) {
  engine::DecomposeOptions options;
  options.hooks.cancel = [fail] {
    // ordering: relaxed — independent test flag, no data published through
    // it; the hook tolerates a stale read for one poll.
    return fail->load(std::memory_order_relaxed);
  };
  return options;
}

TEST(RebuildSupervisorTest, RetriesUntilSuccessAndClearsDegradation) {
  auto graph = std::make_shared<Graph>(gen::Figure2Graph().graph);
  serve::SnapshotRegistry registry;
  serve::SnapshotRebuilder rebuilder(graph, &registry);
  std::atomic<bool> fail{true};  // outlives the supervisor's retry thread
  serve::RebuildSupervisor supervisor(&rebuilder, FastRetries(1000));

  supervisor.ScheduleRetries(FailingOptions(&fail),
                             Status::Internal("seed failure"));
  EXPECT_EQ(supervisor.health(), serve::ServingHealth::kDegraded);
  EXPECT_FALSE(supervisor.last_error().empty());

  // Let a few failing attempts happen, then allow success.
  while (supervisor.retries_attempted() < 3) sched_yield();
  // ordering: relaxed — same test-flag contract as the cancel hook above.
  fail.store(false, std::memory_order_relaxed);
  while (supervisor.health() == serve::ServingHealth::kDegraded) {
    sched_yield();
  }
  EXPECT_GE(supervisor.retries_attempted(), 3u);
  EXPECT_GE(supervisor.retries_succeeded(), 1u);
  EXPECT_TRUE(supervisor.last_error().empty());
  EXPECT_EQ(registry.current_version(), 1u);  // the retry published
}

TEST(RebuildSupervisorTest, ExhaustedAttemptsStayDegraded) {
  auto graph = std::make_shared<Graph>(gen::Figure2Graph().graph);
  serve::SnapshotRegistry registry;
  serve::SnapshotRebuilder rebuilder(graph, &registry);
  std::atomic<bool> fail{true};  // outlives the supervisor's retry thread
  serve::RebuildSupervisor supervisor(&rebuilder, FastRetries(3));

  supervisor.ScheduleRetries(FailingOptions(&fail),
                             Status::Internal("seed failure"));
  while (supervisor.retries_attempted() < 3) sched_yield();
  supervisor.Stop();
  EXPECT_EQ(supervisor.retries_attempted(), 3u);
  EXPECT_EQ(supervisor.retries_succeeded(), 0u);
  EXPECT_EQ(supervisor.health(), serve::ServingHealth::kDegraded);
  EXPECT_NE(supervisor.last_error().find("Cancelled"), std::string::npos)
      << supervisor.last_error();
  EXPECT_EQ(registry.current_version(), 0u);
}

TEST(RebuildSupervisorTest, NoteSuccessCancelsPendingRetries) {
  auto graph = std::make_shared<Graph>(gen::Figure2Graph().graph);
  serve::SnapshotRegistry registry;
  serve::SnapshotRebuilder rebuilder(graph, &registry);
  serve::RetryPolicy slow = FastRetries(1000);
  slow.initial_backoff_ms = 60'000;  // the first retry would wait a minute
  slow.max_backoff_ms = 60'000;
  std::atomic<bool> fail{true};  // outlives the supervisor's retry thread
  serve::RebuildSupervisor supervisor(&rebuilder, slow);

  supervisor.ScheduleRetries(FailingOptions(&fail),
                             Status::Internal("seed failure"));
  EXPECT_EQ(supervisor.health(), serve::ServingHealth::kDegraded);
  supervisor.NoteSuccess();  // a direct REBUILD succeeded meanwhile
  EXPECT_EQ(supervisor.health(), serve::ServingHealth::kOk);
  supervisor.Stop();  // must return promptly, not after the minute backoff
  EXPECT_EQ(supervisor.retries_attempted(), 0u);
}

TEST(RebuildSupervisorTest, StopInterruptsBackoffPromptly) {
  auto graph = std::make_shared<Graph>(gen::Figure2Graph().graph);
  serve::SnapshotRegistry registry;
  serve::SnapshotRebuilder rebuilder(graph, &registry);
  serve::RetryPolicy slow = FastRetries(1000);
  slow.initial_backoff_ms = 60'000;
  slow.max_backoff_ms = 60'000;
  {
    std::atomic<bool> fail{true};
    serve::RebuildSupervisor supervisor(&rebuilder, slow);
    supervisor.ScheduleRetries(FailingOptions(&fail),
                               Status::Internal("seed failure"));
    // Destructor Stop() must interrupt the 60 s backoff wait; the test
    // itself hanging here is the failure mode.
  }
}

// ---------------------------------------------------------------------------
// Degraded serving: the server keeps answering from the last published
// snapshot while rebuilds fail, reports DEGRADED, and recovers.
// ---------------------------------------------------------------------------

std::shared_ptr<const Graph> Figure2() {
  return std::make_shared<Graph>(gen::Figure2Graph().graph);
}

std::shared_ptr<const serve::TrussIndex> BuildIndex(
    std::shared_ptr<const Graph> graph) {
  const TrussDecompositionResult r = ImprovedTrussDecomposition(*graph);
  return serve::TrussIndex::Build(std::move(graph), r);
}

TEST(DegradedServingTest, ServerKeepsServingThroughFailingRebuilds) {
  auto graph = Figure2();
  serve::SnapshotRegistry registry;
  registry.Publish(BuildIndex(graph), "seed", 0.0);

  std::atomic<bool> fail{true};
  serve::ServerOptions options;
  options.rebuild_options = FailingOptions(&fail);
  options.rebuild_retry = FastRetries(1000);
  serve::TrussServer server(graph, &registry, options);

  // A failing REBUILD answers ERR INTERNAL and flips the server DEGRADED.
  const std::string rebuild = server.HandleLine("REBUILD");
  EXPECT_TRUE(rebuild.rfind("ERR INTERNAL ", 0) == 0) << rebuild;

  // Queries keep answering from the v1 snapshot the whole time.
  EXPECT_EQ(server.HandleLine("TRUSS 0 1"), "OK TRUSS 5");
  EXPECT_EQ(server.HandleLine("VERSION"), "OK VERSION 1");

  const std::string stats = server.HandleLine("STATS");
  EXPECT_TRUE(stats.rfind("OK STATS version=1 ", 0) == 0) << stats;
  EXPECT_NE(stats.find(" state=DEGRADED"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" last_rebuild_error="), std::string::npos) << stats;
  // The error rides in one space-delimited field (no embedded spaces).
  const size_t err_pos = stats.find("last_rebuild_error=");
  EXPECT_EQ(stats.find(' ', err_pos), std::string::npos) << stats;

  const serve::ServerStats s1 = server.stats();
  EXPECT_TRUE(s1.degraded);
  EXPECT_EQ(s1.failed_rebuilds, 1u);
  EXPECT_FALSE(s1.last_rebuild_error.empty());

  // Let background retries fail a few times, still serving throughout.
  while (server.stats().rebuild_retries < 2) {
    EXPECT_EQ(server.HandleLine("TRUSS 0 1"), "OK TRUSS 5");
    sched_yield();
  }

  // Recovery: the next retry succeeds, publishes v2, clears DEGRADED.
  // ordering: relaxed — test flag, same contract as the cancel hook.
  fail.store(false, std::memory_order_relaxed);
  while (server.stats().degraded) sched_yield();
  EXPECT_EQ(server.HandleLine("VERSION"), "OK VERSION 2");
  const std::string recovered = server.HandleLine("STATS");
  EXPECT_NE(recovered.find(" state=OK"), std::string::npos) << recovered;
  EXPECT_EQ(recovered.find("last_rebuild_error="), std::string::npos)
      << recovered;
}

TEST(DegradedServingTest, DirectRebuildSuccessClearsDegradation) {
  auto graph = Figure2();
  serve::SnapshotRegistry registry;
  registry.Publish(BuildIndex(graph), "seed", 0.0);

  std::atomic<bool> fail{true};
  serve::ServerOptions options;
  options.rebuild_options = FailingOptions(&fail);
  serve::RetryPolicy slow;
  slow.initial_backoff_ms = 60'000;  // keep the supervisor out of the way
  slow.max_backoff_ms = 60'000;
  options.rebuild_retry = slow;
  serve::TrussServer server(graph, &registry, options);

  EXPECT_TRUE(server.HandleLine("REBUILD").rfind("ERR INTERNAL ", 0) == 0);
  EXPECT_TRUE(server.stats().degraded);

  // ordering: relaxed — test flag, same contract as the cancel hook.
  fail.store(false, std::memory_order_relaxed);
  EXPECT_TRUE(server.HandleLine("REBUILD").rfind("OK REBUILD ", 0) == 0);
  EXPECT_FALSE(server.stats().degraded);
  EXPECT_TRUE(server.stats().last_rebuild_error.empty());
}

TEST(DegradedServingTest, InvalidArgumentIsNotRetried) {
  auto graph = Figure2();
  serve::SnapshotRegistry registry;
  registry.Publish(BuildIndex(graph), "seed", 0.0);

  serve::ServerOptions options;
  options.rebuild_options.memory_budget_bytes = 0;  // permanent config error
  options.rebuild_retry = FastRetries(1000);
  serve::TrussServer server(graph, &registry, options);

  EXPECT_TRUE(server.HandleLine("REBUILD").rfind("ERR INTERNAL ", 0) == 0);
  const serve::ServerStats s = server.stats();
  EXPECT_EQ(s.failed_rebuilds, 1u);
  // No retries are scheduled for a config error that would fail forever.
  EXPECT_EQ(s.rebuild_retries, 0u);
  EXPECT_FALSE(s.degraded);
}

// ---------------------------------------------------------------------------
// Slow and idle clients are reaped; the worker returns to accept().
// ---------------------------------------------------------------------------

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAllFd(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads until the peer closes; returns everything received.
std::string RecvUntilClose(int fd) {
  std::string out;
  char chunk[1024];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    out.append(chunk, static_cast<size_t>(n));
  }
  return out;
}

TEST(SlowClientTest, PartialLinePastDeadlineIsDisconnected) {
  auto graph = Figure2();
  serve::SnapshotRegistry registry;
  registry.Publish(BuildIndex(graph), "seed", 0.0);

  serve::ServerOptions options;
  options.workers = 1;
  options.poll_interval_ms = 10;
  options.request_deadline_ms = 150;
  options.idle_timeout_ms = 60'000;
  serve::TrussServer server(graph, &registry, options);
  ASSERT_TRUE(server.Start().ok());

  RunShards(2, [&](uint32_t shard) {
    if (shard == 0) {
      server.Serve();
      return;
    }
    const int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    // A started-but-never-finished line: the server must reap us instead
    // of letting the trickle pin its single worker forever.
    ASSERT_TRUE(SendAllFd(fd, "TRUSS 0"));
    const std::string reply = RecvUntilClose(fd);  // until server closes
    EXPECT_NE(reply.find("ERR DEADLINE"), std::string::npos) << reply;
    ::close(fd);

    // The worker is free again: a well-behaved connection gets answered.
    const int fd2 = ConnectLoopback(server.port());
    ASSERT_GE(fd2, 0);
    ASSERT_TRUE(SendAllFd(fd2, "PING\n"));
    std::string buffer;
    char chunk[64];
    ssize_t n;
    while (buffer.find('\n') == std::string::npos &&
           (n = ::recv(fd2, chunk, sizeof(chunk), 0)) > 0) {
      buffer.append(chunk, static_cast<size_t>(n));
    }
    EXPECT_NE(buffer.find("OK PONG"), std::string::npos) << buffer;
    ::close(fd2);
    server.Stop();
  });

  EXPECT_EQ(server.stats().deadline_disconnects, 1u);
}

TEST(SlowClientTest, IdleConnectionIsReaped) {
  auto graph = Figure2();
  serve::SnapshotRegistry registry;
  registry.Publish(BuildIndex(graph), "seed", 0.0);

  serve::ServerOptions options;
  options.workers = 1;
  options.poll_interval_ms = 10;
  options.idle_timeout_ms = 120;
  serve::TrussServer server(graph, &registry, options);
  ASSERT_TRUE(server.Start().ok());

  RunShards(2, [&](uint32_t shard) {
    if (shard == 0) {
      server.Serve();
      return;
    }
    const int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    // Send nothing. The server must close the connection on its own.
    EXPECT_EQ(RecvUntilClose(fd), "");
    ::close(fd);
    server.Stop();
  });

  EXPECT_EQ(server.stats().idle_disconnects, 1u);
}

// ---------------------------------------------------------------------------
// Regression: a cancelled rebuild surfaces kCancelled (not a placeholder
// Internal status), and the rebuilder is reusable afterwards.
// ---------------------------------------------------------------------------

TEST(SnapshotRebuilderTest, CancelledRebuildPropagatesTypedStatus) {
  auto graph = Figure2();
  serve::SnapshotRegistry registry;
  serve::SnapshotRebuilder rebuilder(graph, &registry);

  std::atomic<bool> fail{true};
  auto outcome = rebuilder.RebuildAndPublish(FailingOptions(&fail));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled)
      << outcome.status().ToString();
  EXPECT_EQ(registry.current_version(), 0u);
  EXPECT_FALSE(rebuilder.InFlight());

  // The failure left no residue: the same rebuilder completes a clean run.
  // ordering: relaxed — test flag, same contract as the cancel hook.
  fail.store(false, std::memory_order_relaxed);
  auto retry = rebuilder.RebuildAndPublish(FailingOptions(&fail));
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value().version, 1u);
}

}  // namespace
}  // namespace truss
