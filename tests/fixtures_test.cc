// Tests for the paper-figure fixtures: the Figure 2 running example and the
// Figure 1 manager-network reconstruction (Example 1's structural claims).

#include "gen/fixtures.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/stats.h"
#include "kcore/kcore.h"
#include "truss/improved.h"
#include "truss/result.h"
#include "truss/verify.h"

namespace truss {
namespace {

TEST(Figure2Test, GroundTruthIsConsistentWithOracle) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  const TrussDecompositionResult oracle = NaiveTrussDecomposition(fx.graph);
  EXPECT_EQ(oracle.truss_number, fx.expected_truss);
  EXPECT_EQ(oracle.kmax, fx.expected_kmax);
}

TEST(Figure2Test, ShapeMatchesExample2) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  EXPECT_EQ(fx.graph.num_vertices(), 12u);
  EXPECT_EQ(fx.graph.num_edges(), 26u);
  EXPECT_EQ(gen::Figure2Fixture::VertexName(0), "a");
  EXPECT_EQ(gen::Figure2Fixture::VertexName(11), "l");
}

class ManagerGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = gen::ManagerAdviceGraph();
    truss_ = ImprovedTrussDecomposition(g_);
    cores_ = DecomposeCores(g_);
  }

  Graph g_;
  TrussDecompositionResult truss_;
  CoreDecomposition cores_;
};

TEST_F(ManagerGraphTest, TwentyOneManagers) {
  EXPECT_EQ(g_.num_vertices(), 21u);
}

TEST_F(ManagerGraphTest, NoFiveTrussAndNoFourCore) {
  // Example 1: "no 4-core or 5-truss exist for G".
  EXPECT_EQ(truss_.kmax, 4u);
  EXPECT_EQ(cores_.cmax, 3u);
}

TEST_F(ManagerGraphTest, ThreeCoreCoversAlmostAllManagers) {
  // Figure 1(b): the 3-core is "not much different" from G.
  const std::vector<VertexId> core3 = cores_.CoreVertices(3);
  EXPECT_GE(core3.size(), 19u);
  EXPECT_LT(core3.size(), 21u);
}

TEST_F(ManagerGraphTest, FourTrussIsExactlyTheCliqueUnion) {
  std::vector<Edge> expected;
  for (const auto& clique : gen::ManagerFourTrussCliques()) {
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        expected.push_back(MakeEdge(clique[i], clique[j]));
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  std::vector<Edge> actual;
  for (const EdgeId id : truss_.TrussEdges(4)) actual.push_back(g_.edge(id));
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST_F(ManagerGraphTest, FourTrussContainsTheNamedCliques) {
  for (const auto& clique : gen::ManagerFourTrussCliques()) {
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        const EdgeId id = g_.FindEdge(clique[i], clique[j]);
        ASSERT_NE(id, kInvalidEdge);
        EXPECT_GE(truss_.truss_number[id], 4u);
      }
    }
  }
}

TEST_F(ManagerGraphTest, ClusteringCoefficientRisesTowardTheTruss) {
  // Example 1's headline: CC(G) < CC(3-core) < CC(4-truss)
  // (paper values 0.51 / 0.65 / 0.80 on the original data).
  const double cc_g = AverageClusteringCoefficient(g_);
  const Subgraph core3 = ExtractKCore(g_, cores_, 3);
  const double cc_core = AverageClusteringCoefficient(core3.graph);
  const Subgraph truss4 = ExtractKTruss(g_, truss_, 4);
  const double cc_truss = AverageClusteringCoefficient(truss4.graph);
  EXPECT_LT(cc_g, cc_core);
  EXPECT_LT(cc_core, cc_truss);
  EXPECT_GT(cc_truss, 0.7);
}

TEST_F(ManagerGraphTest, FourTrussIsAlsoAThreeCore) {
  const Subgraph truss4 = ExtractKTruss(g_, truss_, 4);
  for (VertexId v = 0; v < truss4.graph.num_vertices(); ++v) {
    EXPECT_GE(truss4.graph.degree(v), 3u);
  }
}

}  // namespace
}  // namespace truss
