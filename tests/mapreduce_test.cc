// Tests for the MapReduce engine and Cohen's TD-MR baseline.

#include <gtest/gtest.h>

#include <filesystem>

#include "gen/fixtures.h"
#include "gen/generators.h"
#include "io/env.h"
#include "mapreduce/engine.h"
#include "mapreduce/mr_truss.h"
#include "truss/improved.h"
#include "truss/result.h"

namespace truss::mr {
namespace {

std::string TestDir(const char* name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "truss_mr_test" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(EngineTest, CountingRound) {
  io::Env env(TestDir("count"), 512);
  Engine engine(&env, EngineOptions{});

  // Input: values 0..99; key = value % 7; reducer counts group sizes.
  {
    auto w = env.OpenWriter("in");
    ASSERT_TRUE(w.ok());
    for (uint32_t i = 0; i < 100; ++i) {
      w.value()->WriteRecord(MrRec{i, 0, 0, 0});
    }
    ASSERT_TRUE(w.value()->Close().ok());
  }
  ASSERT_TRUE(engine
                  .Run({"in"},
                       {[](const MrRec& r, const Engine::EmitFn& emit) {
                         emit(r.a % 7, r);
                       }},
                       [](uint64_t key, const std::vector<MrRec>& vals,
                          const std::function<void(const MrRec&)>& out) {
                         out(MrRec{static_cast<uint32_t>(key),
                                   static_cast<uint32_t>(vals.size()), 0, 0});
                       },
                       "out")
                  .ok());
  auto r = env.OpenReader("out");
  ASSERT_TRUE(r.ok());
  MrRec rec;
  uint32_t groups = 0, total = 0;
  while (r.value()->ReadRecord(&rec)) {
    ++groups;
    total += rec.b;
    // 100 values over 7 residues: groups of 14 or 15.
    EXPECT_GE(rec.b, 14u);
    EXPECT_LE(rec.b, 15u);
  }
  EXPECT_EQ(groups, 7u);
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(engine.stats().rounds, 1u);
  EXPECT_EQ(engine.stats().map_input_records, 100u);
  EXPECT_EQ(engine.stats().reduce_groups, 7u);
}

TEST(EngineTest, MultiInputJoin) {
  io::Env env(TestDir("join"), 512);
  Engine engine(&env, EngineOptions{});
  {
    auto w = env.OpenWriter("left");
    ASSERT_TRUE(w.ok());
    w.value()->WriteRecord(MrRec{1, 10, 0, 0});
    w.value()->WriteRecord(MrRec{2, 20, 0, 0});
    ASSERT_TRUE(w.value()->Close().ok());
  }
  {
    auto w = env.OpenWriter("right");
    ASSERT_TRUE(w.ok());
    w.value()->WriteRecord(MrRec{1, 100, 0, 1});
    ASSERT_TRUE(w.value()->Close().ok());
  }
  ASSERT_TRUE(
      engine
          .Run({"left", "right"},
               {[](const MrRec& r, const Engine::EmitFn& emit) {
                  emit(r.a, r);
                },
                [](const MrRec& r, const Engine::EmitFn& emit) {
                  emit(r.a, r);
                }},
               [](uint64_t key, const std::vector<MrRec>& vals,
                  const std::function<void(const MrRec&)>& out) {
                 if (vals.size() == 2) {
                   out(MrRec{static_cast<uint32_t>(key), 0, 0, 0});
                 }
               },
               "out")
          .ok());
  auto r = env.OpenReader("out");
  MrRec rec;
  uint32_t joined = 0;
  while (r.value()->ReadRecord(&rec)) {
    EXPECT_EQ(rec.a, 1u);
    ++joined;
  }
  EXPECT_EQ(joined, 1u);
}

TEST(EngineTest, SimulatedLatencyAccumulates) {
  io::Env env(TestDir("latency"), 512);
  EngineOptions opts;
  opts.per_round_latency_seconds = 20.0;
  Engine engine(&env, opts);
  {
    auto w = env.OpenWriter("in");
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.value()->Close().ok());
  }
  const auto identity_map = [](const MrRec& r, const Engine::EmitFn& emit) {
    emit(0, r);
  };
  const auto identity_reduce =
      [](uint64_t, const std::vector<MrRec>& vals,
         const std::function<void(const MrRec&)>& out) {
        for (const MrRec& v : vals) out(v);
      };
  ASSERT_TRUE(engine.Run({"in"}, {identity_map}, identity_reduce, "o1").ok());
  ASSERT_TRUE(engine.Run({"o1"}, {identity_map}, identity_reduce, "o2").ok());
  EXPECT_DOUBLE_EQ(engine.stats().simulated_latency_seconds, 40.0);
}

TEST(MrTrussTest, Figure2Example) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  io::Env env(TestDir("fig2"), 1024);
  auto result = MapReduceTrussDecomposition(env, fx.graph, MrTrussOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().truss_number, fx.expected_truss);
  EXPECT_EQ(result.value().kmax, fx.expected_kmax);
}

TEST(MrTrussTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::ErdosRenyiGnm(30, 120, seed);
    io::Env env(TestDir(("rand" + std::to_string(seed)).c_str()), 1024);
    MrTrussStats stats;
    auto result =
        MapReduceTrussDecomposition(env, g, MrTrussOptions{}, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(SameDecomposition(ImprovedTrussDecomposition(g),
                                  result.value()))
        << "seed " << seed;
    // Each peel iteration costs 7 rounds.
    EXPECT_EQ(stats.engine.rounds, 7ull * stats.peel_iterations);
    EXPECT_GT(stats.peel_iterations, 0u);
  }
}

TEST(MrTrussTest, SingleKTrussMatchesOracle) {
  const Graph g =
      gen::PlantClique(gen::ErdosRenyiGnm(40, 150, 9), 6, 10);
  const TrussDecompositionResult oracle = ImprovedTrussDecomposition(g);
  io::Env env(TestDir("ktruss"), 1024);
  for (const uint32_t k : {3u, 4u, 5u, 6u}) {
    auto edges = MapReduceKTruss(env, g, k, MrTrussOptions{});
    ASSERT_TRUE(edges.ok());
    EXPECT_EQ(edges.value(), oracle.TrussEdges(k)) << "k = " << k;
  }
}

TEST(MrTrussTest, TriangleFreeGraphEmptiesAtKThree) {
  const Graph g = gen::Cycle(12);
  io::Env env(TestDir("trifree"), 512);
  MrTrussStats stats;
  auto result = MapReduceTrussDecomposition(env, g, MrTrussOptions{}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().kmax, 2u);
  EXPECT_GT(stats.engine.shuffle_bytes, 0u);
}

}  // namespace
}  // namespace truss::mr
