// Tests for the unified truss::engine::Engine facade: registry resolution,
// cross-algorithm equivalence, options validation, and the cooperative
// progress/cancellation hooks.

#include "engine/engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "truss/external_util.h"
#include "truss/result.h"
#include "truss/verify.h"

namespace truss::engine {
namespace {

// --- registry ----------------------------------------------------------

TEST(EngineRegistryTest, ListsAllRegistryAlgorithms) {
  const auto algorithms = Engine::Algorithms();
  ASSERT_EQ(algorithms.size(), 5u);
  std::vector<std::string> names;
  for (const AlgorithmInfo& info : algorithms) names.push_back(info.name);
  EXPECT_EQ(names, (std::vector<std::string>{"improved", "parallel", "cohen",
                                             "bottomup", "topdown"}));
}

TEST(EngineRegistryTest, FindAlgorithmResolvesEveryRegistryName) {
  for (const AlgorithmInfo& info : Engine::Algorithms()) {
    const AlgorithmInfo* found = Engine::FindAlgorithm(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found->id, info.id);
    EXPECT_STREQ(AlgorithmName(found->id), info.name);
  }
}

TEST(EngineRegistryTest, FindAlgorithmRejectsUnknownNames) {
  EXPECT_EQ(Engine::FindAlgorithm("nope"), nullptr);
  EXPECT_EQ(Engine::FindAlgorithm(""), nullptr);
  EXPECT_EQ(Engine::FindAlgorithm("Improved"), nullptr);  // case-sensitive
}

TEST(EngineRegistryTest, CapabilityFlagsMatchTheAlgorithmFamilies) {
  EXPECT_FALSE(Engine::FindAlgorithm("improved")->external);
  EXPECT_FALSE(Engine::FindAlgorithm("parallel")->external);
  EXPECT_FALSE(Engine::FindAlgorithm("cohen")->external);
  EXPECT_TRUE(Engine::FindAlgorithm("bottomup")->external);
  EXPECT_TRUE(Engine::FindAlgorithm("topdown")->external);
  for (const AlgorithmInfo& info : Engine::Algorithms()) {
    EXPECT_EQ(info.supports_top_t, info.id == Algorithm::kTopDown);
  }
}

// --- options validation ------------------------------------------------

TEST(DecomposeOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(DecomposeOptions{}.Validate().ok());
}

TEST(DecomposeOptionsTest, ZeroBudgetIsInvalid) {
  DecomposeOptions options;
  options.memory_budget_bytes = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DecomposeOptionsTest, ZeroBlockSizeIsInvalid) {
  DecomposeOptions options;
  options.io_block_size_bytes = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DecomposeOptionsTest, TopTRequiresTopDown) {
  DecomposeOptions options;
  options.top_t = 5;
  for (const Algorithm algorithm :
       {Algorithm::kImproved, Algorithm::kParallel, Algorithm::kCohen,
        Algorithm::kBottomUp}) {
    options.algorithm = algorithm;
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument)
        << AlgorithmName(algorithm);
  }
  options.algorithm = Algorithm::kTopDown;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(DecomposeOptionsTest, NonsenseTopTValuesAreInvalid) {
  DecomposeOptions options;
  options.algorithm = Algorithm::kTopDown;
  options.top_t = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.top_t = -7;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.top_t = -1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(DecomposeOptionsTest, ThreadsKnobValidation) {
  DecomposeOptions options;
  options.threads = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.threads = 8;
  EXPECT_TRUE(options.Validate().ok());
  options.threads = 1;
  EXPECT_TRUE(options.Validate().ok());
  options.threads = kMaxParallelThreads;
  EXPECT_TRUE(options.Validate().ok());
  // Beyond the sanity cap — notably where a CLI "--threads -1" lands after
  // wrapping to uint32_t.
  options.threads = kMaxParallelThreads + 1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.threads = static_cast<uint32_t>(-1);
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

// The threads knob must never change results: every registry algorithm run
// at threads = 4 matches its own threads = 1 decomposition exactly.
TEST(EngineThreadsTest, FourThreadsMatchOneThreadForEveryAlgorithm) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(60, 250, 9), 8, 6);
  for (const AlgorithmInfo& info : Engine::Algorithms()) {
    DecomposeOptions options;
    options.algorithm = info.id;
    auto sequential = Engine::Decompose(g, options);
    ASSERT_TRUE(sequential.ok()) << info.name << ": "
                                 << sequential.status().ToString();
    options.threads = 4;
    auto parallel = Engine::Decompose(g, options);
    ASSERT_TRUE(parallel.ok()) << info.name << ": "
                               << parallel.status().ToString();
    EXPECT_TRUE(SameDecomposition(sequential.value().result,
                                  parallel.value().result))
        << info.name;
    EXPECT_EQ(sequential.value().result.kmax, parallel.value().result.kmax)
        << info.name;
  }
}

// The external algorithms take threads through ExternalConfig; a tight
// budget forces the partitioned overflow procedures, whose local support
// computations are the parallelized call sites.
TEST(EngineThreadsTest, ThreadsReachExternalOverflowProcedures) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(80, 400, 3), 10, 7);
  for (const char* name : {"bottomup", "topdown"}) {
    DecomposeOptions options;
    options.algorithm = Engine::FindAlgorithm(name)->id;
    options.memory_budget_bytes = 4 << 10;  // force Procedure 9/10
    auto sequential = Engine::Decompose(g, options);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    options.threads = 4;
    auto parallel = Engine::Decompose(g, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(SameDecomposition(sequential.value().result,
                                  parallel.value().result))
        << name;
  }
}

// The in-memory algorithms must split wall time into the support and peel
// phases; the external ones keep their own stage accounting and leave the
// split at zero.
TEST(EngineStatsTest, InMemoryRunsSurfacePhaseTimings) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(100, 600, 3), 8, 4);
  for (const char* name : {"improved", "parallel", "cohen"}) {
    DecomposeOptions options;
    options.algorithm = Engine::FindAlgorithm(name)->id;
    auto out = Engine::Decompose(g, options);
    ASSERT_TRUE(out.ok()) << name << ": " << out.status().ToString();
    EXPECT_GT(out.value().stats.support_seconds, 0.0) << name;
    EXPECT_GT(out.value().stats.peel_seconds, 0.0) << name;
    // The two phases are the whole in-memory run (plus noise-level glue).
    EXPECT_LE(out.value().stats.support_seconds +
                  out.value().stats.peel_seconds,
              out.value().stats.wall_seconds + 0.05)
        << name;
  }
  DecomposeOptions options;
  options.algorithm = Algorithm::kBottomUp;
  auto out = Engine::Decompose(g, options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().stats.support_seconds, 0.0);
  EXPECT_EQ(out.value().stats.peel_seconds, 0.0);
}

TEST(DecomposeOptionsTest, DecomposeRejectsInvalidOptions) {
  DecomposeOptions options;
  options.top_t = 3;  // improved does not support top-t
  auto out = Engine::Decompose(gen::Complete(4), options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// --- cross-algorithm equivalence ---------------------------------------

struct EquivalenceParam {
  const char* algorithm;
  const char* fixture;
};

Graph FixtureGraph(const std::string& name) {
  if (name == "figure2") return gen::Figure2Graph().graph;
  if (name == "managers") return gen::ManagerAdviceGraph();
  if (name == "er") return gen::ErdosRenyiGnm(80, 400, 17);
  if (name == "planted") {
    return gen::PlantClique(gen::ErdosRenyiGnm(60, 200, 5), 8, 6);
  }
  if (name == "trianglefree") return gen::Grid(5, 6);
  ADD_FAILURE() << "unknown fixture " << name;
  return {};
}

class EngineEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

// All four registry algorithms must produce the definition-level
// decomposition, edge for edge, through the one facade entry point.
TEST_P(EngineEquivalenceTest, MatchesNaiveOracle) {
  const EquivalenceParam param = GetParam();
  const Graph g = FixtureGraph(param.fixture);
  const TrussDecompositionResult oracle = NaiveTrussDecomposition(g);

  const AlgorithmInfo* info = Engine::FindAlgorithm(param.algorithm);
  ASSERT_NE(info, nullptr);
  DecomposeOptions options;
  options.algorithm = info->id;
  auto out = Engine::Decompose(g, options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(SameDecomposition(oracle, out.value().result));
  EXPECT_EQ(out.value().result.kmax, oracle.kmax);
  EXPECT_EQ(out.value().stats.algorithm, info->id);
  EXPECT_GE(out.value().stats.wall_seconds, 0.0);
  if (info->external) {
    EXPECT_EQ(out.value().stats.external.classified_edges, g.num_edges());
    EXPECT_GT(out.value().stats.total_io_blocks(), 0u);
  } else if (g.num_edges() > 0) {
    EXPECT_GT(out.value().stats.peak_memory_bytes, 0u);
  }
}

std::vector<EquivalenceParam> AllEquivalenceParams() {
  std::vector<EquivalenceParam> params;
  for (const AlgorithmInfo& info : Engine::Algorithms()) {
    for (const char* fixture :
         {"figure2", "managers", "er", "planted", "trianglefree"}) {
      params.push_back({info.name, fixture});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, EngineEquivalenceTest,
    ::testing::ValuesIn(AllEquivalenceParams()),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      return std::string(info.param.algorithm) + "_" + info.param.fixture;
    });

// The external algorithms must also agree when the budget forces
// partitioned passes (Procedures 9/10).
TEST(EngineEquivalenceTest, ExternalAlgorithmsAgreeUnderTightBudget) {
  const Graph g =
      gen::PlantClique(gen::ErdosRenyiGnm(150, 1200, 21), 10, 22);
  const TrussDecompositionResult oracle = NaiveTrussDecomposition(g);
  for (const char* name : {"bottomup", "topdown"}) {
    DecomposeOptions options;
    options.algorithm = Engine::FindAlgorithm(name)->id;
    options.memory_budget_bytes = 8 << 10;  // far below the structure size
    auto out = Engine::Decompose(g, options);
    ASSERT_TRUE(out.ok()) << name << ": " << out.status().ToString();
    EXPECT_TRUE(SameDecomposition(oracle, out.value().result)) << name;
  }
}

// --- top-t queries -----------------------------------------------------

TEST(EngineTopTTest, TopClassesMatchTheFullDecomposition) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(100, 500, 9), 9, 10);
  const TrussDecompositionResult oracle = NaiveTrussDecomposition(g);

  DecomposeOptions options;
  options.algorithm = Algorithm::kTopDown;
  options.top_t = 2;
  auto out = Engine::Decompose(g, options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out.value().result.truss_number.empty());
  ASSERT_FALSE(out.value().top_classes.empty());
  EXPECT_EQ(out.value().stats.external.kmax, oracle.kmax);

  // Every returned record of the top-2 classes (and Φ2) must carry the
  // oracle's truss number.
  for (const io::ClassRecord& rec : out.value().top_classes) {
    const EdgeId e = g.FindEdge(rec.u, rec.v);
    ASSERT_NE(e, kInvalidEdge);
    EXPECT_EQ(rec.truss, oracle.truss_number[e]);
  }
}

// --- DecomposeFile -----------------------------------------------------

class EngineFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("truss_engine_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

// File-to-file runs of all four algorithms agree with the oracle and
// consume their input file.
TEST_F(EngineFileTest, DecomposeFileAgreesAcrossAlgorithms) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(70, 350, 13), 7, 14);
  const TrussDecompositionResult oracle = NaiveTrussDecomposition(g);

  for (const AlgorithmInfo& info : Engine::Algorithms()) {
    io::Env env((dir_ / info.name).string());
    const std::string graph_file = "graph";
    ASSERT_TRUE(WriteGraphFile(env, g, graph_file).ok());

    DecomposeOptions options;
    options.algorithm = info.id;
    auto stats = Engine::DecomposeFile(env, graph_file, g.num_vertices(),
                                       options, "classes");
    ASSERT_TRUE(stats.ok()) << info.name << ": "
                            << stats.status().ToString();
    EXPECT_EQ(stats.value().external.classified_edges, g.num_edges())
        << info.name;
    EXPECT_EQ(stats.value().external.kmax, oracle.kmax) << info.name;
    EXPECT_FALSE(env.FileExists(graph_file)) << info.name << ": input file "
                                                             "not consumed";

    auto result = LoadClassesAsDecomposition(env, "classes", g);
    ASSERT_TRUE(result.ok()) << info.name;
    EXPECT_TRUE(SameDecomposition(oracle, result.value())) << info.name;
  }
}

// --- DecomposeSnapFile -------------------------------------------------

class EngineSnapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("truss_engine_snap_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteFixture(const Graph& g) {
    const std::string path = (dir_ / "graph.txt").string();
    EXPECT_TRUE(WriteEdgeList(g, path).ok());
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(EngineSnapFileTest, MatchesDecomposeOnTheParsedGraph) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(80, 400, 17), 6, 20);
  const std::string path = WriteFixture(g);

  DecomposeOptions options;
  for (const uint32_t threads : {1u, 4u}) {
    options.threads = threads;
    LoadedGraph loaded;
    auto out = Engine::DecomposeSnapFile(path, options, &loaded);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_GT(out.value().stats.ingest_seconds, 0.0);
    EXPECT_EQ(loaded.graph.num_edges(), g.num_edges());
    EXPECT_EQ(loaded.original_id.size(), loaded.graph.num_vertices());

    auto direct = Engine::Decompose(loaded.graph, options);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(out.value().result.kmax, direct.value().result.kmax);
    EXPECT_EQ(out.value().result.truss_number,
              direct.value().result.truss_number);
  }
}

TEST_F(EngineSnapFileTest, LoadedOutParamIsOptional) {
  const std::string path = WriteFixture(gen::Complete(5));
  auto out = Engine::DecomposeSnapFile(path, DecomposeOptions{});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().result.kmax, 5u);
}

TEST_F(EngineSnapFileTest, MissingFileIsIOError) {
  auto out = Engine::DecomposeSnapFile((dir_ / "absent.txt").string(),
                                       DecomposeOptions{});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kIOError);
}

TEST_F(EngineSnapFileTest, MalformedFileIsCorruption) {
  const std::string path = (dir_ / "bad.txt").string();
  {
    std::ofstream f(path);
    f << "1 2\nnot numbers\n";
  }
  auto out = Engine::DecomposeSnapFile(path, DecomposeOptions{});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST_F(EngineSnapFileTest, InvalidOptionsFailBeforeIngestion) {
  // Validation must not wait for (or depend on) the file: rejecting a bad
  // flag combination first means the path is never even opened.
  DecomposeOptions options;
  options.top_t = 3;  // incoherent with the default in-memory algorithm
  auto out = Engine::DecomposeSnapFile((dir_ / "never-read.txt").string(),
                                       options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// --- LoadGraphFile: format sniffing ------------------------------------

TEST_F(EngineSnapFileTest, LoadGraphFileReadsTextAndBinaryIdentically) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(40, 150, 9), 6, 3);
  const std::string text_path = WriteFixture(g);
  const std::string binary_path = (dir_ / "graph.trsb").string();
  ASSERT_TRUE(g.SaveBinary(binary_path).ok());

  auto from_text = Engine::LoadGraphFile(text_path);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  auto from_binary = Engine::LoadGraphFile(binary_path);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();

  // The binary path must reproduce the graph exactly, with an identity
  // original_id mapping (TRSB files carry compact ids already). The text
  // path re-interns labels by first appearance (and never sees isolated
  // vertices), so only the edge count is directly comparable.
  const Graph& bg = from_binary.value().graph;
  ASSERT_EQ(bg.num_vertices(), g.num_vertices());
  ASSERT_EQ(bg.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(bg.edges()[e].u, g.edges()[e].u);
    ASSERT_EQ(bg.edges()[e].v, g.edges()[e].v);
  }
  ASSERT_EQ(from_binary.value().original_id.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(from_binary.value().original_id[v], v);
  }
  EXPECT_EQ(from_text.value().graph.num_edges(), g.num_edges());
}

TEST_F(EngineSnapFileTest, LoadGraphFileMissingFileIsIOError) {
  auto out = Engine::LoadGraphFile((dir_ / "absent.trsb").string());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kIOError);
}

// --- hooks: progress + cancellation ------------------------------------

TEST(EngineHooksTest, CancelBeforeStartReturnsCancelled) {
  DecomposeOptions options;
  options.hooks.cancel = [] { return true; };
  for (const AlgorithmInfo& info : Engine::Algorithms()) {
    options.algorithm = info.id;
    auto out = Engine::Decompose(gen::Complete(6), options);
    ASSERT_FALSE(out.ok()) << info.name;
    EXPECT_EQ(out.status().code(), StatusCode::kCancelled) << info.name;
  }
}

TEST(EngineHooksTest, ExternalRunsCancelCooperativelyMidRun) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(120, 700, 3), 9, 4);
  for (const char* name : {"bottomup", "topdown"}) {
    int polls = 0;
    DecomposeOptions options;
    options.algorithm = Engine::FindAlgorithm(name)->id;
    options.hooks.cancel = [&polls] { return ++polls > 3; };
    auto out = Engine::Decompose(g, options);
    ASSERT_FALSE(out.ok()) << name;
    EXPECT_EQ(out.status().code(), StatusCode::kCancelled) << name;
    EXPECT_GT(polls, 3) << name << ": hook must be polled past the trigger";
  }
}

// The parallel peel polls the cancel hook once per sub-level, so an engine
// run of the "parallel" algorithm is interruptible mid-decomposition —
// unlike the other in-memory algorithms, which only check at run
// boundaries.
TEST(EngineHooksTest, ParallelRunCancelsCooperativelyMidPeel) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(120, 700, 3), 9, 4);
  int polls = 0;
  DecomposeOptions options;
  options.algorithm = Algorithm::kParallel;
  options.threads = 2;
  options.hooks.cancel = [&polls] { return ++polls > 3; };
  auto out = Engine::Decompose(g, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  EXPECT_GT(polls, 3) << "hook must be polled past the trigger";
}

TEST(EngineHooksTest, ProgressEventsCoverTheExternalStages) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(100, 500, 5), 8, 6);
  std::vector<std::string> stages;
  DecomposeOptions options;
  options.algorithm = Algorithm::kBottomUp;
  options.hooks.progress = [&stages](const ProgressEvent& event) {
    stages.push_back(event.stage);
  };
  auto out = Engine::Decompose(g, options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(std::find(stages.begin(), stages.end(), "lower_bound"),
            stages.end());
  EXPECT_NE(std::find(stages.begin(), stages.end(), "peel"), stages.end());
}

TEST(EngineHooksTest, ProgressEventsFireForInMemoryRuns) {
  std::vector<ProgressEvent> events;
  DecomposeOptions options;
  options.hooks.progress = [&events](const ProgressEvent& event) {
    events.push_back(event);
  };
  const Graph g = gen::Complete(8);
  auto out = Engine::Decompose(g, options);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.back().done, g.num_edges());
  EXPECT_EQ(events.back().total, g.num_edges());
}

// A cancelled run must not leave engine-owned scratch directories behind.
TEST(EngineHooksTest, CancelledRunCleansUpScratch) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(80, 400, 7), 8, 8);
  DecomposeOptions options;
  options.algorithm = Algorithm::kBottomUp;
  int polls = 0;
  options.hooks.cancel = [&polls] { return ++polls > 2; };
  // Only entries of this process count: concurrent test processes share
  // the /tmp/truss_engine root but use their own pid prefix.
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "truss_engine";
  const std::string prefix = std::to_string(::getpid()) + "_";
  auto count_entries = [&root, &prefix] {
    if (!std::filesystem::exists(root)) return size_t{0};
    size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(root)) {
      if (entry.path().filename().string().starts_with(prefix)) ++n;
    }
    return n;
  };
  const size_t before = count_entries();
  auto out = Engine::Decompose(g, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(count_entries(), before);
}

}  // namespace
}  // namespace truss::engine
