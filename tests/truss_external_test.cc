// Integration and property tests for the I/O-efficient decompositions:
// bottom-up (Algorithms 3-4, Procedures 5/9) and top-down (Procedure 6,
// Algorithm 7, Procedures 8/10), cross-checked against the in-memory
// algorithm on randomized inputs under memory budgets that force every code
// path (single part, many parts, candidate-subgraph overflow).

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "gen/fixtures.h"
#include "gen/generators.h"
#include "io/env.h"
#include "truss/bottom_up.h"
#include "truss/improved.h"
#include "triangle/triangle.h"
#include "truss/external_util.h"
#include "truss/lower_bound.h"
#include "truss/result.h"
#include "truss/top_down.h"

namespace truss {
namespace {

std::string TestDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "truss_ext_test" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

struct ExternalCase {
  const char* label;
  VertexId n;
  uint64_t m;
  uint64_t seed;
  uint32_t planted_clique;  // 0 = none
  uint64_t budget_bytes;
  partition::Strategy strategy;
};

Graph MakeCaseGraph(const ExternalCase& c) {
  Graph g = gen::ErdosRenyiGnm(c.n, c.m, c.seed);
  if (c.planted_clique > 0) {
    g = gen::PlantClique(g, c.planted_clique, c.seed + 1);
  }
  return g;
}

class BottomUpTest : public ::testing::TestWithParam<ExternalCase> {};

TEST_P(BottomUpTest, MatchesInMemoryOracle) {
  const ExternalCase c = GetParam();
  const Graph g = MakeCaseGraph(c);
  const TrussDecompositionResult expected = ImprovedTrussDecomposition(g);

  io::Env env(TestDir(std::string("bu_") + c.label), 4096);
  ExternalConfig cfg;
  cfg.memory_budget_bytes = c.budget_bytes;
  cfg.strategy = c.strategy;
  ExternalStats stats;
  auto result = BottomUpDecompose(env, g, cfg, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(SameDecomposition(expected, result.value()))
      << "kmax expected " << expected.kmax << " got " << result.value().kmax;
  EXPECT_EQ(stats.kmax, expected.kmax);
  EXPECT_EQ(stats.classified_edges, g.num_edges());
  EXPECT_EQ(stats.phi2_edges, expected.KClassEdges(2).size());
  EXPECT_GT(stats.io.total_blocks(), 0u);
}

class TopDownTest : public ::testing::TestWithParam<ExternalCase> {};

TEST_P(TopDownTest, MatchesInMemoryOracle) {
  const ExternalCase c = GetParam();
  const Graph g = MakeCaseGraph(c);
  const TrussDecompositionResult expected = ImprovedTrussDecomposition(g);

  io::Env env(TestDir(std::string("td_") + c.label), 4096);
  ExternalConfig cfg;
  cfg.memory_budget_bytes = c.budget_bytes;
  cfg.strategy = c.strategy;
  ExternalStats stats;
  auto result = TopDownDecompose(env, g, cfg, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(SameDecomposition(expected, result.value()))
      << "kmax expected " << expected.kmax << " got " << result.value().kmax;
  EXPECT_EQ(stats.kmax, expected.kmax);
}

// Budgets: "huge" keeps everything in one part / in-memory candidates;
// "small" forces multi-part lower bounding; "tiny" additionally overflows
// candidate subgraphs into Procedures 9/10.
const ExternalCase kCases[] = {
    {"sparse_huge", 60, 120, 1, 0, 64ull << 20,
     partition::Strategy::kSequential},
    {"sparse_small", 60, 120, 2, 0, 4096, partition::Strategy::kSequential},
    {"sparse_tiny", 60, 120, 3, 0, 1200, partition::Strategy::kRandomized},
    {"dense_huge", 40, 400, 4, 0, 64ull << 20,
     partition::Strategy::kSequential},
    {"dense_small", 40, 400, 5, 0, 6000, partition::Strategy::kRandomized},
    {"dense_tiny", 40, 400, 6, 0, 1600, partition::Strategy::kSequential},
    {"clique_small", 50, 200, 7, 8, 5000,
     partition::Strategy::kDominatingSet},
    {"clique_tiny", 50, 200, 8, 10, 1600, partition::Strategy::kRandomized},
    {"mid_random", 120, 700, 9, 6, 12000, partition::Strategy::kRandomized},
    {"mid_domset", 120, 700, 10, 6, 12000,
     partition::Strategy::kDominatingSet},
    {"larger", 300, 2400, 11, 12, 40000, partition::Strategy::kSequential},
    {"triangle_free", 64, 63, 12, 0, 2048,
     partition::Strategy::kSequential},  // a tree: everything is Φ2
};

INSTANTIATE_TEST_SUITE_P(Sweep, BottomUpTest, ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.label; });
INSTANTIATE_TEST_SUITE_P(Sweep, TopDownTest, ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.label; });

TEST(BottomUpTest, Figure2Example) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  io::Env env(TestDir("bu_fig2"), 512);
  ExternalConfig cfg;
  cfg.memory_budget_bytes = 800;  // force several parts on 26 edges
  auto result = BottomUpDecompose(env, fx.graph, cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().truss_number, fx.expected_truss);
}

TEST(TopDownTest, Figure2Example) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  io::Env env(TestDir("td_fig2"), 512);
  ExternalConfig cfg;
  cfg.memory_budget_bytes = 800;
  auto result = TopDownDecompose(env, fx.graph, cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().truss_number, fx.expected_truss);
}

TEST(TopDownTest, TopTClassesMatchOracleTopClasses) {
  const Graph g =
      gen::PlantClique(gen::ErdosRenyiGnm(80, 500, 21), 9, 22);
  const TrussDecompositionResult expected = ImprovedTrussDecomposition(g);

  io::Env env(TestDir("td_topt"), 4096);
  ExternalConfig cfg;
  cfg.memory_budget_bytes = 8000;
  cfg.top_t = 2;
  auto records = TopDownTopClasses(env, g, cfg);
  ASSERT_TRUE(records.ok()) << records.status().ToString();

  // Collect the reported classes with k ≥ 3 (Φ2 is always emitted).
  std::map<uint32_t, std::vector<Edge>> reported;
  for (const io::ClassRecord& rec : records.value()) {
    if (rec.truss >= 3) reported[rec.truss].push_back(MakeEdge(rec.u, rec.v));
  }
  ASSERT_EQ(reported.size(), 2u) << "expected exactly the top-2 classes";

  // They must be the two largest non-empty classes of the oracle, exactly.
  std::vector<uint32_t> oracle_ks;
  for (const auto& [k, count] : expected.ClassSizes()) {
    if (k >= 3 && count > 0) oracle_ks.push_back(k);
  }
  ASSERT_GE(oracle_ks.size(), 2u);
  const uint32_t k1 = oracle_ks[oracle_ks.size() - 1];
  const uint32_t k2 = oracle_ks[oracle_ks.size() - 2];
  for (const uint32_t k : {k1, k2}) {
    ASSERT_TRUE(reported.count(k)) << "missing class " << k;
    std::vector<Edge> expected_edges;
    for (const EdgeId id : expected.KClassEdges(k)) {
      expected_edges.push_back(g.edge(id));
    }
    std::sort(expected_edges.begin(), expected_edges.end());
    std::vector<Edge> got = reported[k];
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected_edges) << "class " << k;
  }
}

TEST(TopDownTest, TopOneFindsKmaxTruss) {
  const Graph g =
      gen::PlantClique(gen::ErdosRenyiGnm(100, 300, 31), 12, 32);
  const TrussDecompositionResult expected = ImprovedTrussDecomposition(g);

  io::Env env(TestDir("td_top1"), 4096);
  ExternalConfig cfg;
  cfg.memory_budget_bytes = 32ull << 20;
  cfg.top_t = 1;
  ExternalStats stats;
  auto records = TopDownTopClasses(env, g, cfg, &stats);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(stats.kmax, expected.kmax);
  uint64_t kmax_edges = 0;
  for (const io::ClassRecord& rec : records.value()) {
    if (rec.truss == expected.kmax) ++kmax_edges;
  }
  EXPECT_EQ(kmax_edges, expected.KClassEdges(expected.kmax).size());
}

TEST(LowerBoundingTest, Phi2AndBoundsAreSound) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(70, 250, 41), 7, 42);
  const TrussDecompositionResult oracle = ImprovedTrussDecomposition(g);

  io::Env env(TestDir("lb"), 2048);
  const std::string graph_file = "graph";
  ASSERT_TRUE(WriteGraphFile(env, g, graph_file).ok());

  const std::string classes = "phi2";
  auto class_writer = env.OpenWriter(classes);
  ASSERT_TRUE(class_writer.ok());

  ExternalConfig cfg;
  cfg.memory_budget_bytes = 3000;  // several parts, several iterations
  auto lb = RunLowerBounding(env, graph_file, g.num_vertices(), cfg,
                             BoundMode::kPhiLowerBound,
                             class_writer.value().get());
  ASSERT_TRUE(lb.ok()) << lb.status().ToString();
  ASSERT_TRUE(class_writer.value()->Close().ok());

  // Φ2 must be exactly the support-0 edges.
  EXPECT_EQ(lb.value().phi2_edges, oracle.KClassEdges(2).size());
  EXPECT_EQ(lb.value().gnew_edges + lb.value().phi2_edges, g.num_edges());
  EXPECT_GE(lb.value().iterations, 1u);

  // Every Gnew label must be a valid lower bound 2 ≤ φ(e) ≤ ϕ(e).
  auto reader = env.OpenReader(lb.value().gnew_file);
  ASSERT_TRUE(reader.ok());
  io::GnewRecord rec;
  io::GnewRecord prev{};
  bool first = true;
  while (reader.value()->ReadRecord(&rec)) {
    const EdgeId id = g.FindEdge(rec.u, rec.v);
    ASSERT_NE(id, kInvalidEdge);
    EXPECT_GE(rec.label, 2u);
    EXPECT_LE(rec.label, oracle.truss_number[id]);
    if (!first) {
      EXPECT_TRUE(io::ByEdgeLess{}(prev, rec)) << "Gnew must be sorted";
    }
    prev = rec;
    first = false;
  }
}

TEST(LowerBoundingTest, ExactSupportModeStoresTrueSupports) {
  const Graph g = gen::ErdosRenyiGnm(60, 350, 51);
  const std::vector<uint32_t> sup = ComputeEdgeSupports(g);

  io::Env env(TestDir("lb_sup"), 2048);
  const std::string graph_file = "graph";
  ASSERT_TRUE(WriteGraphFile(env, g, graph_file).ok());
  const std::string classes = "phi2";
  auto class_writer = env.OpenWriter(classes);
  ASSERT_TRUE(class_writer.ok());

  ExternalConfig cfg;
  cfg.memory_budget_bytes = 2500;
  cfg.strategy = partition::Strategy::kRandomized;
  auto lb = RunLowerBounding(env, graph_file, g.num_vertices(), cfg,
                             BoundMode::kExactSupport,
                             class_writer.value().get());
  ASSERT_TRUE(lb.ok()) << lb.status().ToString();
  ASSERT_TRUE(class_writer.value()->Close().ok());

  auto reader = env.OpenReader(lb.value().gnew_file);
  ASSERT_TRUE(reader.ok());
  io::GnewRecord rec;
  uint64_t checked = 0;
  while (reader.value()->ReadRecord(&rec)) {
    const EdgeId id = g.FindEdge(rec.u, rec.v);
    ASSERT_NE(id, kInvalidEdge);
    EXPECT_EQ(rec.label, sup[id])
        << "edge (" << rec.u << "," << rec.v << ")";
    ++checked;
  }
  EXPECT_EQ(checked, lb.value().gnew_edges);
}

TEST(BottomUpTest, EmptyAndTinyGraphs) {
  io::Env env(TestDir("bu_tiny"), 512);
  ExternalConfig cfg;
  // Single edge: Φ2.
  const Graph g1 = Graph::FromEdges({{0, 1}}, 0);
  auto r1 = BottomUpDecompose(env, g1, cfg);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().truss_number, (std::vector<uint32_t>{2}));
  // Single triangle.
  const Graph g2 = gen::Complete(3);
  auto r2 = BottomUpDecompose(env, g2, cfg);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().kmax, 3u);
}

TEST(BottomUpTest, StatsCountOverflows) {
  // A budget far below H size must exercise Procedure 9 at least once.
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(50, 200, 61), 8, 62);
  io::Env env(TestDir("bu_overflow"), 512);
  ExternalConfig cfg;
  cfg.memory_budget_bytes = 1200;
  ExternalStats stats;
  auto result = BottomUpDecompose(env, g, cfg, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.candidate_overflows, 0u);
  EXPECT_TRUE(
      SameDecomposition(ImprovedTrussDecomposition(g), result.value()));
}

}  // namespace
}  // namespace truss
