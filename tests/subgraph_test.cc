// Unit tests for induced / edge-set / neighborhood subgraph extraction.

#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/graph.h"

namespace truss {
namespace {

Graph Diamond() {
  // Two triangles sharing edge (1,2).
  return Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}, 0);
}

TEST(InducedSubgraphTest, TriangleFromDiamond) {
  const Graph g = Diamond();
  const Subgraph s = InducedSubgraph(g, std::vector<VertexId>{0, 1, 2});
  EXPECT_EQ(s.graph.num_vertices(), 3u);
  EXPECT_EQ(s.graph.num_edges(), 3u);
  EXPECT_EQ(s.vertex_to_parent, (std::vector<VertexId>{0, 1, 2}));
}

TEST(InducedSubgraphTest, ToleratesDuplicates) {
  const Graph g = Diamond();
  const Subgraph s = InducedSubgraph(g, std::vector<VertexId>{2, 0, 0, 1, 2});
  EXPECT_EQ(s.graph.num_vertices(), 3u);
  EXPECT_EQ(s.graph.num_edges(), 3u);
}

TEST(InducedSubgraphTest, EdgeMappingPointsBack) {
  const Graph g = gen::ErdosRenyiGnm(40, 200, 5);
  const std::vector<VertexId> verts = {0, 3, 5, 7, 11, 13, 17, 19, 23, 29};
  const Subgraph s = InducedSubgraph(g, verts);
  for (EdgeId le = 0; le < s.graph.num_edges(); ++le) {
    const Edge local = s.graph.edge(le);
    const Edge parent = g.edge(s.edge_to_parent[le]);
    EXPECT_EQ(parent,
              MakeEdge(s.vertex_to_parent[local.u],
                       s.vertex_to_parent[local.v]));
  }
}

TEST(SubgraphFromEdgesTest, VertexSetIsEndpointsOnly) {
  const Graph g = Diamond();
  const EdgeId e12 = g.FindEdge(1, 2);
  const EdgeId e13 = g.FindEdge(1, 3);
  const Subgraph s = SubgraphFromEdges(g, std::vector<EdgeId>{e12, e13});
  EXPECT_EQ(s.graph.num_vertices(), 3u);  // {1, 2, 3}
  EXPECT_EQ(s.graph.num_edges(), 2u);
  EXPECT_EQ(s.vertex_to_parent, (std::vector<VertexId>{1, 2, 3}));
}

TEST(SubgraphFromEdgesTest, DeduplicatesEdgeIds) {
  const Graph g = Diamond();
  const EdgeId e = g.FindEdge(0, 1);
  const Subgraph s = SubgraphFromEdges(g, std::vector<EdgeId>{e, e, e});
  EXPECT_EQ(s.graph.num_edges(), 1u);
}

TEST(NeighborhoodSubgraphTest, DefinitionFourOnDiamond) {
  const Graph g = Diamond();
  // U = {0}: NS(U) has vertices {0} ∪ nb(0) = {0,1,2}, edges incident to 0.
  const NeighborhoodSubgraph ns =
      ExtractNeighborhoodSubgraph(g, std::vector<VertexId>{0});
  EXPECT_EQ(ns.internal_vertex_count, 1u);
  EXPECT_EQ(ns.sub.graph.num_vertices(), 3u);
  EXPECT_EQ(ns.sub.graph.num_edges(), 2u);  // (0,1), (0,2); not (1,2)
  EXPECT_TRUE(ns.IsInternalVertex(0));
  EXPECT_FALSE(ns.IsInternalVertex(1));
}

TEST(NeighborhoodSubgraphTest, InternalEdgesRequireBothEndpoints) {
  const Graph g = Diamond();
  const NeighborhoodSubgraph ns =
      ExtractNeighborhoodSubgraph(g, std::vector<VertexId>{1, 2});
  // ENS({1,2}) = all 5 edges (every edge touches 1 or 2).
  EXPECT_EQ(ns.sub.graph.num_edges(), 5u);
  uint32_t internal = 0;
  for (EdgeId e = 0; e < ns.sub.graph.num_edges(); ++e) {
    if (ns.IsInternalEdge(e)) ++internal;
  }
  EXPECT_EQ(internal, 1u);  // only (1,2)
}

TEST(NeighborhoodSubgraphTest, FullVertexSetIsWholeGraph) {
  const Graph g = gen::ErdosRenyiGnm(30, 100, 9);
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  const NeighborhoodSubgraph ns = ExtractNeighborhoodSubgraph(g, all);
  EXPECT_EQ(ns.sub.graph.num_edges(), g.num_edges());
  EXPECT_EQ(ns.internal_vertex_count, g.num_vertices());
}

TEST(NeighborhoodSubgraphTest, ExternalEdgesPreserveTriangles) {
  // Triangle 0-1-2 with 0 internal: all three vertices appear, but edge
  // (1,2) is absent (neither endpoint internal) per Definition 4.
  const Graph g = gen::Complete(3);
  const NeighborhoodSubgraph ns =
      ExtractNeighborhoodSubgraph(g, std::vector<VertexId>{0});
  EXPECT_EQ(ns.sub.graph.num_edges(), 2u);
  // With two of the three vertices internal the triangle is complete.
  const NeighborhoodSubgraph ns2 =
      ExtractNeighborhoodSubgraph(g, std::vector<VertexId>{0, 1});
  EXPECT_EQ(ns2.sub.graph.num_edges(), 3u);
}

}  // namespace
}  // namespace truss
