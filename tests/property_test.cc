// Cross-cutting property tests over a diverse generator zoo: every
// algorithm family must agree, and the paper's structural theorems must
// hold on every instance.

#include <gtest/gtest.h>

#include <filesystem>

#include "gen/fixtures.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "io/env.h"
#include "kcore/kcore.h"
#include "triangle/triangle.h"
#include "truss/bottom_up.h"
#include "truss/cohen.h"
#include "truss/improved.h"
#include "truss/top_down.h"
#include "truss/verify.h"

namespace truss {
namespace {

std::string TestDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "truss_prop_test" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

// A zoo of structurally different graphs.
struct ZooCase {
  const char* label;
  Graph (*make)();
};

const ZooCase kZoo[] = {
    {"er_sparse", [] { return gen::ErdosRenyiGnm(90, 200, 1); }},
    {"er_dense", [] { return gen::ErdosRenyiGnm(45, 600, 2); }},
    {"ba", [] { return gen::BarabasiAlbert(150, 4, 3); }},
    {"rmat", [] { return gen::RMat(8, 700, 0.6, 0.18, 0.12, 4); }},
    {"watts_strogatz", [] { return gen::WattsStrogatz(100, 4, 0.2, 5); }},
    {"communities",
     [] { return gen::PlantedCommunities(8, 12, 0.7, 120, 6); }},
    {"planted_clique",
     [] { return gen::PlantClique(gen::ErdosRenyiGnm(80, 240, 7), 10, 8); }},
    {"figure2", [] { return gen::Figure2Graph().graph; }},
    {"managers", [] { return gen::ManagerAdviceGraph(); }},
    {"grid", [] { return gen::Grid(8, 8); }},
    {"complete", [] { return gen::Complete(14); }},
};

class ZooTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooTest, AllAlgorithmFamiliesAgree) {
  const Graph g = GetParam().make();
  const TrussDecompositionResult oracle = NaiveTrussDecomposition(g);

  EXPECT_TRUE(SameDecomposition(oracle, ImprovedTrussDecomposition(g)));
  EXPECT_TRUE(SameDecomposition(oracle, CohenTrussDecomposition(g)));

  io::Env env(TestDir(std::string("zoo_") + GetParam().label), 4096);
  ExternalConfig cfg;
  cfg.memory_budget_bytes = 6000;  // force partitioning on all zoo graphs
  cfg.strategy = partition::Strategy::kRandomized;
  auto bu = BottomUpDecompose(env, g, cfg);
  ASSERT_TRUE(bu.ok()) << bu.status().ToString();
  EXPECT_TRUE(SameDecomposition(oracle, bu.value()));
  auto td = TopDownDecompose(env, g, cfg);
  ASSERT_TRUE(td.ok()) << td.status().ToString();
  EXPECT_TRUE(SameDecomposition(oracle, td.value()));
}

TEST_P(ZooTest, SupportZeroIffTrussTwo) {
  // ϕ(e) = 2 ⟺ sup(e, G) = 0 (the Φ2 extraction rule of Algorithm 3).
  const Graph g = GetParam().make();
  const std::vector<uint32_t> sup = ComputeEdgeSupports(g);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(sup[e] == 0, r.truss_number[e] == 2) << "edge " << e;
  }
}

TEST_P(ZooTest, TrussNumberBoundedBySupportPlusTwo) {
  // ϕ(e) ≤ sup(e) + 2 always (supports only shrink inside subgraphs).
  const Graph g = GetParam().make();
  const std::vector<uint32_t> sup = ComputeEdgeSupports(g);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(r.truss_number[e], sup[e] + 2);
  }
}

TEST_P(ZooTest, KTrussIsKMinusOneCore) {
  const Graph g = GetParam().make();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  for (uint32_t k = 3; k <= r.kmax; ++k) {
    const Subgraph tk = ExtractKTruss(g, r, k);
    // Every vertex of T_k has degree ≥ k-1 within T_k (§1).
    for (VertexId v = 0; v < tk.graph.num_vertices(); ++v) {
      EXPECT_GE(tk.graph.degree(v) + 1, k) << "k=" << k;
    }
  }
}

TEST_P(ZooTest, EveryEdgeClassified) {
  const Graph g = GetParam().make();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  uint64_t total = 0;
  for (const auto& [k, c] : r.ClassSizes()) {
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, r.kmax);
    total += c;
  }
  EXPECT_EQ(total, g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooTest, ::testing::ValuesIn(kZoo),
                         [](const auto& info) { return info.param.label; });

// The clustering-coefficient claim of Example 1 generalizes: on graphs with
// community structure, CC rises monotonically along the truss hierarchy
// prefix (up to the first level that is a disjoint union of cliques).
TEST(TrussStructureTest, ClusteringRisesIntoTheTruss) {
  const Graph g = gen::PlantedCommunities(10, 14, 0.75, 200, 17);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  ASSERT_GE(r.kmax, 4u);
  const double cc_g = AverageClusteringCoefficient(g);
  const Subgraph t4 = ExtractKTruss(g, r, 4);
  const double cc_t4 = AverageClusteringCoefficient(t4.graph);
  EXPECT_GT(cc_t4, cc_g);
}

// Degeneracy connection: cmax ≥ kmax - 1 on every zoo graph (T_kmax is a
// (kmax-1)-core).
TEST(TrussStructureTest, CoreNumberDominatesTrussMinusOne) {
  for (const ZooCase& zoo : kZoo) {
    const Graph g = zoo.make();
    if (g.num_edges() == 0) continue;
    const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
    const CoreDecomposition cores = DecomposeCores(g);
    EXPECT_GE(cores.cmax + 1, r.kmax) << zoo.label;
  }
}

}  // namespace
}  // namespace truss
