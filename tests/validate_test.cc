// Unit tests for the debug invariant validators (graph/validate.h,
// engine/validate.h): every structural CSR violation and every
// decomposition-output violation must be detected with a useful message,
// the strengthened LoadBinary must reject snapshots that pass the header
// checks but violate CSR invariants, and — Debug/ASan builds only — the
// DCheck boundary wrappers must abort on corrupted inputs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/validate.h"
#include "graph/graph.h"
#include "graph/validate.h"
#include "io/checksum_file.h"
#include "truss/improved.h"

namespace truss {
namespace {

Graph TwoTriangles() {
  // Triangles {0,1,2} and {2,3,4} sharing vertex 2.
  return Graph::FromEdges({MakeEdge(0, 1), MakeEdge(0, 2), MakeEdge(1, 2),
                           MakeEdge(2, 3), MakeEdge(2, 4), MakeEdge(3, 4)});
}

/// Mutable copies of a graph's CSR arrays, for corruption tests.
struct Parts {
  std::vector<uint64_t> offsets;
  std::vector<AdjEntry> adj;
  std::vector<Edge> edges;

  explicit Parts(const Graph& g)
      : offsets(g.offsets().begin(), g.offsets().end()),
        adj(g.adjacency().begin(), g.adjacency().end()),
        edges(g.edges().begin(), g.edges().end()) {}

  bool Validate(std::string* error = nullptr) const {
    return graph::ValidateCsrParts(offsets, adj, edges, error);
  }
};

TEST(ValidateCsrTest, AcceptsEmptyGraph) {
  EXPECT_TRUE(graph::ValidateCsr(Graph()));
  EXPECT_TRUE(graph::ValidateCsrParts({}, {}, {}));
}

TEST(ValidateCsrTest, AcceptsBuilderGraphs) {
  std::string error;
  EXPECT_TRUE(graph::ValidateCsr(TwoTriangles(), &error)) << error;
  EXPECT_TRUE(graph::ValidateCsr(Graph::FromEdges({MakeEdge(0, 1)}), &error))
      << error;
  // Isolated trailing vertex.
  EXPECT_TRUE(graph::ValidateCsr(
      Graph::FromEdges({MakeEdge(0, 1)}, /*num_vertices=*/4), &error))
      << error;
}

TEST(ValidateCsrTest, RejectsEmptyOffsetsWithEdges) {
  const Parts p(TwoTriangles());
  std::string error;
  EXPECT_FALSE(graph::ValidateCsrParts({}, p.adj, p.edges, &error));
  EXPECT_NE(error.find("empty offsets"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsBadOffsetEnds) {
  Parts p(TwoTriangles());
  p.offsets.front() = 1;
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_NE(error.find("offsets[0]"), std::string::npos) << error;

  Parts q(TwoTriangles());
  q.offsets.back() += 1;
  EXPECT_FALSE(q.Validate(&error));
  EXPECT_NE(error.find("span"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsNonMonotoneOffsets) {
  Parts p(TwoTriangles());
  // Vertex 2 has degree 4; push its start past its end.
  p.offsets[2] = p.offsets[3] + 1;
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_NE(error.find("monotone"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsAdjacencyEdgeCountMismatch) {
  Parts p(TwoTriangles());
  p.edges.pop_back();
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_NE(error.find("2 * edge count"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsOutOfRangeNeighbor) {
  Parts p(TwoTriangles());
  p.adj[0].neighbor = 100;
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_NE(error.find("out-of-range neighbor"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsSelfLoopEntry) {
  Parts p(TwoTriangles());
  p.adj[0].neighbor = 0;  // first entry belongs to vertex 0
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_NE(error.find("self-loop"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsOutOfRangeEdgeId) {
  Parts p(TwoTriangles());
  p.adj[0].edge = static_cast<EdgeId>(p.edges.size());
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_NE(error.find("out-of-range edge id"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsUnsortedAdjacency) {
  const Graph g = TwoTriangles();
  Parts p(g);
  // Vertex 0 has neighbors {1, 2}; swapping them breaks the sort without
  // touching any other invariant.
  ASSERT_GE(g.degree(0), 2u);
  std::swap(p.adj[0], p.adj[1]);
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_NE(error.find("unsorted"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsEntryEdgeDisagreement) {
  Parts p(TwoTriangles());
  // Point vertex 0's (0,1) entry at the (0,2) edge record: the entry and
  // edges[e] disagree.
  p.adj[0].edge = p.adj[1].edge;
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_NE(error.find("disagrees"), std::string::npos) << error;
}

TEST(ValidateCsrTest, RejectsAsymmetricAdjacency) {
  const Graph g = TwoTriangles();
  Parts p(g);
  // Rewrite vertex 3's entry for neighbor 4 to neighbor 2's edge (2,3):
  // edge (2,3) becomes triple-referenced / edge (3,4) single-referenced.
  bool rewrote = false;
  for (uint64_t i = p.offsets[3]; i < p.offsets[4]; ++i) {
    if (p.adj[i].neighbor == 4) {
      const EdgeId e23 = g.FindEdge(2, 3);
      ASSERT_NE(e23, kInvalidEdge);
      p.adj[i].neighbor = 2;
      p.adj[i].edge = e23;
      rewrote = true;
    }
  }
  ASSERT_TRUE(rewrote);
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  // Fails as duplicate/unsorted neighbor or double-reference depending on
  // adjacency order; either way it must fail.
  EXPECT_FALSE(error.empty());
}

TEST(ValidateCsrTest, RejectsNonNormalizedOrUnsortedEdges) {
  Parts p(TwoTriangles());
  std::swap(p.edges[0].u, p.edges[0].v);
  std::string error;
  EXPECT_FALSE(p.Validate(&error));
  EXPECT_FALSE(error.empty());

  Parts q(TwoTriangles());
  std::swap(q.edges[0], q.edges[1]);
  EXPECT_FALSE(q.Validate(&error));
  EXPECT_FALSE(error.empty());
}

// The strengthened LoadBinary routes through ValidateCsrParts, so a
// snapshot that passes every header/size check but carries an unsorted
// adjacency list must be rejected as Corruption instead of silently
// breaking the binary searches downstream.
TEST(ValidateCsrTest, LoadBinaryRejectsUnsortedAdjacency) {
  const Graph g = TwoTriangles();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("truss_validate_" + std::to_string(::getpid()) + ".trsb"))
          .string();
  ASSERT_TRUE(g.SaveBinary(path).ok());

  // File layout: 32-byte header, offsets array, adjacency array. Swap
  // vertex 0's two adjacency entries in place.
  constexpr uint64_t kHeaderBytes = 32;
  const uint64_t adj_base = kHeaderBytes + g.offsets().size() * 8;
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  AdjEntry first, second;
  ASSERT_EQ(std::fseek(f, static_cast<long>(adj_base), SEEK_SET), 0);
  ASSERT_EQ(std::fread(&first, sizeof(first), 1, f), 1u);
  ASSERT_EQ(std::fread(&second, sizeof(second), 1, f), 1u);
  ASSERT_EQ(std::fseek(f, static_cast<long>(adj_base), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&second, sizeof(second), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&first, sizeof(first), 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
  // Make the checksum match the edited payload again: this test targets the
  // structural validation behind the checksum, not the checksum itself.
  ASSERT_TRUE(truss::io::RewriteChecksumFooter(path).ok());

  const auto loaded = Graph::LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("unsorted"), std::string::npos)
      << loaded.status().message();
  std::filesystem::remove(path);
}

TEST(ValidateDecomposeOutputTest, AcceptsRealDecompositions) {
  const Graph g = TwoTriangles();
  const TrussDecompositionResult result = ImprovedTrussDecomposition(g);
  std::string error;
  EXPECT_TRUE(engine::ValidateDecomposeOutput(g, result, &error)) << error;

  const Graph empty;
  EXPECT_TRUE(
      engine::ValidateDecomposeOutput(empty, TrussDecompositionResult{}));
}

TEST(ValidateDecomposeOutputTest, RejectsWrongSize) {
  const Graph g = TwoTriangles();
  TrussDecompositionResult result = ImprovedTrussDecomposition(g);
  result.truss_number.pop_back();
  std::string error;
  EXPECT_FALSE(engine::ValidateDecomposeOutput(g, result, &error));
  EXPECT_NE(error.find("entries"), std::string::npos) << error;
}

TEST(ValidateDecomposeOutputTest, RejectsEdgelessKmax) {
  TrussDecompositionResult result;
  result.kmax = 3;
  std::string error;
  EXPECT_FALSE(engine::ValidateDecomposeOutput(Graph(), result, &error));
  EXPECT_NE(error.find("edgeless"), std::string::npos) << error;
}

TEST(ValidateDecomposeOutputTest, RejectsTrussNumberBelowTwo) {
  const Graph g = TwoTriangles();
  TrussDecompositionResult result = ImprovedTrussDecomposition(g);
  result.truss_number[0] = 1;
  std::string error;
  EXPECT_FALSE(engine::ValidateDecomposeOutput(g, result, &error));
  EXPECT_NE(error.find("< 2"), std::string::npos) << error;
}

TEST(ValidateDecomposeOutputTest, RejectsKmaxMismatch) {
  const Graph g = TwoTriangles();
  TrussDecompositionResult result = ImprovedTrussDecomposition(g);
  result.kmax += 1;
  std::string error;
  EXPECT_FALSE(engine::ValidateDecomposeOutput(g, result, &error));
  EXPECT_NE(error.find("kmax"), std::string::npos) << error;
}

TEST(ValidateDecomposeOutputTest, RejectsTriangleEdgeAtTwo) {
  const Graph g = TwoTriangles();
  TrussDecompositionResult result = ImprovedTrussDecomposition(g);
  // Every edge of this graph closes a triangle, so flattening them all to
  // 2 violates the triangle-edge rule (and keeps kmax consistent).
  for (auto& t : result.truss_number) t = 2;
  result.RecomputeKmax();
  std::string error;
  EXPECT_FALSE(engine::ValidateDecomposeOutput(g, result, &error));
  EXPECT_NE(error.find("triangle"), std::string::npos) << error;
}

TEST(ValidateDecomposeOutputTest, RejectsInflatedTrussNumber) {
  const Graph g = TwoTriangles();
  TrussDecompositionResult result = ImprovedTrussDecomposition(g);
  // kmax here is 3; claiming a 5 fails the support-consistency spot check
  // (an edge of truss number 5 needs 3 triangles inside its own truss).
  result.truss_number[0] = 5;
  result.RecomputeKmax();
  std::string error;
  EXPECT_FALSE(engine::ValidateDecomposeOutput(g, result, &error));
  EXPECT_NE(error.find("inside its own truss"), std::string::npos) << error;
}

// Death tests: the DCheck boundary wrappers must abort with the violation
// message on corrupted inputs. Debug/ASan builds only — the wrappers
// compile to nothing under NDEBUG.
#if !defined(NDEBUG) && GTEST_HAS_DEATH_TEST

TEST(ValidateDeathTest, DCheckDecomposeOutputAbortsOnCorruption) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g = TwoTriangles();
  TrussDecompositionResult result = ImprovedTrussDecomposition(g);
  result.truss_number[0] = 1;
  EXPECT_DEATH(engine::DCheckDecomposeOutput(g, result),
               "DCheckDecomposeOutput failed");
}

TEST(ValidateDeathTest, DCheckValidCsrPassesThenCheckAbortsOnCorruptParts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g = TwoTriangles();
  graph::DCheckValidCsr(g);  // must not abort on a valid graph
  Parts p(g);
  std::swap(p.adj[0], p.adj[1]);
  // A Graph cannot be corrupted from outside (LoadBinary validates, the
  // builder is correct by construction), so the CSR death path is driven
  // through the parts overload the boundary wrapper rests on.
  EXPECT_DEATH(
      TRUSS_CHECK(graph::ValidateCsrParts(p.offsets, p.adj, p.edges)),
      "TRUSS_CHECK failed");
}

#endif  // !defined(NDEBUG) && GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace truss
