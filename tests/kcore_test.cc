// Unit tests for k-core decomposition, including the k-truss ⊆ (k-1)-core
// relationship the paper leans on (§1).

#include "kcore/kcore.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.h"
#include "truss/improved.h"
#include "truss/result.h"

namespace truss {
namespace {

TEST(KCoreTest, CompleteGraph) {
  const CoreDecomposition d = DecomposeCores(gen::Complete(7));
  EXPECT_EQ(d.cmax, 6u);
  for (const uint32_t c : d.core) EXPECT_EQ(c, 6u);
}

TEST(KCoreTest, CycleIsTwoCore) {
  const CoreDecomposition d = DecomposeCores(gen::Cycle(9));
  EXPECT_EQ(d.cmax, 2u);
  for (const uint32_t c : d.core) EXPECT_EQ(c, 2u);
}

TEST(KCoreTest, StarIsOneCore) {
  const CoreDecomposition d = DecomposeCores(gen::Star(6));
  EXPECT_EQ(d.cmax, 1u);
}

TEST(KCoreTest, PendantVertexPeelsFirst) {
  // Triangle with a pendant path.
  const Graph g = Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}},
                                   0);
  const CoreDecomposition d = DecomposeCores(g);
  EXPECT_EQ(d.core[0], 2u);
  EXPECT_EQ(d.core[3], 1u);
  EXPECT_EQ(d.core[4], 1u);
}

TEST(KCoreTest, MatchesNaiveOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::ErdosRenyiGnm(60, 100 + 80 * seed, seed);
    const CoreDecomposition d = DecomposeCores(g);
    for (uint32_t k = 1; k <= d.cmax + 1; ++k) {
      EXPECT_EQ(d.CoreVertices(k), NaiveKCoreVertices(g, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(KCoreTest, ExtractKCoreDegreesSatisfyK) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(80, 200, 3), 6, 4);
  const CoreDecomposition d = DecomposeCores(g);
  const Subgraph core = ExtractKCore(g, d, 3);
  for (VertexId v = 0; v < core.graph.num_vertices(); ++v) {
    EXPECT_GE(core.graph.degree(v), 3u);
  }
}

TEST(KCoreTest, IsolatedVerticesHaveCoreZero) {
  const Graph g = Graph::FromEdges({{0, 1}}, 4);
  const CoreDecomposition d = DecomposeCores(g);
  EXPECT_EQ(d.core[2], 0u);
  EXPECT_EQ(d.core[3], 0u);
}

// Paper §1: a k-truss is a (k-1)-core (but not vice versa).
TEST(KCoreTest, KTrussIsContainedInKMinusOneCore) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g =
        gen::PlantClique(gen::ErdosRenyiGnm(70, 400, seed), 7, seed + 10);
    const TrussDecompositionResult truss = ImprovedTrussDecomposition(g);
    const CoreDecomposition cores = DecomposeCores(g);
    for (uint32_t k = 3; k <= truss.kmax; ++k) {
      const Subgraph tk = ExtractKTruss(g, truss, k);
      const std::vector<VertexId> core_verts = cores.CoreVertices(k - 1);
      for (const VertexId v : tk.vertex_to_parent) {
        EXPECT_TRUE(std::binary_search(core_verts.begin(), core_verts.end(),
                                       v))
            << "k=" << k << " vertex " << v;
      }
    }
  }
}

TEST(KCoreTest, CmaxAtLeastKmaxMinusOne) {
  // Since T_kmax is a (kmax-1)-core, cmax ≥ kmax - 1.
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(60, 250, 9), 8, 12);
  const TrussDecompositionResult truss = ImprovedTrussDecomposition(g);
  const CoreDecomposition cores = DecomposeCores(g);
  EXPECT_GE(cores.cmax + 1, truss.kmax);
}

}  // namespace
}  // namespace truss
