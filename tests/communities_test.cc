// Tests for truss-based community extraction.

#include "truss/communities.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "gen/fixtures.h"
#include "gen/generators.h"
#include "truss/improved.h"

namespace truss {
namespace {

TEST(CommunitiesTest, TwoDisjointCliques) {
  // Two disjoint K5s joined by one bridge edge.
  GraphBuilder b;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      b.AddEdge(u, v);
      b.AddEdge(u + 5, v + 5);
    }
  }
  b.AddEdge(4, 5);  // bridge
  const Graph g = b.Build();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  ASSERT_EQ(r.kmax, 5u);

  const auto level5 = KTrussCommunities(g, r, 5);
  ASSERT_EQ(level5.size(), 2u);
  EXPECT_EQ(level5[0].vertices, (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(level5[1].vertices, (std::vector<VertexId>{5, 6, 7, 8, 9}));
  EXPECT_EQ(level5[0].edges, 10u);

  // At level 3 the bridge edge is Φ2, so the cliques remain two communities.
  const auto level3 = KTrussCommunities(g, r, 3);
  EXPECT_EQ(level3.size(), 2u);
}

TEST(CommunitiesTest, Figure2Hierarchy) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(fx.graph);
  const TrussHierarchy h = BuildTrussHierarchy(fx.graph, r);

  // The 3-truss is one connected community; the 4-truss splits into the two
  // cliques {a..e} and {f,h,i,j} (their connecting edges are only Φ3).
  EXPECT_EQ(h.AtLevel(3).size(), 1u);
  ASSERT_EQ(h.AtLevel(4).size(), 2u);
  EXPECT_EQ(h.AtLevel(5).size(), 1u);
  EXPECT_EQ(h.communities[h.AtLevel(5)[0]].vertices.size(),
            5u);                                          // clique {a..e}
  EXPECT_EQ(h.communities[h.AtLevel(4)[0]].edges, 10u);   // K5 component
  EXPECT_EQ(h.communities[h.AtLevel(4)[1]].edges, 6u);    // K4 component

  // Vertex a (id 0) bottoms out in the 5-truss.
  uint32_t deepest = h.DeepestCommunityOf(0);
  ASSERT_NE(deepest, kNoCommunity);
  EXPECT_EQ(h.communities[deepest].k, 5u);
  // Vertex k (id 10) only reaches the 3-truss.
  deepest = h.DeepestCommunityOf(10);
  ASSERT_NE(deepest, kNoCommunity);
  EXPECT_EQ(h.communities[deepest].k, 3u);
  // Vertex ids beyond the graph are in no community.
  EXPECT_EQ(h.DeepestCommunityOf(1000), kNoCommunity);
}

TEST(CommunitiesTest, IndicesSurviveCopyAndMove) {
  // The reason AtLevel/DeepestCommunityOf return indices, not pointers: a
  // lookup result must stay valid across copies/moves of the hierarchy
  // (the serving layer holds them across snapshot lifetimes).
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(fx.graph);
  TrussHierarchy h = BuildTrussHierarchy(fx.graph, r);

  const uint32_t deepest = h.DeepestCommunityOf(0);
  ASSERT_NE(deepest, kNoCommunity);
  const TrussHierarchy copy = h;
  const TrussHierarchy moved = std::move(h);
  EXPECT_EQ(copy.communities[deepest].k, 5u);
  EXPECT_EQ(moved.communities[deepest].k, 5u);
  EXPECT_EQ(copy.DeepestCommunityOf(0), deepest);
}

TEST(CommunitiesTest, NestingInvariant) {
  const Graph g =
      gen::PlantClique(gen::PlantedCommunities(20, 10, 0.7, 300, 5), 12, 6);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  const TrussHierarchy h = BuildTrussHierarchy(g, r);

  // Every level-(k+1) community must be contained in one level-k community.
  for (const TrussCommunity& child : h.communities) {
    if (child.k <= 3) continue;
    bool contained = false;
    for (const uint32_t parent_id : h.AtLevel(child.k - 1)) {
      const TrussCommunity& parent = h.communities[parent_id];
      if (std::includes(parent.vertices.begin(), parent.vertices.end(),
                        child.vertices.begin(), child.vertices.end())) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "community at k=" << child.k;
  }
}

TEST(CommunitiesTest, EdgeCountsSumToTrussSize) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(60, 240, 9), 7, 10);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  for (uint32_t k = 3; k <= r.kmax; ++k) {
    uint64_t total = 0;
    for (const auto& c : KTrussCommunities(g, r, k)) total += c.edges;
    EXPECT_EQ(total, r.TrussEdges(k).size()) << "k=" << k;
  }
}

TEST(CommunitiesTest, EmptyLevels) {
  const Graph g = gen::Cycle(8);  // triangle-free
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_TRUE(KTrussCommunities(g, r, 3).empty());
  EXPECT_TRUE(BuildTrussHierarchy(g, r).communities.empty());
}

TEST(CommunitiesTest, IsolatedVerticesNeverAppear) {
  const Graph g = Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}}, 6);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  const auto communities = KTrussCommunities(g, r, 3);
  ASSERT_EQ(communities.size(), 1u);
  EXPECT_EQ(communities[0].vertices, (std::vector<VertexId>{0, 1, 2}));
}

bool SameCommunities(const std::vector<TrussCommunity>& a,
                     const std::vector<TrussCommunity>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].k != b[i].k || a[i].edges != b[i].edges ||
        a[i].vertices != b[i].vertices) {
      return false;
    }
  }
  return true;
}

// Equivalence sweep: the community structure is a function of the
// decomposition alone, so every registry algorithm — at every thread
// count — must yield an identical TrussHierarchy and identical per-level
// KTrussCommunities. This is the contract the serving layer's TrussIndex
// relies on when a background rebuild switches algorithms.
TEST(CommunitiesTest, HierarchyIdenticalAcrossRegistryAlgorithms) {
  const std::vector<Graph> graphs = {
      gen::Figure2Graph().graph,
      gen::PlantClique(gen::PlantedCommunities(8, 8, 0.8, 77, 3), 9, 4),
      gen::ErdosRenyiGnm(80, 400, 11),
  };
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    const TrussDecompositionResult baseline = ImprovedTrussDecomposition(g);
    const TrussHierarchy expected = BuildTrussHierarchy(g, baseline);
    for (const engine::AlgorithmInfo& info : engine::Engine::Algorithms()) {
      for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
        engine::DecomposeOptions options;
        options.algorithm = info.id;
        options.threads = threads;
        auto out = engine::Engine::Decompose(g, options);
        ASSERT_TRUE(out.ok()) << info.name << " t=" << threads << ": "
                              << out.status().ToString();
        const TrussHierarchy h = BuildTrussHierarchy(g, out.value().result);
        EXPECT_TRUE(SameCommunities(expected.communities, h.communities))
            << "graph " << gi << ", algo " << info.name << ", t=" << threads;
        for (uint32_t k = 3; k <= baseline.kmax; ++k) {
          EXPECT_TRUE(SameCommunities(KTrussCommunities(g, baseline, k),
                                      KTrussCommunities(g, out.value().result,
                                                        k)))
              << "graph " << gi << ", algo " << info.name << ", t=" << threads
              << ", k=" << k;
        }
      }
    }
  }
}

}  // namespace
}  // namespace truss
