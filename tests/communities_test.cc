// Tests for truss-based community extraction.

#include "truss/communities.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "gen/generators.h"
#include "truss/improved.h"

namespace truss {
namespace {

TEST(CommunitiesTest, TwoDisjointCliques) {
  // Two disjoint K5s joined by one bridge edge.
  GraphBuilder b;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      b.AddEdge(u, v);
      b.AddEdge(u + 5, v + 5);
    }
  }
  b.AddEdge(4, 5);  // bridge
  const Graph g = b.Build();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  ASSERT_EQ(r.kmax, 5u);

  const auto level5 = KTrussCommunities(g, r, 5);
  ASSERT_EQ(level5.size(), 2u);
  EXPECT_EQ(level5[0].vertices, (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(level5[1].vertices, (std::vector<VertexId>{5, 6, 7, 8, 9}));
  EXPECT_EQ(level5[0].edges, 10u);

  // At level 3 the bridge edge is Φ2, so the cliques remain two communities.
  const auto level3 = KTrussCommunities(g, r, 3);
  EXPECT_EQ(level3.size(), 2u);
}

TEST(CommunitiesTest, Figure2Hierarchy) {
  const gen::Figure2Fixture fx = gen::Figure2Graph();
  const TrussDecompositionResult r = ImprovedTrussDecomposition(fx.graph);
  const TrussHierarchy h = BuildTrussHierarchy(fx.graph, r);

  // The 3-truss is one connected community; the 4-truss splits into the two
  // cliques {a..e} and {f,h,i,j} (their connecting edges are only Φ3).
  EXPECT_EQ(h.AtLevel(3).size(), 1u);
  ASSERT_EQ(h.AtLevel(4).size(), 2u);
  EXPECT_EQ(h.AtLevel(5).size(), 1u);
  EXPECT_EQ(h.AtLevel(5)[0]->vertices.size(), 5u);  // clique {a..e}
  EXPECT_EQ(h.AtLevel(4)[0]->edges, 10u);           // K5 component
  EXPECT_EQ(h.AtLevel(4)[1]->edges, 6u);            // K4 component

  // Vertex a (id 0) bottoms out in the 5-truss.
  const TrussCommunity* deepest = h.DeepestCommunityOf(0);
  ASSERT_NE(deepest, nullptr);
  EXPECT_EQ(deepest->k, 5u);
  // Vertex k (id 10) only reaches the 3-truss.
  deepest = h.DeepestCommunityOf(10);
  ASSERT_NE(deepest, nullptr);
  EXPECT_EQ(deepest->k, 3u);
}

TEST(CommunitiesTest, NestingInvariant) {
  const Graph g =
      gen::PlantClique(gen::PlantedCommunities(20, 10, 0.7, 300, 5), 12, 6);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  const TrussHierarchy h = BuildTrussHierarchy(g, r);

  // Every level-(k+1) community must be contained in one level-k community.
  for (const TrussCommunity& child : h.communities) {
    if (child.k <= 3) continue;
    bool contained = false;
    for (const auto* parent : h.AtLevel(child.k - 1)) {
      if (std::includes(parent->vertices.begin(), parent->vertices.end(),
                        child.vertices.begin(), child.vertices.end())) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "community at k=" << child.k;
  }
}

TEST(CommunitiesTest, EdgeCountsSumToTrussSize) {
  const Graph g = gen::PlantClique(gen::ErdosRenyiGnm(60, 240, 9), 7, 10);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  for (uint32_t k = 3; k <= r.kmax; ++k) {
    uint64_t total = 0;
    for (const auto& c : KTrussCommunities(g, r, k)) total += c.edges;
    EXPECT_EQ(total, r.TrussEdges(k).size()) << "k=" << k;
  }
}

TEST(CommunitiesTest, EmptyLevels) {
  const Graph g = gen::Cycle(8);  // triangle-free
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  EXPECT_TRUE(KTrussCommunities(g, r, 3).empty());
  EXPECT_TRUE(BuildTrussHierarchy(g, r).communities.empty());
}

TEST(CommunitiesTest, IsolatedVerticesNeverAppear) {
  const Graph g = Graph::FromEdges({{0, 1}, {0, 2}, {1, 2}}, 6);
  const TrussDecompositionResult r = ImprovedTrussDecomposition(g);
  const auto communities = KTrussCommunities(g, r, 3);
  ASSERT_EQ(communities.size(), 1u);
  EXPECT_EQ(communities[0].vertices, (std::vector<VertexId>{0, 1, 2}));
}

}  // namespace
}  // namespace truss
