// Regenerates paper Table 3: TD-inmem (Cohen, Algorithm 1) vs TD-inmem+
// (improved, Algorithm 2) — running time, peak structure memory, speedup.
//
// The paper reports speedups of 2.2x-73.2x on Wiki, Amazon, Skitter, Blog
// with comparable memory. The shape to reproduce: TD-inmem+ wins everywhere,
// by the largest factors on the hub-heavy graphs (Wiki, Skitter) where
// Algorithm 1's O(Σ deg²) removal step hurts most.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "truss/result.h"

int main() {
  const char* kDatasets[] = {"Wiki", "Amazon", "Skitter", "Blog"};
  const double kPaperSpeedup[] = {73.2, 2.2, 32.8, 3.5};

  std::printf("== Table 3: TD-inmem vs TD-inmem+ ==\n\n");
  truss::TablePrinter table({"dataset", "TD-inmem", "TD-inmem+", "speedup",
                             "paper speedup", "mem TD-inmem",
                             "mem TD-inmem+"});

  for (size_t i = 0; i < std::size(kDatasets); ++i) {
    const truss::Graph& g = truss::bench::GetDataset(kDatasets[i]);

    truss::engine::DecomposeOptions options;
    options.algorithm = truss::engine::Algorithm::kImproved;
    auto improved = truss::engine::Engine::Decompose(g, options);
    options.algorithm = truss::engine::Algorithm::kCohen;
    auto cohen = truss::engine::Engine::Decompose(g, options);
    if (!improved.ok() || !cohen.ok()) {
      std::fprintf(stderr, "FATAL: decomposition failed on %s\n",
                   kDatasets[i]);
      return 1;
    }

    if (!truss::SameDecomposition(improved.value().result,
                                  cohen.value().result)) {
      std::fprintf(stderr, "FATAL: algorithms disagree on %s\n",
                   kDatasets[i]);
      return 1;
    }

    const double improved_s = improved.value().stats.wall_seconds;
    const double cohen_s = cohen.value().stats.wall_seconds;
    char paper[32];
    std::snprintf(paper, sizeof(paper), "%.1fx", kPaperSpeedup[i]);
    table.AddRow({kDatasets[i], truss::FormatDuration(cohen_s),
                  truss::FormatDuration(improved_s),
                  truss::bench::Ratio(cohen_s, improved_s), paper,
                  truss::FormatBytes(cohen.value().stats.peak_memory_bytes),
                  truss::FormatBytes(
                      improved.value().stats.peak_memory_bytes)});
  }
  table.Print();
  std::printf("\n(the paper ran the original SNAP graphs; compare speedup "
              "direction and which datasets gain most)\n");
  return 0;
}
