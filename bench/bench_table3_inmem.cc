// Regenerates paper Table 3: TD-inmem (Cohen, Algorithm 1) vs TD-inmem+
// (improved, Algorithm 2) — running time, peak structure memory, speedup.
//
// The paper reports speedups of 2.2x-73.2x on Wiki, Amazon, Skitter, Blog
// with comparable memory. The shape to reproduce: TD-inmem+ wins everywhere,
// by the largest factors on the hub-heavy graphs (Wiki, Skitter) where
// Algorithm 1's O(Σ deg²) removal step hurts most.

#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "layout/layout.h"
#include "triangle/triangle.h"
#include "truss/result.h"

namespace {

// Threads sweep over support initialization (the phase DecomposeOptions::
// threads parallelizes) on the largest stand-in of the Table 3 set, plus an
// end-to-end check that the parallel decomposition is identical.
int RunThreadsSweep(const char* dataset) {
  const truss::Graph& g = truss::bench::GetDataset(dataset);
  std::printf("\n== Support-initialization threads sweep (%s: %u vertices, "
              "%u edges) ==\n\n",
              dataset, g.num_vertices(), g.num_edges());

  truss::TablePrinter table({"threads", "support init", "speedup vs t=1",
                             "identical"});
  std::vector<uint32_t> baseline;
  double baseline_s = 0.0;
  for (uint32_t threads = 1; threads <= truss::bench::BenchThreads();
       threads *= 2) {
    truss::WallTimer timer;
    std::vector<uint32_t> sup = truss::ComputeEdgeSupports(g, threads);
    const double seconds = timer.Seconds();
    if (threads == 1) {
      baseline_s = seconds;
      baseline = std::move(sup);
    }
    const bool identical = threads == 1 || sup == baseline;
    table.AddRow({std::to_string(threads), truss::FormatDuration(seconds),
                  truss::bench::Ratio(baseline_s, seconds),
                  identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: supports differ at threads=%u on %s\n", threads,
                   dataset);
      return 1;
    }
  }
  table.Print();

  // Honor the sweep cap here too: a --threads 1 run must not smuggle
  // multi-threaded work into its artifact.
  const uint32_t check_threads = std::min(4u, truss::bench::BenchThreads());
  truss::engine::DecomposeOptions options;
  auto sequential = truss::engine::Engine::Decompose(g, options);
  options.threads = check_threads;
  auto parallel = truss::engine::Engine::Decompose(g, options);
  if (!sequential.ok() || !parallel.ok() ||
      !truss::SameDecomposition(sequential.value().result,
                                parallel.value().result)) {
    std::fprintf(stderr, "FATAL: threads=%u decomposition differs on %s\n",
                 check_threads, dataset);
    return 1;
  }
  std::printf("\nthreads=%u truss numbers identical to threads=1: yes "
              "(kmax %u)\n", check_threads, parallel.value().result.kmax);
  return 0;
}

// Peel-phase threads sweep: the PKT-style "parallel" algorithm against the
// sequential "improved" baseline on the largest Table 3 stand-in, with
// per-phase timings (support vs peel) emitted as METRIC lines so
// BENCH_table3_inmem.json tracks where the time goes. Truss numbers must
// be identical to `improved` at every thread count.
int RunPeelThreadsSweep(const char* dataset) {
  const truss::Graph& g = truss::bench::GetDataset(dataset);
  std::printf("\n== Parallel peel threads sweep (%s: %u vertices, %u edges) "
              "==\n\n",
              dataset, g.num_vertices(), g.num_edges());

  truss::engine::DecomposeOptions options;
  options.algorithm = truss::engine::Algorithm::kImproved;
  auto improved = truss::engine::Engine::Decompose(g, options);
  if (!improved.ok()) {
    std::fprintf(stderr, "FATAL: improved decomposition failed on %s\n",
                 dataset);
    return 1;
  }
  std::printf("METRIC support_seconds %.6f\n",
              improved.value().stats.support_seconds);
  std::printf("METRIC peel_seconds %.6f\n",
              improved.value().stats.peel_seconds);

  truss::TablePrinter table({"algorithm", "threads", "support", "peel",
                             "total", "speedup vs improved", "identical"});
  const double improved_s = improved.value().stats.wall_seconds;
  table.AddRow({"improved", "1",
                truss::FormatDuration(improved.value().stats.support_seconds),
                truss::FormatDuration(improved.value().stats.peel_seconds),
                truss::FormatDuration(improved_s), "1.0x", "yes"});

  options.algorithm = truss::engine::Algorithm::kParallel;
  for (uint32_t threads = 1; threads <= truss::bench::BenchThreads();
       threads *= 2) {
    options.threads = threads;
    auto parallel = truss::engine::Engine::Decompose(g, options);
    if (!parallel.ok()) {
      std::fprintf(stderr, "FATAL: parallel peel failed at threads=%u on %s\n",
                   threads, dataset);
      return 1;
    }
    const bool identical = truss::SameDecomposition(
        improved.value().result, parallel.value().result);
    table.AddRow(
        {"parallel", std::to_string(threads),
         truss::FormatDuration(parallel.value().stats.support_seconds),
         truss::FormatDuration(parallel.value().stats.peel_seconds),
         truss::FormatDuration(parallel.value().stats.wall_seconds),
         truss::bench::Ratio(improved_s, parallel.value().stats.wall_seconds),
         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: parallel truss numbers differ at threads=%u on "
                   "%s\n",
                   threads, dataset);
      return 1;
    }
    std::printf("METRIC peel_parallel_t%u_seconds %.6f\n", threads,
                parallel.value().stats.peel_seconds);
    std::printf("METRIC support_parallel_t%u_seconds %.6f\n", threads,
                parallel.value().stats.support_seconds);
  }
  table.Print();
  std::printf("\nparallel truss numbers identical to improved at every "
              "thread count: yes (kmax %u)\n",
              improved.value().result.kmax);
  return 0;
}

}  // namespace

int main() {
  const char* kDatasets[] = {"Wiki", "Amazon", "Skitter", "Blog"};
  const double kPaperSpeedup[] = {73.2, 2.2, 32.8, 3.5};

  // Largest stand-in of the set by edge count: the METRIC lines (and the
  // thread sweeps below) track that one.
  const char* largest = kDatasets[0];
  for (const char* name : kDatasets) {
    if (truss::bench::GetDataset(name).num_edges() >
        truss::bench::GetDataset(largest).num_edges()) {
      largest = name;
    }
  }

  std::printf("== Table 3: TD-inmem vs TD-inmem+ ==\n\n");
  truss::TablePrinter table({"dataset", "TD-inmem", "TD-inmem+", "speedup",
                             "paper speedup", "TD-inmem+ layout", "reorder",
                             "mem TD-inmem", "mem TD-inmem+"});

  for (size_t i = 0; i < std::size(kDatasets); ++i) {
    const truss::Graph& g = truss::bench::GetDataset(kDatasets[i]);

    truss::engine::DecomposeOptions options;
    options.algorithm = truss::engine::Algorithm::kImproved;
    auto improved = truss::engine::Engine::Decompose(g, options);
    options.algorithm = truss::engine::Algorithm::kCohen;
    auto cohen = truss::engine::Engine::Decompose(g, options);
    // Layout on/off column: TD-inmem+ again, but on the degree-descending
    // renumbered graph (DODG fast path + hub locality), truss numbers
    // mapped back by the engine. Must agree bit for bit.
    options.algorithm = truss::engine::Algorithm::kImproved;
    options.layout = truss::layout::Policy::kDegree;
    auto layout = truss::engine::Engine::Decompose(g, options);
    if (!improved.ok() || !cohen.ok() || !layout.ok()) {
      std::fprintf(stderr, "FATAL: decomposition failed on %s\n",
                   kDatasets[i]);
      return 1;
    }

    if (!truss::SameDecomposition(improved.value().result,
                                  cohen.value().result) ||
        !truss::SameDecomposition(improved.value().result,
                                  layout.value().result)) {
      std::fprintf(stderr, "FATAL: algorithms disagree on %s\n",
                   kDatasets[i]);
      return 1;
    }

    const double improved_s = improved.value().stats.wall_seconds;
    const double cohen_s = cohen.value().stats.wall_seconds;
    const double layout_s = layout.value().stats.wall_seconds;
    const double reorder_s = layout.value().stats.reorder_seconds;
    if (std::strcmp(kDatasets[i], largest) == 0) {
      std::printf("METRIC reorder_seconds %.6f\n", reorder_s);
      std::printf("METRIC layout_degree_seconds %.6f\n", layout_s);
    }
    char paper[32];
    std::snprintf(paper, sizeof(paper), "%.1fx", kPaperSpeedup[i]);
    table.AddRow({kDatasets[i], truss::FormatDuration(cohen_s),
                  truss::FormatDuration(improved_s),
                  truss::bench::Ratio(cohen_s, improved_s), paper,
                  truss::FormatDuration(layout_s),
                  truss::FormatDuration(reorder_s),
                  truss::FormatBytes(cohen.value().stats.peak_memory_bytes),
                  truss::FormatBytes(
                      improved.value().stats.peak_memory_bytes)});
  }
  table.Print();
  std::printf("\n(the paper ran the original SNAP graphs; compare speedup "
              "direction and which datasets gain most; the layout column "
              "is TD-inmem+ after the degree-descending renumber, reorder "
              "cost included)\n");

  const int support_sweep = RunThreadsSweep(largest);
  if (support_sweep != 0) return support_sweep;
  return RunPeelThreadsSweep(largest);
}
