// Ablation: how the bottom-up algorithm's cost responds to the design
// choices DESIGN.md calls out — partitioning strategy and memory budget.
//
// Sweeps the three Chu-Cheng partitioners against budgets of 1/2, 1/6, and
// 1/18 of the in-memory structure footprint, reporting lower-bounding
// iterations, partition parts, candidate-subgraph overflows (Procedure 9
// activations), block I/O, and wall time. Expected shape: smaller budgets
// cost more iterations and I/O; randomized/dominating-set partitioning
// needs fewer iterations than sequential at tight budgets.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "truss/result.h"

int main() {
  // A mid-size community graph: big enough that budgets bite, small enough
  // to sweep 9 configurations quickly.
  truss::Graph g = truss::gen::PlantedCommunities(
      /*communities=*/1500, /*community_size=*/10, /*p_in=*/0.5,
      /*inter_edges=*/60000, /*seed=*/11);
  g = truss::gen::PlantClique(g, 24, /*seed=*/12);
  std::printf("== Ablation: partitioner strategy x memory budget "
              "(bottom-up) ==\n\n");
  std::printf("graph: %u vertices, %u edges; structure footprint ~%s\n\n",
              g.num_vertices(), g.num_edges(),
              truss::FormatBytes(g.num_edges() * 48ull).c_str());

  auto oracle_out = truss::engine::Engine::Decompose(
      g, truss::engine::DecomposeOptions{});
  if (!oracle_out.ok()) {
    std::fprintf(stderr, "FATAL: in-memory oracle failed\n");
    return 1;
  }
  const truss::TrussDecompositionResult& oracle = oracle_out.value().result;

  truss::TablePrinter table({"strategy", "budget", "lb iters", "parts",
                             "overflows", "blocks I/O", "time"});

  const truss::partition::Strategy strategies[] = {
      truss::partition::Strategy::kSequential,
      truss::partition::Strategy::kDominatingSet,
      truss::partition::Strategy::kRandomized,
  };
  const uint64_t footprint = g.num_edges() * 48ull;
  const uint64_t budgets[] = {footprint / 2, footprint / 6, footprint / 18};

  for (const auto strategy : strategies) {
    for (const uint64_t budget : budgets) {
      truss::engine::DecomposeOptions options;
      options.algorithm = truss::engine::Algorithm::kBottomUp;
      options.strategy = strategy;
      options.memory_budget_bytes = budget;
      options.scratch_dir = truss::bench::BenchDir(
          std::string("abl_") + truss::partition::StrategyName(strategy) +
          "_" + std::to_string(budget));
      auto result = truss::engine::Engine::Decompose(g, options);
      if (!result.ok() ||
          !truss::SameDecomposition(oracle, result.value().result)) {
        std::fprintf(stderr, "FATAL: ablation run failed/disagreed (%s, %s)\n",
                     truss::partition::StrategyName(strategy),
                     truss::FormatBytes(budget).c_str());
        return 1;
      }
      const truss::ExternalStats& stats = result.value().stats.external;
      table.AddRow({truss::partition::StrategyName(strategy),
                    truss::FormatBytes(budget),
                    std::to_string(stats.lower_bound_iterations),
                    std::to_string(stats.parts_processed),
                    std::to_string(stats.candidate_overflows),
                    std::to_string(stats.io.total_blocks()),
                    truss::FormatDuration(stats.seconds)});
    }
  }
  table.Print();
  return 0;
}
