// Google-benchmark micro-kernels for the cost components the paper's
// complexity analysis discusses (§3): support initialization (naive
// Σ deg² intersection vs O(m^1.5) forward listing), hash-based edge
// membership (Algorithm 2, Step 8), the bin-sorted peel itself, and core
// decomposition as the O(m) baseline structure.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "kcore/kcore.h"
#include "layout/layout.h"
#include "triangle/triangle.h"
#include "truss/edge_map.h"
#include "truss/improved.h"
#include "truss/parallel_peel.h"

namespace {

truss::Graph MakeGraph(int64_t kind, int64_t edges) {
  switch (kind) {
    case 0:  // flat-degree Erdős–Rényi
      return truss::gen::ErdosRenyiGnm(
          static_cast<truss::VertexId>(edges / 8), edges, 1234);
    case 1:  // power-law Barabási–Albert
      return truss::gen::BarabasiAlbert(
          static_cast<truss::VertexId>(edges / 5), 5, 1234);
    default:  // hub-heavy R-MAT
      return truss::gen::RMat(16, edges, 0.6, 0.18, 0.12, 1234);
  }
}

const char* KindName(int64_t kind) {
  return kind == 0 ? "ER" : kind == 1 ? "BA" : "RMAT";
}

void BM_SupportInitForward(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::ComputeEdgeSupports(g));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportInitForward)
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({2, 100000})
    ->Unit(benchmark::kMillisecond);

// Threads-sweep dimension over the parallel backend: identical work to
// BM_SupportInitForward at threads=1 plus the sharding/merge overhead, so
// the per-thread-count scaling reads directly off this family.
void BM_SupportInitParallel(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  const auto threads = static_cast<uint32_t>(state.range(2));
  if (threads > truss::bench::BenchThreads()) {
    state.SkipWithError("beyond TRUSS_BENCH_THREADS");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::ComputeEdgeSupports(g, threads));
  }
  state.SetLabel(std::string(KindName(state.range(0))) + "/t" +
                 std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportInitParallel)
    ->Args({1, 100000, 1})
    ->Args({1, 100000, 2})
    ->Args({1, 100000, 4})
    ->Args({1, 100000, 8})
    ->Args({2, 100000, 1})
    ->Args({2, 100000, 2})
    ->Args({2, 100000, 4})
    ->Args({2, 100000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SupportInitNaive(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::ComputeEdgeSupportsNaive(g));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportInitNaive)
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({2, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_TriangleCount(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::CountTriangles(g));
  }
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_TriangleCount)
    ->Args({0, 50000})
    ->Args({0, 200000})
    ->Args({1, 50000})
    ->Args({1, 200000})
    ->Unit(benchmark::kMillisecond);

void BM_EdgeMapFind(benchmark::State& state) {
  const truss::Graph g = MakeGraph(1, 100000);
  const truss::EdgeMap map(g);
  uint64_t i = 0;
  for (auto _ : state) {
    const truss::Edge e = g.edge(static_cast<truss::EdgeId>(
        i++ % g.num_edges()));
    benchmark::DoNotOptimize(map.Find(e.u, e.v));
    benchmark::DoNotOptimize(map.Find(e.u, e.v + 1));  // usually a miss
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EdgeMapFind);

void BM_BinarySearchFind(benchmark::State& state) {
  const truss::Graph g = MakeGraph(1, 100000);
  uint64_t i = 0;
  for (auto _ : state) {
    const truss::Edge e = g.edge(static_cast<truss::EdgeId>(
        i++ % g.num_edges()));
    benchmark::DoNotOptimize(g.FindEdge(e.u, e.v));
    benchmark::DoNotOptimize(g.FindEdge(e.u, e.v + 1));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_BinarySearchFind);

// Triangle enumeration of one edge — the peel's hot loop — EdgeMap hash
// probes (range(0) == 0) vs sorted-adjacency intersection (range(0) == 1),
// on the Blog-scale stand-in (the largest Table 3 dataset). The issue-level
// target: intersection must win at t=1, which is why the hash table left
// the peel.
void BM_TriangleEnumHashVsIntersect(benchmark::State& state) {
  const truss::Graph& g = truss::bench::GetDataset("Blog");
  const bool intersect = state.range(0) != 0;
  // Build the map only for the hash flavor: its construction cost is not
  // what this kernel measures, but its footprint should not taint the
  // intersection runs either.
  const std::unique_ptr<truss::EdgeMap> map =
      intersect ? nullptr : std::make_unique<truss::EdgeMap>(g);
  uint64_t i = 0;
  uint64_t triangles = 0;
  for (auto _ : state) {
    const truss::Edge e =
        g.edge(static_cast<truss::EdgeId>(i++ % g.num_edges()));
    if (intersect) {
      truss::ForEachCommonNeighbor(
          g, e.u, e.v,
          [&](truss::VertexId, truss::EdgeId uw, truss::EdgeId vw) {
            benchmark::DoNotOptimize(uw);
            benchmark::DoNotOptimize(vw);
            ++triangles;
          });
    } else {
      // The peel's historical inner loop: walk the smaller adjacency list
      // and hash-probe for the closing edge.
      truss::VertexId u = e.u, v = e.v;
      if (g.degree(u) > g.degree(v)) std::swap(u, v);
      for (const truss::AdjEntry& a : g.neighbors(u)) {
        const truss::EdgeId vw = map->Find(v, a.neighbor);
        if (vw != truss::kInvalidEdge) {
          benchmark::DoNotOptimize(a.edge);
          benchmark::DoNotOptimize(vw);
          ++triangles;
        }
      }
    }
  }
  state.SetLabel(intersect ? "intersect" : "hash");
  state.SetItemsProcessed(static_cast<int64_t>(triangles));
}
BENCHMARK(BM_TriangleEnumHashVsIntersect)->Arg(0)->Arg(1);

// Support initialization on the Blog-scale stand-in: the per-edge
// undirected intersection (range(0) == 0, the historical path, kept as
// ComputeEdgeSupportsNaive) vs the DODG forward listing that replaced it
// (range(0) == 1). Each triangle costs three adjacency intersections in
// the former and one — over √(2m)-bounded out-lists — in the latter.
void BM_SupportDodgVsUndirected(benchmark::State& state) {
  const truss::Graph& g = truss::bench::GetDataset("Blog");
  const bool dodg = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dodg ? truss::ComputeEdgeSupports(g)
                                  : truss::ComputeEdgeSupportsNaive(g));
  }
  state.SetLabel(dodg ? "dodg" : "undirected");
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportDodgVsUndirected)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Reorder-policy sweep on the Blog stand-in: support initialization on the
// graph as generated (range(0) == 0) vs after the degree-descending
// renumber (range(0) == 1), where the DODG's id_ordered fast path engages
// and hub adjacency is packed at the front of the CSR. The reorder itself
// runs outside the timed region — BM_ReorderBlog prices it separately.
void BM_SupportByLayout(benchmark::State& state) {
  const truss::Graph& original = truss::bench::GetDataset("Blog");
  const auto policy = state.range(0) != 0 ? truss::layout::Policy::kDegree
                                          : truss::layout::Policy::kNone;
  const truss::layout::PermutedGraph permuted = truss::layout::ApplyPermutation(
      original, truss::layout::ComputeOrder(original, policy));
  const truss::Graph& g = permuted.graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::ComputeEdgeSupports(g));
  }
  state.SetLabel(truss::layout::PolicyName(policy));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportByLayout)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The reorder cost itself (ComputeOrder + CSR rebuild): what layout=degree
// must win back from the support/peel phases to pay off end to end.
void BM_ReorderBlog(benchmark::State& state) {
  const truss::Graph& g = truss::bench::GetDataset("Blog");
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::layout::ApplyPermutation(
        g, truss::layout::ComputeOrder(g, truss::layout::Policy::kDegree)));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ReorderBlog)->Unit(benchmark::kMillisecond);

// The peel phase alone (support initialization hoisted out), so peel-side
// changes show up undiluted by triangle counting.
void BM_PeelImproved(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  const std::vector<uint32_t> sup = truss::ComputeEdgeSupports(g);
  for (auto _ : state) {
    std::vector<uint32_t> working = sup;  // the peel consumes its supports
    benchmark::DoNotOptimize(truss::PeelWithSupports(g, std::move(working)));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_PeelImproved)
    ->Args({0, 50000})
    ->Args({1, 50000})
    ->Args({2, 50000})
    ->Unit(benchmark::kMillisecond);

// End-to-end PKT-style parallel decomposition across a threads sweep; at
// t=1 this doubles as the level-synchronous peel's sequential baseline.
void BM_PeelParallel(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  const auto threads = static_cast<uint32_t>(state.range(2));
  if (threads > truss::bench::BenchThreads()) {
    state.SkipWithError("beyond TRUSS_BENCH_THREADS");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        truss::ParallelTrussDecomposition(g, nullptr, threads));
  }
  state.SetLabel(std::string(KindName(state.range(0))) + "/t" +
                 std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_PeelParallel)
    ->Args({1, 50000, 1})
    ->Args({1, 50000, 2})
    ->Args({1, 50000, 4})
    ->Args({1, 50000, 8})
    ->Args({2, 50000, 1})
    ->Args({2, 50000, 2})
    ->Args({2, 50000, 4})
    ->Args({2, 50000, 8})
    ->Unit(benchmark::kMillisecond);

// The peel's removed-edge marks: vector<bool> word-level bit RMW
// (range(0) == 0) vs ByteFlags relaxed byte stores (range(0) == 1).
void BM_RemovedFlags(benchmark::State& state) {
  constexpr size_t kFlags = 1 << 20;
  const bool bytes = state.range(0) != 0;
  std::vector<bool> bits(kFlags, false);
  truss::ByteFlags flags(kFlags);
  uint64_t hits = 0;
  for (auto _ : state) {
    // Strided set+test sweep approximating the peel's access pattern.
    for (size_t i = 0; i < kFlags; i += 7) {
      if (bytes) {
        flags.Set(i);
        hits += flags.Test((i * 13) % kFlags);
      } else {
        bits[i] = true;
        hits += bits[(i * 13) % kFlags];
      }
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetLabel(bytes ? "byteflags" : "vector<bool>");
  state.SetItemsProcessed(state.iterations() * (kFlags / 7) * 2);
}
BENCHMARK(BM_RemovedFlags)->Arg(0)->Arg(1);

void BM_ImprovedTruss(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  truss::engine::DecomposeOptions options;
  options.algorithm = truss::engine::Algorithm::kImproved;
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::engine::Engine::Decompose(g, options));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ImprovedTruss)
    ->Args({0, 50000})
    ->Args({1, 50000})
    ->Args({2, 50000})
    ->Unit(benchmark::kMillisecond);

void BM_CohenTruss(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  truss::engine::DecomposeOptions options;
  options.algorithm = truss::engine::Algorithm::kCohen;
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::engine::Engine::Decompose(g, options));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CohenTruss)
    ->Args({0, 50000})
    ->Args({1, 50000})
    ->Args({2, 50000})
    ->Unit(benchmark::kMillisecond);

void BM_CoreDecompose(benchmark::State& state) {
  const truss::Graph g = MakeGraph(1, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::DecomposeCores(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CoreDecompose)->Arg(50000)->Arg(200000)->Arg(800000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
