// Google-benchmark micro-kernels for the cost components the paper's
// complexity analysis discusses (§3): support initialization (naive
// Σ deg² intersection vs O(m^1.5) forward listing), hash-based edge
// membership (Algorithm 2, Step 8), the bin-sorted peel itself, and core
// decomposition as the O(m) baseline structure.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "kcore/kcore.h"
#include "triangle/triangle.h"
#include "truss/edge_map.h"

namespace {

truss::Graph MakeGraph(int64_t kind, int64_t edges) {
  switch (kind) {
    case 0:  // flat-degree Erdős–Rényi
      return truss::gen::ErdosRenyiGnm(
          static_cast<truss::VertexId>(edges / 8), edges, 1234);
    case 1:  // power-law Barabási–Albert
      return truss::gen::BarabasiAlbert(
          static_cast<truss::VertexId>(edges / 5), 5, 1234);
    default:  // hub-heavy R-MAT
      return truss::gen::RMat(16, edges, 0.6, 0.18, 0.12, 1234);
  }
}

const char* KindName(int64_t kind) {
  return kind == 0 ? "ER" : kind == 1 ? "BA" : "RMAT";
}

void BM_SupportInitForward(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::ComputeEdgeSupports(g));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportInitForward)
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({2, 100000})
    ->Unit(benchmark::kMillisecond);

// Threads-sweep dimension over the parallel backend: identical work to
// BM_SupportInitForward at threads=1 plus the sharding/merge overhead, so
// the per-thread-count scaling reads directly off this family.
void BM_SupportInitParallel(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  const auto threads = static_cast<uint32_t>(state.range(2));
  if (threads > truss::bench::BenchThreads()) {
    state.SkipWithError("beyond TRUSS_BENCH_THREADS");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::ComputeEdgeSupports(g, threads));
  }
  state.SetLabel(std::string(KindName(state.range(0))) + "/t" +
                 std::to_string(threads));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportInitParallel)
    ->Args({1, 100000, 1})
    ->Args({1, 100000, 2})
    ->Args({1, 100000, 4})
    ->Args({1, 100000, 8})
    ->Args({2, 100000, 1})
    ->Args({2, 100000, 2})
    ->Args({2, 100000, 4})
    ->Args({2, 100000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SupportInitNaive(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::ComputeEdgeSupportsNaive(g));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SupportInitNaive)
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({2, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_TriangleCount(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::CountTriangles(g));
  }
  state.SetLabel(KindName(state.range(0)));
}
BENCHMARK(BM_TriangleCount)
    ->Args({0, 50000})
    ->Args({0, 200000})
    ->Args({1, 50000})
    ->Args({1, 200000})
    ->Unit(benchmark::kMillisecond);

void BM_EdgeMapFind(benchmark::State& state) {
  const truss::Graph g = MakeGraph(1, 100000);
  const truss::EdgeMap map(g);
  uint64_t i = 0;
  for (auto _ : state) {
    const truss::Edge e = g.edge(static_cast<truss::EdgeId>(
        i++ % g.num_edges()));
    benchmark::DoNotOptimize(map.Find(e.u, e.v));
    benchmark::DoNotOptimize(map.Find(e.u, e.v + 1));  // usually a miss
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EdgeMapFind);

void BM_BinarySearchFind(benchmark::State& state) {
  const truss::Graph g = MakeGraph(1, 100000);
  uint64_t i = 0;
  for (auto _ : state) {
    const truss::Edge e = g.edge(static_cast<truss::EdgeId>(
        i++ % g.num_edges()));
    benchmark::DoNotOptimize(g.FindEdge(e.u, e.v));
    benchmark::DoNotOptimize(g.FindEdge(e.u, e.v + 1));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_BinarySearchFind);

void BM_ImprovedTruss(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  truss::engine::DecomposeOptions options;
  options.algorithm = truss::engine::Algorithm::kImproved;
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::engine::Engine::Decompose(g, options));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ImprovedTruss)
    ->Args({0, 50000})
    ->Args({1, 50000})
    ->Args({2, 50000})
    ->Unit(benchmark::kMillisecond);

void BM_CohenTruss(benchmark::State& state) {
  const truss::Graph g = MakeGraph(state.range(0), state.range(1));
  truss::engine::DecomposeOptions options;
  options.algorithm = truss::engine::Algorithm::kCohen;
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::engine::Engine::Decompose(g, options));
  }
  state.SetLabel(KindName(state.range(0)));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CohenTruss)
    ->Args({0, 50000})
    ->Args({1, 50000})
    ->Args({2, 50000})
    ->Unit(benchmark::kMillisecond);

void BM_CoreDecompose(benchmark::State& state) {
  const truss::Graph g = MakeGraph(1, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(truss::DecomposeCores(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CoreDecompose)->Arg(50000)->Arg(200000)->Arg(800000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
