// Regenerates the §7.4 clique claims: kmax bounds the maximum clique size
// far more tightly than cmax + 1, and pruning the search to the s-truss
// beats pruning to the (s-1)-core.
//
// The paper's example: Wiki's maximum clique has at most 53 vertices by
// kmax, versus 132 by cmax + 1.

#include <cstdio>

#include "bench_util.h"
#include "clique/clique.h"
#include "common/table_printer.h"
#include "kcore/kcore.h"

int main() {
  const char* kDatasets[] = {"P2P", "HEP", "Amazon", "Wiki"};

  std::printf("== Section 7.4: clique-size bounds and pruned search ==\n\n");
  truss::TablePrinter table({"dataset", "omega", "kmax bound", "cmax+1 bound",
                             "truss-pruned edges", "core-pruned edges",
                             "truss time", "core time"});

  for (const char* name : kDatasets) {
    const truss::Graph& g = truss::bench::GetDataset(name);

    truss::WallTimer t_truss;
    const truss::MaxCliqueResult truss_pruned =
        truss::MaximumClique(g, truss::CliquePruning::kTruss);
    const double truss_s = t_truss.Seconds();

    truss::WallTimer t_core;
    const truss::MaxCliqueResult core_pruned =
        truss::MaximumClique(g, truss::CliquePruning::kCore);
    const double core_s = t_core.Seconds();

    if (truss_pruned.clique.size() != core_pruned.clique.size()) {
      std::fprintf(stderr, "FATAL: pruning modes disagree on %s\n", name);
      return 1;
    }

    table.AddRow({name, std::to_string(truss_pruned.clique.size()),
                  std::to_string(truss_pruned.initial_bound),
                  std::to_string(core_pruned.initial_bound),
                  std::to_string(truss_pruned.searched_edges),
                  std::to_string(core_pruned.searched_edges),
                  truss::FormatDuration(truss_s),
                  truss::FormatDuration(core_s)});
  }
  table.Print();
  std::printf("\n(paper: for Wiki the maximum clique is bounded by 53 via "
              "kmax vs 132 via cmax+1)\n");
  return 0;
}
