// Regenerates paper Table 2: statistics of the nine evaluation datasets.
//
// Columns mirror the paper — |V_G|, |E_G|, on-disk size, maximum and median
// degree, and kmax — with the paper's reported values printed alongside the
// measured values of our synthetic stand-ins (see DESIGN.md §2.1 for the
// scaling rationale).

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "graph/stats.h"
#include "io/edge_records.h"

int main() {
  using truss::FormatBytes;
  using truss::FormatCount;

  std::printf("== Table 2: dataset statistics (measured stand-in vs paper) "
              "==\n\n");
  truss::TablePrinter table({"dataset", "|V|", "|E|", "size", "dmax", "dmed",
                             "kmax", "paper |V|", "paper |E|", "paper dmax",
                             "paper dmed", "paper kmax"});

  for (const auto& spec : truss::datasets::PaperDatasets()) {
    const truss::Graph& g = truss::bench::GetDataset(spec.name);
    const truss::DegreeStats deg = truss::ComputeDegreeStats(g);
    auto out = truss::engine::Engine::Decompose(
        g, truss::engine::DecomposeOptions{});
    if (!out.ok()) {
      std::fprintf(stderr, "FATAL: decomposition failed on %s\n",
                   spec.name.c_str());
      return 1;
    }
    const truss::TrussDecompositionResult& r = out.value().result;
    std::fprintf(
        stderr, "[bench] %s decomposed in %s (kmax %u)\n", spec.name.c_str(),
        truss::FormatDuration(out.value().stats.wall_seconds).c_str(),
        r.kmax);

    table.AddRow({spec.name, FormatCount(g.num_vertices()),
                  FormatCount(g.num_edges()),
                  FormatBytes(static_cast<uint64_t>(g.num_edges()) *
                              sizeof(truss::io::GEdgeRecord)),
                  std::to_string(deg.max), std::to_string(deg.median),
                  std::to_string(r.kmax), FormatCount(spec.paper_vertices),
                  FormatCount(spec.paper_edges),
                  std::to_string(spec.paper_dmax),
                  std::to_string(spec.paper_dmed),
                  std::to_string(spec.paper_kmax)});
  }
  table.Print();
  std::printf("\nStand-ins are scaled down (DESIGN.md §2.1); the columns to "
              "compare for *shape* are dmax/dmed skew and kmax.\n");
  return 0;
}
