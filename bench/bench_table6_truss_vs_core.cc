// Regenerates paper Table 6: the kmax-truss T vs the cmax-core C —
// vertex/edge counts, kmax vs cmax, and clustering coefficients.
//
// The paper's claims to reproduce: T is (much) smaller than C, kmax ≤
// cmax + 1, and CC(T) is far higher than CC(C) — i.e., triangle-based
// cohesion finds genuinely tight clusters where degree-based cohesion finds
// merely well-connected ones.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "graph/stats.h"
#include "kcore/kcore.h"
#include "truss/result.h"

int main() {
  const char* kDatasets[] = {"Amazon", "Wiki", "Skitter", "Blog",
                             "LJ",     "BTC",  "Web"};

  std::printf("== Table 6: kmax-truss T vs cmax-core C ==\n\n");
  truss::TablePrinter table({"dataset", "V_T/V_C", "E_T/E_C", "kmax/cmax",
                             "CC_T/CC_C"});

  for (const char* name : kDatasets) {
    const truss::Graph& g = truss::bench::GetDataset(name);

    auto decomposed = truss::engine::Engine::Decompose(
        g, truss::engine::DecomposeOptions{});
    if (!decomposed.ok()) {
      std::fprintf(stderr, "FATAL: decomposition failed on %s\n", name);
      return 1;
    }
    const truss::TrussDecompositionResult& truss_r =
        decomposed.value().result;
    const truss::Subgraph t =
        truss::ExtractKTruss(g, truss_r, truss_r.kmax);

    const truss::CoreDecomposition cores = truss::DecomposeCores(g);
    const truss::Subgraph c = truss::ExtractKCore(g, cores, cores.cmax);

    char vt_vc[64], et_ec[64], k_c[64], cc[64];
    std::snprintf(vt_vc, sizeof(vt_vc), "%s/%s",
                  truss::FormatCount(t.graph.num_vertices()).c_str(),
                  truss::FormatCount(c.graph.num_vertices()).c_str());
    std::snprintf(et_ec, sizeof(et_ec), "%s/%s",
                  truss::FormatCount(t.graph.num_edges()).c_str(),
                  truss::FormatCount(c.graph.num_edges()).c_str());
    std::snprintf(k_c, sizeof(k_c), "%u/%u", truss_r.kmax, cores.cmax);
    std::snprintf(cc, sizeof(cc), "%.2f/%.2f",
                  truss::AverageClusteringCoefficient(t.graph),
                  truss::AverageClusteringCoefficient(c.graph));
    table.AddRow({name, vt_vc, et_ec, k_c, cc});
  }
  table.Print();
  std::printf(
      "\npaper (original data):\n"
      "  Amazon  5K/33K    55K/442K   11/10    0.99/0.72\n"
      "  Wiki    237/700   32K/147K   53/131   0.64/0.42\n"
      "  Skitter 185/222   16K/33K    68/111   0.95/0.71\n"
      "  Blog    49/387    2K/54K     49/86    1.00/0.52\n"
      "  LJ      383/395   146K/155K  362/372  1.00/0.99\n"
      "  BTC     653/1295  10K/838K   7/641    0.45/0.00002\n"
      "  Web     498/862   82K/148K   166/165  1.00/0.59\n"
      "(shape: T smaller than C, kmax ≤ cmax+1, CC_T >> CC_C)\n");
  return 0;
}
