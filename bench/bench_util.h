// Shared helpers for the table-reproduction bench binaries.

#ifndef TRUSS_BENCH_BENCH_UTIL_H_
#define TRUSS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <system_error>
#include <vector>

#include "common/timer.h"
#include "datasets/datasets.h"
#include "graph/graph.h"

namespace truss::bench {

/// Snapshot-name version: part of every cache file name, so stale graphs
/// never survive a generator change. Bump whenever src/gen or
/// src/datasets changes the graphs a registry name produces.
inline constexpr int kDatasetCacheVersion = 1;

/// Directory for persisted dataset snapshots. Registry datasets are
/// deterministic, so generated graphs are cached as binary CSR snapshots
/// (Graph::SaveBinary) keyed by name + kDatasetCacheVersion: repeat bench
/// runs load in one read instead of paying generation time. Override with
/// TRUSS_BENCH_CACHE_DIR; set it to an empty string to disable caching.
inline std::filesystem::path DatasetCacheDir() {
  if (const char* dir = std::getenv("TRUSS_BENCH_CACHE_DIR")) {
    return {dir};
  }
  return std::filesystem::temp_directory_path() / "truss_bench_cache";
}

/// Directory scripts/fetch_snap.sh downloads the paper's real SNAP
/// datasets into (uncompressed .txt edge lists). Benches that can use the
/// originals (bench_ingest, and any table bench pointed at real data)
/// look here; when it is empty they fall back to the registry stand-ins.
inline std::filesystem::path SnapDatasetDir() {
  return DatasetCacheDir() / "snap";
}

/// The .txt edge lists present in SnapDatasetDir(), sorted by name
/// (empty when fetch_snap.sh has not been run).
inline std::vector<std::filesystem::path> SnapDatasetFiles() {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(SnapDatasetDir(), ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".txt") files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Generates (and memoizes per process) a registry dataset, backed by the
/// on-disk snapshot cache across processes.
inline const Graph& GetDataset(const std::string& name) {
  static std::map<std::string, Graph>* cache = new std::map<std::string, Graph>;
  auto it = cache->find(name);
  if (it != cache->end()) return it->second;

  const std::filesystem::path cache_dir = DatasetCacheDir();
  const std::filesystem::path snapshot =
      cache_dir /
      (name + ".v" + std::to_string(kDatasetCacheVersion) + ".trsb");

  if (!cache_dir.empty() && std::filesystem::exists(snapshot)) {
    WallTimer timer;
    auto loaded = Graph::LoadBinary(snapshot.string());
    if (loaded.ok()) {
      std::fprintf(stderr, "[bench] loaded %s from cache (%s)\n", name.c_str(),
                   FormatDuration(timer.Seconds()).c_str());
      return cache->emplace(name, loaded.MoveValue()).first->second;
    }
    // A stale or torn snapshot is not fatal — regenerate below.
    std::fprintf(stderr, "[bench] cache for %s unusable (%s); regenerating\n",
                 name.c_str(), loaded.status().ToString().c_str());
  }

  WallTimer timer;
  std::fprintf(stderr, "[bench] generating %s ...", name.c_str());
  Graph g = datasets::DatasetByName(name).generate();
  std::fprintf(stderr, " %u vertices, %u edges (%s)\n", g.num_vertices(),
               g.num_edges(), FormatDuration(timer.Seconds()).c_str());

  if (!cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir, ec);
    const Status saved = g.SaveBinary(snapshot.string());
    if (!saved.ok()) {
      std::fprintf(stderr, "[bench] could not cache %s: %s\n", name.c_str(),
                   saved.ToString().c_str());
    }
  }
  return cache->emplace(name, std::move(g)).first->second;
}

/// Fresh scratch directory under /tmp for one bench binary.
inline std::string BenchDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "truss_bench" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Maximum worker threads for bench thread sweeps. Sweeps cover powers of
/// two up to this value. scripts/run_benches.sh sets TRUSS_BENCH_THREADS
/// (and records it in the BENCH_*.json artifact) so runs compare
/// like-for-like; default 8.
inline uint32_t BenchThreads() {
  if (const char* env = std::getenv("TRUSS_BENCH_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<uint32_t>(parsed);
  }
  return 8;
}

/// "73.2x" style ratio formatting.
inline std::string Ratio(double numerator, double denominator) {
  if (denominator <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", numerator / denominator);
  return buf;
}

/// Memory budget that makes a graph "not fit": roughly two thirds of the
/// in-memory structure footprint, with a floor so tiny graphs still take
/// the single-part fast path.
inline uint64_t ExternalBudgetFor(const Graph& g) {
  const uint64_t structures = static_cast<uint64_t>(g.num_edges()) * 48;
  return std::max<uint64_t>(16ull << 20, structures * 2 / 3);
}

}  // namespace truss::bench

#endif  // TRUSS_BENCH_BENCH_UTIL_H_
