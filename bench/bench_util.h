// Shared helpers for the table-reproduction bench binaries.

#ifndef TRUSS_BENCH_BENCH_UTIL_H_
#define TRUSS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "common/timer.h"
#include "datasets/datasets.h"
#include "graph/graph.h"
#include "truss/external.h"

namespace truss::bench {

/// Generates (and memoizes per process) a registry dataset.
inline const Graph& GetDataset(const std::string& name) {
  static std::map<std::string, Graph>* cache = new std::map<std::string, Graph>;
  auto it = cache->find(name);
  if (it == cache->end()) {
    WallTimer timer;
    std::fprintf(stderr, "[bench] generating %s ...", name.c_str());
    Graph g = datasets::DatasetByName(name).generate();
    std::fprintf(stderr, " %u vertices, %u edges (%s)\n", g.num_vertices(),
                 g.num_edges(), FormatDuration(timer.Seconds()).c_str());
    it = cache->emplace(name, std::move(g)).first;
  }
  return it->second;
}

/// Fresh scratch directory under /tmp for one bench binary.
inline std::string BenchDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "truss_bench" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// "73.2x" style ratio formatting.
inline std::string Ratio(double numerator, double denominator) {
  if (denominator <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", numerator / denominator);
  return buf;
}

/// Memory budget that makes a graph "not fit": roughly two thirds of the
/// in-memory structure footprint, with a floor so tiny graphs still take
/// the single-part fast path.
inline uint64_t ExternalBudgetFor(const Graph& g) {
  const uint64_t structures = static_cast<uint64_t>(g.num_edges()) * 48;
  return std::max<uint64_t>(16ull << 20, structures * 2 / 3);
}

}  // namespace truss::bench

#endif  // TRUSS_BENCH_BENCH_UTIL_H_
