// Regenerates paper Table 5: TD-topdown (top-20), TD-topdown (all classes),
// and TD-bottomup on the three large datasets.
//
// The paper's shape: top-down wins clearly for top-20 queries on LJ and Web,
// ties bottom-up on BTC (kmax = 7 < 20, so top-20 is already everything),
// and loses badly — or fails to finish — when asked for *all* classes on the
// largest dataset. We additionally report block I/O, the cost the paper's
// analysis is actually about. All six runs per dataset go through the
// engine facade; only the options differ.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "truss/result.h"

int main() {
  std::printf("== Table 5: TD-topdown vs TD-bottomup ==\n\n");
  truss::TablePrinter table({"dataset", "topdown top-20", "topdown all",
                             "bottomup", "paper top-20", "paper all",
                             "paper bottomup"});

  struct Row {
    const char* name;
    const char* paper_top20;
    const char* paper_all;
    const char* paper_bottomup;
  };
  const Row rows[] = {
      {"LJ", "149 s", "941 s", "664 s"},
      {"BTC", "1744 s", "1744 s", "1768 s"},
      {"Web", "2354 s", "-", "6314 s"},
  };

  for (const Row& row : rows) {
    const truss::Graph& g = truss::bench::GetDataset(row.name);
    truss::engine::DecomposeOptions options;
    options.algorithm = truss::engine::Algorithm::kTopDown;
    options.memory_budget_bytes = truss::bench::ExternalBudgetFor(g);
    options.strategy = truss::partition::Strategy::kRandomized;

    // Top-down, top-20 classes.
    truss::engine::DecomposeOptions top_options = options;
    top_options.top_t = 20;
    top_options.scratch_dir =
        truss::bench::BenchDir(std::string("t5t_") + row.name);
    auto top = truss::engine::Engine::Decompose(g, top_options);
    if (!top.ok()) {
      std::fprintf(stderr, "topdown(20) failed on %s: %s\n", row.name,
                   top.status().ToString().c_str());
      return 1;
    }
    const truss::engine::DecomposeStats& top_stats = top.value().stats;
    std::fprintf(stderr, "[bench] %s topdown(20): %.1fs kmax=%u io=%llu\n",
                 row.name, top_stats.wall_seconds, top_stats.external.kmax,
                 static_cast<unsigned long long>(
                     top_stats.total_io_blocks()));

    // Top-down, all classes.
    truss::engine::DecomposeOptions all_options = options;
    all_options.scratch_dir =
        truss::bench::BenchDir(std::string("t5a_") + row.name);
    auto all = truss::engine::Engine::Decompose(g, all_options);
    if (!all.ok()) {
      std::fprintf(stderr, "topdown(all) failed on %s: %s\n", row.name,
                   all.status().ToString().c_str());
      return 1;
    }

    // Bottom-up reference.
    truss::engine::DecomposeOptions bu_options = options;
    bu_options.algorithm = truss::engine::Algorithm::kBottomUp;
    bu_options.scratch_dir =
        truss::bench::BenchDir(std::string("t5b_") + row.name);
    auto bu = truss::engine::Engine::Decompose(g, bu_options);
    if (!bu.ok()) {
      std::fprintf(stderr, "bottomup failed on %s: %s\n", row.name,
                   bu.status().ToString().c_str());
      return 1;
    }
    if (!truss::SameDecomposition(all.value().result, bu.value().result)) {
      std::fprintf(stderr, "FATAL: topdown(all) disagrees on %s\n", row.name);
      return 1;
    }

    table.AddRow({row.name, truss::FormatDuration(top_stats.wall_seconds),
                  truss::FormatDuration(all.value().stats.wall_seconds),
                  truss::FormatDuration(bu.value().stats.wall_seconds),
                  row.paper_top20, row.paper_all, row.paper_bottomup});
  }
  table.Print();
  std::printf("\n(shape to compare: top-20 ≤ all-classes for top-down; BTC's "
              "kmax=7 makes its top-20 identical to all classes)\n");
  return 0;
}
