// Ingestion throughput: sequential reference reader vs the chunked
// parallel reader (graph/text_io) across a thread sweep.
//
// Inputs: the real SNAP datasets downloaded by scripts/fetch_snap.sh when
// present (bench_util SnapDatasetDir), otherwise a registry stand-in
// written out as a text edge list — so the bench always runs, and runs on
// the paper's actual graphs wherever they have been fetched.
//
// Every parallel run is verified byte-identical (graph + original_id)
// against the sequential reference; any divergence fails the bench.
// Machine-readable "METRIC <key> <value>" lines land in the BENCH_*.json
// artifact via scripts/run_benches.sh for trajectory tracking.

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "graph/text_io.h"

namespace {

using truss::LoadedGraph;
using truss::ReadSnapEdgeList;
using truss::ReadSnapEdgeListSequential;
using truss::SameLoadedGraph;
using truss::SnapReadOptions;

std::string MetricKey(const std::string& stem) {
  std::string key;
  for (const char c : stem) {
    key += std::isalnum(static_cast<unsigned char>(c)) != 0
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : '_';
  }
  return key;
}

// One dataset: sequential baseline, then the chunked reader at t = 1, 2,
// 4, ... up to the sweep cap. Returns false on any result divergence.
bool BenchFile(const std::filesystem::path& path) {
  const double mb =
      static_cast<double>(std::filesystem::file_size(path)) / (1024.0 * 1024.0);
  const std::string key = MetricKey(path.stem().string());
  std::printf("\n%s (%.1f MB)\n", path.filename().string().c_str(), mb);
  std::printf("  %-14s %10s %10s %8s\n", "reader", "seconds", "MB/s",
              "speedup");

  truss::WallTimer seq_timer;
  auto reference = ReadSnapEdgeListSequential(path.string());
  const double seq_s = seq_timer.Seconds();
  if (!reference.ok()) {
    std::fprintf(stderr, "error: %s\n", reference.status().ToString().c_str());
    return false;
  }
  std::printf("  %-14s %10.3f %10.1f %8s\n", "sequential", seq_s, mb / seq_s,
              "1.0x");
  std::printf("METRIC ingest_%s_seq_mbps %.1f\n", key.c_str(), mb / seq_s);

  bool ok = true;
  for (uint32_t t = 1; t <= truss::bench::BenchThreads(); t *= 2) {
    SnapReadOptions options;
    options.threads = t;
    truss::WallTimer timer;
    auto loaded = ReadSnapEdgeList(path.string(), options);
    const double s = timer.Seconds();
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return false;
    }
    if (!SameLoadedGraph(reference.value(), loaded.value())) {
      std::fprintf(stderr,
                   "error: chunked reader (t=%u) diverges from the "
                   "sequential reference on %s\n",
                   t, path.string().c_str());
      ok = false;
      continue;
    }
    const std::string label = "chunked t=" + std::to_string(t);
    std::printf("  %-14s %10.3f %10.1f %8s\n", label.c_str(), s, mb / s,
                truss::bench::Ratio(seq_s, s).c_str());
    std::printf("METRIC ingest_%s_t%u_mbps %.1f\n", key.c_str(), t, mb / s);
    if (t == 1) {
      std::printf("METRIC ingest_%s_t1_overhead_pct %.1f\n", key.c_str(),
                  (s - seq_s) / seq_s * 100.0);
    }
  }
  std::printf("  graph: %u vertices, %u edges\n",
              reference.value().graph.num_vertices(),
              reference.value().graph.num_edges());
  return ok;
}

}  // namespace

int main() {
  std::vector<std::filesystem::path> inputs =
      truss::bench::SnapDatasetFiles();
  std::filesystem::path standin;
  if (inputs.empty()) {
    // No fetched datasets: write the largest quick registry stand-in as a
    // text edge list so the bench exercises the same code path end to end.
    const std::string dir = truss::bench::BenchDir("ingest");
    std::filesystem::create_directories(dir);
    standin = std::filesystem::path(dir) / "Blog-standin.txt";
    std::printf("no SNAP datasets under %s (run scripts/fetch_snap.sh); "
                "writing the Blog stand-in\n",
                truss::bench::SnapDatasetDir().string().c_str());
    const truss::Status written =
        truss::WriteEdgeList(truss::bench::GetDataset("Blog"),
                             standin.string());
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    inputs.push_back(standin);
  }

  bool ok = true;
  for (const auto& path : inputs) ok = BenchFile(path) && ok;
  if (!standin.empty()) std::filesystem::remove(standin);
  return ok ? 0 : 1;
}
