// Regenerates paper Table 4: TD-bottomup vs TD-MR (Cohen's MapReduce
// algorithm on a simulated cluster).
//
// The paper runs TD-MR only on the two smallest datasets (P2P: 4200 s,
// HEP: 14760 s on 20 Hadoop nodes) because it is ≥3 orders of magnitude
// slower; TD-bottomup handles P2P/HEP in under a second and LJ/BTC/Web in
// minutes on one machine. We reproduce both sides: the MR simulator reports
// raw in-process time plus a Hadoop-adjusted time charging 20 s of job
// scheduling per round (EXPERIMENTS.md discusses the model).

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "io/env.h"
#include "mapreduce/mr_truss.h"

namespace {

constexpr double kHadoopRoundLatencySeconds = 20.0;

}  // namespace

int main() {
  std::printf("== Table 4: TD-bottomup vs TD-MR ==\n\n");
  truss::TablePrinter table({"dataset", "TD-bottomup", "blocks I/O", "TD-MR",
                             "TD-MR rounds", "TD-MR (+20s/round)",
                             "paper bottomup", "paper MR"});

  struct Row {
    const char* name;
    bool run_mr;
    const char* paper_bottomup;
    const char* paper_mr;
  };
  const Row rows[] = {
      {"P2P", true, "<1 s", "4200 s"},  {"HEP", true, "<1 s", "14760 s"},
      {"LJ", false, "664 s", "-"},      {"BTC", false, "1768 s", "-"},
      {"Web", false, "6314 s", "-"},
  };

  for (const Row& row : rows) {
    const truss::Graph& g = truss::bench::GetDataset(row.name);

    // Bottom-up under a budget that the graph's structures exceed.
    truss::engine::DecomposeOptions options;
    options.algorithm = truss::engine::Algorithm::kBottomUp;
    options.memory_budget_bytes = truss::bench::ExternalBudgetFor(g);
    options.strategy = truss::partition::Strategy::kRandomized;
    options.scratch_dir = truss::bench::BenchDir(std::string("t4_") +
                                                 row.name);
    auto bu = truss::engine::Engine::Decompose(g, options);
    if (!bu.ok()) {
      std::fprintf(stderr, "bottom-up failed on %s: %s\n", row.name,
                   bu.status().ToString().c_str());
      return 1;
    }
    const truss::ExternalStats& stats = bu.value().stats.external;
    std::fprintf(stderr,
                 "[bench] %s: bottomup %.1fs kmax=%u lb_iters=%u "
                 "overflows=%llu\n",
                 row.name, stats.seconds, stats.kmax,
                 stats.lower_bound_iterations,
                 static_cast<unsigned long long>(stats.candidate_overflows));

    std::string mr_time = "-", mr_rounds = "-", mr_adjusted = "-";
    if (row.run_mr) {
      truss::io::Env mr_env(
          truss::bench::BenchDir(std::string("t4mr_") + row.name));
      truss::mr::MrTrussOptions mr_opts;
      mr_opts.engine.per_round_latency_seconds = kHadoopRoundLatencySeconds;
      truss::mr::MrTrussStats mr_stats;
      auto mr = truss::mr::MapReduceTrussDecomposition(mr_env, g, mr_opts,
                                                       &mr_stats);
      if (!mr.ok()) {
        std::fprintf(stderr, "TD-MR failed on %s: %s\n", row.name,
                     mr.status().ToString().c_str());
        return 1;
      }
      if (!truss::SameDecomposition(bu.value().result, mr.value())) {
        std::fprintf(stderr, "FATAL: TD-MR disagrees on %s\n", row.name);
        return 1;
      }
      mr_time = truss::FormatDuration(mr_stats.seconds);
      mr_rounds = std::to_string(mr_stats.engine.rounds);
      mr_adjusted = truss::FormatDuration(
          mr_stats.seconds + mr_stats.engine.simulated_latency_seconds);
    }

    table.AddRow({row.name, truss::FormatDuration(stats.seconds),
                  std::to_string(stats.io.total_blocks()), mr_time, mr_rounds,
                  mr_adjusted, row.paper_bottomup, row.paper_mr});
  }
  table.Print();
  std::printf("\n(TD-MR is only run on the two smallest datasets, exactly as "
              "in the paper; its iterated triangle enumeration makes larger "
              "inputs impractical)\n");
  return 0;
}
